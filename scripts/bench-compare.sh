#!/usr/bin/env bash
# Diffs two BENCH_*.json perf summaries (schema socnet-bench-v1) stage
# by stage: wall-clock and throughput deltas, per-kernel rate deltas
# from the "extra" block, plus a note when the unit counts differ or a
# stage only exists on one side. The summaries put one stage per line
# precisely so this stays a plain awk pass.
#
# Usage: scripts/bench-compare.sh [--assert-within N%] BASELINE.json CANDIDATE.json
#
# Without --assert-within the deltas are informational and the exit code
# is 0 on any successful comparison. With --assert-within N% the script
# becomes a regression gate: it exits 1 if any stage's wall-clock grew
# more than N% over a baseline of at least $WALL_FLOOR seconds (shorter
# stages are pure noise), or any `*_per_s` rate in the extras dropped
# more than N%. Stages or rates present on only one side are warned
# about but never fail the gate — a renamed or added kernel should not
# brick CI until the baseline is refreshed.
#
# Exit codes: 0 comparison ok (and, under --assert-within, no breach),
# 1 regression threshold breached, 2 unreadable/non-bench-v1 inputs or
# bad usage.

set -euo pipefail

# Stages whose baseline wall is below this many seconds are not gated on
# wall-clock (timer noise swamps the signal); their rates still are.
WALL_FLOOR=${WALL_FLOOR:-0.05}

TOLERANCE=""
ARGS=()
while [ $# -gt 0 ]; do
    case "$1" in
        --assert-within)
            [ $# -ge 2 ] || { echo "error: --assert-within needs a value" >&2; exit 2; }
            TOLERANCE="${2%\%}"
            shift 2
            ;;
        --assert-within=*)
            TOLERANCE="${1#--assert-within=}"
            TOLERANCE="${TOLERANCE%\%}"
            shift
            ;;
        *)
            ARGS+=("$1")
            shift
            ;;
    esac
done

if [ "${#ARGS[@]}" -ne 2 ]; then
    echo "usage: $0 [--assert-within N%] BASELINE.json CANDIDATE.json" >&2
    exit 2
fi
if [ -n "$TOLERANCE" ] && ! printf '%s' "$TOLERANCE" | grep -Eq '^[0-9]+(\.[0-9]+)?$'; then
    echo "error: --assert-within expects a percentage like 30%, got '$TOLERANCE'" >&2
    exit 2
fi

BASELINE=${ARGS[0]}
CANDIDATE=${ARGS[1]}

for f in "$BASELINE" "$CANDIDATE"; do
    if [ ! -r "$f" ]; then
        echo "error: cannot read $f" >&2
        exit 2
    fi
    if ! grep -q '"schema":"socnet-bench-v1"' "$f"; then
        echo "error: $f is not a socnet-bench-v1 summary" >&2
        exit 2
    fi
done

echo "baseline:  $BASELINE"
echo "candidate: $CANDIDATE"
if [ -n "$TOLERANCE" ]; then
    echo "gate:      fail on >${TOLERANCE}% regression (wall floor ${WALL_FLOOR}s)"
fi
echo

awk -v tol="$TOLERANCE" -v wall_floor="$WALL_FLOOR" '
FNR == 1 { side++ }
# Stage lines look like: "fig1a":{"wall_s":1.500,"units":3,"throughput":2.000}
/^"/ && /"wall_s":/ {
    line = $0
    stage = line
    sub(/^"/, "", stage)
    sub(/":.*/, "", stage)
    match(line, /"wall_s":[0-9.]+/)
    wall = substr(line, RSTART + 9, RLENGTH - 9)
    match(line, /"units":[0-9]+/)
    units = substr(line, RSTART + 8, RLENGTH - 8)
    tp = ""
    if (match(line, /"throughput":[0-9.]+/))
        tp = substr(line, RSTART + 13, RLENGTH - 13)
    if (side == 1) {
        bw[stage] = wall; bu[stage] = units; bt[stage] = tp
        border[++bn] = stage
    } else {
        cw[stage] = wall; cu[stage] = units; ct[stage] = tp
        if (!(stage in bw)) corder[++cn] = stage
    }
}
# The extras block is one line: "extra":{"k":1.0,"j":2.5,...}
/^"extra":\{/ {
    line = $0
    sub(/^"extra":\{/, "", line)
    sub(/\}$/, "", line)
    n = split(line, kv, /,/)
    for (i = 1; i <= n; i++) {
        if (split(kv[i], pair, /":/) != 2) continue
        key = pair[1]
        sub(/^"/, "", key)
        val = pair[2]
        if (val !~ /^-?[0-9.]+$/) continue
        if (side == 1) {
            bx[key] = val
            if (!(key in bxseen)) { bxseen[key] = 1; bxorder[++bxn] = key }
        } else {
            cx[key] = val
        }
    }
}
END {
    violations = 0
    printf "%-24s %12s %12s %9s %9s  %s\n", \
        "stage", "base-wall-s", "cand-wall-s", "wall", "thpt", "note"
    for (i = 1; i <= bn; i++) {
        s = border[i]
        if (!(s in cw)) {
            printf "%-24s %12.3f %12s %9s %9s  %s\n", \
                s, bw[s], "-", "-", "-", "only in baseline"
            warn[++wn] = "stage " s " missing from candidate"
            continue
        }
        d = cw[s] - bw[s]
        pct = (bw[s] > 0) ? 100 * d / bw[s] : 0
        tpct = (bt[s] != "" && ct[s] != "" && bt[s] > 0) \
            ? 100 * (ct[s] - bt[s]) / bt[s] : 0
        note = (bu[s] != cu[s]) ? sprintf("units %s -> %s", bu[s], cu[s]) : ""
        if (tol != "" && bw[s] >= wall_floor && pct > tol + 0) {
            note = note ((note == "") ? "" : "; ") "WALL REGRESSION"
            viol[++violations] = sprintf("stage %s wall %+.1f%% (limit +%s%%)", s, pct, tol)
        }
        printf "%-24s %12.3f %12.3f %+8.1f%% %+8.1f%%  %s\n", \
            s, bw[s], cw[s], pct, tpct, note
    }
    for (i = 1; i <= cn; i++) {
        printf "%-24s %12s %12.3f %9s %9s  %s\n", \
            corder[i], "-", cw[corder[i]], "-", "-", "only in candidate"
        warn[++wn] = "stage " corder[i] " missing from baseline"
    }
    # Per-kernel rates: higher is better; gate on drops beyond tol.
    shown = 0
    for (i = 1; i <= bxn; i++) {
        k = bxorder[i]
        if (k !~ /_per_s$/) continue
        if (!shown) {
            printf "\n%-40s %14s %14s %9s  %s\n", \
                "rate", "baseline", "candidate", "delta", "note"
            shown = 1
        }
        if (!(k in cx)) {
            printf "%-40s %14.1f %14s %9s  %s\n", k, bx[k], "-", "-", "only in baseline"
            warn[++wn] = "rate " k " missing from candidate"
            continue
        }
        pct = (bx[k] > 0) ? 100 * (cx[k] - bx[k]) / bx[k] : 0
        note = ""
        if (tol != "" && bx[k] > 0 && pct < -(tol + 0)) {
            note = "RATE REGRESSION"
            viol[++violations] = sprintf("rate %s %+.1f%% (limit -%s%%)", k, pct, tol)
        }
        printf "%-40s %14.1f %14.1f %+8.1f%%  %s\n", k, bx[k], cx[k], pct, note
    }
    for (k in cx)
        if (k ~ /_per_s$/ && !(k in bx))
            warn[++wn] = "rate " k " missing from baseline"

    if (wn > 0) {
        print ""
        for (i = 1; i <= wn; i++) print "warning: " warn[i]
    }
    if (tol != "") {
        print ""
        if (violations > 0) {
            for (i = 1; i <= violations; i++) print "REGRESSION: " viol[i]
            printf "gate: FAIL (%d regression(s) beyond %s%%)\n", violations, tol
            exit 1
        }
        printf "gate: ok (all deltas within %s%%)\n", tol
    }
}
' "$BASELINE" "$CANDIDATE"
