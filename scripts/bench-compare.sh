#!/usr/bin/env bash
# Diffs two BENCH_*.json perf summaries (schema socnet-bench-v1) stage
# by stage: wall-clock and throughput deltas, plus a note when the unit
# counts differ or a stage only exists on one side. The summaries put
# one stage per line precisely so this stays a plain awk pass.
#
# Usage: scripts/bench-compare.sh BASELINE.json CANDIDATE.json
#
# Exit codes: 0 on a successful comparison (deltas are informational,
# not a gate), 2 on unreadable or non-bench-v1 inputs.

set -euo pipefail

if [ $# -ne 2 ]; then
    echo "usage: $0 BASELINE.json CANDIDATE.json" >&2
    exit 2
fi

for f in "$1" "$2"; do
    if [ ! -r "$f" ]; then
        echo "error: cannot read $f" >&2
        exit 2
    fi
    if ! grep -q '"schema":"socnet-bench-v1"' "$f"; then
        echo "error: $f is not a socnet-bench-v1 summary" >&2
        exit 2
    fi
done

echo "baseline:  $1"
echo "candidate: $2"
echo

awk '
FNR == 1 { side++ }
# Stage lines look like: "fig1a":{"wall_s":1.500,"units":3,"throughput":2.000}
/^"/ && /"wall_s":/ {
    line = $0
    stage = line
    sub(/^"/, "", stage)
    sub(/":.*/, "", stage)
    match(line, /"wall_s":[0-9.]+/)
    wall = substr(line, RSTART + 9, RLENGTH - 9)
    match(line, /"units":[0-9]+/)
    units = substr(line, RSTART + 8, RLENGTH - 8)
    tp = ""
    if (match(line, /"throughput":[0-9.]+/))
        tp = substr(line, RSTART + 13, RLENGTH - 13)
    if (side == 1) {
        bw[stage] = wall; bu[stage] = units; bt[stage] = tp
        border[++bn] = stage
    } else {
        cw[stage] = wall; cu[stage] = units; ct[stage] = tp
        if (!(stage in bw)) corder[++cn] = stage
    }
}
END {
    printf "%-24s %12s %12s %9s %9s  %s\n", \
        "stage", "base-wall-s", "cand-wall-s", "wall", "thpt", "note"
    for (i = 1; i <= bn; i++) {
        s = border[i]
        if (!(s in cw)) {
            printf "%-24s %12.3f %12s %9s %9s  %s\n", \
                s, bw[s], "-", "-", "-", "only in baseline"
            continue
        }
        d = cw[s] - bw[s]
        pct = (bw[s] > 0) ? 100 * d / bw[s] : 0
        tpct = (bt[s] != "" && ct[s] != "" && bt[s] > 0) \
            ? 100 * (ct[s] - bt[s]) / bt[s] : 0
        note = (bu[s] != cu[s]) ? sprintf("units %s -> %s", bu[s], cu[s]) : ""
        printf "%-24s %12.3f %12.3f %+8.1f%% %+8.1f%%  %s\n", \
            s, bw[s], cw[s], pct, tpct, note
    }
    for (i = 1; i <= cn; i++)
        printf "%-24s %12s %12.3f %9s %9s  %s\n", \
            corder[i], "-", cw[corder[i]], "-", "-", "only in candidate"
}
' "$1" "$2"
