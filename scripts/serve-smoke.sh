#!/usr/bin/env bash
# Smoke-tests the `socnet serve` property-query service end to end:
# boots it on a free loopback port, curls every endpoint, validates the
# JSON bodies (with `socnet obs-check` when available), checks the
# error mapping and the Prometheus-style /metrics text, then sends
# SIGTERM and requires a clean graceful drain — exit 0 plus the
# run.json manifest and metrics snapshot on disk.
#
# The drain also flushes a warm-start snapshot to <out>/store, so the
# script then restarts the server over the same store and requires the
# first /mixing query to be served from it: HTTP 200, an
# `X-Cache: warm-disk` header, and a body byte-identical to the one the
# pre-restart process answered.
#
# A final section exercises the live-graph path: POST /delta batches
# are acked durable, the server is killed with SIGKILL (no drain, no
# compaction), and a restart over the same store must replay the WAL to
# the exact acked version with byte-identical live coreness answers.
#
# Environment knobs:
#   BIN_DIR  directory holding the built socnet CLI
#            (default target/release; offline builds name the binary
#            socnet_cli_main under target/offline-check/bin)
#   OUT_DIR  artifact directory (default target/serve-smoke)
#   SCALE    default dataset scale the server answers at (default 0.05)

set -euo pipefail
cd "$(dirname "$0")/.."

BIN_DIR=${BIN_DIR:-target/release}
OUT_DIR=${OUT_DIR:-target/serve-smoke}
SCALE=${SCALE:-0.05}

CLI=""
for candidate in "$BIN_DIR/socnet" "$BIN_DIR/socnet_cli_main"; do
    if [ -x "$candidate" ]; then
        CLI="$candidate"
        break
    fi
done
if [ -z "$CLI" ]; then
    echo "error: no socnet CLI in $BIN_DIR (build first)" >&2
    exit 1
fi

rm -rf "$OUT_DIR"
mkdir -p "$OUT_DIR"

validate_json() { # FILE... -> non-zero if any file is invalid
    "$CLI" obs-check "$@" >/dev/null
}

# GET/POST returning "STATUS<tab>saved-to-file".
fetch() { # method path outfile
    curl -s -X "$1" -o "$OUT_DIR/$3" -w '%{http_code}' \
        --max-time 60 "http://$ADDR$2"
}

echo "== boot =="
"$CLI" serve --addr 127.0.0.1:0 --threads 2 --scale "$SCALE" \
    --header-deadline 2 --out "$OUT_DIR" \
    --log-format json --log-file "$OUT_DIR/events.jsonl" \
    >"$OUT_DIR/stdout.txt" 2>"$OUT_DIR/stderr.txt" &
SERVER_PID=$!

# The kernel picked the port; the serve.start event names it.
ADDR=""
for _ in $(seq 1 100); do
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "FAIL server exited before accepting" >&2
        cat "$OUT_DIR/stderr.txt" >&2 || true
        exit 1
    fi
    if [ -f "$OUT_DIR/events.jsonl" ]; then
        ADDR=$(sed -n 's/.*serve\.start.*"addr":"\([0-9.:]*\)".*/\1/p' \
            "$OUT_DIR/events.jsonl" | head -1)
        [ -n "$ADDR" ] && break
    fi
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "FAIL server did not announce its address within 10s" >&2
    kill "$SERVER_PID" 2>/dev/null || true
    exit 1
fi
echo "server up at $ADDR (pid $SERVER_PID)"

failures=0
check() { # description expected_status actual_status
    if [ "$3" = "$2" ]; then
        echo "ok    $1"
    else
        echo "FAIL  $1: expected HTTP $2, got $3" >&2
        failures=$((failures + 1))
    fi
}

echo "== endpoints =="
check "GET /healthz" 200 "$(fetch GET /healthz healthz.json)"
check "GET /datasets" 200 "$(fetch GET /datasets datasets.json)"
check "POST load" 200 "$(fetch POST /graphs/Rice-grad/load load.json)"
check "GET mixing" 200 \
    "$(fetch GET '/graphs/Rice-grad/mixing?eps=0.25' mixing.json)"
check "GET coreness" 200 \
    "$(fetch GET /graphs/Rice-grad/coreness/0 coreness.json)"
check "GET expansion" 200 \
    "$(fetch GET '/graphs/Rice-grad/expansion?root=0&hops=4' expansion.json)"
check "POST admit" 200 \
    "$(fetch POST '/graphs/Rice-grad/gatekeeper/admit?controller=0&sybils=0&distributors=5&walk=5' admit.json)"
check "POST evict" 200 "$(fetch POST /graphs/Rice-grad/evict evict.json)"
# Re-ask after the evict so the drain snapshot has a mixing body to
# persist; this response is the warm-restart reference below.
check "GET mixing (post-evict)" 200 \
    "$(fetch GET '/graphs/Rice-grad/mixing?eps=0.25' mixing-reference.json)"

echo "== error mapping =="
check "unknown dataset -> 404" 404 \
    "$(fetch GET /graphs/NoSuchDataset/coreness/0 err404.json)"
check "bad eps -> 400" 400 \
    "$(fetch GET '/graphs/Rice-grad/mixing?eps=0.9' err400.json)"
check "wrong method -> 405" 405 "$(fetch POST /healthz err405.json)"

echo "== body validation =="
if validate_json "$OUT_DIR"/healthz.json "$OUT_DIR"/datasets.json \
    "$OUT_DIR"/load.json "$OUT_DIR"/mixing.json "$OUT_DIR"/coreness.json \
    "$OUT_DIR"/expansion.json "$OUT_DIR"/admit.json "$OUT_DIR"/evict.json \
    "$OUT_DIR"/err404.json "$OUT_DIR"/err400.json "$OUT_DIR"/err405.json; then
    echo "ok    all response bodies are valid JSON"
else
    echo "FAIL  a response body is not valid JSON" >&2
    failures=$((failures + 1))
fi

echo "== live telemetry =="
metrics_status=$(fetch GET /metrics metrics.prom)
check "GET /metrics" 200 "$metrics_status"
if validate_json "$OUT_DIR/metrics.prom"; then
    echo "ok    /metrics parses as Prometheus text exposition"
else
    echo "FAIL  /metrics is not valid Prometheus text" >&2
    failures=$((failures + 1))
fi
# The series the dashboards and alerts are built on must all be
# present the moment the server answers traffic: request counters,
# per-route latency histograms, overload defenses, cache and store
# effectiveness.
for series in 'http_requests_total' \
    'http_request_seconds_bucket{route="mixing"' \
    'http_shed_requests_total' 'http_reaped_slowloris_total' \
    'cache_hits_total' 'cache_misses_total' 'store_hydrated_total'; do
    if grep -qF "$series" "$OUT_DIR/metrics.prom"; then
        echo "ok    /metrics exposes $series"
    else
        echo "FAIL  /metrics lacks $series" >&2
        failures=$((failures + 1))
    fi
done

# Every response names its trace; /debug/slow renders the span trees.
trace_id=$(curl -s -D - -o /dev/null --max-time 60 \
    "http://$ADDR/graphs/Rice-grad/coreness/0" |
    sed -n 's/^X-Trace-Id: \([0-9a-f]*\).*/\1/p' | head -1)
if [ -n "$trace_id" ]; then
    echo "ok    responses carry X-Trace-Id ($trace_id)"
    check "GET /debug/trace/$trace_id" 200 \
        "$(fetch GET "/debug/trace/$trace_id" trace.json)"
else
    echo "FAIL  response carried no X-Trace-Id header" >&2
    failures=$((failures + 1))
fi
check "GET /debug/slow" 200 "$(fetch GET '/debug/slow?threshold_ms=0&n=5' slow.json)"
if validate_json "$OUT_DIR/slow.json" &&
    grep -q '"root_stage_sum_ms"' "$OUT_DIR/slow.json"; then
    echo "ok    /debug/slow renders span trees"
else
    echo "FAIL  /debug/slow lacks span trees" >&2
    failures=$((failures + 1))
fi

echo "== slow-loris probe =="
# A client that sends a partial request head and then stalls must not
# hold the server: /healthz keeps answering, and the connection is
# reaped at the header deadline (2s here) instead of living forever.
LORIS_HOST=${ADDR%:*}
LORIS_PORT=${ADDR##*:}
exec 3<>"/dev/tcp/$LORIS_HOST/$LORIS_PORT"
printf 'GET /healthz HTTP/1.1\r\nX-Drip: ' >&3
check "healthz answers while a slow-loris stalls" 200 \
    "$(fetch GET /healthz healthz-during-loris.json)"
loris_rc=0
read -t 15 -u 3 -N 1 _loris_byte || loris_rc=$?
if [ "$loris_rc" -gt 128 ]; then
    echo "FAIL  slow-loris connection was not reaped within 15s" >&2
    failures=$((failures + 1))
else
    echo "ok    slow-loris connection reaped at the header deadline"
fi
exec 3>&- 2>/dev/null || true

echo "== graceful drain =="
kill -TERM "$SERVER_PID"
server_exit=0
wait "$SERVER_PID" || server_exit=$?
if [ "$server_exit" -ne 0 ]; then
    echo "FAIL  server exited $server_exit after SIGTERM" >&2
    cat "$OUT_DIR/stderr.txt" >&2 || true
    failures=$((failures + 1))
else
    echo "ok    SIGTERM -> clean exit 0"
fi
for artifact in run.json serve_metrics.json; do
    if [ -f "$OUT_DIR/$artifact" ] && validate_json "$OUT_DIR/$artifact"; then
        echo "ok    drain wrote valid $artifact"
    else
        echo "FAIL  drain did not write valid $artifact" >&2
        failures=$((failures + 1))
    fi
done
if [ -f "$OUT_DIR/store/serve.snap" ]; then
    echo "ok    drain flushed $OUT_DIR/store/serve.snap"
else
    echo "FAIL  drain did not flush a warm-start snapshot" >&2
    failures=$((failures + 1))
fi
if [ -f "$OUT_DIR/traces.jsonl" ] && validate_json "$OUT_DIR/traces.jsonl"; then
    echo "ok    drain flushed schema-valid traces.jsonl"
else
    echo "FAIL  drain did not flush valid traces.jsonl" >&2
    failures=$((failures + 1))
fi

echo "== warm restart =="
mkdir -p "$OUT_DIR/restart"
"$CLI" serve --addr 127.0.0.1:0 --threads 2 --scale "$SCALE" \
    --out "$OUT_DIR/restart" --store-dir "$OUT_DIR/store" \
    --log-format json --log-file "$OUT_DIR/restart/events.jsonl" \
    >"$OUT_DIR/restart/stdout.txt" 2>"$OUT_DIR/restart/stderr.txt" &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "FAIL restarted server exited before accepting" >&2
        cat "$OUT_DIR/restart/stderr.txt" >&2 || true
        exit 1
    fi
    if [ -f "$OUT_DIR/restart/events.jsonl" ]; then
        ADDR=$(sed -n 's/.*serve\.start.*"addr":"\([0-9.:]*\)".*/\1/p' \
            "$OUT_DIR/restart/events.jsonl" | head -1)
        [ -n "$ADDR" ] && break
    fi
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "FAIL restarted server did not announce its address within 10s" >&2
    kill "$SERVER_PID" 2>/dev/null || true
    exit 1
fi
echo "restarted server up at $ADDR (pid $SERVER_PID)"

# The very first query must be answered from the hydrated snapshot.
warm_status=$(curl -s -o "$OUT_DIR/restart/mixing-warm.json" \
    -D "$OUT_DIR/restart/mixing-warm-headers.txt" -w '%{http_code}' \
    --max-time 60 "http://$ADDR/graphs/Rice-grad/mixing?eps=0.25")
check "GET mixing (restarted)" 200 "$warm_status"
if grep -qi '^X-Cache: warm-disk' "$OUT_DIR/restart/mixing-warm-headers.txt"; then
    echo "ok    first restarted query came from the warm-start snapshot"
else
    echo "FAIL  first restarted query was not served warm:" >&2
    cat "$OUT_DIR/restart/mixing-warm-headers.txt" >&2 || true
    failures=$((failures + 1))
fi
if cmp -s "$OUT_DIR/mixing-reference.json" "$OUT_DIR/restart/mixing-warm.json"; then
    echo "ok    warm body is byte-identical to the pre-restart body"
else
    echo "FAIL  warm body differs from the pre-restart body" >&2
    failures=$((failures + 1))
fi

kill -TERM "$SERVER_PID"
server_exit=0
wait "$SERVER_PID" || server_exit=$?
if [ "$server_exit" -ne 0 ]; then
    echo "FAIL  restarted server exited $server_exit after SIGTERM" >&2
    cat "$OUT_DIR/restart/stderr.txt" >&2 || true
    failures=$((failures + 1))
else
    echo "ok    restarted SIGTERM -> clean exit 0"
fi

echo "== live deltas: ack, kill -9, replay =="
# An edge-delta batch is acked only after its WAL frame is fsynced, so
# killing the server with SIGKILL right after the ack — no drain, no
# compaction — must lose nothing: a restart over the same store replays
# the WAL to the exact acked version and answers live queries with
# byte-identical bodies.
mkdir -p "$OUT_DIR/live"
"$CLI" serve --addr 127.0.0.1:0 --threads 2 --scale "$SCALE" \
    --out "$OUT_DIR/live" --store-dir "$OUT_DIR/store-live" \
    --live-rebuild-threshold 8 \
    --log-format json --log-file "$OUT_DIR/live/events.jsonl" \
    >"$OUT_DIR/live/stdout.txt" 2>"$OUT_DIR/live/stderr.txt" &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "FAIL live server exited before accepting" >&2
        cat "$OUT_DIR/live/stderr.txt" >&2 || true
        exit 1
    fi
    if [ -f "$OUT_DIR/live/events.jsonl" ]; then
        ADDR=$(sed -n 's/.*serve\.start.*"addr":"\([0-9.:]*\)".*/\1/p' \
            "$OUT_DIR/live/events.jsonl" | head -1)
        [ -n "$ADDR" ] && break
    fi
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "FAIL live server did not announce its address within 10s" >&2
    kill "$SERVER_PID" 2>/dev/null || true
    exit 1
fi
echo "live server up at $ADDR (pid $SERVER_PID)"

delta() { # body outfile -> status
    curl -s -X POST --data-binary "$1" -o "$OUT_DIR/live/$2" \
        -w '%{http_code}' --max-time 60 \
        "http://$ADDR/datasets/Rice-grad/delta"
}
check "POST delta batch 1" 200 "$(delta $'+ 0 1\n+ 1 2\n' delta1.json)"
check "POST delta batch 2" 200 "$(delta $'- 0 1\n+ 2 5\n' delta2.json)"
if grep -q '"version":2' "$OUT_DIR/live/delta2.json" &&
    grep -q '"durable":true' "$OUT_DIR/live/delta2.json"; then
    echo "ok    second delta batch acked durable at version 2"
else
    echo "FAIL  second delta ack lacks version 2 / durable:true:" >&2
    cat "$OUT_DIR/live/delta2.json" >&2 || true
    failures=$((failures + 1))
fi
live_status=$(curl -s -o "$OUT_DIR/live/coreness-live.json" \
    -D "$OUT_DIR/live/coreness-live-headers.txt" -w '%{http_code}' \
    --max-time 60 "http://$ADDR/graphs/Rice-grad/coreness/0")
check "GET coreness (live)" 200 "$live_status"
if grep -qi '^X-Graph-Version: 2' "$OUT_DIR/live/coreness-live-headers.txt"; then
    echo "ok    live coreness answered at graph version 2"
else
    echo "FAIL  live coreness did not answer at graph version 2:" >&2
    cat "$OUT_DIR/live/coreness-live-headers.txt" >&2 || true
    failures=$((failures + 1))
fi

kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
echo "ok    SIGKILL delivered (no drain, no compaction)"
if [ -f "$OUT_DIR/store-live/live.wal" ]; then
    echo "ok    acked delta WAL survived the kill"
else
    echo "FAIL  no delta WAL at $OUT_DIR/store-live/live.wal" >&2
    failures=$((failures + 1))
fi

mkdir -p "$OUT_DIR/live-restart"
"$CLI" serve --addr 127.0.0.1:0 --threads 2 --scale "$SCALE" \
    --out "$OUT_DIR/live-restart" --store-dir "$OUT_DIR/store-live" \
    --live-rebuild-threshold 8 \
    --log-format json --log-file "$OUT_DIR/live-restart/events.jsonl" \
    >"$OUT_DIR/live-restart/stdout.txt" 2>"$OUT_DIR/live-restart/stderr.txt" &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "FAIL replayed server exited before accepting" >&2
        cat "$OUT_DIR/live-restart/stderr.txt" >&2 || true
        exit 1
    fi
    if [ -f "$OUT_DIR/live-restart/events.jsonl" ]; then
        ADDR=$(sed -n 's/.*serve\.start.*"addr":"\([0-9.:]*\)".*/\1/p' \
            "$OUT_DIR/live-restart/events.jsonl" | head -1)
        [ -n "$ADDR" ] && break
    fi
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "FAIL replayed server did not announce its address within 10s" >&2
    kill "$SERVER_PID" 2>/dev/null || true
    exit 1
fi
echo "replayed server up at $ADDR (pid $SERVER_PID)"

replay_status=$(curl -s -o "$OUT_DIR/live-restart/datasets.json" \
    -w '%{http_code}' --max-time 60 "http://$ADDR/datasets")
check "GET /datasets (replayed)" 200 "$replay_status"
if grep -q '"version":2' "$OUT_DIR/live-restart/datasets.json"; then
    echo "ok    WAL replay restored graph version 2"
else
    echo "FAIL  /datasets does not show the acked version after replay:" >&2
    cat "$OUT_DIR/live-restart/datasets.json" >&2 || true
    failures=$((failures + 1))
fi
replay_core=$(curl -s -o "$OUT_DIR/live-restart/coreness-live.json" \
    -w '%{http_code}' --max-time 60 \
    "http://$ADDR/graphs/Rice-grad/coreness/0")
check "GET coreness (replayed)" 200 "$replay_core"
if cmp -s "$OUT_DIR/live/coreness-live.json" \
    "$OUT_DIR/live-restart/coreness-live.json"; then
    echo "ok    replayed coreness is byte-identical to the pre-kill body"
else
    echo "FAIL  replayed coreness differs from the pre-kill body" >&2
    failures=$((failures + 1))
fi

kill -TERM "$SERVER_PID"
server_exit=0
wait "$SERVER_PID" || server_exit=$?
if [ "$server_exit" -ne 0 ]; then
    echo "FAIL  replayed server exited $server_exit after SIGTERM" >&2
    cat "$OUT_DIR/live-restart/stderr.txt" >&2 || true
    failures=$((failures + 1))
else
    echo "ok    replayed SIGTERM -> clean exit 0"
fi

echo "== memory governor: tiny budget, reclaim, warm recovery =="
# A budget of ~1.5 graphs at scale 0.05 (Rice-grad is ~64 KiB resident)
# admits the first dataset, then forces the reclaim ladder when a
# second seed arrives: cached property bodies go first (rung 1), then
# the coldest graph (rung 3). The scale is pinned so the budget stays
# meaningful regardless of the SCALE knob.
mkdir -p "$OUT_DIR/govern"
"$CLI" serve --addr 127.0.0.1:0 --threads 2 --scale 0.05 \
    --mem-budget 100000 --out "$OUT_DIR/govern" \
    --log-format json --log-file "$OUT_DIR/govern/events.jsonl" \
    >"$OUT_DIR/govern/stdout.txt" 2>"$OUT_DIR/govern/stderr.txt" &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "FAIL governed server exited before accepting" >&2
        cat "$OUT_DIR/govern/stderr.txt" >&2 || true
        exit 1
    fi
    if [ -f "$OUT_DIR/govern/events.jsonl" ]; then
        ADDR=$(sed -n 's/.*serve\.start.*"addr":"\([0-9.:]*\)".*/\1/p' \
            "$OUT_DIR/govern/events.jsonl" | head -1)
        [ -n "$ADDR" ] && break
    fi
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "FAIL governed server did not announce its address within 10s" >&2
    kill "$SERVER_PID" 2>/dev/null || true
    exit 1
fi
echo "governed server up at $ADDR (pid $SERVER_PID, budget 100000 bytes)"

check "GET mixing seed 1 (governed)" 200 \
    "$(fetch GET '/graphs/Rice-grad/mixing?eps=0.25&seed=1' govern/mixing1.json)"
check "GET mixing seed 2 (governed)" 200 \
    "$(fetch GET '/graphs/Rice-grad/mixing?eps=0.25&seed=2' govern/mixing2.json)"
govern_status=$(fetch GET /metrics govern/metrics.prom)
check "GET /metrics (governed)" 200 "$govern_status"
if grep -qF 'govern_budget_bytes 100000' "$OUT_DIR/govern/metrics.prom"; then
    echo "ok    /metrics exposes the configured budget"
else
    echo "FAIL  /metrics lacks govern_budget_bytes 100000" >&2
    failures=$((failures + 1))
fi
reclaims=$(awk '/^govern_reclaims_total/ {s += $2} END {print s + 0}' \
    "$OUT_DIR/govern/metrics.prom")
if [ "$reclaims" -gt 0 ]; then
    echo "ok    the governor reclaimed under pressure ($reclaims rounds)"
else
    echo "FAIL  govern_reclaims_total stayed zero under a tiny budget" >&2
    failures=$((failures + 1))
fi
for rung in 1 3; do
    if awk -v r="rung=\"$rung\"" \
        '$0 ~ /^govern_reclaims_total/ && index($0, r) {found += $2} END {exit !(found > 0)}' \
        "$OUT_DIR/govern/metrics.prom"; then
        echo "ok    reclaim ladder fired rung $rung"
    else
        echo "FAIL  reclaim ladder never fired rung $rung" >&2
        failures=$((failures + 1))
    fi
done
# An evicted dataset is not banished: the same query answers again.
check "GET mixing seed 1 (after reclaim)" 200 \
    "$(fetch GET '/graphs/Rice-grad/mixing?eps=0.25&seed=1' govern/mixing1-warm.json)"

kill -TERM "$SERVER_PID"
server_exit=0
wait "$SERVER_PID" || server_exit=$?
if [ "$server_exit" -ne 0 ]; then
    echo "FAIL  governed server exited $server_exit after SIGTERM" >&2
    cat "$OUT_DIR/govern/stderr.txt" >&2 || true
    failures=$((failures + 1))
else
    echo "ok    governed SIGTERM -> clean exit 0"
fi

if [ "$failures" -ne 0 ]; then
    echo "serve smoke failed: $failures check(s) misbehaved" >&2
    exit 1
fi
echo "serve smoke passed"
