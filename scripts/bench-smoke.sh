#!/usr/bin/env bash
# Smoke-runs every experiment binary at a tiny scale with a 2-thread
# parallel sweep: fails on a non-zero exit or a DEGRADED run report, so
# CI catches a binary that crashes, hangs a unit, or silently drops
# coverage.
#
# Environment knobs:
#   BIN_DIR  directory holding the built binaries
#            (default target/release; offline builds use
#            target/offline-check/bin)
#   OUT_DIR  artifact directory (default target/bench-smoke)
#   SCALE    dataset size multiplier (default 0.02)
#   SOURCES  per-figure sampling budget (default 5)
#   THREADS  sweep width (default 2)

set -euo pipefail
cd "$(dirname "$0")/.."

BIN_DIR=${BIN_DIR:-target/release}
OUT_DIR=${OUT_DIR:-target/bench-smoke}
SCALE=${SCALE:-0.02}
SOURCES=${SOURCES:-5}
THREADS=${THREADS:-2}

BINARIES=(
    table1
    fig1_mixing
    fig2_coreness
    table2_gatekeeper
    fig3_expansion
    fig4_expansion_factor
    fig5_cores
    ablations
    e10_directed
    report
)

if [ ! -d "$BIN_DIR" ]; then
    echo "error: BIN_DIR $BIN_DIR does not exist (build first)" >&2
    exit 1
fi

rm -rf "$OUT_DIR"
mkdir -p "$OUT_DIR"

failures=0
for bin in "${BINARIES[@]}"; do
    exe="$BIN_DIR/$bin"
    if [ ! -x "$exe" ]; then
        echo "FAIL  $bin: binary not found at $exe" >&2
        failures=$((failures + 1))
        continue
    fi
    out="$OUT_DIR/$bin"
    mkdir -p "$out"
    echo "== $bin (scale $SCALE, sources $SOURCES, threads $THREADS) =="
    if ! "$exe" --scale "$SCALE" --sources "$SOURCES" --threads "$THREADS" \
        --no-resume --out "$out" >"$out/stdout.txt" 2>"$out/stderr.txt"; then
        echo "FAIL  $bin: non-zero exit" >&2
        tail -20 "$out/stderr.txt" >&2 || true
        failures=$((failures + 1))
        continue
    fi
    if grep -l "DEGRADED" "$out"/*_report.txt >/dev/null 2>&1; then
        echo "FAIL  $bin: run report is DEGRADED" >&2
        grep -h "DEGRADED" "$out"/*_report.txt >&2 || true
        failures=$((failures + 1))
        continue
    fi
    echo "ok    $bin"
done

if [ "$failures" -ne 0 ]; then
    echo "bench smoke failed: $failures binar$([ "$failures" -eq 1 ] && echo y || echo ies) misbehaved" >&2
    exit 1
fi
echo "bench smoke passed (${#BINARIES[@]} binaries)"
