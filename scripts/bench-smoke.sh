#!/usr/bin/env bash
# Smoke-runs every experiment binary at a tiny scale with a 2-thread
# parallel sweep: fails on a non-zero exit, a DEGRADED run report, a
# missing observability artifact (run.json, *_metrics.json,
# BENCH_*.json, events.jsonl), or an artifact that is not valid
# JSON/JSONL — so CI catches a binary that crashes, hangs a unit,
# silently drops coverage, or corrupts its machine-readable outputs.
#
# JSON validation uses `socnet obs-check` when the CLI binary is in
# BIN_DIR (offline builds name it socnet_cli_main), falling back to
# python3, else it is skipped with a note.
#
# Environment knobs:
#   BIN_DIR  directory holding the built binaries
#            (default target/release; offline builds use
#            target/offline-check/bin)
#   OUT_DIR  artifact directory (default target/bench-smoke)
#   SCALE    dataset size multiplier (default 0.02)
#   SOURCES  per-figure sampling budget (default 5)
#   THREADS  sweep width (default 2)

set -euo pipefail
cd "$(dirname "$0")/.."

BIN_DIR=${BIN_DIR:-target/release}
OUT_DIR=${OUT_DIR:-target/bench-smoke}
SCALE=${SCALE:-0.02}
SOURCES=${SOURCES:-5}
THREADS=${THREADS:-2}

# Pick a JSON/JSONL validator once: the socnet CLI if built, else python3.
VALIDATOR=""
for candidate in "$BIN_DIR/socnet" "$BIN_DIR/socnet_cli_main"; do
    if [ -x "$candidate" ]; then
        VALIDATOR="$candidate"
        break
    fi
done
if [ -z "$VALIDATOR" ] && ! command -v python3 >/dev/null 2>&1; then
    echo "note: no socnet CLI in $BIN_DIR and no python3; skipping JSON validation" >&2
fi

# validate_json FILE... -> non-zero if any file is invalid.
validate_json() {
    if [ -n "$VALIDATOR" ]; then
        "$VALIDATOR" obs-check "$@" >/dev/null
    elif command -v python3 >/dev/null 2>&1; then
        python3 - "$@" <<'PY'
import json, sys
for path in sys.argv[1:]:
    with open(path) as f:
        if path.endswith(".jsonl"):
            for line in f:
                json.loads(line)
        else:
            json.load(f)
PY
    fi
}

BINARIES=(
    table1
    fig1_mixing
    fig2_coreness
    table2_gatekeeper
    fig3_expansion
    fig4_expansion_factor
    fig5_cores
    ablations
    e10_directed
    report
    serveload
)

if [ ! -d "$BIN_DIR" ]; then
    echo "error: BIN_DIR $BIN_DIR does not exist (build first)" >&2
    exit 1
fi

rm -rf "$OUT_DIR"
mkdir -p "$OUT_DIR"

failures=0
for bin in "${BINARIES[@]}"; do
    exe="$BIN_DIR/$bin"
    if [ ! -x "$exe" ]; then
        echo "FAIL  $bin: binary not found at $exe" >&2
        failures=$((failures + 1))
        continue
    fi
    out="$OUT_DIR/$bin"
    mkdir -p "$out"
    echo "== $bin (scale $SCALE, sources $SOURCES, threads $THREADS) =="
    if ! SOCNET_BENCH_DIR="$out" "$exe" \
        --scale "$SCALE" --sources "$SOURCES" --threads "$THREADS" \
        --no-resume --out "$out" \
        --log-format json --log-file "$out/events.jsonl" \
        >"$out/stdout.txt" 2>"$out/stderr.txt"; then
        echo "FAIL  $bin: non-zero exit" >&2
        tail -20 "$out/stderr.txt" >&2 || true
        failures=$((failures + 1))
        continue
    fi
    if grep -l "DEGRADED" "$out"/*_report.txt >/dev/null 2>&1; then
        echo "FAIL  $bin: run report is DEGRADED" >&2
        grep -h "DEGRADED" "$out"/*_report.txt >&2 || true
        failures=$((failures + 1))
        continue
    fi
    missing=""
    for pattern in run.json '*_metrics.json' 'BENCH_*.json' events.jsonl; do
        # shellcheck disable=SC2086 — patterns are meant to glob.
        if ! compgen -G "$out/$pattern" >/dev/null; then
            missing="$missing $pattern"
        fi
    done
    if [ -n "$missing" ]; then
        echo "FAIL  $bin: missing observability artifact(s):$missing" >&2
        failures=$((failures + 1))
        continue
    fi
    if ! validate_json "$out"/run.json "$out"/*_metrics.json \
        "$out"/BENCH_*.json "$out"/events.jsonl; then
        echo "FAIL  $bin: invalid JSON/JSONL artifact" >&2
        failures=$((failures + 1))
        continue
    fi
    echo "ok    $bin"
done

# The open-loop serveload scenario: a fixed-rate client measuring
# coordinated-omission-safe latency while a slow-loris flood hammers the
# event-loop front end. The run itself asserts survival (no errors, no
# healthz failures, attacked p99 within 5x baseline, tracing overhead
# within budget); here we also pin the BENCH_serve.json schema the
# dashboards consume, including the trace-derived extras.
echo "== serveload open-loop (slow-loris attack) =="
out="$OUT_DIR/serveload-open"
mkdir -p "$out"
if ! SOCNET_BENCH_DIR="$out" "$BIN_DIR/serveload" \
    --mode open --rate 50 --duration-secs 4 \
    --attack slowloris --attack-conns 256 --frontend event \
    --no-resume --out "$out" \
    --log-format json --log-file "$out/events.jsonl" \
    >"$out/stdout.txt" 2>"$out/stderr.txt"; then
    echo "FAIL  serveload open-loop: non-zero exit" >&2
    tail -20 "$out/stderr.txt" >&2 || true
    failures=$((failures + 1))
else
    bench="$out/BENCH_serve.json"
    if [ ! -f "$bench" ] || ! validate_json "$bench"; then
        echo "FAIL  serveload open-loop: missing or invalid $bench" >&2
        failures=$((failures + 1))
    else
        for key in '"mode":"open"' '"attack":"slowloris"' \
            '"baseline_p99_ms":' '"attack_p99_ms":' \
            '"healthz_failures":0' '"survived":true' \
            '"queue_wait_p99_ms":' '"compute_p99_ms":' \
            '"trace_overhead_pct":' '"trace_within_budget":true'; do
            if ! grep -q "$key" "$bench"; then
                echo "FAIL  serveload open-loop: $bench lacks $key" >&2
                failures=$((failures + 1))
            fi
        done
        echo "ok    serveload open-loop survived the attack with the expected schema"
    fi
fi

# The live-graph serveload scenario: WAL-acked delta batches with
# interleaved bounded-stale queries, threshold-triggered CSR rebuilds,
# and a drain/restart replay proof. The run itself asserts the replay
# is byte-identical; here we pin the BENCH_serve.json extras the
# dashboards consume.
echo "== serveload live (delta ingestion + replay) =="
out="$OUT_DIR/serveload-live"
mkdir -p "$out"
if ! SOCNET_BENCH_DIR="$out" "$BIN_DIR/serveload" \
    --mode live --batches 12 --batch-ops 16 \
    --scale "$SCALE" --threads "$THREADS" \
    --no-resume --out "$out" \
    --log-format json --log-file "$out/events.jsonl" \
    >"$out/stdout.txt" 2>"$out/stderr.txt"; then
    echo "FAIL  serveload live: non-zero exit" >&2
    tail -20 "$out/stderr.txt" >&2 || true
    failures=$((failures + 1))
else
    bench="$out/BENCH_serve.json"
    if [ ! -f "$bench" ] || ! validate_json "$bench"; then
        echo "FAIL  serveload live: missing or invalid $bench" >&2
        failures=$((failures + 1))
    else
        for key in '"mode":"live"' '"delta_ack_p99_ms":' \
            '"rebuild_ms":' '"stale_served":' \
            '"replay_identical":true'; do
            if ! grep -q "$key" "$bench"; then
                echo "FAIL  serveload live: $bench lacks $key" >&2
                failures=$((failures + 1))
            fi
        done
        echo "ok    serveload live replayed every acked delta with the expected schema"
    fi
fi

# The memory-pressure serveload scenario: a budget sized for half the
# working set forces the full reclaim ladder — cache bodies, live
# overlay demotion, graph eviction — while the run itself asserts the
# governor invariant after every phase. Here we pin the
# BENCH_serve.json extras the dashboards consume.
echo "== serveload mem (budget pressure + reclaim ladder) =="
out="$OUT_DIR/serveload-mem"
mkdir -p "$out"
if ! SOCNET_BENCH_DIR="$out" "$BIN_DIR/serveload" \
    --mode mem --scale "$SCALE" --threads "$THREADS" \
    --no-resume --out "$out" \
    --log-format json --log-file "$out/events.jsonl" \
    >"$out/stdout.txt" 2>"$out/stderr.txt"; then
    echo "FAIL  serveload mem: non-zero exit" >&2
    tail -20 "$out/stderr.txt" >&2 || true
    failures=$((failures + 1))
else
    bench="$out/BENCH_serve.json"
    if [ ! -f "$bench" ] || ! validate_json "$bench"; then
        echo "FAIL  serveload mem: missing or invalid $bench" >&2
        failures=$((failures + 1))
    else
        for key in '"mode":"mem"' '"reclaim_p99_ms":' \
            '"rungs_used":' '"budget_held":true'; do
            if ! grep -q "$key" "$bench"; then
                echo "FAIL  serveload mem: $bench lacks $key" >&2
                failures=$((failures + 1))
            fi
        done
        echo "ok    serveload mem held the budget with the expected schema"
    fi
fi

if [ "$failures" -ne 0 ]; then
    echo "bench smoke failed: $failures binar$([ "$failures" -eq 1 ] && echo y || echo ies) misbehaved" >&2
    exit 1
fi
echo "bench smoke passed (${#BINARIES[@]} binaries + open-loop, live, and mem serveload)"
