#!/usr/bin/env bash
# Self-test for scripts/bench-compare.sh: pins the comparison output and
# the --assert-within gate semantics against synthetic socnet-bench-v1
# summaries. Run directly or via scripts/offline-check.sh.

set -euo pipefail
cd "$(dirname "$0")/.."

COMPARE=scripts/bench-compare.sh
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

mk() { # path wall_bfs rate_bfs [extra_stage_line]
    local path=$1 wall=$2 rate=$3 extra_stage=${4:-}
    {
        echo '{'
        echo '"schema":"socnet-bench-v1",'
        echo '"name":"kernels",'
        echo '"stages":{'
        echo "\"bfs\":{\"wall_s\":$wall,\"units\":2,\"throughput\":10.000},"
        [ -n "$extra_stage" ] && echo "$extra_stage,"
        echo '"kcore":{"wall_s":0.010,"units":2,"throughput":200.000}'
        echo '},'
        echo "\"extra\":{\"bfs_ba_nodes_per_s\":$rate,\"bfs_ba_edges_per_s\":50000.0}"
        echo '}'
    } > "$path"
}

mk "$DIR/base.json" 1.000 10000.0
mk "$DIR/same.json" 1.010 9900.0
mk "$DIR/slow.json" 1.500 9900.0      # wall +50%
mk "$DIR/slowrate.json" 1.010 5000.0  # rate -50%
mk "$DIR/extra.json" 1.010 9900.0 '"spmv":{"wall_s":0.500,"units":2,"throughput":4.000}'

note() { printf '%s\n' "$*"; }

note "case: informational mode never gates"
out=$(bash "$COMPARE" "$DIR/base.json" "$DIR/slow.json") \
    || fail "informational compare should exit 0"
echo "$out" | grep -q '^bfs ' || fail "stage table missing bfs row"
echo "$out" | grep -q 'bfs_ba_nodes_per_s' || fail "rate table missing"
echo "$out" | grep -q 'gate:' && fail "no gate line without --assert-within"

note "case: within tolerance passes"
out=$(bash "$COMPARE" --assert-within 30% "$DIR/base.json" "$DIR/same.json") \
    || fail "within-tolerance compare should exit 0"
echo "$out" | grep -q 'gate: ok' || fail "expected 'gate: ok', got: $out"

note "case: wall regression beyond tolerance fails"
if out=$(bash "$COMPARE" --assert-within 30% "$DIR/base.json" "$DIR/slow.json"); then
    fail "wall regression should exit non-zero"
fi
echo "$out" | grep -q 'REGRESSION: stage bfs wall' || fail "expected wall regression notice"

note "case: rate regression beyond tolerance fails"
if out=$(bash "$COMPARE" --assert-within=30 "$DIR/base.json" "$DIR/slowrate.json"); then
    fail "rate regression should exit non-zero"
fi
echo "$out" | grep -q 'REGRESSION: rate bfs_ba_nodes_per_s' || fail "expected rate regression notice"

note "case: missing/new stages warn but do not gate"
out=$(bash "$COMPARE" --assert-within 30% "$DIR/extra.json" "$DIR/same.json") \
    || fail "missing stage must not fail the gate"
echo "$out" | grep -q 'warning: stage spmv missing from candidate' || fail "expected missing-stage warning"
out=$(bash "$COMPARE" --assert-within 30% "$DIR/base.json" "$DIR/extra.json") \
    || fail "new stage must not fail the gate"
echo "$out" | grep -q 'warning: stage spmv missing from baseline' || fail "expected new-stage warning"

note "case: tiny-wall stages are not wall-gated"
mk "$DIR/tinybase.json" 0.010 10000.0
mk "$DIR/tinyslow.json" 0.040 9900.0  # +300% on a 10ms stage: noise
out=$(bash "$COMPARE" --assert-within 30% "$DIR/tinybase.json" "$DIR/tinyslow.json") \
    || fail "sub-floor wall must not gate"
echo "$out" | grep -q 'gate: ok' || fail "expected 'gate: ok' below the wall floor"

note "case: malformed usage and inputs exit 2"
set +e
bash "$COMPARE" --assert-within bogus% "$DIR/base.json" "$DIR/same.json" >/dev/null 2>&1
[ $? -eq 2 ] || fail "bad tolerance should exit 2"
bash "$COMPARE" "$DIR/base.json" >/dev/null 2>&1
[ $? -eq 2 ] || fail "missing operand should exit 2"
echo '{}' > "$DIR/bad.json"
bash "$COMPARE" "$DIR/bad.json" "$DIR/base.json" >/dev/null 2>&1
[ $? -eq 2 ] || fail "non-bench input should exit 2"
set -e

note "bench-compare self-test passed"
