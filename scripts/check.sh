#!/usr/bin/env bash
# One-command verification gate: build + full test suite, plus
# formatting/lints when the tools are installed.
#
# On machines that cannot reach the crates.io registry (cargo cannot
# resolve `rand`/`serde`/`proptest`), this falls back to
# scripts/offline-check.sh, which rebuilds the workspace with bare
# rustc against small offline stubs and runs the same test suites
# (minus proptest/criterion, which need registry crates).

set -euo pipefail
cd "$(dirname "$0")/.."

if cargo build --workspace --release 2>/dev/null; then
    cargo test --workspace --release
    if cargo fmt --version >/dev/null 2>&1; then
        cargo fmt --all --check
    fi
    if cargo clippy --version >/dev/null 2>&1; then
        cargo clippy --workspace --all-targets -- -D warnings
    fi
    echo "check passed"
else
    echo "cargo build failed (registry unreachable?) - falling back to offline check" >&2
    exec scripts/offline-check.sh
fi
