#!/usr/bin/env bash
# One-command verification gate: build + full test suite, plus
# formatting/lints when the tools are installed.
#
# On machines that cannot reach the crates.io registry (cargo cannot
# resolve `rand`/`serde`/`proptest`), this falls back to
# scripts/offline-check.sh, which rebuilds the workspace with bare
# rustc against small offline stubs and runs the same test suites
# (minus proptest/criterion, which need registry crates).
#
# The fallback fires ONLY on registry/network failures. A genuine
# compile error is surfaced verbatim and fails the script — masking it
# behind the offline stubs would let broken code "pass" whenever the
# network is down.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_LOG=$(mktemp)
trap 'rm -f "$BUILD_LOG"' EXIT

# Pin dependency versions whenever a lockfile exists or can be created;
# an air-gapped machine without one still builds (and then falls back to
# the offline path anyway when the registry is needed).
LOCKED=()
if [ -f Cargo.lock ] || cargo generate-lockfile 2>/dev/null; then
    LOCKED=(--locked)
else
    echo "note: no Cargo.lock and the registry is unreachable; building unlocked" >&2
fi

if cargo build --workspace --release "${LOCKED[@]}" 2>"$BUILD_LOG"; then
    cat "$BUILD_LOG" >&2 # warnings still deserve eyeballs
    cargo test --workspace --release "${LOCKED[@]}"
    if cargo fmt --version >/dev/null 2>&1; then
        cargo fmt --all --check
    fi
    if cargo clippy --version >/dev/null 2>&1; then
        cargo clippy --workspace --all-targets --release "${LOCKED[@]}" -- -D warnings
    fi
    echo "check passed"
elif grep -qiE 'failed to download|could not resolve host|network|registry|spurious|connection|timed out|dns error' "$BUILD_LOG"; then
    cat "$BUILD_LOG" >&2
    echo "cargo build could not reach the registry - falling back to offline check" >&2
    exec scripts/offline-check.sh
else
    cat "$BUILD_LOG" >&2
    echo "cargo build failed with a genuine compile error (see above); not falling back" >&2
    exit 1
fi
