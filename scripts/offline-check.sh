#!/usr/bin/env bash
# Build-and-test gate that works without the crates.io registry.
#
# `cargo build` needs to resolve `rand`/`serde` from a registry; on an
# air-gapped machine that fails before compiling a single line. This
# script rebuilds the workspace with bare `rustc` against the stub
# crates in scripts/offline-stubs/ (no-op serde derives, a SplitMix64
# rand), in dependency order, then runs:
#
#   * every crate's unit tests (src/ #[cfg(test)] modules),
#   * the root integration tests in tests/ (none use proptest),
#   * the bench harness fault-tolerance, sweep-determinism,
#     observability, and CSR-equivalence integration tests,
#   * the bench-compare gate's shell self-test,
#   * all doctests (skip with SKIP_DOCTESTS=1 for quick iteration).
#
# Skipped offline: crates/*/tests/properties.rs (proptest) and
# crates/bench/benches/ (criterion). Run `scripts/check.sh` instead
# when the registry is reachable.
#
# Artifacts land in target/offline-check/; numbers produced by the stub
# rand differ from a registry build, but determinism and structure
# assertions are identical.

set -euo pipefail
cd "$(dirname "$0")/.."

OUT=target/offline-check
mkdir -p "$OUT/bin"

EDITION=(--edition 2021)
EXTERN_ARGS=()

note() { printf '%s\n' "$*"; }

add_extern() {
    EXTERN_ARGS+=(--extern "$1=$2")
}

compile_stub() { # name src crate-type
    note "stub  $1"
    rustc "${EDITION[@]}" --crate-type "$3" --crate-name "$1" "$2" \
        "${EXTERN_ARGS[@]}" -L "$OUT" --out-dir "$OUT"
}

compile_lib() { # name src [extra rustc flags]
    note "lib   $1"
    local name=$1 src=$2
    shift 2
    rustc "${EDITION[@]}" --crate-type rlib --crate-name "$name" "$src" "$@" \
        "${EXTERN_ARGS[@]}" -L "$OUT" --out-dir "$OUT"
    add_extern "$name" "$OUT/lib$name.rlib"
}

compile_bin() { # name src
    note "bin   $1"
    rustc "${EDITION[@]}" --crate-name "$1" "$2" \
        "${EXTERN_ARGS[@]}" -L "$OUT" -o "$OUT/bin/$1"
}

run_tests() { # name src [extra rustc flags]
    note "test  $1"
    local name=$1 src=$2
    shift 2
    rustc "${EDITION[@]}" --test --crate-name "${name}_tests" "$src" "$@" \
        "${EXTERN_ARGS[@]}" -L "$OUT" -o "$OUT/bin/${name}_tests"
    "$OUT/bin/${name}_tests" --quiet
}

run_doctests() { # name src
    [ "${SKIP_DOCTESTS:-0}" = 1 ] && return 0
    note "doc   $1"
    rustdoc "${EDITION[@]}" --test --crate-name "$1" "$2" \
        "${EXTERN_ARGS[@]}" -L "$OUT" >/dev/null
}

note "== stub dependencies =="
compile_stub serde_derive scripts/offline-stubs/serde_derive.rs proc-macro
add_extern serde_derive "$OUT/libserde_derive.so"
compile_stub serde scripts/offline-stubs/serde.rs rlib
add_extern serde "$OUT/libserde.rlib"
compile_stub rand scripts/offline-stubs/rand.rs rlib
add_extern rand "$OUT/librand.rlib"

# Workspace crates in dependency order: name -> lib.rs path.
CRATES=(
    "socnet_runner crates/runner/src/lib.rs"
    "socnet_store crates/store/src/lib.rs"
    "socnet_core crates/core/src/lib.rs"
    "socnet_gen crates/gen/src/lib.rs"
    "socnet_kcore crates/kcore/src/lib.rs"
    # Optimized: the incremental-coreness hot loops are unusable at -O0
    # under the randomized equivalence suite; assertions stay on.
    "socnet_live crates/live/src/lib.rs -O -C debug-assertions=on"
    "socnet_community crates/community/src/lib.rs"
    "socnet_expansion crates/expansion/src/lib.rs"
    "socnet_mixing crates/mixing/src/lib.rs"
    "socnet_centrality crates/centrality/src/lib.rs"
    "socnet_dynamic crates/dynamic/src/lib.rs"
    "socnet_digraph crates/digraph/src/lib.rs"
    "socnet_sybil crates/sybil/src/lib.rs"
    "socnet_dht crates/dht/src/lib.rs"
    "socnet_serve crates/serve/src/lib.rs"
    "socnet_bench crates/bench/src/lib.rs"
    "socnet_cli crates/cli/src/lib.rs"
    "socnet src/lib.rs"
)

note "== libraries =="
for entry in "${CRATES[@]}"; do
    compile_lib $entry
done

note "== binaries =="
for bin in crates/bench/src/bin/*.rs; do
    compile_bin "$(basename "$bin" .rs)" "$bin"
done
compile_bin socnet_cli_main crates/cli/src/main.rs

note "== unit tests =="
for entry in "${CRATES[@]}"; do
    run_tests $entry
done

note "== integration tests =="
for t in tests/*.rs; do
    run_tests "it_$(basename "$t" .rs)" "$t"
done
run_tests it_serve_server crates/serve/tests/server.rs
run_tests it_serve_overload crates/serve/tests/overload.rs
run_tests it_serve_store crates/serve/tests/store.rs
run_tests it_serve_trace crates/serve/tests/trace.rs
run_tests it_serve_live crates/serve/tests/live.rs
run_tests it_serve_govern crates/serve/tests/govern.rs
run_tests it_live_equivalence crates/live/tests/equivalence.rs -O -C debug-assertions=on
run_tests it_bench_fault_tolerance crates/bench/tests/fault_tolerance.rs
run_tests it_bench_determinism crates/bench/tests/determinism.rs
run_tests it_bench_observability crates/bench/tests/observability.rs
run_tests it_bench_csr_equivalence crates/bench/tests/csr_equivalence.rs

note "== shell tooling =="
bash scripts/test-bench-compare.sh

note "== doctests =="
for entry in "${CRATES[@]}"; do
    run_doctests $entry
done

note "offline check passed"
