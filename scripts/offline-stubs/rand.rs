//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the surface the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `RngExt::random_range` over integer and
//! `f64` ranges, `seq::SliceRandom::{shuffle, choose}`, and
//! `seq::index::sample` — on top of a SplitMix64 generator. Draws are
//! deterministic per seed (so seed-determinism tests hold) and uniform
//! enough for the workspace's statistical assertions, but the streams
//! differ from real `rand`, so numbers in generated artifacts will not
//! match a registry build. Used only by `scripts/offline-check.sh`.

/// A source of random 64-bit words.
pub trait Rng {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    /// SplitMix64; a stand-in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// A range that can produce one uniform sample.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                let v = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + v
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                let v = ((rng.next_u64() as u128 * span) >> 64) as $t;
                lo + v
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * unit
    }
}

/// Convenience draws on top of any [`Rng`], mirroring rand's `RngExt`.
pub trait RngExt: Rng {
    /// Uniform draw from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_range(0.0..1.0) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngExt};

    /// Shuffle/choose on slices, mirroring rand's `SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// One uniform element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }

    /// Index sampling without replacement.
    pub mod index {
        use super::super::{Rng, RngExt};

        /// The indices picked by [`sample`].
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The picked indices as a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        /// Draws `amount` distinct indices from `0..length` uniformly
        /// (partial Fisher–Yates).
        pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} of {length}");
            let mut idx: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.random_range(i..length);
                idx.swap(i, j);
            }
            idx.truncate(amount);
            IndexVec(idx)
        }
    }
}
