//! Offline stand-in for the `serde` facade crate.
//!
//! Exposes the trait surface the workspace names — the two derive
//! re-exports, `Serialize`/`Deserialize` with defaulted methods, and
//! the `Deserializer`/`de::Error` pieces the one hand-written impl in
//! `socnet-core` touches. Nothing here can actually serialize: the
//! defaulted `deserialize` always errors, and no test exercises it.
//! Used only by `scripts/offline-check.sh` when the registry is
//! unreachable.

pub use serde_derive::{Deserialize, Serialize};

/// Trait-namespace twin of the `Serialize` derive, as in real serde.
pub trait Serialize {}

/// Trait-namespace twin of the `Deserialize` derive, as in real serde.
pub trait Deserialize<'de>: Sized {
    /// Always fails; the offline stub cannot deserialize anything.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let _ = deserializer;
        Err(de::Error::custom("offline serde stub cannot deserialize"))
    }
}

/// Data-format side of deserialization; never instantiated offline.
pub trait Deserializer<'de> {
    /// Format error type.
    type Error: de::Error;
}

/// Deserialization error plumbing.
pub mod de {
    /// Errors a format can produce; only `custom` is named in-tree.
    pub trait Error: Sized {
        /// Builds an error from a display-able message.
        fn custom<T: core::fmt::Display>(msg: T) -> Self;
    }
}
