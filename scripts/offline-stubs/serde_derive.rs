//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace uses serde for `#[derive(Serialize, Deserialize)]` and
//! one hand-written `Deserialize` impl that delegates to a derived
//! helper struct; nothing actually serializes at build or test time.
//! These derives emit a trivial `impl` of the stub traits in
//! `scripts/offline-stubs/serde.rs` (whose defaulted methods error at
//! runtime), which is enough for the whole workspace to compile and its
//! tests to run without the registry. No generic derive targets exist
//! in the workspace, so the emitted impl skips generics entirely.

extern crate proc_macro;

use proc_macro::{TokenStream, TokenTree};

/// The identifier of the type a derive is attached to: the first
/// identifier after the `struct`/`enum` keyword.
fn type_name(input: TokenStream) -> String {
    let mut saw_kw = false;
    for tree in input {
        if let TokenTree::Ident(ident) = tree {
            let s = ident.to_string();
            if saw_kw {
                return s;
            }
            if s == "struct" || s == "enum" {
                saw_kw = true;
            }
        }
    }
    panic!("offline serde_derive stub: no struct/enum name in input");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn serialize(input: TokenStream) -> TokenStream {
    format!("impl ::serde::Serialize for {} {{}}", type_name(input)).parse().unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn deserialize(input: TokenStream) -> TokenStream {
    format!("impl<'de> ::serde::Deserialize<'de> for {} {{}}", type_name(input))
        .parse()
        .unwrap()
}
