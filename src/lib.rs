//! # socnet — social-network properties for trustworthy computing
//!
//! An umbrella crate re-exporting the whole `socnet` workspace: a Rust
//! reproduction of *"Understanding Social Networks Properties for
//! Trustworthy Computing"* (Mohaisen, Tran, Hopper, Kim — ICDCS Workshops
//! / SIMPLEX 2011).
//!
//! The workspace measures the three structural properties that
//! social-network-based Sybil defenses rely on, and runs the defenses
//! themselves end to end:
//!
//! * [`mixing`] — random-walk mixing time, measured directly (the
//!   sampling method) and spectrally (second largest eigenvalue modulus
//!   with Sinclair bounds);
//! * [`kcore`] — graph degeneracy: coreness distributions, core sizes,
//!   and the number of connected cores per `k`;
//! * [`expansion`] — BFS-envelope expansion factors and neighbor-set
//!   statistics;
//! * [`sybil`] — GateKeeper, SybilGuard, SybilLimit, SybilInfer-style
//!   inference, and SumUp, plus the attack harness and admission metrics;
//! * [`centrality`] — betweenness and closeness, the other structural
//!   properties the paper's introduction surveys;
//! * [`gen`] — graph generators and the synthetic registry standing in
//!   for the paper's Table I datasets;
//! * [`core`] — the CSR graph substrate everything is built on.
//!
//! # Quickstart
//!
//! ```
//! use socnet::gen::Dataset;
//! use socnet::kcore::CoreDecomposition;
//!
//! // A small synthetic counterpart of the paper's Wiki-vote dataset.
//! let g = Dataset::WikiVote.generate_scaled(0.05, 42);
//! let cores = CoreDecomposition::compute(&g);
//! assert!(cores.degeneracy() >= 3);
//! ```

/// The CSR graph substrate (re-export of `socnet-core`).
pub use socnet_core as core;
/// Fault-tolerant experiment execution (re-export of `socnet-runner`).
pub use socnet_runner as runner;
/// Graph generators and the dataset registry (re-export of `socnet-gen`).
pub use socnet_gen as gen;
/// Mixing-time measurement (re-export of `socnet-mixing`).
pub use socnet_mixing as mixing;
/// k-core decomposition (re-export of `socnet-kcore`).
pub use socnet_kcore as kcore;
/// Expansion measurement (re-export of `socnet-expansion`).
pub use socnet_expansion as expansion;
/// Sybil defenses and attack harness (re-export of `socnet-sybil`).
pub use socnet_sybil as sybil;
/// Centrality measures (re-export of `socnet-centrality`).
pub use socnet_centrality as centrality;
/// Community structure (re-export of `socnet-community`).
pub use socnet_community as community;
/// Evolving graphs and property trajectories (re-export of `socnet-dynamic`).
pub use socnet_dynamic as dynamic;
/// Directed graphs and directed mixing (re-export of `socnet-digraph`).
pub use socnet_digraph as digraph;
/// Sybil-resistant DHT routing (re-export of `socnet-dht`).
pub use socnet_dht as dht;
/// Online property-query HTTP service (re-export of `socnet-serve`).
pub use socnet_serve as serve;
/// Versioned on-disk snapshot store for warm-start serving (re-export of `socnet-store`).
pub use socnet_store as store;

/// Workspace-wide convenience prelude.
///
/// ```
/// use socnet::prelude::*;
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
/// assert!(is_connected(&g));
/// ```
pub mod prelude {
    pub use socnet_core::prelude::*;
    pub use socnet_gen::Dataset;
}
