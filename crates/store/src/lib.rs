//! `socnet-store` — a versioned, checksummed on-disk snapshot store.
//!
//! The serve stack's property cache holds results that are expensive to
//! compute but fully deterministic for a fixed graph + seed — exactly
//! the shape worth persisting. This crate is the persistence layer:
//! it knows nothing about graphs or HTTP, only about durably writing
//! and suspiciously reading *snapshots* — a manifest (the invalidation
//! key: git revision + dataset-registry hash) plus framed records, each
//! guarded by a CRC-32.
//!
//! Design rules:
//!
//! - **Atomic writes** — snapshots go through the runner's
//!   tmp + fsync + rename path, so a crash mid-flush leaves the old
//!   snapshot or the new one, never a hybrid.
//! - **Distrust on read** — every frame is length-delimited and
//!   checksummed; the manifest and the trailing `END` line both declare
//!   the record count. Truncations, bit flips, and foreign files all
//!   surface as typed [`LoadError`]s, never a panic.
//! - **Quarantine, don't delete** — a bad snapshot is renamed to
//!   `<name>.quarantined` so the next boot is cleanly cold and the bad
//!   bytes stay available for a post-mortem. [`StoreDir::gc`] reaps
//!   them by age and byte budget.
//!
//! ```
//! use socnet_store::{Record, Snapshot, SnapshotMeta, StoreDir};
//!
//! let dir = std::env::temp_dir().join("socnet-store-doc");
//! let store = StoreDir::new(&dir);
//! let snapshot = Snapshot {
//!     meta: SnapshotMeta::new("abc1234", "0badc0de"),
//!     records: vec![Record::new("body", &["spectrum|Rice-grad@0.05#42"], b"{}")],
//! };
//! let path = store.snapshot_path("serve");
//! socnet_store::write_snapshot(&path, &snapshot).unwrap();
//! let back = socnet_store::read_snapshot(&path).unwrap();
//! assert_eq!(back.records.len(), 1);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crc;
mod dir;
mod snapshot;
mod wal;

pub use crc::crc32;
pub use dir::{GcPolicy, GcReport, SnapshotInfo, SnapshotStatus, StoreDir, SNAPSHOT_EXT};
pub use snapshot::{
    parse, quarantine, read_snapshot, read_snapshot_expecting, render, write_snapshot, Expected,
    LoadError, Record, Snapshot, SnapshotMeta, MAGIC, QUARANTINE_SUFFIX,
};
pub use wal::{quarantine_tail, read_wal, WalReplay, WalWriter, WAL_EXT, WAL_MAGIC};
