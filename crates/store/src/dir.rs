//! A directory of snapshots: inventory, verification, garbage
//! collection.
//!
//! The serve stack keeps one live snapshot per store directory, but
//! quarantined predecessors accumulate alongside it and operators point
//! several servers at sibling directories — so the maintenance surface
//! is directory-shaped: list what is there (and whether it still
//! verifies), then prune by age and byte budget.

use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

use crate::snapshot::{read_snapshot, LoadError, SnapshotMeta, QUARANTINE_SUFFIX};
use crate::wal::{read_wal, WAL_EXT};

/// File extension of live snapshots.
pub const SNAPSHOT_EXT: &str = "snap";

/// How one file in the store stands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotStatus {
    /// Parses cleanly, checksums hold.
    Ok,
    /// Set aside by a previous boot; kept only for post-mortems.
    Quarantined,
    /// A WAL whose frame prefix replays but whose tail is damaged —
    /// the normal aftermath of a crash mid-append, recoverable.
    Torn(String),
    /// A live file that no longer verifies.
    Corrupt(String),
}

/// One row of [`StoreDir::ls`].
#[derive(Debug, Clone)]
pub struct SnapshotInfo {
    /// The file.
    pub path: PathBuf,
    /// File size in bytes.
    pub bytes: u64,
    /// Verification outcome.
    pub status: SnapshotStatus,
    /// The manifest, when the file verified.
    pub meta: Option<SnapshotMeta>,
    /// Records in the snapshot, when the file verified.
    pub records: usize,
    /// Time since last modification, when the filesystem reports one.
    pub age: Option<Duration>,
}

/// What [`StoreDir::gc`] may remove.
#[derive(Debug, Clone, Default)]
pub struct GcPolicy {
    /// Remove files older than this.
    pub max_age: Option<Duration>,
    /// After age pruning, remove oldest-first until the directory's
    /// total is at or under this many bytes.
    pub byte_budget: Option<u64>,
    /// Remove quarantined files regardless of age or budget.
    pub drop_quarantined: bool,
}

/// What [`StoreDir::gc`] did.
#[derive(Debug, Clone, Default)]
pub struct GcReport {
    /// Files removed, in removal order.
    pub removed: Vec<PathBuf>,
    /// Bytes freed.
    pub reclaimed_bytes: u64,
    /// Files left in the store.
    pub kept: usize,
}

/// A directory holding `*.snap` snapshots and their `.quarantined`
/// remains.
#[derive(Debug, Clone)]
pub struct StoreDir {
    root: PathBuf,
}

impl StoreDir {
    /// A store rooted at `root` (need not exist yet).
    pub fn new(root: &Path) -> StoreDir {
        StoreDir { root: root.to_path_buf() }
    }

    /// The directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The conventional path of a named snapshot: `<root>/<name>.snap`.
    pub fn snapshot_path(&self, name: &str) -> PathBuf {
        self.root.join(format!("{name}.{SNAPSHOT_EXT}"))
    }

    /// The conventional path of a named WAL: `<root>/<name>.wal`.
    pub fn wal_path(&self, name: &str) -> PathBuf {
        self.root.join(format!("{name}.{WAL_EXT}"))
    }

    fn is_store_file(path: &Path) -> bool {
        let name = path.file_name().map(|n| n.to_string_lossy().to_string()).unwrap_or_default();
        name.ends_with(&format!(".{SNAPSHOT_EXT}"))
            || name.ends_with(&format!(".{SNAPSHOT_EXT}.{QUARANTINE_SUFFIX}"))
            || name.ends_with(&format!(".{WAL_EXT}"))
            || name.ends_with(&format!(".{WAL_EXT}.{QUARANTINE_SUFFIX}"))
    }

    /// `true` when `path` names a live (non-quarantined) WAL.
    fn is_live_wal(path: &Path) -> bool {
        path.file_name()
            .map(|n| n.to_string_lossy().ends_with(&format!(".{WAL_EXT}")))
            .unwrap_or(false)
    }

    /// Inventories the store: every snapshot, WAL, and quarantined
    /// file, with verification status, sorted by file name. A missing
    /// directory is an empty store, not an error.
    ///
    /// # Errors
    ///
    /// Any I/O error from listing or statting files (unreadable
    /// *contents* are reported per-file as [`SnapshotStatus::Corrupt`]).
    pub fn ls(&self) -> io::Result<Vec<SnapshotInfo>> {
        let entries = match std::fs::read_dir(&self.root) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut rows = Vec::new();
        for entry in entries {
            let path = entry?.path();
            if !path.is_file() || !Self::is_store_file(&path) {
                continue;
            }
            let stat = std::fs::metadata(&path)?;
            let age = stat.modified().ok().and_then(|m| SystemTime::now().duration_since(m).ok());
            let quarantined =
                path.to_string_lossy().ends_with(&format!(".{QUARANTINE_SUFFIX}"));
            let (status, meta, records) = if quarantined {
                (SnapshotStatus::Quarantined, None, 0)
            } else if Self::is_live_wal(&path) {
                // WALs have no manifest; records = replayable frames.
                match read_wal(&path) {
                    Ok(replay) => {
                        let status = match replay.torn {
                            None => SnapshotStatus::Ok,
                            Some(reason) => SnapshotStatus::Torn(reason),
                        };
                        (status, None, replay.records.len())
                    }
                    Err(LoadError::Missing) => continue, // raced a GC
                    Err(e) => (SnapshotStatus::Corrupt(e.to_string()), None, 0),
                }
            } else {
                match read_snapshot(&path) {
                    Ok(snapshot) => {
                        (SnapshotStatus::Ok, Some(snapshot.meta), snapshot.records.len())
                    }
                    Err(LoadError::Missing) => continue, // raced a GC
                    Err(e) => (SnapshotStatus::Corrupt(e.to_string()), None, 0),
                }
            };
            rows.push(SnapshotInfo { path, bytes: stat.len(), status, meta, records, age });
        }
        rows.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(rows)
    }

    /// Re-reads and re-checksums every live snapshot and WAL. Returns
    /// the inventory plus how many live files failed verification
    /// (torn WAL tails are recoverable and do not count as corrupt).
    ///
    /// # Errors
    ///
    /// Same as [`StoreDir::ls`].
    pub fn verify(&self) -> io::Result<(Vec<SnapshotInfo>, usize)> {
        let rows = self.ls()?;
        let corrupt =
            rows.iter().filter(|r| matches!(r.status, SnapshotStatus::Corrupt(_))).count();
        Ok((rows, corrupt))
    }

    /// Prunes the store: quarantined files (when `drop_quarantined`),
    /// then anything past `max_age`, then oldest-first until the total
    /// fits `byte_budget`. Files with no readable mtime are treated as
    /// age zero (kept by age, last in eviction order).
    ///
    /// One hard safety rule overrides every policy knob: a live WAL is
    /// never pruned unless a same-stem sibling snapshot exists that is
    /// strictly newer (mtime ties protect — coarse filesystem
    /// timestamps can stamp a post-compaction frame with the snapshot's
    /// tick) — until then the WAL holds acked deltas nothing else
    /// holds, and deleting it is data loss. This can leave the store
    /// over `byte_budget`; quarantined WALs stay prunable.
    ///
    /// # Errors
    ///
    /// Any I/O error from listing or deleting files.
    pub fn gc(&self, policy: &GcPolicy) -> io::Result<GcReport> {
        let rows = self.ls()?;
        // A live WAL is protected until a sibling `<stem>.snap` is
        // *strictly* fresher (compaction writes the snapshot after the
        // last frame it folds in, so a strictly newer snapshot means
        // every frame is safely compacted). The mtimes are compared
        // directly — not via pre-computed ages, whose per-row `now()`
        // skew breaks ties — and a tie protects: with coarse filesystem
        // timestamps, a frame appended in the snapshot's mtime tick may
        // hold acked deltas the snapshot does not.
        let protected = |row: &SnapshotInfo| -> bool {
            if !Self::is_live_wal(&row.path) {
                return false;
            }
            let name = row.path.file_name().map(|n| n.to_string_lossy()).unwrap_or_default();
            let stem = name.trim_end_matches(&format!(".{WAL_EXT}")).to_string();
            let sibling = self.snapshot_path(&stem);
            let mtime = |p: &Path| std::fs::metadata(p).and_then(|m| m.modified()).ok();
            match (mtime(&sibling), mtime(&row.path)) {
                (Some(snap), Some(wal)) => snap <= wal,
                // Either mtime unreadable (or no sibling snapshot at
                // all): assume uncompacted, keep the WAL.
                _ => true,
            }
        };
        let mut report = GcReport::default();
        let mut doomed: Vec<&SnapshotInfo> = Vec::new();
        for row in &rows {
            if protected(row) {
                continue;
            }
            let expired = matches!((policy.max_age, row.age), (Some(max), Some(age)) if age > max);
            if (policy.drop_quarantined && row.status == SnapshotStatus::Quarantined) || expired {
                doomed.push(row);
            }
        }
        if let Some(budget) = policy.byte_budget {
            let mut survivors: Vec<&SnapshotInfo> = rows
                .iter()
                .filter(|r| !doomed.iter().any(|d| d.path == r.path))
                .collect();
            // Oldest first; unknown ages sort as freshest.
            survivors.sort_by_key(|r| std::cmp::Reverse(r.age.unwrap_or(Duration::ZERO)));
            let mut total: u64 = survivors.iter().map(|r| r.bytes).sum();
            for row in survivors {
                if total <= budget {
                    break;
                }
                if protected(row) {
                    continue;
                }
                total -= row.bytes;
                doomed.push(row);
            }
        }
        for row in &doomed {
            std::fs::remove_file(&row.path)?;
            report.reclaimed_bytes += row.bytes;
            report.removed.push(row.path.clone());
        }
        report.kept = rows.len() - doomed.len();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{write_snapshot, Record, Snapshot, SnapshotMeta};

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("socnet-store-dir-tests")
            .join(format!("{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn put(store: &StoreDir, name: &str, records: usize) -> PathBuf {
        let snapshot = Snapshot {
            meta: SnapshotMeta::new("rev", "hash"),
            records: (0..records)
                .map(|i| Record::new("body", &[&format!("k{i}")], b"payload"))
                .collect(),
        };
        let path = store.snapshot_path(name);
        write_snapshot(&path, &snapshot).expect("write");
        path
    }

    #[test]
    fn ls_reports_ok_corrupt_and_quarantined() {
        let root = scratch("ls");
        let store = StoreDir::new(&root);
        assert!(StoreDir::new(&root.join("missing")).ls().expect("empty").is_empty());

        put(&store, "good", 2);
        std::fs::write(store.snapshot_path("bad"), b"not a snapshot").expect("write");
        std::fs::write(root.join("old.snap.quarantined"), b"junk").expect("write");
        std::fs::write(root.join("ignored.txt"), b"not ours").expect("write");

        let rows = store.ls().expect("ls");
        assert_eq!(rows.len(), 3, "ignored.txt must not be listed: {rows:?}");
        let by_name = |n: &str| {
            rows.iter().find(|r| r.path.file_name().unwrap().to_string_lossy().starts_with(n))
        };
        let good = by_name("good").expect("good row");
        assert_eq!(good.status, SnapshotStatus::Ok);
        assert_eq!(good.records, 2);
        assert_eq!(good.meta.as_ref().expect("meta").git_rev, "rev");
        assert!(matches!(by_name("bad").expect("bad row").status, SnapshotStatus::Corrupt(_)));
        assert_eq!(by_name("old").expect("old row").status, SnapshotStatus::Quarantined);

        let (_, corrupt) = store.verify().expect("verify");
        assert_eq!(corrupt, 1, "exactly the bad live snapshot fails verification");
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn gc_drops_quarantined_and_enforces_byte_budget() {
        let root = scratch("gc");
        let store = StoreDir::new(&root);
        put(&store, "a", 1);
        put(&store, "b", 50);
        std::fs::write(root.join("dead.snap.quarantined"), b"junk").expect("write");

        // Quarantine-only pass: live snapshots untouched.
        let report = store
            .gc(&GcPolicy { drop_quarantined: true, ..GcPolicy::default() })
            .expect("gc");
        assert_eq!(report.removed.len(), 1);
        assert!(report.removed[0].to_string_lossy().contains("dead"));
        assert_eq!(report.kept, 2);
        assert!(report.reclaimed_bytes >= 4);

        // Byte budget smaller than both files: at least one must go,
        // and the survivor set must fit.
        let total: u64 = store.ls().expect("ls").iter().map(|r| r.bytes).sum();
        let budget = total - 1;
        let report =
            store.gc(&GcPolicy { byte_budget: Some(budget), ..GcPolicy::default() }).expect("gc");
        assert!(!report.removed.is_empty());
        let remaining: u64 = store.ls().expect("ls").iter().map(|r| r.bytes).sum();
        assert!(remaining <= budget, "store still over budget: {remaining} > {budget}");

        // Budget 0 clears the store.
        store.gc(&GcPolicy { byte_budget: Some(0), ..GcPolicy::default() }).expect("gc");
        assert!(store.ls().expect("ls").is_empty());
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn ls_reports_wal_files_with_frame_counts_and_torn_tails() {
        let root = scratch("ls-wal");
        let store = StoreDir::new(&root);
        let wal_path = store.wal_path("live");
        let mut wal = crate::wal::WalWriter::open(&wal_path).expect("open");
        wal.append(&Record::new("delta", &["k", "1"], b"+ 0 1\n")).expect("append");
        wal.append(&Record::new("delta", &["k", "2"], b"- 0 1\n")).expect("append");
        drop(wal);
        std::fs::write(root.join("dead.wal.quarantined"), b"junk").expect("write");

        let rows = store.ls().expect("ls");
        assert_eq!(rows.len(), 2);
        let live = rows.iter().find(|r| r.path == wal_path).expect("wal row");
        assert_eq!(live.status, SnapshotStatus::Ok);
        assert_eq!(live.records, 2, "records counts replayable frames");
        assert!(live.meta.is_none(), "WALs carry no manifest");
        assert!(rows.iter().any(|r| r.status == SnapshotStatus::Quarantined));

        // Tear the tail: verify must flag it as Torn, not Corrupt.
        let bytes = std::fs::read(&wal_path).expect("read");
        std::fs::write(&wal_path, &bytes[..bytes.len() - 2]).expect("tear");
        let (rows, corrupt) = store.verify().expect("verify");
        let live = rows.iter().find(|r| r.path == wal_path).expect("wal row");
        assert!(matches!(live.status, SnapshotStatus::Torn(_)), "{:?}", live.status);
        assert_eq!(live.records, 1, "the valid prefix still replays");
        assert_eq!(corrupt, 0, "a torn tail is recoverable, not corrupt");

        // Garbage magic is corrupt.
        std::fs::write(&wal_path, b"garbage\n").expect("write");
        let (_, corrupt) = store.verify().expect("verify");
        assert_eq!(corrupt, 1);
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn gc_never_prunes_a_wal_newer_than_its_compacted_snapshot() {
        let root = scratch("gc-wal-guard");
        let store = StoreDir::new(&root);
        // Snapshot first, then the WAL: the WAL has frames the snapshot
        // does not hold, so it must survive every aggressive policy.
        put(&store, "live", 1);
        std::thread::sleep(Duration::from_millis(20));
        let wal_path = store.wal_path("live");
        let mut wal = crate::wal::WalWriter::open(&wal_path).expect("open");
        wal.append(&Record::new("delta", &["k", "1"], b"+ 0 1\n")).expect("append");
        drop(wal);

        let aggressive = GcPolicy {
            max_age: Some(Duration::ZERO),
            byte_budget: Some(0),
            drop_quarantined: true,
        };
        std::thread::sleep(Duration::from_millis(20));
        let report = store.gc(&aggressive).expect("gc");
        assert!(wal_path.exists(), "uncompacted WAL pruned: {:?}", report.removed);
        assert!(
            report.removed.iter().all(|p| p != &wal_path),
            "uncompacted WAL in removal list"
        );

        // An orphan WAL (no sibling snapshot at all) is protected too.
        let orphan = store.wal_path("orphan");
        let mut wal = crate::wal::WalWriter::open(&orphan).expect("open");
        wal.append(&Record::new("delta", &["k", "1"], b"+ 2 3\n")).expect("append");
        drop(wal);
        std::thread::sleep(Duration::from_millis(20));
        store.gc(&aggressive).expect("gc");
        assert!(orphan.exists(), "orphan WAL must never be pruned");

        // Compact: rewrite the snapshot after the WAL's last append.
        // Now the WAL is prunable, and a quarantined WAL always was.
        put(&store, "live", 2);
        std::fs::write(root.join("dead.wal.quarantined"), b"junk").expect("write");
        std::thread::sleep(Duration::from_millis(20));
        let report = store.gc(&aggressive).expect("gc");
        assert!(!wal_path.exists(), "compacted WAL should now be prunable");
        assert!(!root.join("dead.wal.quarantined").exists());
        assert!(report.removed.len() >= 2);
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn gc_protects_a_wal_whose_mtime_ties_its_snapshot() {
        let root = scratch("gc-wal-tie");
        let store = StoreDir::new(&root);
        let snap_path = put(&store, "live", 1);
        let wal_path = store.wal_path("live");
        let mut wal = crate::wal::WalWriter::open(&wal_path).expect("open");
        wal.append(&Record::new("delta", &["k", "1"], b"+ 0 1\n")).expect("append");
        drop(wal);
        // Coarse-mtime filesystems can stamp a frame appended just
        // after compaction into the snapshot's timestamp tick — pin
        // both files to the exact same mtime to simulate it. The WAL
        // may hold acked deltas the snapshot does not, so a tie must
        // protect.
        let tick = SystemTime::now();
        for path in [&snap_path, &wal_path] {
            std::fs::OpenOptions::new()
                .write(true)
                .open(path)
                .and_then(|f| f.set_modified(tick))
                .expect("pin mtime");
        }
        std::thread::sleep(Duration::from_millis(20));
        let aggressive = GcPolicy {
            max_age: Some(Duration::ZERO),
            byte_budget: Some(0),
            drop_quarantined: true,
        };
        let report = store.gc(&aggressive).expect("gc");
        assert!(wal_path.exists(), "tied-mtime WAL pruned: {:?}", report.removed);
        std::fs::remove_dir_all(root).ok();
    }

    #[test]
    fn gc_by_age_removes_only_old_files() {
        let root = scratch("age");
        let store = StoreDir::new(&root);
        put(&store, "fresh", 1);
        // A zero max-age dooms everything with a measurable age; a huge
        // one keeps everything. (Filesystem mtimes are too coarse to
        // fake "old" portably, so assert both poles.)
        let keep = store
            .gc(&GcPolicy { max_age: Some(Duration::from_secs(3600)), ..GcPolicy::default() })
            .expect("gc");
        assert!(keep.removed.is_empty());
        assert_eq!(keep.kept, 1);
        std::thread::sleep(Duration::from_millis(20));
        let drop = store
            .gc(&GcPolicy { max_age: Some(Duration::ZERO), ..GcPolicy::default() })
            .expect("gc");
        assert_eq!(drop.removed.len(), 1);
        assert!(store.ls().expect("ls").is_empty());
        std::fs::remove_dir_all(root).ok();
    }
}
