//! The `socnet-store-v1` snapshot format: framed, checksummed, keyed.
//!
//! A snapshot is a single file:
//!
//! ```text
//! socnet-store-v1\n
//! B <crc32-hex> <len>\n        ← manifest frame
//! <len payload bytes>\n
//! B <crc32-hex> <len>\n        ← one frame per record
//! <len payload bytes>\n
//! ...
//! END <record-count>\n
//! ```
//!
//! Every frame carries the CRC-32 of its payload, so a flipped bit is
//! caught at the frame that holds it; the trailing `END` line carries
//! the record count, so a file truncated between frames is caught too.
//! The first frame is the manifest — the invalidation key: git revision
//! plus a hash of the dataset registry. A snapshot written by different
//! code or against a different registry never hydrates; it is reported
//! as a [`LoadError::Mismatch`] and the caller quarantines it.
//!
//! A payload is one header line (`kind` plus percent-escaped fields)
//! followed by raw body bytes — bodies are stored verbatim, which is
//! what makes a hydrated response byte-identical to the one that was
//! flushed.

use std::io::{self, Read};
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::crc::crc32;

/// The version line every snapshot starts with.
pub const MAGIC: &str = "socnet-store-v1";

/// Suffix appended when a bad snapshot is set aside.
pub const QUARANTINE_SUFFIX: &str = "quarantined";

/// The manifest frame: what wrote this snapshot, against what registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Git revision of the writer (`socnet_runner::git_rev`).
    pub git_rev: String,
    /// Hash of the dataset registry the cached bodies were derived from.
    pub registry_hash: String,
    /// Wall-clock write time, milliseconds since the Unix epoch.
    pub created_unix_ms: u64,
}

impl SnapshotMeta {
    /// A manifest stamped with the current wall clock.
    pub fn new(git_rev: &str, registry_hash: &str) -> SnapshotMeta {
        let created_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        SnapshotMeta {
            git_rev: git_rev.to_string(),
            registry_hash: registry_hash.to_string(),
            created_unix_ms,
        }
    }
}

/// One persisted record: a kind tag, structured fields, raw body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// What the record is (`body`, `graph`, ...). The parser returns
    /// unknown kinds untouched; consumers decide whether to skip or
    /// reject them.
    pub kind: String,
    /// Structured fields; arbitrary strings (escaped on disk).
    pub fields: Vec<String>,
    /// Raw payload bytes, returned verbatim on load.
    pub body: Vec<u8>,
}

impl Record {
    /// A record from string parts plus a body.
    pub fn new(kind: &str, fields: &[&str], body: &[u8]) -> Record {
        Record {
            kind: kind.to_string(),
            fields: fields.iter().map(|f| f.to_string()).collect(),
            body: body.to_vec(),
        }
    }
}

/// A full snapshot: manifest plus records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// The invalidation key.
    pub meta: SnapshotMeta,
    /// The persisted records, in write order.
    pub records: Vec<Record>,
}

/// What the caller requires the manifest to match before hydrating.
#[derive(Debug, Clone)]
pub struct Expected {
    /// Required git revision.
    pub git_rev: String,
    /// Required dataset-registry hash.
    pub registry_hash: String,
}

/// Why a snapshot could not be loaded.
#[derive(Debug)]
pub enum LoadError {
    /// No file at the path — a plain cold boot, not a fault.
    Missing,
    /// The file exists but could not be read.
    Io(io::Error),
    /// Bad magic, a failed CRC, a broken frame, or a truncation.
    Corrupt(String),
    /// The manifest is valid but keyed to other code or another
    /// registry; hydrating would serve stale bodies.
    Mismatch {
        /// Which manifest field disagreed (`git_rev`, `registry_hash`).
        field: &'static str,
        /// The value found in the snapshot.
        found: String,
        /// The value the caller required.
        expected: String,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Missing => write!(f, "no snapshot on disk"),
            LoadError::Io(e) => write!(f, "snapshot unreadable: {e}"),
            LoadError::Corrupt(m) => write!(f, "snapshot corrupt: {m}"),
            LoadError::Mismatch { field, found, expected } => {
                write!(f, "snapshot {field} is {found:?}, expected {expected:?}")
            }
        }
    }
}

impl std::error::Error for LoadError {}

/// Escapes a field for the single-line header: `%`, whitespace, and
/// control bytes become `%XX` so fields split unambiguously on spaces.
pub(crate) fn escape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        if b == b'%' || b <= b' ' || b == 0x7F {
            out.push('%');
            out.push_str(&format!("{b:02X}"));
        } else {
            out.push(b as char);
        }
    }
    out
}

fn unescape_field(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .and_then(|h| std::str::from_utf8(h).ok())
                .and_then(|h| u8::from_str_radix(h, 16).ok())
                .ok_or_else(|| format!("bad escape in field {s:?}"))?;
            out.push(hex);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| format!("field {s:?} is not UTF-8"))
}

pub(crate) fn encode_payload(header: &[String], body: &[u8]) -> Vec<u8> {
    let line: Vec<String> = header.iter().map(|f| escape_field(f)).collect();
    let mut payload = line.join(" ").into_bytes();
    payload.push(b'\n');
    payload.extend_from_slice(body);
    payload
}

pub(crate) fn decode_payload(payload: &[u8]) -> Result<(Vec<String>, Vec<u8>), String> {
    let split = payload
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| "payload has no header line".to_string())?;
    let header = std::str::from_utf8(&payload[..split])
        .map_err(|_| "payload header is not UTF-8".to_string())?;
    let fields = header
        .split(' ')
        .filter(|f| !f.is_empty())
        .map(unescape_field)
        .collect::<Result<Vec<String>, String>>()?;
    Ok((fields, payload[split + 1..].to_vec()))
}

fn push_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(
        format!("B {:08x} {}\n", crc32(payload), payload.len()).as_bytes(),
    );
    out.extend_from_slice(payload);
    out.push(b'\n');
}

/// Serializes `snapshot` to the on-disk byte layout.
pub fn render(snapshot: &Snapshot) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC.as_bytes());
    out.push(b'\n');
    let meta = &snapshot.meta;
    let manifest_header = vec![
        "manifest".to_string(),
        meta.git_rev.clone(),
        meta.registry_hash.clone(),
        meta.created_unix_ms.to_string(),
        snapshot.records.len().to_string(),
    ];
    push_frame(&mut out, &encode_payload(&manifest_header, &[]));
    for record in &snapshot.records {
        let mut header = Vec::with_capacity(record.fields.len() + 1);
        header.push(record.kind.clone());
        header.extend(record.fields.iter().cloned());
        push_frame(&mut out, &encode_payload(&header, &record.body));
    }
    out.extend_from_slice(format!("END {}\n", snapshot.records.len()).as_bytes());
    out
}

/// Writes `snapshot` atomically (tmp + fsync + rename via the runner's
/// artifact path) and returns the file size in bytes.
///
/// # Errors
///
/// Any I/O error from the atomic write.
pub fn write_snapshot(path: &Path, snapshot: &Snapshot) -> io::Result<u64> {
    let bytes = render(snapshot);
    socnet_runner::write_atomic(path, &bytes)?;
    Ok(bytes.len() as u64)
}

struct FrameReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// The record count the `END` line declared, once reached.
    end_count: Option<usize>,
}

impl<'a> FrameReader<'a> {
    fn line(&mut self) -> Result<&'a str, LoadError> {
        let rest = &self.bytes[self.pos..];
        let end = rest
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| LoadError::Corrupt("truncated: missing line terminator".to_string()))?;
        self.pos += end + 1;
        std::str::from_utf8(&rest[..end])
            .map_err(|_| LoadError::Corrupt("frame line is not UTF-8".to_string()))
    }

    /// Reads one `B <crc> <len>` frame; `None` at the `END` line.
    fn frame(&mut self) -> Result<Option<&'a [u8]>, LoadError> {
        let line = self.line()?;
        let mut parts = line.split(' ');
        match parts.next() {
            Some("B") => {}
            Some("END") => {
                let count = parts
                    .next()
                    .and_then(|c| c.parse::<usize>().ok())
                    .ok_or_else(|| LoadError::Corrupt("END line has no count".to_string()))?;
                self.end_count = Some(count);
                return Ok(None);
            }
            other => {
                return Err(LoadError::Corrupt(format!("expected frame, found {other:?}")));
            }
        }
        let crc = parts
            .next()
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| LoadError::Corrupt("frame has no checksum".to_string()))?;
        let len = parts
            .next()
            .and_then(|l| l.parse::<usize>().ok())
            .ok_or_else(|| LoadError::Corrupt("frame has no length".to_string()))?;
        let payload = self
            .bytes
            .get(self.pos..self.pos + len)
            .ok_or_else(|| LoadError::Corrupt("truncated inside a frame payload".to_string()))?;
        self.pos += len;
        if self.bytes.get(self.pos) != Some(&b'\n') {
            return Err(LoadError::Corrupt("frame payload not newline-terminated".to_string()));
        }
        self.pos += 1;
        let actual = crc32(payload);
        if actual != crc {
            return Err(LoadError::Corrupt(format!(
                "checksum mismatch: stored {crc:08x}, computed {actual:08x}"
            )));
        }
        Ok(Some(payload))
    }
}

/// Parses the on-disk byte layout back into a [`Snapshot`].
///
/// # Errors
///
/// [`LoadError::Corrupt`] for any structural or checksum failure.
pub fn parse(bytes: &[u8]) -> Result<Snapshot, LoadError> {
    let mut reader = FrameReader { bytes, pos: 0, end_count: None };
    let magic = reader.line()?;
    if magic != MAGIC {
        return Err(LoadError::Corrupt(format!("bad magic {magic:?}, expected {MAGIC:?}")));
    }
    let manifest_payload = reader
        .frame()?
        .ok_or_else(|| LoadError::Corrupt("snapshot has no manifest frame".to_string()))?;
    let (fields, _) = decode_payload(manifest_payload).map_err(LoadError::Corrupt)?;
    let [tag, git_rev, registry_hash, created, declared] = fields.as_slice() else {
        return Err(LoadError::Corrupt(format!("manifest has {} fields, expected 5", fields.len())));
    };
    if tag != "manifest" {
        return Err(LoadError::Corrupt(format!("first frame is {tag:?}, not a manifest")));
    }
    let created_unix_ms = created
        .parse::<u64>()
        .map_err(|_| LoadError::Corrupt(format!("bad manifest timestamp {created:?}")))?;
    let declared: usize = declared
        .parse()
        .map_err(|_| LoadError::Corrupt(format!("bad manifest record count {declared:?}")))?;

    let mut records = Vec::new();
    while let Some(payload) = reader.frame()? {
        let (mut fields, body) = decode_payload(payload).map_err(LoadError::Corrupt)?;
        if fields.is_empty() {
            return Err(LoadError::Corrupt("record has no kind".to_string()));
        }
        let kind = fields.remove(0);
        records.push(Record { kind, fields, body });
    }
    if records.len() != declared {
        return Err(LoadError::Corrupt(format!(
            "manifest declares {declared} records, file holds {}",
            records.len()
        )));
    }
    if reader.end_count != Some(records.len()) {
        return Err(LoadError::Corrupt(format!(
            "END line declares {:?} records, file holds {}",
            reader.end_count,
            records.len()
        )));
    }
    Ok(Snapshot {
        meta: SnapshotMeta {
            git_rev: git_rev.clone(),
            registry_hash: registry_hash.clone(),
            created_unix_ms,
        },
        records,
    })
}

/// Reads and validates a snapshot file.
///
/// # Errors
///
/// [`LoadError::Missing`] when the path does not exist, [`LoadError::Io`]
/// on read failure, [`LoadError::Corrupt`] on any structural or
/// checksum failure.
pub fn read_snapshot(path: &Path) -> Result<Snapshot, LoadError> {
    let mut file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(LoadError::Missing),
        Err(e) => return Err(LoadError::Io(e)),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes).map_err(LoadError::Io)?;
    parse(&bytes)
}

/// Reads a snapshot and additionally requires the manifest to match
/// `expected` — the warm-start invalidation check.
///
/// # Errors
///
/// Everything [`read_snapshot`] returns, plus [`LoadError::Mismatch`]
/// when the manifest is keyed to other code or another registry.
pub fn read_snapshot_expecting(path: &Path, expected: &Expected) -> Result<Snapshot, LoadError> {
    let snapshot = read_snapshot(path)?;
    if snapshot.meta.git_rev != expected.git_rev {
        return Err(LoadError::Mismatch {
            field: "git_rev",
            found: snapshot.meta.git_rev,
            expected: expected.git_rev.clone(),
        });
    }
    if snapshot.meta.registry_hash != expected.registry_hash {
        return Err(LoadError::Mismatch {
            field: "registry_hash",
            found: snapshot.meta.registry_hash,
            expected: expected.registry_hash.clone(),
        });
    }
    Ok(snapshot)
}

/// Sets a bad snapshot aside as `<name>.quarantined` (replacing any
/// previous quarantine of the same name) so the next boot is cleanly
/// cold instead of tripping over the same bytes again.
///
/// # Errors
///
/// Any I/O error from the rename.
pub fn quarantine(path: &Path) -> io::Result<PathBuf> {
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let target =
        path.with_file_name(format!("{}.{QUARANTINE_SUFFIX}", name.to_string_lossy()));
    std::fs::rename(path, &target)?;
    Ok(target)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("socnet-store-snapshot-tests")
            .join(format!("{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn sample() -> Snapshot {
        Snapshot {
            meta: SnapshotMeta {
                git_rev: "abc1234".to_string(),
                registry_hash: "0badc0de".to_string(),
                created_unix_ms: 1_700_000_000_000,
            },
            records: vec![
                Record::new(
                    "body",
                    &["body|Rice-grad@0.05#42|mixing|eps=0.25", "51234"],
                    b"{\"label\":\"Rice-grad@0.05#42\",\"slem\":0.948}",
                ),
                Record::new("graph", &["Rice-grad", "0.05", "42", "18432"], b""),
                // A hostile field: spaces, %, newline — must round-trip.
                Record::new("body", &["weird key % with\nnewline", "7"], &[0, 1, 2, 255]),
            ],
        }
    }

    #[test]
    fn round_trips_byte_identically() {
        let dir = scratch("roundtrip");
        let path = dir.join("serve.snap");
        let snapshot = sample();
        let bytes = write_snapshot(&path, &snapshot).expect("write");
        assert_eq!(bytes, std::fs::metadata(&path).expect("stat").len());
        let back = read_snapshot(&path).expect("read");
        assert_eq!(back, snapshot);
        // Re-rendering the parsed snapshot reproduces the exact file.
        assert_eq!(render(&back), std::fs::read(&path).expect("raw"));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn expectation_checks_gate_hydration() {
        let dir = scratch("expect");
        let path = dir.join("serve.snap");
        write_snapshot(&path, &sample()).expect("write");
        let good =
            Expected { git_rev: "abc1234".to_string(), registry_hash: "0badc0de".to_string() };
        read_snapshot_expecting(&path, &good).expect("matching keys load");
        let stale_rev = Expected { git_rev: "fff0000".to_string(), ..good.clone() };
        assert!(matches!(
            read_snapshot_expecting(&path, &stale_rev),
            Err(LoadError::Mismatch { field: "git_rev", .. })
        ));
        let stale_reg = Expected { registry_hash: "deadbeef".to_string(), ..good };
        assert!(matches!(
            read_snapshot_expecting(&path, &stale_reg),
            Err(LoadError::Mismatch { field: "registry_hash", .. })
        ));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn truncation_anywhere_is_corrupt_not_a_panic() {
        let dir = scratch("truncate");
        let path = dir.join("serve.snap");
        write_snapshot(&path, &sample()).expect("write");
        let full = std::fs::read(&path).expect("read");
        for keep in 0..full.len() {
            match parse(&full[..keep]) {
                Err(LoadError::Corrupt(_)) => {}
                Ok(_) => panic!("truncation to {keep} bytes parsed cleanly"),
                Err(other) => panic!("truncation to {keep} bytes gave {other:?}"),
            }
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn every_single_bit_flip_is_caught() {
        let full = render(&sample());
        // Exhaustive over bytes, one flipped bit each: either the parse
        // fails, or (for flips inside the manifest's free-text fields
        // that still checksum — impossible — or the magic line) never
        // returns the original content silently.
        let original = parse(&full).expect("clean parse");
        for byte in 0..full.len() {
            let mut bent = full.clone();
            bent[byte] ^= 0x10;
            match parse(&bent) {
                Err(_) => {}
                Ok(changed) => {
                    assert_ne!(
                        changed, original,
                        "flip at byte {byte} silently produced the original snapshot"
                    );
                    // A parse that survives must have failed the CRC...
                    // it did not, so the flip must live in a frame-line
                    // length/crc field that still described a valid
                    // other frame. The CRC makes this unreachable.
                    panic!("flip at byte {byte} produced a different valid snapshot");
                }
            }
        }
    }

    #[test]
    fn missing_file_is_its_own_case() {
        let dir = scratch("missing");
        assert!(matches!(read_snapshot(&dir.join("absent.snap")), Err(LoadError::Missing)));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn quarantine_renames_and_replaces() {
        let dir = scratch("quarantine");
        let path = dir.join("serve.snap");
        std::fs::write(&path, b"garbage").expect("write");
        let target = quarantine(&path).expect("rename");
        assert!(target.to_string_lossy().ends_with("serve.snap.quarantined"));
        assert!(!path.exists());
        assert!(target.exists());
        // A second bad snapshot replaces the previous quarantine.
        std::fs::write(&path, b"more garbage").expect("write");
        quarantine(&path).expect("rename again");
        assert_eq!(std::fs::read(&target).expect("read"), b"more garbage");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let dir = scratch("empty");
        let path = dir.join("serve.snap");
        let snapshot = Snapshot { meta: SnapshotMeta::new("rev", "hash"), records: Vec::new() };
        write_snapshot(&path, &snapshot).expect("write");
        let back = read_snapshot(&path).expect("read");
        assert!(back.records.is_empty());
        assert_eq!(back.meta.git_rev, "rev");
        std::fs::remove_dir_all(dir).ok();
    }
}
