//! CRC-32 (IEEE 802.3 polynomial), hand-rolled so the store stays
//! dependency-free.
//!
//! The table is built once at first use from the reflected polynomial
//! `0xEDB88320` — the same parameterisation as zlib's `crc32()`, so the
//! well-known test vectors apply and an operator can cross-check a
//! record's checksum with any standard tool.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 == 1 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            }
            *slot = crc;
        }
        table
    })
}

/// The CRC-32 checksum of `bytes`.
///
/// # Examples
///
/// ```
/// // The classic zlib check value.
/// assert_eq!(socnet_store::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn single_bit_flip_changes_the_checksum() {
        let clean = b"spectrum|Rice-grad@0.05#42".to_vec();
        let reference = crc32(&clean);
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut flipped = clean.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at {byte}:{bit} went undetected");
            }
        }
    }
}
