//! The `socnet-wal-v1` append-only delta log.
//!
//! A WAL is a single file:
//!
//! ```text
//! socnet-wal-v1\n
//! F <crc32-hex> <len>\n        ← one frame per appended record
//! <len payload bytes>\n
//! F <crc32-hex> <len>\n
//! <len payload bytes>\n
//! ...
//! ```
//!
//! Unlike a snapshot there is no trailing `END` line: the file is
//! append-only and a crash can legally stop it mid-frame. The reader
//! therefore treats the longest valid frame prefix as the truth and
//! reports everything after it as a *torn tail* — recoverable data
//! loss at the unacked suffix, never a reason to reject the acked
//! prefix. Only a bad magic line condemns the whole file.
//!
//! Durability contract: [`WalWriter::append`] returns only after the
//! frame bytes are written **and fsynced**. A caller that acks after
//! `append` returns can promise the record survives a crash, because
//! boot-time [`read_wal`] replays every synced frame.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::snapshot::{decode_payload, encode_payload, LoadError, Record, QUARANTINE_SUFFIX};

/// The version line every WAL starts with.
pub const WAL_MAGIC: &str = "socnet-wal-v1";

/// Canonical file extension for WAL files (`<name>.wal`).
pub const WAL_EXT: &str = "wal";

/// An open WAL handle: appends frames, fsyncs, and resets after
/// compaction.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    /// Current file length — every byte below this is synced frames.
    len: u64,
}

/// Encodes one record as a WAL frame (`F <crc> <len>\n<payload>\n`).
fn render_frame(record: &Record) -> Vec<u8> {
    let mut header = Vec::with_capacity(record.fields.len() + 1);
    header.push(record.kind.clone());
    header.extend(record.fields.iter().cloned());
    let payload = encode_payload(&header, &record.body);
    let mut out =
        format!("F {:08x} {}\n", crc32(&payload), payload.len()).into_bytes();
    out.extend_from_slice(&payload);
    out.push(b'\n');
    out
}

impl WalWriter {
    /// Opens (or creates) the WAL at `path` for appending.
    ///
    /// A missing or empty file is initialized with the magic line and
    /// fsynced before this returns. An existing file is *not* validated
    /// here — [`read_wal`] at boot owns damage detection; by the time a
    /// writer opens the log, the caller has already replayed and (if
    /// needed) truncated it.
    ///
    /// # Errors
    ///
    /// Any I/O error from open/write/fsync.
    pub fn open(path: &Path) -> io::Result<WalWriter> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = OpenOptions::new().read(true).append(true).create(true).open(path)?;
        let mut len = file.metadata()?.len();
        if len == 0 {
            file.write_all(format!("{WAL_MAGIC}\n").as_bytes())?;
            file.sync_data()?;
            len = file.metadata()?.len();
        }
        Ok(WalWriter { file, path: path.to_path_buf(), len })
    }

    /// The path this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current file length in bytes (all synced).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Appends one record frame and fsyncs — the durability point.
    /// Returns the file length after the append; once this returns, the
    /// record survives any crash.
    ///
    /// # Errors
    ///
    /// Any I/O error from the write or fsync. On error the in-memory
    /// length is left at the last known-synced value; the partial frame
    /// (if any) is a torn tail the next boot will trim.
    pub fn append(&mut self, record: &Record) -> io::Result<u64> {
        let frame = render_frame(record);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.len += frame.len() as u64;
        Ok(self.len)
    }

    /// Truncates the log back to just the magic line — called after a
    /// successful compaction has folded every frame into a snapshot.
    ///
    /// # Errors
    ///
    /// Any I/O error from the truncate or fsync.
    pub fn reset(&mut self) -> io::Result<()> {
        let magic_len = (WAL_MAGIC.len() + 1) as u64;
        self.file.set_len(magic_len)?;
        self.file.seek(SeekFrom::End(0))?;
        self.file.sync_data()?;
        self.len = magic_len;
        Ok(())
    }
}

/// The result of replaying a WAL: every record in the longest valid
/// frame prefix, plus what (if anything) was wrong with the tail.
#[derive(Debug)]
pub struct WalReplay {
    /// Records from the valid prefix, in append order.
    pub records: Vec<Record>,
    /// Byte length of the valid prefix (magic line + whole frames).
    pub valid_bytes: u64,
    /// Why parsing stopped before end-of-file, if it did. `None` means
    /// the file is clean to the last byte.
    pub torn: Option<String>,
}

/// Reads a WAL and replays its valid frame prefix.
///
/// # Errors
///
/// [`LoadError::Missing`] when the path does not exist (a plain cold
/// boot), [`LoadError::Io`] on read failure, and [`LoadError::Corrupt`]
/// only when the magic line itself is wrong — the file is not a WAL and
/// the caller should quarantine it whole. Frame-level damage is *not*
/// an error: the valid prefix comes back `Ok` with [`WalReplay::torn`]
/// set, and the caller trims via [`quarantine_tail`].
pub fn read_wal(path: &Path) -> Result<WalReplay, LoadError> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(LoadError::Missing),
        Err(e) => return Err(LoadError::Io(e)),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes).map_err(LoadError::Io)?;

    let magic_line = format!("{WAL_MAGIC}\n");
    if !bytes.starts_with(magic_line.as_bytes()) {
        let found = bytes
            .split(|&b| b == b'\n')
            .next()
            .map(String::from_utf8_lossy)
            .unwrap_or_default()
            .into_owned();
        return Err(LoadError::Corrupt(format!("bad magic {found:?}, expected {WAL_MAGIC:?}")));
    }

    let mut records = Vec::new();
    let mut pos = magic_line.len();
    let mut torn = None;
    while pos < bytes.len() {
        match parse_frame(&bytes, pos) {
            Ok((record, next)) => {
                records.push(record);
                pos = next;
            }
            Err(reason) => {
                torn = Some(reason);
                break;
            }
        }
    }
    Ok(WalReplay { records, valid_bytes: pos as u64, torn })
}

/// Parses one frame at `pos`; returns the record and the offset of the
/// next frame, or a human-readable reason the frame is damaged.
fn parse_frame(bytes: &[u8], pos: usize) -> Result<(Record, usize), String> {
    let rest = &bytes[pos..];
    let line_end = rest
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| "torn frame header: missing line terminator".to_string())?;
    let line = std::str::from_utf8(&rest[..line_end])
        .map_err(|_| "frame header is not UTF-8".to_string())?;
    let mut parts = line.split(' ');
    match parts.next() {
        Some("F") => {}
        other => return Err(format!("expected frame tag F, found {other:?}")),
    }
    let crc = parts
        .next()
        .and_then(|h| u32::from_str_radix(h, 16).ok())
        .ok_or_else(|| "frame has no checksum".to_string())?;
    let len = parts
        .next()
        .and_then(|l| l.parse::<usize>().ok())
        .ok_or_else(|| "frame has no length".to_string())?;
    let body_start = line_end + 1;
    let payload = rest
        .get(body_start..body_start + len)
        .ok_or_else(|| "torn frame: truncated inside the payload".to_string())?;
    if rest.get(body_start + len) != Some(&b'\n') {
        return Err("frame payload not newline-terminated".to_string());
    }
    let actual = crc32(payload);
    if actual != crc {
        return Err(format!("checksum mismatch: stored {crc:08x}, computed {actual:08x}"));
    }
    let (mut fields, body) = decode_payload(payload)?;
    if fields.is_empty() {
        return Err("frame record has no kind".to_string());
    }
    let kind = fields.remove(0);
    Ok((Record { kind, fields, body }, pos + body_start + len + 1))
}

/// Trims a torn WAL in place: the damaged suffix is written aside as
/// `<name>.quarantined` (for forensics, same convention as snapshot
/// quarantine) and the live file is truncated to `replay.valid_bytes`,
/// leaving exactly the acked prefix. No-op when the replay was clean.
///
/// # Errors
///
/// Any I/O error from the side-write or truncate.
pub fn quarantine_tail(path: &Path, replay: &WalReplay) -> io::Result<Option<PathBuf>> {
    if replay.torn.is_none() {
        return Ok(None);
    }
    let bytes = std::fs::read(path)?;
    let cut = (replay.valid_bytes as usize).min(bytes.len());
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let target = path.with_file_name(format!("{}.{QUARANTINE_SUFFIX}", name.to_string_lossy()));
    std::fs::write(&target, &bytes[cut..])?;
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(cut as u64)?;
    file.sync_data()?;
    Ok(Some(target))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("socnet-store-wal-tests")
            .join(format!("{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::new("delta", &["Rice-grad@0.05#42", "1"], b"+ 0 9\n- 1 2\n"),
            Record::new("delta", &["Rice-grad@0.05#42", "2"], b"+ 3 4\n"),
            // Hostile fields and binary body bytes must round-trip.
            Record::new("delta", &["weird % label\nwith newline", "3"], &[0, 1, 255, b'\n']),
        ]
    }

    #[test]
    fn append_reopen_replay_loses_nothing() {
        let dir = scratch("roundtrip");
        let path = dir.join("live.wal");
        let records = sample_records();
        {
            let mut wal = WalWriter::open(&path).expect("open");
            for r in &records[..2] {
                wal.append(r).expect("append");
            }
        }
        // Reopen (a "restart") and keep appending: the log accumulates.
        {
            let mut wal = WalWriter::open(&path).expect("reopen");
            wal.append(&records[2]).expect("append after reopen");
        }
        let replay = read_wal(&path).expect("replay");
        assert_eq!(replay.records, records);
        assert!(replay.torn.is_none());
        assert_eq!(replay.valid_bytes, std::fs::metadata(&path).expect("stat").len());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn reset_truncates_to_magic_and_stays_appendable() {
        let dir = scratch("reset");
        let path = dir.join("live.wal");
        let mut wal = WalWriter::open(&path).expect("open");
        for r in &sample_records() {
            wal.append(r).expect("append");
        }
        wal.reset().expect("reset");
        assert_eq!(wal.len_bytes(), (WAL_MAGIC.len() + 1) as u64);
        let replay = read_wal(&path).expect("replay empty");
        assert!(replay.records.is_empty());
        assert!(replay.torn.is_none());
        // Appends after a reset land cleanly at the new tail.
        let extra = Record::new("delta", &["x", "9"], b"+ 1 2\n");
        wal.append(&extra).expect("append after reset");
        let replay = read_wal(&path).expect("replay");
        assert_eq!(replay.records, vec![extra]);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn every_truncation_keeps_the_longest_valid_prefix() {
        let dir = scratch("truncate");
        let path = dir.join("live.wal");
        let records = sample_records();
        let mut wal = WalWriter::open(&path).expect("open");
        let mut boundaries = vec![(WAL_MAGIC.len() + 1) as u64];
        for r in &records {
            boundaries.push(wal.append(r).expect("append"));
        }
        let full = std::fs::read(&path).expect("read");
        for keep in (WAL_MAGIC.len() + 1)..full.len() {
            std::fs::write(&path, &full[..keep]).expect("truncate");
            let replay = read_wal(&path).expect("torn tails never error");
            // The replay holds exactly the frames wholly below the cut.
            let expect = boundaries.iter().filter(|&&b| b <= keep as u64).count() - 1;
            assert_eq!(replay.records.len(), expect, "cut at {keep}");
            assert_eq!(replay.records, records[..expect], "cut at {keep}");
            assert_eq!(replay.valid_bytes, boundaries[expect], "cut at {keep}");
            assert_eq!(replay.torn.is_some(), keep as u64 != boundaries[expect]);
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn bit_flips_never_panic_and_never_forge_records() {
        let dir = scratch("bitflip");
        let path = dir.join("live.wal");
        let records = sample_records();
        let mut wal = WalWriter::open(&path).expect("open");
        for r in &records {
            wal.append(r).expect("append");
        }
        let full = std::fs::read(&path).expect("read");
        for byte in 0..full.len() {
            let mut bent = full.clone();
            bent[byte] ^= 0x10;
            std::fs::write(&path, &bent).expect("write");
            match read_wal(&path) {
                // Magic-line damage condemns the whole file.
                Err(LoadError::Corrupt(_)) => assert!(byte < WAL_MAGIC.len() + 1),
                Err(other) => panic!("flip at {byte} gave {other:?}"),
                Ok(replay) => {
                    // Whatever replays must be a prefix of the truth:
                    // a flipped frame never yields a different record.
                    assert!(replay.records.len() <= records.len());
                    for (i, r) in replay.records.iter().enumerate() {
                        assert_eq!(r, &records[i], "flip at {byte} forged record {i}");
                    }
                }
            }
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn quarantine_tail_preserves_the_damage_and_trims_the_live_file() {
        let dir = scratch("tail");
        let path = dir.join("live.wal");
        let records = sample_records();
        let mut wal = WalWriter::open(&path).expect("open");
        let mut keep_len = 0;
        for (i, r) in records.iter().enumerate() {
            let len = wal.append(r).expect("append");
            if i == 1 {
                keep_len = len;
            }
        }
        drop(wal);
        // Corrupt the last frame's payload.
        let mut bytes = std::fs::read(&path).expect("read");
        let n = bytes.len();
        bytes[n - 3] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("write");

        let replay = read_wal(&path).expect("torn replay");
        assert_eq!(replay.records, records[..2]);
        assert!(replay.torn.is_some());
        let aside = quarantine_tail(&path, &replay).expect("trim").expect("tail written");
        assert!(aside.to_string_lossy().ends_with("live.wal.quarantined"));
        assert_eq!(std::fs::metadata(&path).expect("stat").len(), keep_len);
        assert_eq!(std::fs::read(&aside).expect("aside"), &bytes[keep_len as usize..]);

        // After the trim the log replays clean and accepts appends.
        let replay = read_wal(&path).expect("clean replay");
        assert!(replay.torn.is_none());
        assert_eq!(replay.records, records[..2]);
        let mut wal = WalWriter::open(&path).expect("reopen");
        wal.append(&records[2]).expect("append");
        assert_eq!(read_wal(&path).expect("final").records, records);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn clean_replay_needs_no_tail_quarantine() {
        let dir = scratch("clean");
        let path = dir.join("live.wal");
        let mut wal = WalWriter::open(&path).expect("open");
        wal.append(&Record::new("delta", &["a", "1"], b"+ 0 1\n")).expect("append");
        let replay = read_wal(&path).expect("replay");
        assert!(quarantine_tail(&path, &replay).expect("noop").is_none());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn alien_file_is_corrupt_and_missing_is_missing() {
        let dir = scratch("alien");
        let path = dir.join("live.wal");
        assert!(matches!(read_wal(&path), Err(LoadError::Missing)));
        std::fs::write(&path, b"socnet-store-v1\nnot a wal\n").expect("write");
        assert!(matches!(read_wal(&path), Err(LoadError::Corrupt(_))));
        std::fs::remove_dir_all(dir).ok();
    }
}
