//! Closeness centrality, exact and harmonic.

use std::sync::Mutex;

use socnet_core::{Bfs, Graph, NodeId};
use socnet_runner::{run_units, PoolConfig, UnitError};

/// Which closeness definition to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClosenessMode {
    /// Classic closeness `(r - 1) / Σ d(v, u)`, additionally scaled by
    /// `(r - 1)/(n - 1)` (the Wasserman–Faust correction) so scores are
    /// comparable across components of different sizes `r`.
    Classic,
    /// Harmonic closeness `Σ 1/d(v, u) / (n - 1)`, well-defined on
    /// disconnected graphs without correction.
    Harmonic,
}

/// Closeness centrality of every node under the chosen mode.
///
/// One BFS per node (`O(n·m)` total), parallelized across cores.
/// Isolated nodes score 0.
///
/// # Examples
///
/// ```
/// use socnet_centrality::{closeness, ClosenessMode};
/// use socnet_core::Graph;
///
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
/// let c = closeness(&g, ClosenessMode::Classic);
/// assert!(c[1] > c[0], "the center is closest to everyone");
/// ```
pub fn closeness(graph: &Graph, mode: ClosenessMode) -> Vec<f64> {
    let n = graph.node_count();
    if n == 0 {
        return Vec::new();
    }
    let sources: Vec<NodeId> = graph.nodes().collect();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let chunk = sources.len().div_ceil(threads);
    let chunks: Vec<&[NodeId]> = sources.chunks(chunk).collect();
    let scores = Mutex::new(vec![0.0f64; n]);

    let pooled = run_units(
        "closeness",
        &chunks,
        &PoolConfig::default(),
        |i, c| format!("chunk-{i}-{}-sources", c.len()),
        |ctx, src_chunk| {
            if ctx.cancel.is_cancelled() {
                return Err(UnitError::Cancelled);
            }
            let mut bfs = Bfs::new(graph);
            let mut local: Vec<(usize, f64)> = Vec::with_capacity(src_chunk.len());
            for &s in *src_chunk {
                let levels = bfs.level_sizes(graph, s);
                let reached: usize = levels.iter().sum();
                let score = match mode {
                    ClosenessMode::Classic => {
                        let total: usize = levels.iter().enumerate().map(|(d, &c)| d * c).sum();
                        if total == 0 || n < 2 {
                            0.0
                        } else {
                            let r = reached as f64;
                            ((r - 1.0) / total as f64) * ((r - 1.0) / (n as f64 - 1.0))
                        }
                    }
                    ClosenessMode::Harmonic => {
                        let sum: f64 = levels
                            .iter()
                            .enumerate()
                            .skip(1)
                            .map(|(d, &c)| c as f64 / d as f64)
                            .sum();
                        if n < 2 {
                            0.0
                        } else {
                            sum / (n as f64 - 1.0)
                        }
                    }
                };
                local.push((s.index(), score));
            }
            // Per-source slots are disjoint across chunks, so the merge
            // is idempotent and safe under retry.
            let mut out = scores.lock().expect("closeness scores lock");
            for (i, v) in local {
                out[i] = v;
            }
            Ok(())
        },
    );
    assert!(
        pooled.report.is_complete(),
        "closeness stage degraded: {}",
        pooled.report.summary_line()
    );

    scores.into_inner().expect("closeness scores lock")
}

/// Harmonic closeness, the disconnected-graph-safe variant.
///
/// Convenience wrapper around [`closeness`] with
/// [`ClosenessMode::Harmonic`].
pub fn harmonic_closeness(graph: &Graph) -> Vec<f64> {
    closeness(graph, ClosenessMode::Harmonic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use socnet_gen::{complete, path, star};

    #[test]
    fn star_hub_is_closest() {
        let g = star(6);
        let c = closeness(&g, ClosenessMode::Classic);
        assert!(
            (c[0] - 1.0).abs() < 1e-12,
            "hub at distance 1 from all: {}",
            c[0]
        );
        for &leaf in &c[1..] {
            assert!(leaf < c[0]);
            // Leaf: distances 1 + 2*4 = 9, closeness 5/9.
            assert!((leaf - 5.0 / 9.0).abs() < 1e-12);
        }
    }

    #[test]
    fn harmonic_on_star() {
        let g = star(5);
        let c = harmonic_closeness(&g);
        assert!((c[0] - 1.0).abs() < 1e-12);
        // Leaf: (1 + 3*(1/2)) / 4.
        assert!((c[1] - 2.5 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn complete_graph_everyone_is_central() {
        let g = complete(8);
        for mode in [ClosenessMode::Classic, ClosenessMode::Harmonic] {
            let c = closeness(&g, mode);
            assert!(c.iter().all(|&x| (x - 1.0).abs() < 1e-12));
        }
    }

    #[test]
    fn path_center_beats_ends() {
        let g = path(7);
        let c = closeness(&g, ClosenessMode::Classic);
        assert!(c[3] > c[0]);
        assert!(c[3] > c[6]);
        assert!((c[0] - c[6]).abs() < 1e-12, "symmetric ends");
    }

    #[test]
    fn disconnected_graphs_are_handled() {
        let g = socnet_core::Graph::from_edges(5, [(0, 1), (2, 3)]);
        let classic = closeness(&g, ClosenessMode::Classic);
        let harmonic = harmonic_closeness(&g);
        assert_eq!(classic[4], 0.0, "isolated node");
        assert_eq!(harmonic[4], 0.0);
        // Within the pair components, harmonic = 1/(n-1).
        assert!((harmonic[0] - 0.25).abs() < 1e-12);
        assert!(classic[0] > 0.0);
        // The Wasserman–Faust correction keeps 2-node components below a
        // hypothetical full component.
        assert!(classic[0] < 1.0);
    }

    #[test]
    fn empty_graph() {
        let g = socnet_core::Graph::from_edges(0, []);
        assert!(closeness(&g, ClosenessMode::Classic).is_empty());
    }
}
