//! Score-based node rankings.

use socnet_core::{Graph, NodeId};

/// Degree centrality: `deg(v) / (n - 1)`, the baseline every centrality
/// comparison starts from.
///
/// # Examples
///
/// ```
/// use socnet_centrality::degree_centrality;
/// use socnet_core::Graph;
///
/// let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
/// assert_eq!(degree_centrality(&g)[0], 1.0);
/// ```
pub fn degree_centrality(graph: &Graph) -> Vec<f64> {
    let n = graph.node_count();
    if n < 2 {
        return vec![0.0; n];
    }
    graph.nodes().map(|v| graph.degree(v) as f64 / (n as f64 - 1.0)).collect()
}

/// Ranks nodes by decreasing score, ties broken by increasing node id.
///
/// This is the ranking form every defense evaluation in `socnet-sybil`
/// consumes (`eval::ranking_auc`, `eval::top_partition_precision`).
///
/// # Panics
///
/// Panics if `scores.len()` differs from the graph's node count or any
/// score is NaN.
///
/// # Examples
///
/// ```
/// use socnet_centrality::rank_by;
/// use socnet_core::{Graph, NodeId};
///
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
/// let order = rank_by(&g, &[0.1, 0.9, 0.1]);
/// assert_eq!(order, vec![NodeId(1), NodeId(0), NodeId(2)]);
/// ```
pub fn rank_by(graph: &Graph, scores: &[f64]) -> Vec<NodeId> {
    assert_eq!(scores.len(), graph.node_count(), "one score per node");
    assert!(scores.iter().all(|s| !s.is_nan()), "scores must not be NaN");
    let mut order: Vec<NodeId> = graph.nodes().collect();
    order.sort_by(|&a, &b| {
        scores[b.index()]
            .partial_cmp(&scores[a.index()])
            .expect("no NaN")
            .then(a.cmp(&b))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use socnet_gen::star;

    #[test]
    fn degree_centrality_of_star() {
        let g = star(5);
        let d = degree_centrality(&g);
        assert_eq!(d[0], 1.0);
        assert!(d[1..].iter().all(|&x| (x - 0.25).abs() < 1e-12));
    }

    #[test]
    fn tiny_graphs() {
        assert!(degree_centrality(&socnet_core::Graph::from_edges(0, [])).is_empty());
        assert_eq!(degree_centrality(&socnet_core::Graph::from_edges(1, [])), vec![0.0]);
    }

    #[test]
    fn ranking_is_stable_for_ties() {
        let g = star(4);
        let order = rank_by(&g, &[0.5, 0.5, 0.5, 0.5]);
        assert_eq!(order, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn ranking_descends() {
        let g = socnet_core::Graph::from_edges(4, [(0, 1)]);
        let order = rank_by(&g, &[0.1, 0.7, 0.3, 0.5]);
        assert_eq!(order, vec![NodeId(1), NodeId(3), NodeId(2), NodeId(0)]);
    }

    #[test]
    #[should_panic(expected = "one score per node")]
    fn score_length_mismatch_panics() {
        let g = star(3);
        let _ = rank_by(&g, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_scores_panic() {
        let g = star(3);
        let _ = rank_by(&g, &[0.0, f64::NAN, 1.0]);
    }
}
