//! Shortest-path betweenness centrality (Brandes 2001).

use std::collections::VecDeque;
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet_core::{sample_nodes, Graph, NodeId};
use socnet_runner::{run_units, PoolConfig, UnitError};

/// Exact betweenness centrality of every node.
///
/// For each source, runs one BFS plus Brandes' dependency accumulation;
/// sources are processed in parallel across available cores. Scores use
/// the undirected convention (each pair counted once), so the path graph
/// `0–1–2` gives node 1 a score of exactly 1.
///
/// Cost is `O(n·m)`; use [`approximate_betweenness`] beyond ~10⁵ edges.
///
/// # Examples
///
/// ```
/// use socnet_centrality::betweenness;
/// use socnet_core::Graph;
///
/// // A star: the hub lies on every leaf-to-leaf shortest path.
/// let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
/// let b = betweenness(&g);
/// assert_eq!(b[0], 3.0); // C(3,2) leaf pairs
/// assert_eq!(&b[1..], &[0.0, 0.0, 0.0]);
/// ```
pub fn betweenness(graph: &Graph) -> Vec<f64> {
    let sources: Vec<NodeId> = graph.nodes().collect();
    accumulate(graph, &sources, 1.0)
}

/// Sampled betweenness centrality from `pivots` random sources,
/// rescaled by `n / pivots` so scores estimate the exact values.
///
/// # Panics
///
/// Panics if `pivots == 0` or the graph is empty.
///
/// # Examples
///
/// ```
/// use socnet_centrality::{approximate_betweenness, betweenness};
/// use socnet_gen::barbell;
///
/// let g = barbell(6, 2);
/// let exact = betweenness(&g);
/// let approx = approximate_betweenness(&g, g.node_count(), 1);
/// // Sampling every node (without replacement) is exact.
/// for (e, a) in exact.iter().zip(&approx) {
///     assert!((e - a).abs() < 1e-9);
/// }
/// ```
pub fn approximate_betweenness(graph: &Graph, pivots: usize, seed: u64) -> Vec<f64> {
    assert!(pivots > 0, "need at least one pivot");
    assert!(graph.node_count() > 0, "graph must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let sources = sample_nodes(graph, pivots, &mut rng);
    let scale = graph.node_count() as f64 / sources.len() as f64;
    accumulate(graph, &sources, scale)
}

/// Shared Brandes accumulation over an explicit source set.
fn accumulate(graph: &Graph, sources: &[NodeId], scale: f64) -> Vec<f64> {
    let n = graph.node_count();
    if n == 0 || sources.is_empty() {
        return vec![0.0; n];
    }
    // Chunk-granularity units keep the per-thread Brandes buffers hot;
    // workers merge into the shared total only after a chunk finishes,
    // so a retried chunk cannot double-count.
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let chunk = sources.len().div_ceil(threads);
    let chunks: Vec<&[NodeId]> = sources.chunks(chunk).collect();
    let total = Mutex::new(vec![0.0f64; n]);

    let pooled = run_units(
        "betweenness",
        &chunks,
        &PoolConfig::default(),
        |i, c| format!("chunk-{i}-{}-sources", c.len()),
        |ctx, src_chunk| {
            if ctx.cancel.is_cancelled() {
                return Err(UnitError::Cancelled);
            }
            let mut local = vec![0.0f64; n];
            let mut state = BrandesState::new(n);
            for &s in *src_chunk {
                state.run(graph, s, &mut local);
            }
            let mut t = total.lock().expect("betweenness total lock");
            for (acc, l) in t.iter_mut().zip(&local) {
                *acc += l;
            }
            Ok(())
        },
    );
    assert!(
        pooled.report.is_complete(),
        "betweenness stage degraded: {}",
        pooled.report.summary_line()
    );

    let mut out = total.into_inner().expect("betweenness total lock");
    // Each unordered pair was seen from both endpoints when all sources
    // are used; the undirected convention halves the accumulation.
    for b in out.iter_mut() {
        *b *= 0.5 * scale;
    }
    out
}

/// Reusable per-thread Brandes buffers.
struct BrandesState {
    dist: Vec<i32>,
    sigma: Vec<f64>,
    delta: Vec<f64>,
    preds: Vec<Vec<NodeId>>,
    order: Vec<NodeId>,
    queue: VecDeque<NodeId>,
}

impl BrandesState {
    fn new(n: usize) -> Self {
        BrandesState {
            dist: vec![-1; n],
            sigma: vec![0.0; n],
            delta: vec![0.0; n],
            preds: vec![Vec::new(); n],
            order: Vec::with_capacity(n),
            queue: VecDeque::new(),
        }
    }

    fn run(&mut self, graph: &Graph, s: NodeId, acc: &mut [f64]) {
        self.dist.fill(-1);
        self.sigma.fill(0.0);
        self.delta.fill(0.0);
        for p in self.preds.iter_mut() {
            p.clear();
        }
        self.order.clear();
        self.queue.clear();

        self.dist[s.index()] = 0;
        self.sigma[s.index()] = 1.0;
        self.queue.push_back(s);
        while let Some(v) = self.queue.pop_front() {
            self.order.push(v);
            let dv = self.dist[v.index()];
            for &w in graph.neighbors(v) {
                if self.dist[w.index()] < 0 {
                    self.dist[w.index()] = dv + 1;
                    self.queue.push_back(w);
                }
                if self.dist[w.index()] == dv + 1 {
                    self.sigma[w.index()] += self.sigma[v.index()];
                    self.preds[w.index()].push(v);
                }
            }
        }
        // Dependency accumulation in reverse BFS order.
        for &w in self.order.iter().rev() {
            let coeff = (1.0 + self.delta[w.index()]) / self.sigma[w.index()];
            for i in 0..self.preds[w.index()].len() {
                let v = self.preds[w.index()][i];
                self.delta[v.index()] += self.sigma[v.index()] * coeff;
            }
            if w != s {
                acc[w.index()] += self.delta[w.index()];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socnet_gen::{complete, grid, path, ring};

    #[test]
    fn path_interior_scores() {
        // Path 0-1-2-3-4: node i lies on (i)(n-1-i) pairs' paths.
        let g = path(5);
        let b = betweenness(&g);
        assert_eq!(b, vec![0.0, 3.0, 4.0, 3.0, 0.0]);
    }

    #[test]
    fn ring_symmetry() {
        let g = ring(8);
        let b = betweenness(&g);
        for w in b.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-9, "ring nodes are equivalent");
        }
        assert!(b[0] > 0.0);
    }

    #[test]
    fn complete_graph_has_zero_betweenness() {
        let g = complete(7);
        let b = betweenness(&g);
        assert!(b.iter().all(|&x| x.abs() < 1e-12));
    }

    #[test]
    fn bridge_node_dominates() {
        let g = socnet_gen::barbell(4, 1);
        let b = betweenness(&g);
        let bridge = 4; // the single path node between the cliques
        let max = b.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(b[bridge], max, "bridge carries all cross-clique paths");
        // Exactly 4*4 = 16 cross pairs route through it.
        assert!((b[bridge] - 16.0).abs() < 1e-9);
    }

    #[test]
    fn equal_shortest_paths_split_credit() {
        // A 4-cycle: between opposite corners there are two paths, so each
        // intermediate node gets half a pair.
        let g = ring(4);
        let b = betweenness(&g);
        for &x in &b {
            assert!((x - 0.5).abs() < 1e-9, "got {x}");
        }
    }

    #[test]
    fn disconnected_components_do_not_interact() {
        let g = socnet_core::Graph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)]);
        let b = betweenness(&g);
        assert_eq!(b, vec![0.0, 1.0, 0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn approximation_converges_on_grid() {
        let g = grid(6, 6);
        let exact = betweenness(&g);
        let approx = approximate_betweenness(&g, 36, 9); // all pivots
        for (e, a) in exact.iter().zip(&approx) {
            assert!((e - a).abs() < 1e-9);
        }
        // A strict sample correlates strongly with the exact values.
        let sampled = approximate_betweenness(&g, 18, 9);
        let top_exact = exact
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        let rank_of_top: usize = sampled.iter().filter(|&&s| s > sampled[top_exact]).count();
        assert!(
            rank_of_top < 8,
            "exact top node should stay near the top, rank {rank_of_top}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one pivot")]
    fn zero_pivots_panics() {
        let _ = approximate_betweenness(&path(3), 0, 0);
    }
}
