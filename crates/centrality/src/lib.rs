//! Centrality measures used by social-network trust applications.
//!
//! The paper's introduction surveys the *other* structural properties
//! that trustworthy-computing primitives lean on besides mixing time and
//! expansion: **node betweenness** (Quercia–Hailes Sybil defense, and the
//! authors' own shortest-path betweenness measurement study),
//! **betweenness and similarity for DTN routing** (Daly–Haahr), and
//! **closeness for content sharing and anonymity** (OneSwarm). This crate
//! supplies those measurements:
//!
//! * [`betweenness`] — exact shortest-path betweenness via Brandes'
//!   algorithm, one `O(m)` dependency-accumulation pass per source,
//!   parallelized over sources;
//! * [`approximate_betweenness`] — the standard sampled estimator
//!   (Brandes–Pich pivots), rescaled to the exact range;
//! * [`closeness`] — harmonic and classic closeness centrality, exact or
//!   sampled;
//! * [`degree_centrality`], [`rank_by`] — baseline rankings shared by
//!   the evaluation harness.
//!
//! # Examples
//!
//! ```
//! use socnet_centrality::betweenness;
//! use socnet_core::Graph;
//!
//! // A path: the middle node carries all shortest paths.
//! let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
//! let b = betweenness(&g);
//! assert_eq!(b, vec![0.0, 1.0, 0.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod betweenness;
mod closeness;
mod rank;

pub use betweenness::{approximate_betweenness, betweenness};
pub use closeness::{closeness, harmonic_closeness, ClosenessMode};
pub use rank::{degree_centrality, rank_by};
