//! Property-based tests of the centrality measures.

use proptest::prelude::*;
use socnet_centrality::{
    approximate_betweenness, betweenness, closeness, degree_centrality, harmonic_closeness,
    rank_by, ClosenessMode,
};
use socnet_core::Graph;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..24).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 1..80).prop_map(move |edges| Graph::from_edges(n, edges))
    })
}

proptest! {
    #[test]
    fn betweenness_is_nonnegative_and_bounded(g in arb_graph()) {
        let n = g.node_count() as f64;
        let pair_bound = (n - 1.0) * (n - 2.0) / 2.0;
        for &b in &betweenness(&g) {
            prop_assert!(b >= -1e-9);
            prop_assert!(b <= pair_bound + 1e-9, "score {b} exceeds pair count {pair_bound}");
        }
    }

    #[test]
    fn betweenness_total_counts_interior_pairs(g in arb_graph()) {
        // Sum over nodes of betweenness = sum over pairs of
        // (shortest-path length - 1), for connected pairs.
        let b: f64 = betweenness(&g).iter().sum();
        let mut expected = 0.0f64;
        for s in g.nodes() {
            let r = socnet_core::bfs(&g, s);
            for v in g.nodes() {
                if v > s && r.dist[v.index()] != socnet_core::UNREACHED {
                    expected += (r.dist[v.index()] as f64 - 1.0).max(0.0);
                }
            }
        }
        prop_assert!((b - expected).abs() < 1e-6, "sum {b} vs expected {expected}");
    }

    #[test]
    fn full_pivot_approximation_is_exact(g in arb_graph()) {
        let exact = betweenness(&g);
        let approx = approximate_betweenness(&g, g.node_count(), 3);
        for (e, a) in exact.iter().zip(&approx) {
            prop_assert!((e - a).abs() < 1e-9);
        }
    }

    #[test]
    fn degree_one_nodes_have_zero_betweenness(g in arb_graph()) {
        let b = betweenness(&g);
        for v in g.nodes() {
            if g.degree(v) <= 1 {
                prop_assert!(b[v.index()].abs() < 1e-12);
            }
        }
    }

    #[test]
    fn closeness_scores_are_in_unit_interval(g in arb_graph()) {
        for mode in [ClosenessMode::Classic, ClosenessMode::Harmonic] {
            for &c in &closeness(&g, mode) {
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&c), "score {c}");
            }
        }
    }

    #[test]
    fn harmonic_dominates_on_higher_degree_twins(g in arb_graph()) {
        // Harmonic closeness is monotone under adding an edge incident to v.
        let h_before = harmonic_closeness(&g);
        // Find two non-adjacent nodes to connect.
        let mut found = None;
        'outer: for u in g.nodes() {
            for v in g.nodes() {
                if u < v && !g.has_edge(u, v) {
                    found = Some((u, v));
                    break 'outer;
                }
            }
        }
        prop_assume!(found.is_some());
        let (u, v) = found.expect("checked");
        let mut edges: Vec<(u32, u32)> = g.edges().map(|(a, b)| (a.0, b.0)).collect();
        edges.push((u.0, v.0));
        let g2 = Graph::from_edges(g.node_count(), edges);
        let h_after = harmonic_closeness(&g2);
        prop_assert!(h_after[u.index()] >= h_before[u.index()] - 1e-12);
        prop_assert!(h_after[v.index()] >= h_before[v.index()] - 1e-12);
    }

    #[test]
    fn rank_by_is_a_permutation_sorted_by_score(g in arb_graph()) {
        let scores = degree_centrality(&g);
        let order = rank_by(&g, &scores);
        prop_assert_eq!(order.len(), g.node_count());
        for w in order.windows(2) {
            prop_assert!(scores[w[0].index()] >= scores[w[1].index()]);
        }
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, g.nodes().collect::<Vec<_>>());
    }
}
