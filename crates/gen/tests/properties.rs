//! Property-based tests of the generator families.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet_core::is_connected;
use socnet_gen::{
    barabasi_albert, erdos_renyi_gnm, erdos_renyi_gnp, holme_kim, planted_partition,
    relaxed_caveman, watts_strogatz,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ba_is_connected_with_exact_edges(
        n in 10usize..200,
        m in 1usize..6,
        seed in any::<u64>(),
    ) {
        prop_assume!(n > m + 1);
        let g = barabasi_albert(n, m, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.edge_count(), m + (n - m - 1) * m);
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn holme_kim_matches_ba_skeleton(
        n in 10usize..150,
        m in 1usize..5,
        p in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        prop_assume!(n > m + 1);
        let g = holme_kim(n, m, p, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.edge_count(), m + (n - m - 1) * m);
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn gnp_stays_simple(
        n in 0usize..80,
        p in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let g = erdos_renyi_gnp(n, p, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(g.edge_count() <= n * n.saturating_sub(1) / 2);
        for v in g.nodes() {
            prop_assert!(!g.has_edge(v, v));
        }
    }

    #[test]
    fn gnm_places_exactly_m_edges(
        n in 2usize..60,
        frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let pairs = n * (n - 1) / 2;
        let m = (pairs as f64 * frac) as usize;
        let g = erdos_renyi_gnm(n, m, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(g.edge_count(), m);
    }

    #[test]
    fn watts_strogatz_preserves_degree_sum(
        n in 8usize..100,
        half_k in 1usize..3,
        beta in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let k = 2 * half_k;
        prop_assume!(k < n);
        let g = watts_strogatz(n, k, beta, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(g.edge_count(), n * half_k);
    }

    #[test]
    fn caveman_is_connected_without_rewiring(
        cliques in 1usize..12,
        size in 2usize..8,
        seed in any::<u64>(),
    ) {
        let g = relaxed_caveman(cliques, size, 0.0, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(g.node_count(), cliques * size);
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn caveman_edge_count_is_invariant_under_rewiring(
        cliques in 2usize..8,
        size in 3usize..7,
        p in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let g0 = relaxed_caveman(cliques, size, 0.0, &mut StdRng::seed_from_u64(seed));
        let g1 = relaxed_caveman(cliques, size, p, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(g0.edge_count(), g1.edge_count());
    }

    #[test]
    fn planted_partition_nodes_and_simplicity(
        comms in 1usize..6,
        size in 1usize..20,
        p_in in 0.0f64..0.6,
        p_out in 0.0f64..0.2,
        seed in any::<u64>(),
    ) {
        let g = planted_partition(comms, size, p_in, p_out, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(g.node_count(), comms * size);
        for v in g.nodes() {
            prop_assert!(!g.has_edge(v, v));
            let row = g.neighbors(v);
            prop_assert!(row.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
