//! Deterministic structured graphs.
//!
//! These small graphs have known mixing, coreness, and expansion values,
//! so the measurement crates use them as ground truth in tests, and the
//! documentation uses them as worked examples.

use socnet_core::{Graph, GraphBuilder, NodeId};

/// Cycle graph `C_n`.
///
/// # Panics
///
/// Panics if `n < 3`.
///
/// # Examples
///
/// ```
/// let g = socnet_gen::ring(6);
/// assert_eq!(g.edge_count(), 6);
/// assert!(g.nodes().all(|v| g.degree(v) == 2));
/// ```
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "ring needs at least 3 nodes, got {n}");
    Graph::from_edges(n, (0..n as u32).map(|i| (i, (i + 1) % n as u32)))
}

/// Path graph `P_n`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Graph {
    assert!(n > 0, "path needs at least 1 node");
    Graph::from_edges(n, (0..n.saturating_sub(1) as u32).map(|i| (i, i + 1)))
}

/// Complete graph `K_n`.
///
/// # Examples
///
/// ```
/// let g = socnet_gen::complete(5);
/// assert_eq!(g.edge_count(), 10);
/// ```
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n * n.saturating_sub(1) / 2);
    for i in 0..n as u32 {
        for j in (i + 1)..n as u32 {
            b.add_edge(NodeId(i), NodeId(j));
        }
    }
    b.build()
}

/// Star graph: node 0 is the hub, nodes `1..n` are leaves.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize) -> Graph {
    assert!(n > 0, "star needs at least 1 node");
    Graph::from_edges(n, (1..n as u32).map(|i| (0, i)))
}

/// `rows × cols` grid graph with 4-neighbor connectivity.
///
/// # Panics
///
/// Panics if either dimension is 0.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let at = |r: usize, c: usize| (r * cols + c) as u32;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(NodeId(at(r, c)), NodeId(at(r, c + 1)));
            }
            if r + 1 < rows {
                b.add_edge(NodeId(at(r, c)), NodeId(at(r + 1, c)));
            }
        }
    }
    b.build()
}

/// Barbell graph: two `K_k` cliques joined by a path of `bridge` extra
/// nodes (`bridge == 0` joins them by a single edge).
///
/// The canonical slow-mixing graph: the bridge is a bottleneck, so it
/// exercises the worst case of every mixing and expansion estimator.
///
/// # Panics
///
/// Panics if `k < 2`.
///
/// # Examples
///
/// ```
/// let g = socnet_gen::barbell(4, 2);
/// assert_eq!(g.node_count(), 10); // 4 + 2 + 4
/// ```
pub fn barbell(k: usize, bridge: usize) -> Graph {
    assert!(k >= 2, "barbell cliques need at least 2 nodes, got {k}");
    let n = 2 * k + bridge;
    let mut b = GraphBuilder::new(n);
    let clique = |b: &mut GraphBuilder, base: usize| {
        for i in 0..k as u32 {
            for j in (i + 1)..k as u32 {
                b.add_edge(NodeId(base as u32 + i), NodeId(base as u32 + j));
            }
        }
    };
    clique(&mut b, 0);
    clique(&mut b, k + bridge);
    // Chain: last node of clique 1 -> bridge nodes -> first node of clique 2.
    let mut prev = (k - 1) as u32;
    for i in 0..bridge {
        let cur = (k + i) as u32;
        b.add_edge(NodeId(prev), NodeId(cur));
        prev = cur;
    }
    b.add_edge(NodeId(prev), NodeId((k + bridge) as u32));
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use socnet_core::{exact_diameter, is_connected};

    #[test]
    fn ring_structure() {
        let g = ring(7);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 7);
        assert!(is_connected(&g));
        assert_eq!(exact_diameter(&g), 3);
    }

    #[test]
    fn path_structure() {
        let g = path(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(exact_diameter(&g), 4);
        assert_eq!(path(1).node_count(), 1);
    }

    #[test]
    fn complete_structure() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert!(g.nodes().all(|v| g.degree(v) == 5));
        assert_eq!(complete(0).node_count(), 0);
        assert_eq!(complete(1).edge_count(), 0);
    }

    #[test]
    fn star_structure() {
        let g = star(9);
        assert_eq!(g.degree(NodeId(0)), 8);
        assert!(g.nodes().skip(1).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        // 3*3 horizontal + 2*4 vertical = 17.
        assert_eq!(g.edge_count(), 17);
        assert!(is_connected(&g));
        assert_eq!(exact_diameter(&g), 5);
    }

    #[test]
    fn barbell_structure() {
        let g = barbell(5, 0);
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 2 * 10 + 1);
        assert!(is_connected(&g));

        let g = barbell(3, 4);
        assert_eq!(g.node_count(), 10);
        assert!(is_connected(&g));
        assert_eq!(exact_diameter(&g), 7);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_ring_panics() {
        let _ = ring(2);
    }
}
