use rand::{Rng, RngExt};
use socnet_core::{Graph, GraphBuilder, NodeId};

/// Relaxed caveman graph: `cliques` cliques of `clique_size` nodes, with
/// each edge rewired to a uniformly random node with probability
/// `rewire_p`.
///
/// A ring of "caves" is formed first (each clique's node 0 also links to
/// the next clique's node 0) so the graph is connected even at
/// `rewire_p = 0`; rewiring then shortcuts across the ring.
///
/// This is the registry's model for strict-trust collaboration networks
/// (the paper's Physics and DBLP co-authorship graphs): tight-knit
/// communities, high clustering, and slow mixing, with `rewire_p`
/// controlling exactly how slow.
///
/// # Panics
///
/// Panics if `cliques == 0`, `clique_size < 2`, or `rewire_p` is outside
/// `[0, 1]`.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(5);
/// let g = socnet_gen::relaxed_caveman(20, 10, 0.05, &mut rng);
/// assert_eq!(g.node_count(), 200);
/// assert!(socnet_core::is_connected(&g));
/// ```
pub fn relaxed_caveman<R: Rng + ?Sized>(
    cliques: usize,
    clique_size: usize,
    rewire_p: f64,
    rng: &mut R,
) -> Graph {
    assert!(clique_size >= 2, "clique size must be at least 2, got {clique_size}");
    caveman_with_sizes(&vec![clique_size; cliques], rewire_p, rng)
}

/// Relaxed caveman graph over *heterogeneous* clique sizes drawn
/// uniformly from `min_size..=max_size`.
///
/// Real collaboration networks mix small and large author groups; the
/// size spread makes the `k`-core profile shrink gradually with `k` and
/// fragment into the multiple small cores the paper observes on its
/// Physics and DBLP datasets, instead of the single-size cliff a uniform
/// caveman graph produces.
///
/// # Panics
///
/// Panics if `cliques == 0`, `min_size < 2`, `min_size > max_size`, or
/// `rewire_p` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(5);
/// let g = socnet_gen::heterogeneous_caveman(30, 3, 12, 0.05, &mut rng);
/// assert!(g.node_count() >= 90 && g.node_count() <= 360);
/// assert!(socnet_core::is_connected(&g));
/// ```
pub fn heterogeneous_caveman<R: Rng + ?Sized>(
    cliques: usize,
    min_size: usize,
    max_size: usize,
    rewire_p: f64,
    rng: &mut R,
) -> Graph {
    assert!(min_size >= 2, "clique size must be at least 2, got {min_size}");
    assert!(min_size <= max_size, "min size {min_size} exceeds max size {max_size}");
    let sizes: Vec<usize> =
        (0..cliques).map(|_| rng.random_range(min_size..=max_size)).collect();
    caveman_with_sizes(&sizes, rewire_p, rng)
}

/// Shared caveman construction over an explicit clique-size list.
fn caveman_with_sizes<R: Rng + ?Sized>(sizes: &[usize], rewire_p: f64, rng: &mut R) -> Graph {
    let cliques = sizes.len();
    assert!(cliques > 0, "need at least one clique");
    assert!((0.0..=1.0).contains(&rewire_p), "rewire_p {rewire_p} out of [0, 1]");
    debug_assert!(sizes.iter().all(|&s| s >= 2));

    let n: usize = sizes.iter().sum();
    let n_u = n as u32;
    let norm = |a: u32, b: u32| if a < b { (a, b) } else { (b, a) };
    let mut present = std::collections::HashSet::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();

    let mut bases = Vec::with_capacity(cliques);
    let mut acc = 0u32;
    for &s in sizes {
        bases.push(acc);
        acc += s as u32;
    }

    for (c, &size) in sizes.iter().enumerate() {
        let base = bases[c];
        for i in 0..size as u32 {
            for j in (i + 1)..size as u32 {
                let e = (base + i, base + j);
                edges.push(e);
                present.insert(e);
            }
        }
        // Ring of caves through each clique's node 0.
        if cliques > 1 {
            let next = bases[(c + 1) % cliques];
            let e = norm(base, next);
            if present.insert(e) {
                edges.push(e);
            }
        }
    }

    if rewire_p > 0.0 && n > 2 {
        for i in 0..edges.len() {
            if rng.random_range(0.0..1.0) < rewire_p {
                let (u, old_v) = edges[i];
                // Try a handful of replacements; keep the edge if the
                // neighborhood is saturated.
                for _ in 0..16 {
                    let new_v = rng.random_range(0..n_u);
                    if new_v != u && !present.contains(&norm(u, new_v)) {
                        present.remove(&norm(u, old_v));
                        present.insert(norm(u, new_v));
                        edges[i] = norm(u, new_v);
                        break;
                    }
                }
            }
        }
    }

    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_edge(NodeId(u), NodeId(v));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use socnet_core::{global_clustering, is_connected};

    #[test]
    fn unrewired_is_a_ring_of_cliques() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = relaxed_caveman(5, 4, 0.0, &mut rng);
        assert_eq!(g.node_count(), 20);
        // 5 cliques of C(4,2)=6 edges plus 5 ring edges.
        assert_eq!(g.edge_count(), 35);
        assert!(is_connected(&g));
        assert!(global_clustering(&g) > 0.6);
    }

    #[test]
    fn single_clique_has_no_ring_edge() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = relaxed_caveman(1, 6, 0.0, &mut rng);
        assert_eq!(g.edge_count(), 15);
    }

    #[test]
    fn rewiring_preserves_edge_count() {
        for p in [0.0, 0.1, 0.5, 1.0] {
            let mut rng = StdRng::seed_from_u64(4);
            let g = relaxed_caveman(10, 6, p, &mut rng);
            assert_eq!(g.edge_count(), 10 * 15 + 10, "p = {p}");
        }
    }

    #[test]
    fn heavy_rewiring_destroys_clustering() {
        let tight = relaxed_caveman(30, 8, 0.0, &mut StdRng::seed_from_u64(2));
        let loose = relaxed_caveman(30, 8, 1.0, &mut StdRng::seed_from_u64(2));
        assert!(global_clustering(&tight) > 3.0 * global_clustering(&loose));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = relaxed_caveman(8, 5, 0.2, &mut StdRng::seed_from_u64(31));
        let b = relaxed_caveman(8, 5, 0.2, &mut StdRng::seed_from_u64(31));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_cliques_panic() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = relaxed_caveman(3, 1, 0.0, &mut rng);
    }
}
