use rand::{Rng, RngExt};
use socnet_core::{Graph, GraphBuilder, NodeId};

/// Watts–Strogatz small-world graph.
///
/// Starts from a ring lattice where each node connects to its `k` nearest
/// neighbors (`k/2` on each side) and rewires each edge's far endpoint
/// with probability `beta` to a uniform random node, avoiding self-loops
/// and duplicates.
///
/// At `beta = 0` this is the (slow-mixing) lattice; small `beta` adds the
/// shortcuts that make social graphs low-diameter while keeping high
/// clustering — the regime the paper's strict-trust graphs live in.
///
/// # Panics
///
/// Panics if `k` is odd, `k == 0`, `k >= n`, or `beta` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let g = socnet_gen::watts_strogatz(200, 6, 0.1, &mut rng);
/// assert_eq!(g.node_count(), 200);
/// assert_eq!(g.edge_count(), 200 * 3);
/// ```
pub fn watts_strogatz<R: Rng + ?Sized>(n: usize, k: usize, beta: f64, rng: &mut R) -> Graph {
    assert!(k > 0 && k % 2 == 0, "k must be positive and even, got {k}");
    assert!(k < n, "k = {k} must be below n = {n}");
    assert!((0.0..=1.0).contains(&beta), "beta {beta} out of [0, 1]");

    let n_u = n as u32;
    // Edge set as (u, v) pairs we can rewire in place; membership tested
    // against a hash set to keep the graph simple.
    let mut present = std::collections::HashSet::with_capacity(n * k / 2);
    let norm = |a: u32, b: u32| if a < b { (a, b) } else { (b, a) };
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * k / 2);
    for u in 0..n_u {
        for d in 1..=(k / 2) as u32 {
            let v = (u + d) % n_u;
            edges.push((u, v));
            present.insert(norm(u, v));
        }
    }

    for i in 0..edges.len() {
        if beta > 0.0 && rng.random_range(0.0..1.0) < beta {
            let (u, old_v) = edges[i];
            // Bounded retries: if u's neighborhood is (nearly) saturated —
            // incoming rewires can push deg(u) to n−1 even when the graph
            // is not complete — keep the edge rather than searching forever.
            for _ in 0..4 * n {
                let new_v = rng.random_range(0..n_u);
                if new_v != u && !present.contains(&norm(u, new_v)) {
                    present.remove(&norm(u, old_v));
                    present.insert(norm(u, new_v));
                    edges[i] = (u, new_v);
                    break;
                }
            }
        }
    }

    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_edge(NodeId(u), NodeId(v));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use socnet_core::{global_clustering, is_connected};

    #[test]
    fn beta_zero_is_the_lattice() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = watts_strogatz(20, 4, 0.0, &mut rng);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert!(is_connected(&g));
    }

    #[test]
    fn edge_count_is_preserved_by_rewiring() {
        for beta in [0.0, 0.2, 0.7, 1.0] {
            let mut rng = StdRng::seed_from_u64(8);
            let g = watts_strogatz(100, 6, beta, &mut rng);
            assert_eq!(g.edge_count(), 300, "beta = {beta}");
        }
    }

    #[test]
    fn small_beta_keeps_high_clustering() {
        let mut rng = StdRng::seed_from_u64(5);
        let lattice = watts_strogatz(500, 8, 0.0, &mut rng);
        let small = watts_strogatz(500, 8, 0.05, &mut rng);
        let random = watts_strogatz(500, 8, 1.0, &mut rng);
        let (cl, cs, cr) =
            (global_clustering(&lattice), global_clustering(&small), global_clustering(&random));
        assert!(cl > 0.5, "lattice clustering {cl}");
        assert!(cs > 2.0 * cr, "small-world clustering {cs} vs random {cr}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = watts_strogatz(80, 4, 0.3, &mut StdRng::seed_from_u64(1));
        let b = watts_strogatz(80, 4, 0.3, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    fn complete_lattice_edge_case() {
        // k = n - 1 rounded down to even: rewiring has nowhere to go but
        // must not loop forever.
        let mut rng = StdRng::seed_from_u64(1);
        let g = watts_strogatz(6, 4, 1.0, &mut rng);
        assert_eq!(g.edge_count(), 12);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_k_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = watts_strogatz(10, 3, 0.1, &mut rng);
    }
}
