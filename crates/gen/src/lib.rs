//! Random and structured social-graph generators.
//!
//! The paper measures 14 crawled social graphs (its Table I). Those crawls
//! are not redistributable, so this crate provides two substitutes:
//!
//! 1. **Classic generator families** — Erdős–Rényi, Barabási–Albert,
//!    Watts–Strogatz, Holme–Kim, planted-partition (SBM), and relaxed
//!    caveman — each exposing the structural knob the paper's analysis
//!    turns (community structure vs. global attachment).
//! 2. **A synthetic dataset registry** ([`Dataset`]) with one calibrated
//!    counterpart per paper dataset, spanning the same fast-mixing ↔
//!    slow-mixing spectrum: weak-trust online networks are generated with
//!    preferential attachment (fast mixing, single dense core), and
//!    strict-trust collaboration networks with community-heavy models
//!    (slow mixing, fragmented cores).
//!
//! All generators are deterministic given an RNG, and every registry entry
//! derives its stream from a caller-provided seed, so experiments are
//! exactly reproducible.
//!
//! # Examples
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use socnet_gen::{barabasi_albert, Dataset};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let g = barabasi_albert(500, 4, &mut rng);
//! assert_eq!(g.node_count(), 500);
//!
//! let wiki = Dataset::WikiVote.generate_scaled(0.1, 7);
//! assert!(wiki.node_count() > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod barabasi_albert;
mod caveman;
mod datasets;
mod erdos_renyi;
mod holme_kim;
mod regular;
mod sbm;
mod watts_strogatz;

pub use barabasi_albert::barabasi_albert;
pub use caveman::{heterogeneous_caveman, relaxed_caveman};
pub use datasets::{Dataset, DatasetSpec, GeneratorKind, SizeClass, SocialModel};
pub use erdos_renyi::{erdos_renyi_gnm, erdos_renyi_gnp};
pub use holme_kim::holme_kim;
pub use regular::{barbell, complete, grid, path, ring, star};
pub use sbm::{planted_partition, stochastic_block_model};
pub use watts_strogatz::watts_strogatz;
