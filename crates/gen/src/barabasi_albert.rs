use rand::{Rng, RngExt};
use socnet_core::{Graph, GraphBuilder, NodeId};

/// Barabási–Albert preferential attachment.
///
/// Starts from a star of `m_attach + 1` nodes and attaches every later
/// node to `m_attach` distinct existing nodes chosen proportionally to
/// their degree (implemented with the repeated-endpoint trick: sampling a
/// uniform position in the running half-edge list *is* degree-proportional
/// sampling).
///
/// This is the weak-trust "online social network" model of the dataset
/// registry: the resulting graphs have a single dense core, no community
/// structure, and fast-mixing random walks.
///
/// # Panics
///
/// Panics if `m_attach == 0` or `n <= m_attach`.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(9);
/// let g = socnet_gen::barabasi_albert(1000, 3, &mut rng);
/// assert_eq!(g.node_count(), 1000);
/// // (n - m - 1) joins of m edges each, plus the m-node seed star.
/// assert_eq!(g.edge_count(), 3 + (1000 - 4) * 3);
/// ```
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m_attach: usize, rng: &mut R) -> Graph {
    assert!(m_attach >= 1, "attachment degree must be at least 1");
    assert!(n > m_attach, "need more than {m_attach} nodes, got {n}");

    let mut b = GraphBuilder::with_capacity(n, n * m_attach);
    // Running list of half-edge endpoints; uniform draws from it are
    // degree-proportional draws over nodes.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m_attach);

    // Seed: star on nodes 0..=m_attach centered at 0.
    for v in 1..=m_attach as u32 {
        b.add_edge(NodeId(0), NodeId(v));
        endpoints.push(0);
        endpoints.push(v);
    }

    let mut picked = Vec::with_capacity(m_attach);
    for v in (m_attach + 1) as u32..n as u32 {
        picked.clear();
        // Draw m distinct degree-proportional targets.
        while picked.len() < m_attach {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            b.add_edge(NodeId(v), NodeId(t));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use socnet_core::is_connected;

    #[test]
    fn size_and_connectivity() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = barabasi_albert(500, 4, &mut rng);
        assert_eq!(g.node_count(), 500);
        assert!(is_connected(&g), "preferential attachment grows connected");
        // Every late joiner has degree >= m.
        assert!(g.nodes().skip(5).all(|v| g.degree(v) >= 4));
    }

    #[test]
    fn edge_count_formula() {
        let mut rng = StdRng::seed_from_u64(2);
        let (n, m) = (200usize, 5usize);
        let g = barabasi_albert(n, m, &mut rng);
        assert_eq!(g.edge_count(), m + (n - m - 1) * m);
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = barabasi_albert(3000, 3, &mut rng);
        let max = g.max_degree();
        let avg = socnet_core::average_degree(&g);
        assert!(
            max as f64 > 6.0 * avg,
            "hub degree {max} should dwarf the average {avg:.1}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = barabasi_albert(100, 2, &mut StdRng::seed_from_u64(77));
        let b = barabasi_albert(100, 2, &mut StdRng::seed_from_u64(77));
        assert_eq!(a, b);
    }

    #[test]
    fn minimal_sizes() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = barabasi_albert(2, 1, &mut rng);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "more than")]
    fn too_few_nodes_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = barabasi_albert(3, 3, &mut rng);
    }
}
