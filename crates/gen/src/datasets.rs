//! Synthetic counterparts to the paper's Table I datasets.
//!
//! The paper measures crawled graphs that cannot ship with this
//! repository. Each [`Dataset`] entry is a calibrated generator standing
//! in for one of them, chosen so the *qualitative* property the paper
//! keys on survives the substitution:
//!
//! * weak-trust online networks (Wiki-vote, Slashdot, Epinion, Youtube)
//!   are preferential-attachment graphs — fast mixing, one dense core;
//! * strict-trust collaboration networks (Physics co-authorship, DBLP)
//!   are relaxed-caveman community graphs — slow mixing, fragmented cores;
//! * friendship networks in between (Facebook, LiveJournal, Enron) use
//!   block or power-law-cluster models with moderate community structure.
//!
//! Default sizes are scaled down (thousands to tens of thousands of
//! nodes) so the full experiment suite runs on one machine; every
//! experiment binary accepts a scale factor to grow them.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use socnet_core::{largest_component, Graph};

/// Trust model underlying a social graph, following the paper's Sec. II
/// observation that mixing patterns track the social model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SocialModel {
    /// Low-cost online links (vote, follow): fast mixing expected.
    OnlineWeakTrust,
    /// Real-world collaboration ties: slow mixing expected.
    CollaborationStrictTrust,
    /// Friendship networks between the two extremes.
    HybridTrust,
}

impl SocialModel {
    /// Short human-readable label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            SocialModel::OnlineWeakTrust => "online/weak-trust",
            SocialModel::CollaborationStrictTrust => "collab/strict-trust",
            SocialModel::HybridTrust => "hybrid",
        }
    }
}

/// Coarse dataset size bucket, mirroring the paper's figure groupings
/// ("small to medium datasets" vs. "large datasets").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SizeClass {
    /// Thousands of nodes at default scale.
    Small,
    /// Around ten thousand nodes at default scale.
    Medium,
    /// Tens of thousands of nodes at default scale.
    Large,
}

/// The generator family and parameters behind a registry entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GeneratorKind {
    /// Barabási–Albert preferential attachment.
    PreferentialAttachment {
        /// Number of nodes at default scale.
        nodes: usize,
        /// Edges added per joining node.
        m_attach: usize,
    },
    /// Holme–Kim power-law graph with triad formation.
    PowerLawCluster {
        /// Number of nodes at default scale.
        nodes: usize,
        /// Edges added per joining node.
        m_attach: usize,
        /// Probability of the triad-formation step.
        p_triangle: f64,
    },
    /// Relaxed caveman community graph with heterogeneous clique sizes.
    Community {
        /// Number of cliques at default scale.
        cliques: usize,
        /// Smallest clique size.
        min_size: usize,
        /// Largest clique size.
        max_size: usize,
        /// Per-edge rewiring probability.
        rewire_p: f64,
    },
    /// Planted-partition (symmetric SBM) graph.
    Blocks {
        /// Number of communities at default scale.
        communities: usize,
        /// Nodes per community.
        community_size: usize,
        /// Within-community edge probability.
        p_in: f64,
        /// Cross-community edge probability.
        p_out: f64,
    },
}

/// Static description of one synthetic Table-I counterpart.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Display name matching the paper's dataset name.
    pub name: &'static str,
    /// Node count the paper reports for the original crawl.
    pub paper_nodes: usize,
    /// Edge count the paper reports for the original crawl.
    pub paper_edges: usize,
    /// Second largest eigenvalue modulus the paper reports, where the
    /// available text is legible; `None` where it is garbled.
    pub paper_slem: Option<f64>,
    /// Trust model of the original network.
    pub model: SocialModel,
    /// Size bucket at default scale.
    pub size_class: SizeClass,
    /// Generator standing in for the crawl.
    pub kind: GeneratorKind,
}

/// A synthetic counterpart of one of the paper's datasets.
///
/// # Examples
///
/// ```
/// use socnet_gen::{Dataset, SocialModel};
///
/// let g = Dataset::RiceGrad.generate(42);
/// assert!(g.node_count() > 400);
/// assert_eq!(Dataset::WikiVote.spec().model, SocialModel::OnlineWeakTrust);
/// assert_eq!(Dataset::ALL.len(), 15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// Wikipedia adminship votes (fast-mixing benchmark).
    WikiVote,
    /// Slashdot Zoo crawl, Nov 2008.
    SlashdotA,
    /// Slashdot Zoo crawl, Feb 2009.
    SlashdotB,
    /// Enron email graph.
    Enron,
    /// arXiv co-authorship graph (High Energy Physics – Theory analogue).
    Physics1,
    /// arXiv co-authorship graph (High Energy Physics – Phenomenology analogue).
    Physics2,
    /// arXiv co-authorship graph (Astrophysics analogue).
    Physics3,
    /// Epinions who-trusts-whom network.
    Epinion,
    /// DBLP computer-science co-authorship.
    Dblp,
    /// Facebook regional network A.
    FacebookA,
    /// Facebook regional network B.
    FacebookB,
    /// LiveJournal friendship crawl A.
    LiveJournalA,
    /// LiveJournal friendship crawl B.
    LiveJournalB,
    /// Youtube friendship network.
    Youtube,
    /// Rice University CS graduate-student network.
    RiceGrad,
}

impl Dataset {
    /// Every registry entry, in Table-I order.
    pub const ALL: [Dataset; 15] = [
        Dataset::WikiVote,
        Dataset::SlashdotA,
        Dataset::SlashdotB,
        Dataset::Enron,
        Dataset::Physics1,
        Dataset::Physics2,
        Dataset::Physics3,
        Dataset::Epinion,
        Dataset::Dblp,
        Dataset::FacebookA,
        Dataset::FacebookB,
        Dataset::LiveJournalA,
        Dataset::LiveJournalB,
        Dataset::Youtube,
        Dataset::RiceGrad,
    ];

    /// The static spec of this entry.
    pub fn spec(self) -> &'static DatasetSpec {
        use GeneratorKind::*;
        use SizeClass::*;
        use SocialModel::*;
        match self {
            Dataset::WikiVote => &DatasetSpec {
                name: "Wiki-vote",
                paper_nodes: 7_066,
                paper_edges: 100_736,
                paper_slem: Some(0.899),
                model: OnlineWeakTrust,
                size_class: Small,
                kind: PreferentialAttachment { nodes: 3_500, m_attach: 14 },
            },
            Dataset::SlashdotA => &DatasetSpec {
                name: "Slashdot-A",
                paper_nodes: 77_360,
                paper_edges: 546_487,
                paper_slem: None,
                model: OnlineWeakTrust,
                size_class: Medium,
                kind: PreferentialAttachment { nodes: 8_000, m_attach: 11 },
            },
            Dataset::SlashdotB => &DatasetSpec {
                name: "Slashdot-B",
                paper_nodes: 82_168,
                paper_edges: 582_533,
                paper_slem: Some(0.987),
                model: OnlineWeakTrust,
                size_class: Medium,
                kind: PreferentialAttachment { nodes: 8_200, m_attach: 11 },
            },
            Dataset::Enron => &DatasetSpec {
                name: "Enron",
                paper_nodes: 33_696,
                paper_edges: 180_811,
                paper_slem: Some(0.997),
                model: HybridTrust,
                size_class: Small,
                kind: PowerLawCluster { nodes: 6_000, m_attach: 9, p_triangle: 0.55 },
            },
            Dataset::Physics1 => &DatasetSpec {
                name: "Physics-1",
                paper_nodes: 4_158,
                paper_edges: 13_428,
                paper_slem: Some(0.998),
                model: CollaborationStrictTrust,
                size_class: Small,
                kind: Community { cliques: 330, min_size: 3, max_size: 22, rewire_p: 0.06 },
            },
            Dataset::Physics2 => &DatasetSpec {
                name: "Physics-2",
                paper_nodes: 11_204,
                paper_edges: 117_649,
                paper_slem: Some(0.998),
                model: CollaborationStrictTrust,
                size_class: Medium,
                kind: Community { cliques: 700, min_size: 3, max_size: 28, rewire_p: 0.08 },
            },
            Dataset::Physics3 => &DatasetSpec {
                name: "Physics-3",
                paper_nodes: 8_638,
                paper_edges: 24_827,
                paper_slem: Some(0.996),
                model: CollaborationStrictTrust,
                size_class: Small,
                kind: Community { cliques: 560, min_size: 3, max_size: 26, rewire_p: 0.10 },
            },
            Dataset::Epinion => &DatasetSpec {
                name: "Epinion",
                paper_nodes: 75_879,
                paper_edges: 405_740,
                paper_slem: None,
                model: OnlineWeakTrust,
                size_class: Small,
                kind: PreferentialAttachment { nodes: 7_600, m_attach: 11 },
            },
            Dataset::Dblp => &DatasetSpec {
                name: "DBLP",
                paper_nodes: 614_981,
                paper_edges: 1_155_148,
                paper_slem: None,
                model: CollaborationStrictTrust,
                size_class: Large,
                kind: Community { cliques: 1_700, min_size: 3, max_size: 22, rewire_p: 0.04 },
            },
            Dataset::FacebookA => &DatasetSpec {
                name: "Facebook-A",
                paper_nodes: 1_000_000,
                paper_edges: 20_353_734,
                paper_slem: None,
                model: HybridTrust,
                size_class: Large,
                kind: Blocks {
                    communities: 60,
                    community_size: 300,
                    p_in: 0.035,
                    p_out: 0.0008,
                },
            },
            Dataset::FacebookB => &DatasetSpec {
                name: "Facebook-B",
                paper_nodes: 3_000_000,
                paper_edges: 28_377_481,
                paper_slem: Some(0.992),
                model: HybridTrust,
                size_class: Large,
                kind: Blocks {
                    communities: 70,
                    community_size: 320,
                    p_in: 0.030,
                    p_out: 0.0006,
                },
            },
            Dataset::LiveJournalA => &DatasetSpec {
                name: "LiveJournal-A",
                paper_nodes: 4_843_953,
                paper_edges: 42_845_684,
                paper_slem: None,
                model: HybridTrust,
                size_class: Large,
                kind: PowerLawCluster { nodes: 20_000, m_attach: 8, p_triangle: 0.35 },
            },
            Dataset::LiveJournalB => &DatasetSpec {
                name: "LiveJournal-B",
                paper_nodes: 5_204_176,
                paper_edges: 48_942_196,
                paper_slem: None,
                model: HybridTrust,
                size_class: Large,
                kind: PowerLawCluster { nodes: 24_000, m_attach: 8, p_triangle: 0.45 },
            },
            Dataset::Youtube => &DatasetSpec {
                name: "Youtube",
                paper_nodes: 1_134_890,
                paper_edges: 2_987_624,
                paper_slem: None,
                model: OnlineWeakTrust,
                size_class: Large,
                kind: PreferentialAttachment { nodes: 20_000, m_attach: 5 },
            },
            Dataset::RiceGrad => &DatasetSpec {
                name: "Rice-grad",
                paper_nodes: 501,
                paper_edges: 3_255,
                paper_slem: None,
                model: CollaborationStrictTrust,
                size_class: Small,
                kind: Blocks { communities: 4, community_size: 125, p_in: 0.22, p_out: 0.02 },
            },
        }
    }

    /// Display name of the dataset (the paper's name for the original).
    pub fn name(self) -> &'static str {
        self.spec().name
    }

    /// Generates the synthetic counterpart at default scale.
    ///
    /// The result is the largest connected component of the generated
    /// graph (the paper's preprocessing), so node counts can fall
    /// slightly below the configured size for block models.
    pub fn generate(self, seed: u64) -> Graph {
        self.generate_scaled(1.0, seed)
    }

    /// Generates the synthetic counterpart with node counts scaled by
    /// `scale`.
    ///
    /// Density knobs (attachment degree, clique size, probabilities) are
    /// held fixed; only the number of nodes/communities grows, which is
    /// how the originals differ from each other in Table I.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite and positive.
    pub fn generate_scaled(self, scale: f64, seed: u64) -> Graph {
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive, got {scale}");
        // Derive an independent stream per (dataset, seed) pair so one
        // experiment's draws never perturb another's.
        let ordinal = Dataset::ALL.iter().position(|&d| d == self).expect("in ALL") as u64;
        let mut rng = StdRng::seed_from_u64(seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(ordinal + 1)));
        let scaled = |x: usize, min: usize| ((x as f64 * scale).round() as usize).max(min);
        let g = match self.spec().kind {
            GeneratorKind::PreferentialAttachment { nodes, m_attach } => {
                crate::barabasi_albert(scaled(nodes, m_attach + 2), m_attach, &mut rng)
            }
            GeneratorKind::PowerLawCluster { nodes, m_attach, p_triangle } => {
                crate::holme_kim(scaled(nodes, m_attach + 2), m_attach, p_triangle, &mut rng)
            }
            GeneratorKind::Community { cliques, min_size, max_size, rewire_p } => {
                crate::heterogeneous_caveman(scaled(cliques, 2), min_size, max_size, rewire_p, &mut rng)
            }
            GeneratorKind::Blocks { communities, community_size, p_in, p_out } => {
                crate::planted_partition(scaled(communities, 2), community_size, p_in, p_out, &mut rng)
            }
        };
        largest_component(&g).0
    }

    /// Entries in a size class, in registry order.
    pub fn in_class(class: SizeClass) -> Vec<Dataset> {
        Dataset::ALL.iter().copied().filter(|d| d.spec().size_class == class).collect()
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socnet_core::is_connected;

    #[test]
    fn registry_is_complete_and_named() {
        assert_eq!(Dataset::ALL.len(), 15);
        let mut names: Vec<_> = Dataset::ALL.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15, "names must be unique");
    }

    #[test]
    fn small_entries_generate_connected_graphs() {
        for d in [Dataset::RiceGrad, Dataset::Physics1, Dataset::WikiVote] {
            let g = d.generate_scaled(0.2, 7);
            assert!(g.node_count() > 50, "{d} too small: {}", g.node_count());
            assert!(is_connected(&g), "{d} must be its largest component");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Dataset::Physics1.generate_scaled(0.1, 3);
        let b = Dataset::Physics1.generate_scaled(0.1, 3);
        assert_eq!(a, b);
        let c = Dataset::Physics1.generate_scaled(0.1, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn different_datasets_use_independent_streams() {
        let a = Dataset::SlashdotA.generate_scaled(0.05, 9);
        let b = Dataset::SlashdotB.generate_scaled(0.05, 9);
        assert_ne!(a, b, "same seed, different entries must differ");
    }

    #[test]
    fn scaling_grows_node_count() {
        let small = Dataset::WikiVote.generate_scaled(0.05, 1);
        let big = Dataset::WikiVote.generate_scaled(0.2, 1);
        assert!(big.node_count() > 2 * small.node_count());
    }

    #[test]
    fn size_classes_partition_the_registry() {
        let total = Dataset::in_class(SizeClass::Small).len()
            + Dataset::in_class(SizeClass::Medium).len()
            + Dataset::in_class(SizeClass::Large).len();
        assert_eq!(total, Dataset::ALL.len());
        assert!(Dataset::in_class(SizeClass::Small).contains(&Dataset::Physics1));
        assert!(Dataset::in_class(SizeClass::Large).contains(&Dataset::Dblp));
    }

    #[test]
    fn trust_models_match_the_papers_story() {
        assert_eq!(Dataset::WikiVote.spec().model, SocialModel::OnlineWeakTrust);
        assert_eq!(Dataset::Dblp.spec().model, SocialModel::CollaborationStrictTrust);
        assert_eq!(Dataset::FacebookA.spec().model, SocialModel::HybridTrust);
        assert_eq!(SocialModel::HybridTrust.label(), "hybrid");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_scale_panics() {
        let _ = Dataset::WikiVote.generate_scaled(0.0, 1);
    }
}
