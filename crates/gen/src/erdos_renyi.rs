use rand::{Rng, RngExt};
use socnet_core::{Graph, GraphBuilder, NodeId};

/// Erdős–Rényi `G(n, p)`: every node pair is an edge independently with
/// probability `p`.
///
/// Uses geometric skipping, so the running time is `O(n + m)` rather than
/// `O(n²)` — sparse graphs of hundreds of thousands of nodes are cheap.
///
/// # Panics
///
/// Panics if `p` is not within `[0, 1]`.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let g = socnet_gen::erdos_renyi_gnp(1000, 0.01, &mut rng);
/// let expected = 0.01 * 1000.0 * 999.0 / 2.0;
/// assert!((g.edge_count() as f64) > expected * 0.8);
/// assert!((g.edge_count() as f64) < expected * 1.2);
/// ```
pub fn erdos_renyi_gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
    let mut b = GraphBuilder::new(n);
    if p == 0.0 || n < 2 {
        return b.build();
    }
    if p == 1.0 {
        return super::complete(n);
    }
    // Iterate edge slots in lexicographic order, skipping geometrically.
    let log_q = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    let n = n as i64;
    while v < n {
        let r: f64 = rng.random_range(0.0..1.0);
        let skip = ((1.0 - r).ln() / log_q).floor() as i64;
        w += 1 + skip;
        while w >= v && v < n {
            w -= v;
            v += 1;
        }
        if v < n {
            b.add_edge(NodeId(w as u32), NodeId(v as u32));
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges drawn uniformly from
/// all node pairs.
///
/// Uses rejection sampling, which is `O(m)` expected for sparse requests
/// but degrades toward coupon-collector behavior (`O(m log m)`) as `m`
/// approaches the number of pairs; for near-complete graphs prefer
/// [`complete`](crate::complete) minus a sampled set.
///
/// # Panics
///
/// Panics if `m` exceeds the number of node pairs.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let g = socnet_gen::erdos_renyi_gnm(100, 300, &mut rng);
/// assert_eq!(g.edge_count(), 300);
/// ```
pub fn erdos_renyi_gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    let pairs = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(m <= pairs, "cannot place {m} edges among {pairs} node pairs");
    let mut b = GraphBuilder::with_capacity(n, m);
    let mut chosen = std::collections::HashSet::with_capacity(m);
    while chosen.len() < m {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if chosen.insert(key) {
            b.add_edge(NodeId(key.0), NodeId(key.1));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(erdos_renyi_gnp(50, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(erdos_renyi_gnp(10, 1.0, &mut rng).edge_count(), 45);
        assert_eq!(erdos_renyi_gnp(1, 0.5, &mut rng).edge_count(), 0);
        assert_eq!(erdos_renyi_gnp(0, 0.5, &mut rng).node_count(), 0);
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 2000;
        let p = 0.005;
        let g = erdos_renyi_gnp(n, p, &mut rng);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.edge_count() as f64;
        assert!((got - expected).abs() < 0.15 * expected, "got {got}, expected ~{expected}");
    }

    #[test]
    fn gnp_deterministic_per_seed() {
        let a = erdos_renyi_gnp(300, 0.02, &mut StdRng::seed_from_u64(5));
        let b = erdos_renyi_gnp(300, 0.02, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn gnm_exact_count_and_simple() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = erdos_renyi_gnm(50, 200, &mut rng);
        assert_eq!(g.edge_count(), 200);
        for v in g.nodes() {
            assert!(!g.has_edge(v, v));
        }
    }

    #[test]
    fn gnm_full_graph() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = erdos_renyi_gnm(8, 28, &mut rng);
        assert_eq!(g.edge_count(), 28);
        assert!(g.nodes().all(|v| g.degree(v) == 7));
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn gnm_overfull_panics() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ = erdos_renyi_gnm(4, 7, &mut rng);
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn gnp_bad_probability_panics() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ = erdos_renyi_gnp(4, 1.5, &mut rng);
    }
}
