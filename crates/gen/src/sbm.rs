use rand::{Rng, RngExt};
use socnet_core::{Graph, GraphBuilder, NodeId};

/// Stochastic block model over arbitrary community sizes.
///
/// `sizes[i]` nodes form community `i`; a pair inside community `i` is an
/// edge with probability `p_in`, a pair across communities with
/// probability `p_out`. Within-block and cross-block generation both use
/// geometric skipping, so sparse instances cost `O(n + m)`.
///
/// Nodes are numbered community by community: community `i` owns the
/// contiguous range starting at `sizes[..i].sum()`.
///
/// # Panics
///
/// Panics if any probability is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(2);
/// let g = socnet_gen::stochastic_block_model(&[50, 50, 50], 0.3, 0.01, &mut rng);
/// assert_eq!(g.node_count(), 150);
/// ```
pub fn stochastic_block_model<R: Rng + ?Sized>(
    sizes: &[usize],
    p_in: f64,
    p_out: f64,
    rng: &mut R,
) -> Graph {
    assert!((0.0..=1.0).contains(&p_in), "p_in {p_in} out of [0, 1]");
    assert!((0.0..=1.0).contains(&p_out), "p_out {p_out} out of [0, 1]");
    let n: usize = sizes.iter().sum();
    let mut b = GraphBuilder::new(n);

    let mut starts = Vec::with_capacity(sizes.len());
    let mut acc = 0usize;
    for &s in sizes {
        starts.push(acc);
        acc += s;
    }

    // Within-community pairs.
    for (ci, &size) in sizes.iter().enumerate() {
        let base = starts[ci];
        sample_pairs(size * size.saturating_sub(1) / 2, p_in, rng, |idx| {
            let (i, j) = unrank_pair(idx);
            b.add_edge(NodeId((base + i) as u32), NodeId((base + j) as u32));
        });
    }
    // Cross-community pairs, block by block.
    for ci in 0..sizes.len() {
        for cj in (ci + 1)..sizes.len() {
            let (bi, bj) = (starts[ci], starts[cj]);
            let (si, sj) = (sizes[ci], sizes[cj]);
            sample_pairs(si * sj, p_out, rng, |idx| {
                let (i, j) = (idx / sj, idx % sj);
                b.add_edge(NodeId((bi + i) as u32), NodeId((bj + j) as u32));
            });
        }
    }
    b.build()
}

/// Planted-partition model: `communities` equal communities of
/// `community_size` nodes.
///
/// This is the symmetric special case of [`stochastic_block_model`], and
/// the registry's model for graphs with pronounced community structure.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(2);
/// let g = socnet_gen::planted_partition(4, 25, 0.4, 0.02, &mut rng);
/// assert_eq!(g.node_count(), 100);
/// ```
pub fn planted_partition<R: Rng + ?Sized>(
    communities: usize,
    community_size: usize,
    p_in: f64,
    p_out: f64,
    rng: &mut R,
) -> Graph {
    let sizes = vec![community_size; communities];
    stochastic_block_model(&sizes, p_in, p_out, rng)
}

/// Visits each of `total` slots independently with probability `p`, by
/// geometric skipping.
fn sample_pairs<R: Rng + ?Sized>(
    total: usize,
    p: f64,
    rng: &mut R,
    mut visit: impl FnMut(usize),
) {
    if total == 0 || p <= 0.0 {
        return;
    }
    if p >= 1.0 {
        for idx in 0..total {
            visit(idx);
        }
        return;
    }
    let log_q = (1.0 - p).ln();
    let mut idx: f64 = -1.0;
    loop {
        let r: f64 = rng.random_range(0.0..1.0);
        idx += 1.0 + ((1.0 - r).ln() / log_q).floor();
        if idx >= total as f64 {
            return;
        }
        visit(idx as usize);
    }
}

/// Inverse of the triangular ranking of pairs `(i, j)` with `j < i`:
/// `rank = i(i-1)/2 + j`.
fn unrank_pair(rank: usize) -> (usize, usize) {
    // i is the largest integer with i(i-1)/2 <= rank.
    let mut i = ((2.0 * rank as f64 + 0.25).sqrt() + 0.5) as usize;
    while i * (i.saturating_sub(1)) / 2 > rank {
        i -= 1;
    }
    while (i + 1) * i / 2 <= rank {
        i += 1;
    }
    let j = rank - i * (i - 1) / 2;
    (i, j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unrank_pair_is_bijective() {
        let mut seen = std::collections::HashSet::new();
        for rank in 0..45 {
            let (i, j) = unrank_pair(rank);
            assert!(j < i, "rank {rank} gave ({i}, {j})");
            assert!(i < 10);
            assert_eq!(i * (i - 1) / 2 + j, rank);
            assert!(seen.insert((i, j)));
        }
    }

    #[test]
    fn block_density_separation() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = planted_partition(4, 50, 0.3, 0.01, &mut rng);
        // Count in-community vs cross-community edges.
        let comm = |v: NodeId| v.index() / 50;
        let (mut inside, mut cross) = (0usize, 0usize);
        for (u, v) in g.edges() {
            if comm(u) == comm(v) {
                inside += 1;
            } else {
                cross += 1;
            }
        }
        // Expected: inside ≈ 4 * C(50,2) * 0.3 = 1470, cross ≈ 6*2500*0.01 = 150.
        assert!(inside > 1100 && inside < 1850, "inside = {inside}");
        assert!(cross > 75 && cross < 260, "cross = {cross}");
    }

    #[test]
    fn extreme_probabilities() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = planted_partition(2, 10, 1.0, 0.0, &mut rng);
        assert_eq!(g.edge_count(), 2 * 45);
        assert_eq!(socnet_core::connected_components(&g).count, 2);

        let g = planted_partition(2, 10, 0.0, 0.0, &mut rng);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn heterogeneous_sizes() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = stochastic_block_model(&[10, 0, 30], 0.5, 0.05, &mut rng);
        assert_eq!(g.node_count(), 40);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = planted_partition(3, 30, 0.2, 0.02, &mut StdRng::seed_from_u64(11));
        let b = planted_partition(3, 30, 0.2, 0.02, &mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn bad_p_in_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = planted_partition(2, 5, -0.1, 0.0, &mut rng);
    }
}
