use rand::{Rng, RngExt};
use socnet_core::{Graph, GraphBuilder, NodeId};

/// Holme–Kim power-law graph with tunable clustering.
///
/// Like [`barabasi_albert`](crate::barabasi_albert), every new node
/// attaches to `m_attach` existing nodes, but after each preferential
/// attachment step a *triad formation* step follows with probability
/// `p_triangle`: the next link goes to a random neighbor of the previous
/// target, closing a triangle.
///
/// This produces scale-free graphs with high clustering — the hybrid
/// regime between the registry's weak-trust (pure BA) and strict-trust
/// (community) models.
///
/// # Panics
///
/// Panics if `m_attach == 0`, `n <= m_attach`, or `p_triangle` is outside
/// `[0, 1]`.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(4);
/// let g = socnet_gen::holme_kim(1000, 4, 0.7, &mut rng);
/// assert_eq!(g.node_count(), 1000);
/// ```
pub fn holme_kim<R: Rng + ?Sized>(
    n: usize,
    m_attach: usize,
    p_triangle: f64,
    rng: &mut R,
) -> Graph {
    assert!(m_attach >= 1, "attachment degree must be at least 1");
    assert!(n > m_attach, "need more than {m_attach} nodes, got {n}");
    assert!((0.0..=1.0).contains(&p_triangle), "p_triangle {p_triangle} out of [0, 1]");

    let mut b = GraphBuilder::with_capacity(n, n * m_attach);
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m_attach);
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];

    let link = |b: &mut GraphBuilder,
                    endpoints: &mut Vec<u32>,
                    adj: &mut Vec<Vec<u32>>,
                    u: u32,
                    v: u32| {
        b.add_edge(NodeId(u), NodeId(v));
        endpoints.push(u);
        endpoints.push(v);
        adj[u as usize].push(v);
        adj[v as usize].push(u);
    };

    for v in 1..=m_attach as u32 {
        link(&mut b, &mut endpoints, &mut adj, 0, v);
    }

    for v in (m_attach + 1) as u32..n as u32 {
        let mut picked: Vec<u32> = Vec::with_capacity(m_attach);
        let mut last_target: Option<u32> = None;
        while picked.len() < m_attach {
            let mut target = None;
            if let Some(prev) = last_target {
                if rng.random_range(0.0..1.0) < p_triangle {
                    // Triad formation: try a random neighbor of `prev`.
                    let nbrs = &adj[prev as usize];
                    let cand = nbrs[rng.random_range(0..nbrs.len())];
                    if cand != v && !picked.contains(&cand) {
                        target = Some(cand);
                    }
                }
            }
            let t = target.unwrap_or_else(|| {
                // Preferential attachment draw (rejecting duplicates).
                loop {
                    let t = endpoints[rng.random_range(0..endpoints.len())];
                    if t != v && !picked.contains(&t) {
                        return t;
                    }
                }
            });
            picked.push(t);
            last_target = Some(t);
        }
        for &t in &picked {
            link(&mut b, &mut endpoints, &mut adj, v, t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use socnet_core::{global_clustering, is_connected};

    #[test]
    fn size_and_connectivity() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = holme_kim(800, 3, 0.5, &mut rng);
        assert_eq!(g.node_count(), 800);
        assert!(is_connected(&g));
    }

    #[test]
    fn zero_triangle_probability_matches_ba_edge_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let (n, m) = (300usize, 4usize);
        let g = holme_kim(n, m, 0.0, &mut rng);
        assert_eq!(g.edge_count(), m + (n - m - 1) * m);
    }

    #[test]
    fn triad_formation_raises_clustering() {
        let low = holme_kim(2000, 4, 0.0, &mut StdRng::seed_from_u64(3));
        let high = holme_kim(2000, 4, 0.9, &mut StdRng::seed_from_u64(3));
        let (cl, ch) = (global_clustering(&low), global_clustering(&high));
        assert!(ch > 2.0 * cl, "clustering with triads {ch} vs without {cl}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = holme_kim(150, 3, 0.6, &mut StdRng::seed_from_u64(9));
        let b = holme_kim(150, 3, 0.6, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn bad_probability_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = holme_kim(10, 2, 1.2, &mut rng);
    }
}
