//! Property-based tests of the expansion estimators.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet_core::{connected_components, Graph, NodeId};
use socnet_expansion::{
    sampled_set_expansion, EnvelopeExpansion, ExpansionSweep, SourceSelection,
};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..30).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 1..100).prop_map(move |edges| Graph::from_edges(n, edges))
    })
}

proptest! {
    #[test]
    fn envelope_levels_conserve_the_component(g in arb_graph()) {
        let comps = connected_components(&g);
        for v in g.nodes() {
            let e = EnvelopeExpansion::measure(&g, v);
            let comp_size = comps.sizes[comps.label[v.index()] as usize];
            prop_assert_eq!(e.reached(), comp_size, "source {}", v);
            prop_assert_eq!(e.level_sizes()[0], 1);
        }
    }

    #[test]
    fn envelope_pairs_never_exceed_remaining_nodes(g in arb_graph()) {
        for v in g.nodes() {
            let e = EnvelopeExpansion::measure(&g, v);
            for (env, exp) in e.pairs() {
                prop_assert!(env + exp <= g.node_count());
                prop_assert!(exp >= 1, "levels before the last are non-empty");
            }
        }
    }

    #[test]
    fn alphas_are_positive_and_finite(g in arb_graph()) {
        for v in g.nodes() {
            for a in EnvelopeExpansion::measure(&g, v).alphas() {
                prop_assert!(a > 0.0 && a.is_finite());
            }
        }
    }

    #[test]
    fn sweep_aggregates_match_per_source_measurements(g in arb_graph()) {
        let sweep = ExpansionSweep::measure(&g, SourceSelection::All, 0);
        // Recompute the pool by hand.
        let mut pool: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for v in g.nodes() {
            for (env, exp) in EnvelopeExpansion::measure(&g, v).pairs() {
                pool.entry(env).or_default().push(exp);
            }
        }
        prop_assert_eq!(sweep.stats().len(), pool.len());
        for s in sweep.stats() {
            let vals = &pool[&s.set_size];
            prop_assert_eq!(s.samples, vals.len());
            prop_assert_eq!(s.min, *vals.iter().min().expect("nonempty"));
            prop_assert_eq!(s.max, *vals.iter().max().expect("nonempty"));
            let mean = vals.iter().sum::<usize>() as f64 / vals.len() as f64;
            prop_assert!((s.mean - mean).abs() < 1e-9);
        }
    }

    #[test]
    fn sampled_sets_bound_envelope_alpha_from_below(
        n in 6usize..24,
        seed in any::<u64>(),
    ) {
        // On a connected graph, the min sampled-set ratio at size s is at
        // most the min envelope ratio at size s (sets subsume balls only
        // in the limit, but both are >= the true alpha; check both are
        // positive and consistent).
        let g = socnet_gen::ring(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let est = sampled_set_expansion(&g, 3, 20, &mut rng).expect("feasible on a ring");
        prop_assert!(est.min_ratio > 0.0);
        prop_assert!(est.min_ratio <= est.mean_ratio + 1e-9);
        prop_assert!(est.mean_ratio <= est.max_ratio + 1e-9);
        // A 3-arc of a ring has exactly 2 neighbors.
        prop_assert!((est.min_ratio - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn star_envelopes_from_every_leaf(n in 3usize..40) {
        let g = socnet_gen::star(n);
        for leaf in 1..n {
            let e = EnvelopeExpansion::measure(&g, NodeId(leaf as u32));
            prop_assert_eq!(e.level_sizes(), &[1, 1, n - 2][..]);
        }
    }
}
