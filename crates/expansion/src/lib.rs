//! Graph expansion measurement via BFS envelopes.
//!
//! Implements the paper's Sec. III-D estimator, the restricted
//! (connected-set) expansion used by GateKeeper:
//!
//! * an **envelope** `Env_i` around a core node is the set of all nodes
//!   within hop distance `i`;
//! * its **expansion** `Exp_i` is the next BFS level, and the expansion
//!   factor is `α_i = |Exp_i| / |Env_i| = L_{i+1} / Σ_{j≤i} L_j` (Eq. 4).
//!
//! [`EnvelopeExpansion`] computes the per-source series; an
//! [`ExpansionSweep`] repeats it with *every* node as the core (or a
//! sample) and aggregates, per envelope size, the min/mean/max neighbor
//! counts (Figure 3) and the expected expansion factor (Figure 4).
//! [`sampled_set_expansion`] additionally estimates the expansion of
//! random connected sets that are not BFS balls.
//!
//! # Examples
//!
//! ```
//! use socnet_core::NodeId;
//! use socnet_expansion::EnvelopeExpansion;
//! use socnet_gen::star;
//!
//! // From the hub of a star, one hop covers everything.
//! let g = star(10);
//! let e = EnvelopeExpansion::measure(&g, NodeId(0));
//! assert_eq!(e.alphas(), vec![9.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod envelope;
mod setexp;

pub use aggregate::{ExpansionSweep, SetSizeStats, SourceSelection};
pub use envelope::EnvelopeExpansion;
pub use setexp::{sampled_set_expansion, SetExpansionEstimate};
