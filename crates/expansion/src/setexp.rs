//! Sampled vertex expansion of random connected sets.
//!
//! BFS envelopes (the GateKeeper estimator) only cover ball-shaped sets.
//! The general vertex expansion of Eq. (3) minimizes over *all* connected
//! sets, whose number is exponential; this module estimates it by growing
//! many random connected sets and taking the worst ratio observed —
//! an upper bound on the true `α` that tightens with more trials.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};
use socnet_core::{random_node, Graph, NodeId};

/// Aggregate expansion of sampled connected sets of one size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SetExpansionEstimate {
    /// The set size `|S|` that was sampled.
    pub set_size: usize,
    /// Number of sets grown.
    pub trials: usize,
    /// Worst `|N(S)|/|S|` seen — an upper bound on the graph's `α` at
    /// this set size.
    pub min_ratio: f64,
    /// Mean ratio over trials.
    pub mean_ratio: f64,
    /// Best ratio seen.
    pub max_ratio: f64,
}

/// Grows `trials` random connected sets of `set_size` nodes and measures
/// the neighbor-set ratio `|N(S)|/|S|` of each.
///
/// Each set starts at a uniform node and grows by repeatedly adopting a
/// uniformly chosen frontier neighbor, which reaches set shapes BFS balls
/// cannot (elongated, tentacled sets — the ones that minimize expansion).
/// Trials whose component is exhausted before reaching `set_size` are
/// discarded; if all are, the function returns `None`.
///
/// # Panics
///
/// Panics if `set_size == 0`, the graph is empty, or `trials == 0`.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use socnet_expansion::sampled_set_expansion;
/// use socnet_gen::complete;
///
/// let g = complete(12);
/// let mut rng = StdRng::seed_from_u64(1);
/// let est = sampled_set_expansion(&g, 4, 20, &mut rng).unwrap();
/// // Any 4 nodes of K12 neighbor the 8 others.
/// assert_eq!(est.min_ratio, 2.0);
/// assert_eq!(est.max_ratio, 2.0);
/// ```
pub fn sampled_set_expansion<R: Rng + ?Sized>(
    graph: &Graph,
    set_size: usize,
    trials: usize,
    rng: &mut R,
) -> Option<SetExpansionEstimate> {
    assert!(set_size > 0, "set size must be positive");
    assert!(trials > 0, "need at least one trial");
    assert!(graph.node_count() > 0, "cannot sample from an empty graph");

    let n = graph.node_count();
    let mut in_set = vec![false; n];
    let mut frontier: Vec<NodeId> = Vec::new();
    let mut ratios: Vec<f64> = Vec::with_capacity(trials);

    for _ in 0..trials {
        in_set.fill(false);
        frontier.clear();
        let seed_node = random_node(graph, rng);
        in_set[seed_node.index()] = true;
        frontier.extend(graph.neighbors(seed_node).iter().filter(|v| !in_set[v.index()]));
        let mut size = 1usize;

        while size < set_size && !frontier.is_empty() {
            let pick = rng.random_range(0..frontier.len());
            let v = frontier.swap_remove(pick);
            if in_set[v.index()] {
                continue;
            }
            in_set[v.index()] = true;
            size += 1;
            frontier.extend(graph.neighbors(v).iter().filter(|u| !in_set[u.index()]));
        }
        if size < set_size {
            continue; // component exhausted
        }
        // |N(S)|: distinct out-neighbors.
        let mut seen = vec![false; n];
        let mut boundary = 0usize;
        for i in 0..n {
            if in_set[i] {
                for &u in graph.neighbors(NodeId(i as u32)) {
                    if !in_set[u.index()] && !seen[u.index()] {
                        seen[u.index()] = true;
                        boundary += 1;
                    }
                }
            }
        }
        ratios.push(boundary as f64 / set_size as f64);
    }

    if ratios.is_empty() {
        return None;
    }
    let trials_done = ratios.len();
    let min = ratios.iter().copied().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mean = ratios.iter().sum::<f64>() / trials_done as f64;
    Some(SetExpansionEstimate {
        set_size,
        trials: trials_done,
        min_ratio: min,
        mean_ratio: mean,
        max_ratio: max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use socnet_gen::{barbell, complete, ring};

    #[test]
    fn ring_sets_expand_by_two() {
        let g = ring(20);
        let mut rng = StdRng::seed_from_u64(2);
        let est = sampled_set_expansion(&g, 5, 30, &mut rng).expect("feasible");
        // A connected arc of a ring always has exactly 2 neighbors.
        assert_eq!(est.min_ratio, 0.4);
        assert_eq!(est.max_ratio, 0.4);
        assert_eq!(est.trials, 30);
    }

    #[test]
    fn barbell_worst_set_is_one_clique() {
        let g = barbell(6, 0);
        let mut rng = StdRng::seed_from_u64(4);
        let est = sampled_set_expansion(&g, 6, 400, &mut rng).expect("feasible");
        // Best (worst-expansion) set of size 6 is one clique: 1 neighbor.
        assert!((est.min_ratio - 1.0 / 6.0).abs() < 1e-12, "min {}", est.min_ratio);
    }

    #[test]
    fn oversized_sets_are_rejected() {
        let g = complete(5);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sampled_set_expansion(&g, 6, 5, &mut rng).is_none());
    }

    #[test]
    fn singleton_sets_measure_degree() {
        let g = socnet_gen::star(8);
        let mut rng = StdRng::seed_from_u64(7);
        let est = sampled_set_expansion(&g, 1, 200, &mut rng).expect("feasible");
        // Singletons are either the hub (7 neighbors) or a leaf (1).
        assert_eq!(est.min_ratio, 1.0);
        assert_eq!(est.max_ratio, 7.0);
    }

    #[test]
    fn estimates_are_deterministic_per_seed() {
        let g = ring(15);
        let a = sampled_set_expansion(&g, 4, 10, &mut StdRng::seed_from_u64(3));
        let b = sampled_set_expansion(&g, 4, 10, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "set size must be positive")]
    fn zero_set_size_panics() {
        let g = ring(5);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = sampled_set_expansion(&g, 0, 1, &mut rng);
    }
}
