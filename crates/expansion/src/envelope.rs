use serde::{Deserialize, Serialize};
use socnet_core::{Bfs, Csr, CsrBfs, Graph, GraphError, NodeId};

/// The envelope-expansion series of one core node (the paper's Eq. 4).
///
/// Built from the BFS tree rooted at the core: `level_sizes[i]` is `L_i`,
/// the number of nodes at distance exactly `i`, so the envelope at depth
/// `i` has `Σ_{j≤i} L_j` nodes and expands into `L_{i+1}` neighbors.
///
/// # Examples
///
/// ```
/// use socnet_core::NodeId;
/// use socnet_expansion::EnvelopeExpansion;
/// use socnet_gen::ring;
///
/// let g = ring(8);
/// let e = EnvelopeExpansion::measure(&g, NodeId(0));
/// assert_eq!(e.level_sizes(), &[1, 2, 2, 2, 1]);
/// // α_0 = 2/1, α_1 = 2/3, α_2 = 2/5, α_3 = 1/7.
/// assert_eq!(e.alphas()[0], 2.0);
/// assert!((e.alphas()[1] - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnvelopeExpansion {
    source: NodeId,
    level_sizes: Vec<usize>,
}

impl EnvelopeExpansion {
    /// Measures the series for `source` with a fresh BFS.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn measure(graph: &Graph, source: NodeId) -> Self {
        let mut bfs = Bfs::new(graph);
        Self::measure_with(graph, source, &mut bfs)
    }

    /// Fallible variant of [`measure`](EnvelopeExpansion::measure) for
    /// callers serving untrusted roots: an out-of-range source is an
    /// error, never a panic.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if `source` is outside
    /// the graph's node range.
    ///
    /// # Examples
    ///
    /// ```
    /// use socnet_core::NodeId;
    /// use socnet_expansion::EnvelopeExpansion;
    /// use socnet_gen::ring;
    ///
    /// let g = ring(8);
    /// assert!(EnvelopeExpansion::try_measure(&g, NodeId(0)).is_ok());
    /// assert!(EnvelopeExpansion::try_measure(&g, NodeId(8)).is_err());
    /// ```
    pub fn try_measure(graph: &Graph, source: NodeId) -> Result<Self, GraphError> {
        graph.check_node(source)?;
        Ok(Self::measure(graph, source))
    }

    /// Measures the series reusing BFS scratch state — the fast path for
    /// sweeps over many sources.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range or `bfs` was sized for another
    /// graph.
    pub fn measure_with(graph: &Graph, source: NodeId, bfs: &mut Bfs) -> Self {
        let level_sizes = bfs.level_sizes(graph, source).to_vec();
        EnvelopeExpansion { source, level_sizes }
    }

    /// [`measure`](EnvelopeExpansion::measure) over compact CSR slabs
    /// with a fresh traversal scratch. The BFS visits nodes in the same
    /// order as the [`Graph`] path, so the series is identical.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn measure_csr(csr: &Csr, source: NodeId) -> Self {
        let mut bfs = CsrBfs::new(csr.node_count());
        Self::measure_csr_with(csr, source, &mut bfs)
    }

    /// Fallible variant of [`measure_csr`](EnvelopeExpansion::measure_csr)
    /// for callers serving untrusted roots.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if `source` is outside
    /// the slabs' node range.
    pub fn try_measure_csr(csr: &Csr, source: NodeId) -> Result<Self, GraphError> {
        if source.index() >= csr.node_count() {
            return Err(GraphError::NodeOutOfRange {
                node: source.index(),
                node_count: csr.node_count(),
            });
        }
        Ok(socnet_core::kernel_timing::timed("expansion_envelope", || {
            Self::measure_csr(csr, source)
        }))
    }

    /// [`measure_csr`](EnvelopeExpansion::measure_csr) reusing BFS
    /// scratch state — the fast path for sweeps over many sources.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range or `bfs` was sized for another
    /// graph.
    pub fn measure_csr_with(csr: &Csr, source: NodeId, bfs: &mut CsrBfs) -> Self {
        let level_sizes = bfs.level_sizes(csr, source.0).to_vec();
        EnvelopeExpansion { source, level_sizes }
    }

    /// The core node the series was measured from.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// `L_i`: nodes at each BFS depth, starting with `L_0 = 1`.
    pub fn level_sizes(&self) -> &[usize] {
        &self.level_sizes
    }

    /// Depth of the deepest non-empty level — the source's eccentricity.
    pub fn eccentricity(&self) -> usize {
        self.level_sizes.len() - 1
    }

    /// Total nodes reached (the source's component size).
    pub fn reached(&self) -> usize {
        self.level_sizes.iter().sum()
    }

    /// The `(|Env_i|, |Exp_i|)` pairs for `i = 0..eccentricity`:
    /// envelope size and the neighbor count it expands into.
    ///
    /// These pairs are the points the paper's Figure 3 scatters.
    pub fn pairs(&self) -> Vec<(usize, usize)> {
        let mut env = 0usize;
        let mut out = Vec::with_capacity(self.level_sizes.len().saturating_sub(1));
        for w in self.level_sizes.windows(2) {
            env += w[0];
            out.push((env, w[1]));
        }
        out
    }

    /// The expansion factors `α_i = L_{i+1} / Σ_{j≤i} L_j`.
    pub fn alphas(&self) -> Vec<f64> {
        self.pairs().into_iter().map(|(env, exp)| exp as f64 / env as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socnet_gen::{complete, grid, path, star};

    #[test]
    fn star_from_leaf() {
        let g = star(6);
        let e = EnvelopeExpansion::measure(&g, NodeId(3));
        assert_eq!(e.level_sizes(), &[1, 1, 4]);
        assert_eq!(e.pairs(), vec![(1, 1), (2, 4)]);
        assert_eq!(e.alphas(), vec![1.0, 2.0]);
        assert_eq!(e.eccentricity(), 2);
    }

    #[test]
    fn complete_graph_expands_everything_at_once() {
        let g = complete(7);
        let e = EnvelopeExpansion::measure(&g, NodeId(0));
        assert_eq!(e.level_sizes(), &[1, 6]);
        assert_eq!(e.alphas(), vec![6.0]);
        assert_eq!(e.reached(), 7);
    }

    #[test]
    fn path_has_unit_expansion() {
        let g = path(5);
        let e = EnvelopeExpansion::measure(&g, NodeId(0));
        assert_eq!(e.level_sizes(), &[1, 1, 1, 1, 1]);
        assert!(e.alphas().iter().zip([1.0, 0.5, 1.0 / 3.0, 0.25]).all(|(a, b)| (a - b).abs() < 1e-12));
    }

    #[test]
    fn grid_center_expands_in_diamonds() {
        let g = grid(5, 5);
        let e = EnvelopeExpansion::measure(&g, NodeId(12)); // center
        assert_eq!(e.level_sizes(), &[1, 4, 8, 8, 4]);
        assert_eq!(e.reached(), 25);
    }

    #[test]
    fn pairs_track_partial_sums() {
        let g = grid(3, 7);
        for s in g.nodes() {
            let e = EnvelopeExpansion::measure(&g, s);
            let pairs = e.pairs();
            let mut env = 1usize;
            for (i, &(got_env, got_exp)) in pairs.iter().enumerate() {
                assert_eq!(got_env, env, "source {s}, level {i}");
                assert_eq!(got_exp, e.level_sizes()[i + 1]);
                env += got_exp;
            }
            assert_eq!(env, e.reached());
        }
    }

    #[test]
    fn csr_series_matches_graph_series_everywhere() {
        for g in [star(6), complete(7), path(5), grid(5, 5), socnet_gen::barbell(4, 2)] {
            let csr = Csr::from_graph(&g);
            let mut scratch = CsrBfs::new(csr.node_count());
            for s in g.nodes() {
                let want = EnvelopeExpansion::measure(&g, s);
                assert_eq!(EnvelopeExpansion::measure_csr(&csr, s), want);
                assert_eq!(EnvelopeExpansion::measure_csr_with(&csr, s, &mut scratch), want);
            }
            let oob = NodeId(g.node_count() as u32);
            assert!(EnvelopeExpansion::try_measure_csr(&csr, oob).is_err());
        }
    }

    #[test]
    fn isolated_source_has_empty_series() {
        let g = socnet_core::Graph::from_edges(3, [(0, 1)]);
        let e = EnvelopeExpansion::measure(&g, NodeId(2));
        assert_eq!(e.level_sizes(), &[1]);
        assert!(e.pairs().is_empty());
        assert!(e.alphas().is_empty());
        assert_eq!(e.eccentricity(), 0);
    }
}
