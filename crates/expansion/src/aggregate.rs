use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use socnet_core::{sample_nodes, Csr, CsrBfs, Graph, NodeId};
use socnet_runner::{par_sweep, ParConfig, StageReport, UnitError};

/// Which nodes to use as expansion cores in a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SourceSelection {
    /// Every node is a core — the paper's full `O(nm)` measurement.
    All,
    /// A uniform sample of this many cores, for larger graphs.
    Sample(usize),
}

/// Neighbor-count statistics for one envelope (set) size.
///
/// One row of the paper's Figure 3: for all measured envelopes of
/// `set_size` nodes, the minimum, mean, and maximum number of neighbors
/// they expand into.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SetSizeStats {
    /// The envelope size `|S|`.
    pub set_size: usize,
    /// Minimum `|N(S)|` observed.
    pub min: usize,
    /// Maximum `|N(S)|` observed.
    pub max: usize,
    /// Mean `|N(S)|` over all observations.
    pub mean: f64,
    /// Number of `(source, depth)` observations aggregated.
    pub samples: usize,
}

impl SetSizeStats {
    /// The expected expansion factor `E[|N(S)|] / |S|` at this set size —
    /// one point of the paper's Figure 4.
    pub fn expansion_factor(&self) -> f64 {
        self.mean / self.set_size as f64
    }
}

/// An aggregated expansion measurement over many cores.
///
/// # Examples
///
/// ```
/// use socnet_expansion::{ExpansionSweep, SourceSelection};
/// use socnet_gen::complete;
///
/// let g = complete(12);
/// let sweep = ExpansionSweep::measure(&g, SourceSelection::All, 0);
/// // Every envelope of size 1 expands into the other 11 nodes.
/// let first = &sweep.stats()[0];
/// assert_eq!(first.set_size, 1);
/// assert_eq!(first.min, 11);
/// assert_eq!(first.expansion_factor(), 11.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpansionSweep {
    stats: Vec<SetSizeStats>,
    sources: usize,
}

impl ExpansionSweep {
    /// Runs the sweep: a BFS from every selected core, pooling the
    /// `(|Env_i|, |Exp_i|)` pairs by envelope size.
    ///
    /// Cores are processed in parallel across available cores of the
    /// machine; per-thread partial aggregates are merged at the end.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty or a sample of 0 sources is requested.
    pub fn measure(graph: &Graph, selection: SourceSelection, seed: u64) -> Self {
        let (sweep, report) =
            Self::measure_reported(graph, selection, seed, &ParConfig::default());
        assert!(
            report.is_complete(),
            "expansion stage degraded: {}",
            report.summary_line()
        );
        sweep
    }

    /// Fault-tolerant variant of [`measure`](ExpansionSweep::measure):
    /// each core's BFS runs as a panic-isolated unit of the parallel
    /// sweep under the config's cancellation token. A failed or
    /// cancelled core contributes no observations;
    /// [`source_count`](ExpansionSweep::source_count) reports only the
    /// cores that actually completed, and the [`StageReport`] itemizes
    /// the rest. Per-core observations are merged in core order after
    /// the sweep, so the statistics are identical at every thread count.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty or a sample of 0 sources is requested.
    pub fn measure_reported(
        graph: &Graph,
        selection: SourceSelection,
        seed: u64,
        par: &ParConfig,
    ) -> (Self, StageReport) {
        Self::measure_reported_csr(graph, &Csr::from_graph(graph), selection, seed, par)
    }

    /// [`measure_reported`](ExpansionSweep::measure_reported) over
    /// prebuilt CSR slabs — the sweep's BFS kernels run on the compact
    /// arrays, and callers that already keep a [`Csr`] skip the
    /// conversion. Results are identical to the graph entry point.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty, the slabs do not match the graph's
    /// node count, or a sample of 0 sources is requested.
    pub fn measure_reported_csr(
        graph: &Graph,
        csr: &Csr,
        selection: SourceSelection,
        seed: u64,
        par: &ParConfig,
    ) -> (Self, StageReport) {
        assert!(graph.node_count() > 0, "cannot sweep an empty graph");
        assert_eq!(csr.node_count(), graph.node_count(), "csr/graph node count mismatch");
        let sources: Vec<NodeId> = match selection {
            SourceSelection::All => graph.nodes().collect(),
            SourceSelection::Sample(k) => {
                assert!(k > 0, "need at least one source");
                sample_nodes(graph, k, &mut StdRng::seed_from_u64(seed))
            }
        };

        // The BFS frontier is per-thread scratch: a sweep allocates one
        // per worker instead of one per core, which is most of the
        // per-unit cost on small graphs.
        let out = par_sweep(
            "expansion",
            &sources,
            par,
            |_, s| format!("core-{}", s.index()),
            || CsrBfs::new(csr.node_count()),
            |bfs, ctx, &s| {
                if ctx.cancel.is_cancelled() {
                    return Err(UnitError::Cancelled);
                }
                let levels = bfs.level_sizes(csr, s.0);
                let mut local: Vec<(usize, usize)> = Vec::with_capacity(levels.len());
                let mut env = 0usize;
                for w in levels.windows(2) {
                    env += w[0];
                    local.push((env, w[1]));
                }
                Ok(local)
            },
        );

        let completed = out.report.completed();
        // Merge per-core observations in core order. The accumulator is
        // all-integer (min/max/sum/count), so the totals are exact and
        // order-independent; merging slotted outputs keeps even the
        // iteration deterministic.
        let mut merged = BTreeMap::<usize, Accumulator>::new();
        for pairs in out.outputs.iter().flatten() {
            for &(size, expansion) in pairs {
                merged.entry(size).or_default().push(expansion);
            }
        }
        let stats = merged
            .into_iter()
            .map(|(set_size, acc)| SetSizeStats {
                set_size,
                min: acc.min,
                max: acc.max,
                mean: acc.sum as f64 / acc.count as f64,
                samples: acc.count,
            })
            .collect();
        (
            ExpansionSweep {
                stats,
                sources: completed,
            },
            out.report,
        )
    }

    /// Per-set-size neighbor statistics, sorted by set size (Figure 3).
    pub fn stats(&self) -> &[SetSizeStats] {
        &self.stats
    }

    /// Number of cores the sweep covered.
    pub fn source_count(&self) -> usize {
        self.sources
    }

    /// `(set size, expected expansion factor)` series (Figure 4).
    pub fn expansion_factor_curve(&self) -> Vec<(usize, f64)> {
        self.stats
            .iter()
            .map(|s| (s.set_size, s.expansion_factor()))
            .collect()
    }

    /// The worst expansion factor observed at any set size up to half the
    /// measured nodes — a conservative estimate of the graph's expansion
    /// constant `α` over BFS-ball sets (Eq. 3 restricted to envelopes).
    pub fn alpha_estimate(&self, total_nodes: usize) -> Option<f64> {
        self.stats
            .iter()
            .filter(|s| s.set_size <= total_nodes / 2 && s.set_size > 0)
            .map(|s| s.min as f64 / s.set_size as f64)
            .min_by(|a, b| a.partial_cmp(b).expect("no NaN"))
    }
}

#[derive(Debug, Default, Clone)]
struct Accumulator {
    min: usize,
    max: usize,
    sum: u64,
    count: usize,
}

impl Accumulator {
    fn push(&mut self, value: usize) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.sum += value as u64;
        self.count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socnet_gen::{barbell, complete, ring};

    #[test]
    fn ring_stats_are_uniform_across_sources() {
        let g = ring(9);
        let sweep = ExpansionSweep::measure(&g, SourceSelection::All, 0);
        // From every source: envelopes of sizes 1,3,5,7 expanding into 2,2,2,2.
        let sizes: Vec<usize> = sweep.stats().iter().map(|s| s.set_size).collect();
        assert_eq!(sizes, vec![1, 3, 5, 7]);
        for s in sweep.stats() {
            if s.set_size < 7 {
                assert_eq!(s.min, 2);
                assert_eq!(s.max, 2);
                assert_eq!(s.samples, 9);
            }
        }
        assert_eq!(sweep.source_count(), 9);
    }

    #[test]
    fn complete_graph_curve() {
        let g = complete(10);
        let sweep = ExpansionSweep::measure(&g, SourceSelection::All, 0);
        let curve = sweep.expansion_factor_curve();
        assert_eq!(curve, vec![(1, 9.0)]);
    }

    #[test]
    fn barbell_alpha_is_poor() {
        let g = barbell(8, 0);
        let sweep = ExpansionSweep::measure(&g, SourceSelection::All, 0);
        let alpha = sweep.alpha_estimate(g.node_count()).expect("has sets");
        // The 8-node clique envelope expands through the single bridge.
        assert!(alpha <= 1.0 / 8.0 + 1e-12, "bottleneck alpha {alpha}");

        let good = ExpansionSweep::measure(&complete(16), SourceSelection::All, 0)
            .alpha_estimate(16)
            .expect("has sets");
        assert!(good > 10.0, "clique alpha {good}");
    }

    #[test]
    fn sampling_subsets_the_sources() {
        let g = ring(50);
        let sweep = ExpansionSweep::measure(&g, SourceSelection::Sample(7), 3);
        assert_eq!(sweep.source_count(), 7);
        for s in sweep.stats() {
            assert!(s.samples <= 7);
            assert!(s.min <= s.max);
            assert!(s.mean >= s.min as f64 && s.mean <= s.max as f64);
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let g = barbell(5, 2);
        let a = ExpansionSweep::measure(&g, SourceSelection::Sample(6), 9);
        let b = ExpansionSweep::measure(&g, SourceSelection::Sample(6), 9);
        assert_eq!(a, b);
    }

    #[test]
    fn sweep_is_identical_at_every_thread_count() {
        let g = socnet_gen::grid(7, 6);
        let run = |threads| {
            let par = ParConfig {
                threads,
                ..Default::default()
            };
            ExpansionSweep::measure_reported(&g, SourceSelection::All, 0, &par).0
        };
        let reference = run(1);
        for threads in [2, 4] {
            assert_eq!(reference, run(threads), "threads={threads}");
        }
    }

    #[test]
    fn csr_sweep_matches_graph_sweep() {
        let g = socnet_gen::grid(5, 4);
        let par = ParConfig::default();
        let (want, _) = ExpansionSweep::measure_reported(&g, SourceSelection::All, 0, &par);
        let csr = Csr::from_graph(&g);
        let (got, _) =
            ExpansionSweep::measure_reported_csr(&g, &csr, SourceSelection::All, 0, &par);
        assert_eq!(got, want);
        let (sampled, _) =
            ExpansionSweep::measure_reported_csr(&g, &csr, SourceSelection::Sample(5), 2, &par);
        assert_eq!(sampled, ExpansionSweep::measure(&g, SourceSelection::Sample(5), 2));
    }

    #[test]
    fn mean_is_between_min_and_max_everywhere() {
        let g = socnet_gen::grid(6, 5);
        let sweep = ExpansionSweep::measure(&g, SourceSelection::All, 0);
        for s in sweep.stats() {
            assert!(s.min as f64 <= s.mean + 1e-12);
            assert!(s.mean <= s.max as f64 + 1e-12);
        }
    }
}
