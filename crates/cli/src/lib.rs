//! Library backing the `socnet` command-line tool.
//!
//! Every subcommand is a pure function from parsed arguments to an output
//! `String`, so the whole CLI is unit-testable without spawning
//! processes. [`run`] dispatches:
//!
//! ```text
//! socnet generate   --model <ba|er|ws|hk|sbm|caveman> | --dataset <name>  [--out FILE]
//! socnet info       <GRAPH>
//! socnet mixing     <GRAPH> [--sources N] [--max-walk T] [--epsilon E] [--time-budget SECS]
//!                   [--threads N]
//! socnet cores      <GRAPH>
//! socnet expansion  <GRAPH> [--sources N]
//! socnet centrality <GRAPH> [--measure betweenness|closeness|degree] [--top K]
//! socnet communities <GRAPH> [--seed S]
//! socnet simulate   --dataset <name> --defense <name> [--sybils N] [--attack-edges G]
//! socnet datasets
//! ```
//!
//! `<GRAPH>` is an edge-list file (`u v` per line, `#` comments), the
//! same format the SNAP crawls in the paper's Table I use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;
mod error;

pub use args::ArgMap;
pub use error::CliError;

/// Runs one CLI invocation, returning the text to print on success.
///
/// # Errors
///
/// Returns [`CliError`] for unknown commands, malformed flags, missing
/// files, or invalid graphs — the binary prints it with usage.
///
/// # Examples
///
/// ```
/// let out = socnet_cli::run(&["datasets".to_string()])?;
/// assert!(out.contains("Wiki-vote"));
/// # Ok::<(), socnet_cli::CliError>(())
/// ```
pub fn run(args: &[String]) -> Result<String, CliError> {
    let (command, rest) = args.split_first().ok_or(CliError::MissingCommand)?;
    if matches!(command.as_str(), "help" | "--help" | "-h") {
        // Help never fails, whatever trails it.
        return Ok(usage().to_string());
    }
    let map = ArgMap::parse(rest)?;
    match command.as_str() {
        "generate" => commands::generate(&map),
        "info" => commands::info(&map),
        "mixing" => commands::mixing(&map),
        "cores" => commands::cores(&map),
        "expansion" => commands::expansion(&map),
        "centrality" => commands::centrality(&map),
        "communities" => commands::communities(&map),
        "simulate" => commands::simulate(&map),
        "datasets" => commands::datasets(&map),
        "help" | "--help" | "-h" => Ok(usage().to_string()),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

/// The usage text shown by `socnet help` and on errors.
pub fn usage() -> &'static str {
    "socnet — social-graph measurement toolkit

USAGE:
  socnet <COMMAND> [FLAGS]

COMMANDS:
  generate     write a synthetic graph as an edge list
               --model ba|er|ws|hk|sbm|caveman [model flags] | --dataset NAME [--scale F]
               [--nodes N] [--seed S] [--out FILE]
  info         descriptive statistics of an edge-list graph
  mixing       mixing time: spectral SLEM, Sinclair bounds, sampled T(eps)
               [--sources N] [--max-walk T] [--epsilon E] [--seed S] [--time-budget SECS]
               [--threads N]
  cores        k-core decomposition and core profile
  expansion    envelope expansion statistics  [--sources N] [--seed S]
  centrality   node rankings  [--measure betweenness|closeness|degree] [--top K]
  communities  label-propagation communities and modularity  [--seed S]
  simulate     end-to-end Sybil attack + defense on a registry dataset
               --dataset NAME --defense gatekeeper|sybilguard|sybillimit|sybilinfer|sumup|community
               [--sybils N] [--attack-edges G] [--scale F] [--seed S]
  datasets     list the synthetic dataset registry
  help         show this message

<GRAPH> arguments are edge-list files: one 'u v' pair per line,
'#' comments allowed."
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|p| p.to_string()).collect()
    }

    #[test]
    fn help_paths() {
        for cmd in ["help", "--help", "-h"] {
            let out = run(&s(&[cmd])).expect("help works");
            assert!(out.contains("USAGE"));
        }
    }

    #[test]
    fn missing_command_errors() {
        assert!(matches!(run(&[]), Err(CliError::MissingCommand)));
    }

    #[test]
    fn unknown_command_errors() {
        match run(&s(&["frobnicate"])) {
            Err(CliError::UnknownCommand(c)) => assert_eq!(c, "frobnicate"),
            other => panic!("expected unknown command, got {other:?}"),
        }
    }

    #[test]
    fn datasets_lists_the_registry() {
        let out = run(&s(&["datasets"])).expect("datasets works");
        for name in ["Wiki-vote", "DBLP", "Rice-grad"] {
            assert!(out.contains(name), "missing {name}");
        }
    }
}
