//! Library backing the `socnet` command-line tool.
//!
//! Every subcommand is a pure function from parsed arguments to an output
//! `String`, so the whole CLI is unit-testable without spawning
//! processes. [`run`] dispatches:
//!
//! ```text
//! socnet generate   --model <ba|er|ws|hk|sbm|caveman> | --dataset <name>  [--out FILE]
//! socnet info       <GRAPH>
//! socnet mixing     <GRAPH> [--sources N] [--max-walk T] [--epsilon E] [--time-budget SECS]
//!                   [--threads N]
//! socnet cores      <GRAPH>
//! socnet expansion  <GRAPH> [--sources N]
//! socnet centrality <GRAPH> [--measure betweenness|closeness|degree] [--top K]
//! socnet communities <GRAPH> [--seed S]
//! socnet simulate   --dataset <name> --defense <name> [--sybils N] [--attack-edges G]
//! socnet datasets
//! ```
//!
//! `<GRAPH>` is an edge-list file (`u v` per line, `#` comments), the
//! same format the SNAP crawls in the paper's Table I use.
//!
//! Every command also accepts the observability flags shared with the
//! experiment binaries — `--log-format pretty|json`, `--log-file PATH`,
//! `--quiet` — and `socnet obs-check FILE...` validates the JSON/JSONL
//! artifacts they produce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::time::Instant;

use socnet_runner::obs::{self, LogFormat};

mod args;
mod commands;
mod error;

pub use args::ArgMap;
pub use error::CliError;

/// Observability flags shared with the experiment binaries. They are
/// stripped before subcommand parsing because [`ArgMap`] treats every
/// `--flag` as taking a value, which `--quiet` does not.
#[derive(Debug, Default)]
struct ObsFlags {
    format: LogFormat,
    log_file: Option<PathBuf>,
    quiet: bool,
}

/// Splits the observability flags out of `args`, returning the rest.
fn split_obs_flags(args: &[String]) -> Result<(Vec<String>, ObsFlags), CliError> {
    let mut rest = Vec::with_capacity(args.len());
    let mut flags = ObsFlags::default();
    let mut it = args.iter();
    while let Some(token) = it.next() {
        match token.as_str() {
            "--log-format" => {
                let raw = it.next().ok_or_else(|| CliError::MissingValue(token.clone()))?;
                flags.format = raw.parse().map_err(|message: String| {
                    CliError::InvalidValue { flag: token.clone(), message }
                })?;
            }
            "--log-file" => {
                let raw = it.next().ok_or_else(|| CliError::MissingValue(token.clone()))?;
                flags.log_file = Some(PathBuf::from(raw));
            }
            "--quiet" => flags.quiet = true,
            _ => rest.push(token.clone()),
        }
    }
    Ok((rest, flags))
}

/// Runs one CLI invocation, returning the text to print on success.
///
/// # Errors
///
/// Returns [`CliError`] for unknown commands, malformed flags, missing
/// files, or invalid graphs — the binary prints it with usage.
///
/// # Examples
///
/// ```
/// let out = socnet_cli::run(&["datasets".to_string()])?;
/// assert!(out.contains("Wiki-vote"));
/// # Ok::<(), socnet_cli::CliError>(())
/// ```
pub fn run(args: &[String]) -> Result<String, CliError> {
    let (args, flags) = split_obs_flags(args)?;
    if let Err(e) = obs::init(flags.format, flags.log_file.as_deref(), flags.quiet) {
        obs::set_global(obs::Logger::stderr(flags.format, flags.quiet));
        obs::warn("log.file_failed", &[("error", e.to_string().into())]);
    }
    let (command, rest) = args.split_first().ok_or(CliError::MissingCommand)?;
    if matches!(command.as_str(), "help" | "--help" | "-h") {
        // Help never fails, whatever trails it.
        return Ok(usage().to_string());
    }
    // Debug level: recorded by a `--log-file` sink, off the terminal
    // unless SOCNET_DEBUG is set — the CLI's own output stays clean.
    obs::debug("cli.start", &[("command", command.as_str().into())]);
    let started = Instant::now();
    let map = ArgMap::parse(rest)?;
    let result = match command.as_str() {
        "generate" => commands::generate(&map),
        "info" => commands::info(&map),
        "mixing" => commands::mixing(&map),
        "cores" => commands::cores(&map),
        "expansion" => commands::expansion(&map),
        "centrality" => commands::centrality(&map),
        "communities" => commands::communities(&map),
        "simulate" => commands::simulate(&map),
        "datasets" => commands::datasets(&map),
        "obs-check" => commands::obs_check(&map),
        "serve" => commands::serve(&map),
        "store" => commands::store(&map),
        "help" | "--help" | "-h" => Ok(usage().to_string()),
        other => Err(CliError::UnknownCommand(other.to_string())),
    };
    let wall = started.elapsed().as_secs_f64();
    match &result {
        Ok(_) => obs::debug(
            "cli.done",
            &[("command", command.as_str().into()), ("wall_s", wall.into())],
        ),
        Err(e) => obs::debug(
            "cli.error",
            &[("command", command.as_str().into()), ("error", e.to_string().into())],
        ),
    }
    result
}

/// The usage text shown by `socnet help` and on errors.
pub fn usage() -> &'static str {
    "socnet — social-graph measurement toolkit

USAGE:
  socnet <COMMAND> [FLAGS]

COMMANDS:
  generate     write a synthetic graph as an edge list
               --model ba|er|ws|hk|sbm|caveman [model flags] | --dataset NAME [--scale F]
               [--nodes N] [--seed S] [--out FILE]
  info         descriptive statistics of an edge-list graph
  mixing       mixing time: spectral SLEM, Sinclair bounds, sampled T(eps)
               [--sources N] [--max-walk T] [--epsilon E] [--seed S] [--time-budget SECS]
               [--threads N]
  cores        k-core decomposition and core profile
  expansion    envelope expansion statistics  [--sources N] [--seed S]
  centrality   node rankings  [--measure betweenness|closeness|degree] [--top K]
  communities  label-propagation communities and modularity  [--seed S]
  simulate     end-to-end Sybil attack + defense on a registry dataset
               --dataset NAME --defense gatekeeper|sybilguard|sybillimit|sybilinfer|sumup|community
               [--sybils N] [--attack-edges G] [--scale F] [--seed S]
  datasets     list the synthetic dataset registry
  obs-check    validate observability artifacts: FILE... (.prom files as
               Prometheus text, trace .jsonl files against the
               socnet-trace-v1 schema, other .jsonl line-by-line,
               everything else as one JSON document)
  serve        online property-query service over the dataset registry
               [--addr HOST:PORT] [--threads N] [--cache-bytes B]
               [--scale F] [--seed S] [--out DIR] [--deadline SECS]
               [--drain-deadline SECS] [--store on|off] [--store-dir DIR]
               [--frontend event|threads] [--max-conns N]
               [--header-deadline SECS] [--shed-highwater N]
               [--tracing on|off] [--trace-ring N]
               SIGTERM drains gracefully and flushes a warm-start
               snapshot (default <out>/store); the next boot hydrates it
  store        inspect/maintain a warm-start snapshot store
               ls|verify|gc [--dir DIR] [--max-age-secs N]
               [--byte-budget B] [--keep-quarantined true|false]
  help         show this message

GLOBAL FLAGS (any command):
  --log-format pretty|json   event rendering (default pretty)
  --log-file PATH            write events to PATH instead of stderr
  --quiet                    suppress stderr events

<GRAPH> arguments are edge-list files: one 'u v' pair per line,
'#' comments allowed."
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `run` re-initializes the process-wide logger, so tests that call
    /// it are serialized to keep the log-file assertions deterministic.
    static RUN_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn locked_run(parts: &[&str]) -> Result<String, CliError> {
        let _guard = RUN_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        let args: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
        run(&args)
    }

    #[test]
    fn help_paths() {
        for cmd in ["help", "--help", "-h"] {
            let out = locked_run(&[cmd]).expect("help works");
            assert!(out.contains("USAGE"));
        }
    }

    #[test]
    fn missing_command_errors() {
        assert!(matches!(locked_run(&[]), Err(CliError::MissingCommand)));
    }

    #[test]
    fn unknown_command_errors() {
        match locked_run(&["frobnicate"]) {
            Err(CliError::UnknownCommand(c)) => assert_eq!(c, "frobnicate"),
            other => panic!("expected unknown command, got {other:?}"),
        }
    }

    #[test]
    fn datasets_lists_the_registry() {
        let out = locked_run(&["datasets"]).expect("datasets works");
        for name in ["Wiki-vote", "DBLP", "Rice-grad"] {
            assert!(out.contains(name), "missing {name}");
        }
    }

    #[test]
    fn obs_flags_are_stripped_before_parsing() {
        // `datasets` rejects every flag, so these only pass if the
        // observability flags never reach ArgMap.
        let out = locked_run(&["datasets", "--quiet", "--log-format", "json"])
            .expect("obs flags are global");
        assert!(out.contains("Wiki-vote"));
        match locked_run(&["datasets", "--log-format", "yaml"]) {
            Err(CliError::InvalidValue { flag, .. }) => assert_eq!(flag, "--log-format"),
            other => panic!("expected invalid log format, got {other:?}"),
        }
        assert!(matches!(
            locked_run(&["datasets", "--log-file"]),
            Err(CliError::MissingValue(_))
        ));
    }

    #[test]
    fn log_file_records_cli_events() {
        let dir = std::env::temp_dir().join("socnet-cli-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let log = dir.join(format!("events-{}.jsonl", std::process::id()));
        let log_s = log.to_str().expect("utf8").to_string();
        locked_run(&["datasets", "--log-format", "json", "--log-file", &log_s])
            .expect("runs");
        let text = std::fs::read_to_string(&log).expect("log written");
        assert!(socnet_runner::json::is_valid_jsonl(&text), "invalid JSONL: {text}");
        assert!(text.contains("\"event\":\"cli.start\""));
        assert!(text.contains("\"event\":\"cli.done\""));
        std::fs::remove_file(log).ok();
    }

    #[test]
    fn obs_check_is_dispatched() {
        // Unknown command still errors; the new subcommand is routed.
        assert!(matches!(
            locked_run(&["obs-check"]),
            Err(CliError::MissingArgument(_))
        ));
    }
}
