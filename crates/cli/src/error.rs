use std::error::Error;
use std::fmt;

use socnet_core::GraphError;

/// Errors the `socnet` CLI reports to the user.
#[derive(Debug)]
pub enum CliError {
    /// No subcommand was given.
    MissingCommand,
    /// The subcommand is not one of the known commands.
    UnknownCommand(String),
    /// A flag was given without its value.
    MissingValue(String),
    /// A flag's value failed to parse or is out of range.
    InvalidValue {
        /// The flag name, e.g. `--nodes`.
        flag: String,
        /// What was wrong with it.
        message: String,
    },
    /// A required flag or positional argument is absent.
    MissingArgument(&'static str),
    /// An unexpected positional argument or unknown flag appeared.
    UnexpectedArgument(String),
    /// Loading or validating a graph failed.
    Graph(GraphError),
    /// An observability artifact failed validation (`obs-check`).
    Artifact {
        /// The file that failed.
        path: String,
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::MissingCommand => write!(f, "no command given"),
            CliError::UnknownCommand(c) => write!(f, "unknown command {c:?}"),
            CliError::MissingValue(flag) => write!(f, "flag {flag} requires a value"),
            CliError::InvalidValue { flag, message } => {
                write!(f, "invalid value for {flag}: {message}")
            }
            CliError::MissingArgument(what) => write!(f, "missing required argument: {what}"),
            CliError::UnexpectedArgument(a) => write!(f, "unexpected argument {a:?}"),
            CliError::Graph(e) => write!(f, "graph error: {e}"),
            CliError::Artifact { path, message } => {
                write!(f, "artifact check failed for {path}: {message}")
            }
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CliError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for CliError {
    fn from(e: GraphError) -> Self {
        CliError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(CliError::MissingCommand.to_string().contains("no command"));
        assert!(CliError::UnknownCommand("x".into()).to_string().contains("\"x\""));
        assert!(CliError::MissingValue("--seed".into()).to_string().contains("--seed"));
        let e = CliError::InvalidValue { flag: "--nodes".into(), message: "not a number".into() };
        assert!(e.to_string().contains("--nodes"));
        assert!(CliError::MissingArgument("<GRAPH>").to_string().contains("<GRAPH>"));
    }

    #[test]
    fn graph_errors_are_wrapped() {
        let inner = GraphError::Parse { line: 3, message: "bad".into() };
        let e = CliError::from(inner);
        assert!(e.to_string().contains("line 3"));
        assert!(e.source().is_some());
    }
}
