use std::collections::BTreeMap;
use std::str::FromStr;

use crate::CliError;

/// Parsed command-line arguments: `--flag value` pairs plus positionals.
///
/// Strict by design: unknown flags are errors (unlike the experiment
/// binaries, which tolerate harness flags), because a typo'd flag on a
/// long-running measurement is worse than a usage error.
///
/// # Examples
///
/// ```
/// use socnet_cli::ArgMap;
///
/// let args: Vec<String> = ["g.txt", "--sources", "50"].map(String::from).to_vec();
/// let map = ArgMap::parse(&args)?;
/// assert_eq!(map.positional(0), Some("g.txt"));
/// assert_eq!(map.get_parsed::<usize>("--sources", 10)?, 50);
/// # Ok::<(), socnet_cli::CliError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArgMap {
    flags: BTreeMap<String, String>,
    positionals: Vec<String>,
}

impl ArgMap {
    /// Parses a flat argument list into flags and positionals.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::MissingValue`] when a `--flag` is the last
    /// token or followed by another flag.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut flags = BTreeMap::new();
        let mut positionals = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(token) = it.next() {
            if let Some(_name) = token.strip_prefix("--") {
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        flags.insert(token.clone(), it.next().expect("peeked").clone());
                    }
                    _ => return Err(CliError::MissingValue(token.clone())),
                }
            } else {
                positionals.push(token.clone());
            }
        }
        Ok(ArgMap { flags, positionals })
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// The required first positional, reported as `what` when missing.
    pub fn require_positional(&self, what: &'static str) -> Result<&str, CliError> {
        self.positional(0).ok_or(CliError::MissingArgument(what))
    }

    /// A flag's raw value, if present.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// A flag's value parsed as `T`, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::InvalidValue`] when present but unparsable.
    pub fn get_parsed<T: FromStr>(&self, flag: &str, default: T) -> Result<T, CliError>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|e: T::Err| CliError::InvalidValue {
                flag: flag.to_string(),
                message: e.to_string(),
            }),
        }
    }

    /// A required flag's value parsed as `T`.
    ///
    /// # Errors
    ///
    /// [`CliError::MissingArgument`] when absent, or
    /// [`CliError::InvalidValue`] when unparsable.
    pub fn require_parsed<T: FromStr>(
        &self,
        flag: &'static str,
    ) -> Result<T, CliError>
    where
        T::Err: std::fmt::Display,
    {
        let raw = self.get(flag).ok_or(CliError::MissingArgument(flag))?;
        raw.parse().map_err(|e: T::Err| CliError::InvalidValue {
            flag: flag.to_string(),
            message: e.to_string(),
        })
    }

    /// Rejects flags outside `allowed` — catches typos before a
    /// long-running measurement starts with silently-default settings.
    pub fn check_allowed(&self, allowed: &[&str]) -> Result<(), CliError> {
        for flag in self.flags.keys() {
            if !allowed.contains(&flag.as_str()) {
                return Err(CliError::UnexpectedArgument(flag.clone()));
            }
        }
        Ok(())
    }

    /// Rejects extra positionals beyond the first `max`.
    pub fn check_positionals(&self, max: usize) -> Result<(), CliError> {
        if self.positionals.len() > max {
            return Err(CliError::UnexpectedArgument(self.positionals[max].clone()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Result<ArgMap, CliError> {
        let v: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
        ArgMap::parse(&v)
    }

    #[test]
    fn flags_and_positionals_mix() {
        let m = parse(&["file.txt", "--seed", "9", "extra"]).expect("parses");
        assert_eq!(m.positional(0), Some("file.txt"));
        assert_eq!(m.positional(1), Some("extra"));
        assert_eq!(m.get("--seed"), Some("9"));
        assert_eq!(m.get("--missing"), None);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(matches!(parse(&["--seed"]), Err(CliError::MissingValue(_))));
        assert!(matches!(
            parse(&["--seed", "--out"]),
            Err(CliError::MissingValue(f)) if f == "--seed"
        ));
    }

    #[test]
    fn parsed_defaults_and_errors() {
        let m = parse(&["--n", "12"]).expect("parses");
        assert_eq!(m.get_parsed::<usize>("--n", 1).expect("ok"), 12);
        assert_eq!(m.get_parsed::<usize>("--k", 7).expect("default"), 7);
        let m = parse(&["--n", "twelve"]).expect("parses");
        assert!(matches!(
            m.get_parsed::<usize>("--n", 1),
            Err(CliError::InvalidValue { .. })
        ));
    }

    #[test]
    fn require_paths() {
        let m = parse(&[]).expect("parses");
        assert!(matches!(
            m.require_positional("<GRAPH>"),
            Err(CliError::MissingArgument("<GRAPH>"))
        ));
        assert!(matches!(
            m.require_parsed::<u64>("--seed"),
            Err(CliError::MissingArgument("--seed"))
        ));
    }

    #[test]
    fn allowed_flag_checking() {
        let m = parse(&["--seed", "1", "--bogus", "2"]).expect("parses");
        assert!(m.check_allowed(&["--seed", "--bogus"]).is_ok());
        assert!(matches!(
            m.check_allowed(&["--seed"]),
            Err(CliError::UnexpectedArgument(f)) if f == "--bogus"
        ));
    }

    #[test]
    fn positional_limit() {
        let m = parse(&["a", "b"]).expect("parses");
        assert!(m.check_positionals(2).is_ok());
        assert!(matches!(
            m.check_positionals(1),
            Err(CliError::UnexpectedArgument(p)) if p == "b"
        ));
    }
}
