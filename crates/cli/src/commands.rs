//! The `socnet` subcommand implementations.
//!
//! Every command is a pure function `(&ArgMap) -> Result<String, CliError>`
//! so the full CLI behavior is covered by unit tests.

use std::fmt::Write as _;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet_centrality::{betweenness, closeness, degree_centrality, rank_by, ClosenessMode};
use socnet_community::{label_propagation, modularity, LocalCommunity};
use socnet_core::{
    pseudo_diameter, read_edge_list_path, write_edge_list_path, Graph, GraphSummary, NodeId,
};
use socnet_expansion::{ExpansionSweep, SourceSelection};
use socnet_gen::Dataset;
use socnet_kcore::{core_profiles, coreness_ecdf, CoreDecomposition};
use socnet_mixing::{sinclair_bounds, slem, MixingConfig, MixingMeasurement, SpectralConfig};
use socnet_runner::{json, CancelToken, ParConfig};
use socnet_sybil::{
    eval, AttackedGraph, GateKeeper, GateKeeperConfig, SumUp, SumUpConfig, SybilAttack,
    SybilGuard, SybilGuardConfig, SybilInfer, SybilInferConfig, SybilLimit, SybilLimitConfig,
    SybilTopology,
};

use crate::{ArgMap, CliError};

fn load(map: &ArgMap) -> Result<Graph, CliError> {
    let path = map.require_positional("<GRAPH> (edge-list file)")?;
    Ok(read_edge_list_path(path)?)
}

fn invalid(flag: &str, message: impl Into<String>) -> CliError {
    CliError::InvalidValue { flag: flag.to_string(), message: message.into() }
}

/// Looks up a registry dataset by its (case-insensitive) display name.
fn dataset_by_name(name: &str) -> Result<Dataset, CliError> {
    Dataset::ALL
        .into_iter()
        .find(|d| d.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            invalid(
                "--dataset",
                format!(
                    "unknown dataset {name:?}; run `socnet datasets` for the list"
                ),
            )
        })
}

/// `socnet generate`
pub fn generate(map: &ArgMap) -> Result<String, CliError> {
    map.check_positionals(0)?;
    map.check_allowed(&[
        "--model",
        "--dataset",
        "--scale",
        "--nodes",
        "--edges-per-node",
        "--p",
        "--p-in",
        "--p-out",
        "--k",
        "--beta",
        "--triangle-p",
        "--communities",
        "--community-size",
        "--cliques",
        "--clique-size",
        "--rewire-p",
        "--seed",
        "--out",
    ])?;
    let seed: u64 = map.get_parsed("--seed", 42)?;
    let mut rng = StdRng::seed_from_u64(seed);

    let graph = match (map.get("--dataset"), map.get("--model")) {
        (Some(name), None) => {
            let scale: f64 = map.get_parsed("--scale", 1.0)?;
            if !(scale.is_finite() && scale > 0.0) {
                return Err(invalid("--scale", "must be a positive number"));
            }
            dataset_by_name(name)?.generate_scaled(scale, seed)
        }
        (None, Some(model)) => {
            let n: usize = map.get_parsed("--nodes", 1000)?;
            match model {
                "ba" => {
                    let m: usize = map.get_parsed("--edges-per-node", 5)?;
                    if n <= m {
                        return Err(invalid("--nodes", "must exceed --edges-per-node"));
                    }
                    socnet_gen::barabasi_albert(n, m, &mut rng)
                }
                "er" => {
                    let p: f64 = map.get_parsed("--p", 0.01)?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(invalid("--p", "must be in [0, 1]"));
                    }
                    socnet_gen::erdos_renyi_gnp(n, p, &mut rng)
                }
                "ws" => {
                    let k: usize = map.get_parsed("--k", 6)?;
                    let beta: f64 = map.get_parsed("--beta", 0.1)?;
                    if k == 0 || k % 2 != 0 || k >= n {
                        return Err(invalid("--k", "must be even, positive, and below --nodes"));
                    }
                    if !(0.0..=1.0).contains(&beta) {
                        return Err(invalid("--beta", "must be in [0, 1]"));
                    }
                    socnet_gen::watts_strogatz(n, k, beta, &mut rng)
                }
                "hk" => {
                    let m: usize = map.get_parsed("--edges-per-node", 5)?;
                    let pt: f64 = map.get_parsed("--triangle-p", 0.5)?;
                    if n <= m {
                        return Err(invalid("--nodes", "must exceed --edges-per-node"));
                    }
                    if !(0.0..=1.0).contains(&pt) {
                        return Err(invalid("--triangle-p", "must be in [0, 1]"));
                    }
                    socnet_gen::holme_kim(n, m, pt, &mut rng)
                }
                "sbm" => {
                    let communities: usize = map.get_parsed("--communities", 10)?;
                    let size: usize = map.get_parsed("--community-size", 100)?;
                    let p_in: f64 = map.get_parsed("--p-in", 0.05)?;
                    let p_out: f64 = map.get_parsed("--p-out", 0.001)?;
                    if !(0.0..=1.0).contains(&p_in) || !(0.0..=1.0).contains(&p_out) {
                        return Err(invalid("--p-in", "probabilities must be in [0, 1]"));
                    }
                    socnet_gen::planted_partition(communities, size, p_in, p_out, &mut rng)
                }
                "caveman" => {
                    let cliques: usize = map.get_parsed("--cliques", 50)?;
                    let size: usize = map.get_parsed("--clique-size", 10)?;
                    let p: f64 = map.get_parsed("--rewire-p", 0.05)?;
                    if cliques == 0 || size < 2 {
                        return Err(invalid("--cliques", "need cliques >= 1 and size >= 2"));
                    }
                    if !(0.0..=1.0).contains(&p) {
                        return Err(invalid("--rewire-p", "must be in [0, 1]"));
                    }
                    socnet_gen::relaxed_caveman(cliques, size, p, &mut rng)
                }
                other => {
                    return Err(invalid(
                        "--model",
                        format!("unknown model {other:?} (ba|er|ws|hk|sbm|caveman)"),
                    ))
                }
            }
        }
        (Some(_), Some(_)) => {
            return Err(invalid("--model", "pass either --model or --dataset, not both"))
        }
        (None, None) => return Err(CliError::MissingArgument("--model or --dataset")),
    };

    let mut out = String::new();
    writeln!(
        out,
        "generated graph: {} nodes, {} edges (seed {seed})",
        graph.node_count(),
        graph.edge_count()
    )
    .expect("write to string");
    if let Some(path) = map.get("--out") {
        write_edge_list_path(&graph, path)?;
        writeln!(out, "wrote {path}").expect("write to string");
    } else {
        writeln!(out, "(no --out given; nothing written)").expect("write to string");
    }
    Ok(out)
}

/// `socnet info`
pub fn info(map: &ArgMap) -> Result<String, CliError> {
    map.check_positionals(1)?;
    map.check_allowed(&[])?;
    let g = load(map)?;
    let s = GraphSummary::measure(&g);
    let mut out = String::new();
    writeln!(out, "nodes:          {}", s.nodes).expect("write");
    writeln!(out, "edges:          {}", s.edges).expect("write");
    writeln!(out, "average degree: {:.3}", s.average_degree).expect("write");
    writeln!(out, "max degree:     {}", s.max_degree).expect("write");
    writeln!(out, "clustering:     {:.4}", s.clustering).expect("write");
    writeln!(out, "assortativity:  {:+.4}", s.assortativity).expect("write");
    writeln!(out, "components:     {}", socnet_core::connected_components(&g).count)
        .expect("write");
    if g.node_count() > 0 {
        writeln!(out, "pseudo-diameter: {}", pseudo_diameter(&g, 4)).expect("write");
    }
    Ok(out)
}

/// `socnet mixing`
pub fn mixing(map: &ArgMap) -> Result<String, CliError> {
    map.check_positionals(1)?;
    map.check_allowed(&[
        "--sources",
        "--max-walk",
        "--epsilon",
        "--seed",
        "--time-budget",
        "--threads",
    ])?;
    let g = load(map)?;
    if g.edge_count() == 0 {
        return Err(invalid("<GRAPH>", "mixing is undefined on an edgeless graph"));
    }
    let sources: usize = map.get_parsed("--sources", 100)?;
    let max_walk: usize = map.get_parsed("--max-walk", 200)?;
    let epsilon: f64 = map.get_parsed("--epsilon", 0.05)?;
    let seed: u64 = map.get_parsed("--seed", 42)?;
    let time_budget: f64 = map.get_parsed("--time-budget", 0.0)?;
    let threads: usize = map.get_parsed("--threads", 0)?;
    if sources == 0 || max_walk == 0 {
        return Err(invalid("--sources", "sources and max-walk must be positive"));
    }
    if map.get("--threads").is_some() && threads == 0 {
        return Err(invalid("--threads", "must be a positive thread count"));
    }
    if !(epsilon > 0.0 && epsilon < 0.5) {
        return Err(invalid("--epsilon", "must be in (0, 0.5)"));
    }
    if map.get("--time-budget").is_some() && !(time_budget.is_finite() && time_budget > 0.0) {
        return Err(invalid("--time-budget", "must be a positive number of seconds"));
    }

    let spectrum = slem(&g, &SpectralConfig::default());
    let bounds = sinclair_bounds(spectrum.slem().min(1.0 - 1e-12), g.node_count(), epsilon);
    let cancel = if time_budget > 0.0 {
        CancelToken::with_budget(Duration::from_secs_f64(time_budget))
    } else {
        CancelToken::new()
    };
    let (m, report) = MixingMeasurement::measure_reported(
        &g,
        &MixingConfig { sources, max_walk, laziness: 0.0, seed },
        &ParConfig::new(cancel, threads),
    );
    if report.completed() == 0 {
        return Err(invalid(
            "--time-budget",
            "budget exhausted before any source finished; raise it or lower --max-walk",
        ));
    }
    let mean = m.mean_curve();

    let mut out = String::new();
    if !report.is_complete() {
        writeln!(out, "note: {} (pre-empted by --time-budget)", report.summary_line())
            .expect("write");
    }
    writeln!(out, "second largest eigenvalue modulus: {:.6}", spectrum.slem()).expect("write");
    writeln!(out, "  (lambda2 = {:.6}, lambda_min = {:.6})", spectrum.lambda2, spectrum.lambda_min)
        .expect("write");
    writeln!(
        out,
        "Sinclair bounds at eps = {epsilon}: {:.1} <= T <= {:.1} steps",
        bounds.lower, bounds.upper
    )
    .expect("write");
    match m.mixing_time(epsilon) {
        Some(t) => writeln!(
            out,
            "sampled T({epsilon}) = {t} steps ({} sources)",
            report.completed()
        )
        .expect("write"),
        None => writeln!(
            out,
            "sampled T({epsilon}) > {max_walk} steps (graph has not mixed within the horizon)"
        )
        .expect("write"),
    }
    for t in [1usize, 5, 10, 25, 50, 100, 200] {
        if t <= max_walk {
            writeln!(out, "  mean TVD @ {t:>4} steps: {:.5}", mean[t - 1]).expect("write");
        }
    }
    Ok(out)
}

/// `socnet cores`
pub fn cores(map: &ArgMap) -> Result<String, CliError> {
    map.check_positionals(1)?;
    map.check_allowed(&[])?;
    let g = load(map)?;
    let d = CoreDecomposition::compute(&g);
    let profiles = core_profiles(&g, &d);
    let ecdf = coreness_ecdf(&d);

    let mut out = String::new();
    writeln!(out, "degeneracy (k_max): {}", d.degeneracy()).expect("write");
    writeln!(out, "median coreness:    {}", ecdf.quantile(0.5)).expect("write");
    writeln!(out, "k    nodes    nu'      cores  largest").expect("write");
    let stride = (profiles.len() / 15).max(1);
    for (i, p) in profiles.iter().enumerate() {
        if i % stride == 0 || i + 1 == profiles.len() {
            writeln!(
                out,
                "{:<4} {:<8} {:<8.4} {:<6} {}",
                p.k,
                p.nodes,
                p.nu_prime(g.node_count()),
                p.components,
                p.largest_nodes
            )
            .expect("write");
        }
    }
    Ok(out)
}

/// `socnet expansion`
pub fn expansion(map: &ArgMap) -> Result<String, CliError> {
    map.check_positionals(1)?;
    map.check_allowed(&["--sources", "--seed"])?;
    let g = load(map)?;
    if g.node_count() == 0 {
        return Err(invalid("<GRAPH>", "cannot measure an empty graph"));
    }
    let sources: usize = map.get_parsed("--sources", 500)?;
    let seed: u64 = map.get_parsed("--seed", 42)?;
    let selection = if sources >= g.node_count() {
        SourceSelection::All
    } else {
        SourceSelection::Sample(sources)
    };
    let sweep = ExpansionSweep::measure(&g, selection, seed);

    let mut out = String::new();
    writeln!(out, "cores swept: {}", sweep.source_count()).expect("write");
    if let Some(alpha) = sweep.alpha_estimate(g.node_count()) {
        writeln!(out, "worst envelope expansion factor: {alpha:.4}").expect("write");
    }
    writeln!(out, "set-size  min      mean      max").expect("write");
    let stats = sweep.stats();
    let stride = (stats.len() / 15).max(1);
    for (i, s) in stats.iter().enumerate() {
        if i % stride == 0 || i + 1 == stats.len() {
            writeln!(out, "{:<9} {:<8} {:<9.1} {}", s.set_size, s.min, s.mean, s.max)
                .expect("write");
        }
    }
    Ok(out)
}

/// `socnet centrality`
pub fn centrality(map: &ArgMap) -> Result<String, CliError> {
    map.check_positionals(1)?;
    map.check_allowed(&["--measure", "--top"])?;
    let g = load(map)?;
    if g.node_count() == 0 {
        return Err(invalid("<GRAPH>", "cannot rank an empty graph"));
    }
    let top: usize = map.get_parsed("--top", 10)?;
    let measure = map.get("--measure").unwrap_or("degree");
    let scores = match measure {
        "betweenness" => betweenness(&g),
        "closeness" => closeness(&g, ClosenessMode::Harmonic),
        "degree" => degree_centrality(&g),
        other => {
            return Err(invalid(
                "--measure",
                format!("unknown measure {other:?} (betweenness|closeness|degree)"),
            ))
        }
    };
    let ranking = rank_by(&g, &scores);

    let mut out = String::new();
    writeln!(out, "top {} nodes by {measure}:", top.min(ranking.len())).expect("write");
    for &v in ranking.iter().take(top) {
        writeln!(out, "  {v:<8} score {:.6}  degree {}", scores[v.index()], g.degree(v))
            .expect("write");
    }
    Ok(out)
}

/// `socnet communities`
pub fn communities(map: &ArgMap) -> Result<String, CliError> {
    map.check_positionals(1)?;
    map.check_allowed(&["--seed"])?;
    let g = load(map)?;
    if g.edge_count() == 0 {
        return Err(invalid("<GRAPH>", "community detection needs edges"));
    }
    let seed: u64 = map.get_parsed("--seed", 42)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let c = label_propagation(&g, 50, &mut rng);
    let q = modularity(&g, c.labels());
    let mut sizes = c.sizes();
    sizes.sort_unstable_by(|a, b| b.cmp(a));

    let mut out = String::new();
    writeln!(out, "communities: {}", c.count()).expect("write");
    writeln!(out, "modularity:  {q:.4}").expect("write");
    writeln!(out, "largest communities: {:?}", &sizes[..sizes.len().min(10)]).expect("write");
    Ok(out)
}

/// `socnet simulate`
pub fn simulate(map: &ArgMap) -> Result<String, CliError> {
    map.check_positionals(0)?;
    map.check_allowed(&[
        "--dataset",
        "--defense",
        "--sybils",
        "--attack-edges",
        "--scale",
        "--seed",
        "--f",
        "--route-length",
    ])?;
    let dataset = dataset_by_name(
        map.get("--dataset").ok_or(CliError::MissingArgument("--dataset"))?,
    )?;
    let defense = map.get("--defense").ok_or(CliError::MissingArgument("--defense"))?;
    let sybils: usize = map.get_parsed("--sybils", 100)?;
    let attack_edges: usize = map.get_parsed("--attack-edges", 20)?;
    let scale: f64 = map.get_parsed("--scale", 0.25)?;
    let seed: u64 = map.get_parsed("--seed", 42)?;
    let f_admit: f64 = map.get_parsed("--f", 0.2)?;
    // SybilGuard/SybilLimit route length. The protocols prescribe a
    // mixing-time-scale length; on slow-mixing graphs a too-long route
    // escapes through the attack edges, so this is user-tunable.
    let route_length: usize = map.get_parsed("--route-length", 10)?;
    if route_length == 0 {
        return Err(invalid("--route-length", "must be positive"));
    }
    if sybils == 0 || attack_edges == 0 {
        return Err(invalid("--sybils", "sybils and attack-edges must be positive"));
    }
    if !(scale.is_finite() && scale > 0.0) {
        return Err(invalid("--scale", "must be a positive number"));
    }
    if !(f_admit > 0.0 && f_admit <= 1.0) {
        return Err(invalid("--f", "must be in (0, 1]"));
    }

    let honest = dataset.generate_scaled(scale, seed);
    if attack_edges > honest.node_count().saturating_mul(sybils) {
        return Err(invalid(
            "--attack-edges",
            format!(
                "cannot place {attack_edges} attack edges among {} honest x {sybils} sybil pairs",
                honest.node_count()
            ),
        ));
    }
    let attacked = AttackedGraph::mount(
        &honest,
        &SybilAttack {
            sybil_count: sybils,
            attack_edges,
            topology: SybilTopology::ErdosRenyi { p: 0.1 },
            seed,
        },
    );
    let g = attacked.graph();
    let verifier = NodeId(0);
    let everyone: Vec<NodeId> = g.nodes().collect();

    let admitted: Vec<bool> = match defense {
        "gatekeeper" => GateKeeper::new(GateKeeperConfig {
            distributors: 99,
            f_admit,
            seed,
            ..Default::default()
        })
        .run(&attacked)
        .admitted()
        .to_vec(),
        "sybilguard" => {
            let length = if map.get("--route-length").is_some() {
                route_length
            } else {
                SybilGuardConfig::recommended_route_length(g.node_count())
            };
            let guard = SybilGuard::new(g, SybilGuardConfig { route_length: length, seed });
            guard.admitted_set(verifier, &everyone)
        }
        "sybillimit" => {
            let sl = SybilLimit::new(
                g,
                SybilLimitConfig {
                    instances: SybilLimitConfig::recommended_instances(g.edge_count()),
                    route_length,
                    balance_slack: 4.0,
                    seed,
                },
            );
            sl.verify_all(verifier, &everyone)
        }
        "sybilinfer" => SybilInfer::infer(
            g,
            verifier,
            &SybilInferConfig { walks: 50_000, walk_length: 10, seed },
        )
        .classify(g, 0.3),
        "sumup" => SumUp::new(SumUpConfig { expected_votes: attacked.honest_count(), seed })
            .collect(g, verifier, &everyone)
            .accepted,
        "community" => {
            let lc = LocalCommunity::sweep(g, verifier, attacked.honest_count());
            let mut admitted = vec![false; g.node_count()];
            for &v in lc.ranking() {
                admitted[v.index()] = true;
            }
            admitted
        }
        other => {
            return Err(invalid(
                "--defense",
                format!(
                    "unknown defense {other:?} \
                     (gatekeeper|sybilguard|sybillimit|sybilinfer|sumup|community)"
                ),
            ))
        }
    };

    let stats = eval::admission_stats(&attacked, &admitted);
    let mut out = String::new();
    writeln!(
        out,
        "dataset {} (scale {scale}): {} honest + {} sybils, {} attack edges",
        dataset.name(),
        attacked.honest_count(),
        attacked.sybil_count(),
        attack_edges
    )
    .expect("write");
    writeln!(out, "defense: {defense}").expect("write");
    writeln!(
        out,
        "honest accepted:        {}/{} ({:.1}%)",
        stats.honest_accepted,
        stats.honest_total,
        100.0 * stats.honest_accept_rate
    )
    .expect("write");
    writeln!(
        out,
        "sybils accepted:        {}/{} ({:.2} per attack edge)",
        stats.sybil_accepted, stats.sybil_total, stats.sybils_per_attack_edge
    )
    .expect("write");
    Ok(out)
}

/// `socnet datasets`
pub fn datasets(map: &ArgMap) -> Result<String, CliError> {
    map.check_positionals(0)?;
    map.check_allowed(&[])?;
    let mut out = String::new();
    writeln!(
        out,
        "{:<14} {:<20} {:>12} {:>12}",
        "name", "model", "paper-nodes", "paper-edges"
    )
    .expect("write");
    for d in Dataset::ALL {
        let spec = d.spec();
        writeln!(
            out,
            "{:<14} {:<20} {:>12} {:>12}",
            d.name(),
            spec.model.label(),
            spec.paper_nodes,
            spec.paper_edges
        )
        .expect("write");
    }
    Ok(out)
}

/// `socnet obs-check` — validate observability artifacts. Files ending
/// in `.prom` must parse as Prometheus text exposition; `.jsonl` files
/// whose name mentions `trace` must satisfy the `socnet-trace-v1` line
/// schema; other `.jsonl` files are checked line by line; everything
/// else must be one JSON document. The first invalid file fails the
/// whole check, so CI can gate on the exit code.
pub fn obs_check(map: &ArgMap) -> Result<String, CliError> {
    map.check_allowed(&[])?;
    if map.positional(0).is_none() {
        return Err(CliError::MissingArgument("<FILE> (JSON, JSONL, or Prometheus artifact)"));
    }
    let mut out = String::new();
    let mut i = 0;
    while let Some(path) = map.positional(i) {
        i += 1;
        let text = std::fs::read_to_string(path).map_err(|e| CliError::Artifact {
            path: path.to_string(),
            message: e.to_string(),
        })?;
        let file_name =
            std::path::Path::new(path).file_name().and_then(|n| n.to_str()).unwrap_or(path);
        let (kind, ok) = if path.ends_with(".prom") {
            ("prometheus", socnet_runner::is_valid_prometheus(&text))
        } else if path.ends_with(".jsonl") && file_name.contains("trace") {
            ("trace-jsonl", socnet_serve::is_valid_trace_jsonl(&text))
        } else if path.ends_with(".jsonl") {
            ("jsonl", json::is_valid_jsonl(&text))
        } else {
            ("json", json::is_valid(&text))
        };
        if !ok {
            return Err(CliError::Artifact {
                path: path.to_string(),
                message: format!("not valid {kind}"),
            });
        }
        writeln!(out, "ok {path} ({kind})").expect("write");
    }
    Ok(out)
}

/// `socnet serve` — boot the online property-query service and block
/// until `SIGTERM`/`SIGINT`, then drain gracefully and report where the
/// run artifacts landed.
pub fn serve(map: &ArgMap) -> Result<String, CliError> {
    map.check_positionals(0)?;
    map.check_allowed(&[
        "--addr",
        "--threads",
        "--cache-bytes",
        "--scale",
        "--seed",
        "--out",
        "--deadline",
        "--drain-deadline",
        "--store",
        "--store-dir",
        "--frontend",
        "--max-conns",
        "--header-deadline",
        "--shed-highwater",
        "--tracing",
        "--trace-ring",
        "--live-rebuild-threshold",
        "--live-node-headroom",
        "--mem-budget",
    ])?;
    let mut config = socnet_serve::ServerConfig::default();
    if let Some(addr) = map.get("--addr") {
        config.addr = addr.to_string();
    }
    config.threads = map.get_parsed("--threads", config.threads)?;
    if config.threads == 0 {
        return Err(invalid("--threads", "must be at least 1"));
    }
    config.cache_bytes = map.get_parsed("--cache-bytes", config.cache_bytes)?;
    config.default_scale = map.get_parsed("--scale", config.default_scale)?;
    if !(config.default_scale.is_finite() && config.default_scale > 0.0) {
        return Err(invalid("--scale", "must be a positive number"));
    }
    config.default_seed = map.get_parsed("--seed", config.default_seed)?;
    if let Some(out) = map.get("--out") {
        config.out_dir = std::path::PathBuf::from(out);
    }
    let deadline: f64 = map.get_parsed("--deadline", config.request_deadline.as_secs_f64())?;
    if !(deadline.is_finite() && deadline > 0.0) {
        return Err(invalid("--deadline", "must be a positive number of seconds"));
    }
    config.request_deadline = Duration::from_secs_f64(deadline);
    let drain: f64 = map.get_parsed("--drain-deadline", config.drain_deadline.as_secs_f64())?;
    if !(drain.is_finite() && drain > 0.0) {
        return Err(invalid("--drain-deadline", "must be a positive number of seconds"));
    }
    config.drain_deadline = Duration::from_secs_f64(drain);
    if let Some(frontend) = map.get("--frontend") {
        config.frontend = frontend.parse().map_err(|e: String| invalid("--frontend", e))?;
    }
    config.max_conns = map.get_parsed("--max-conns", config.max_conns)?;
    if config.max_conns == 0 {
        return Err(invalid("--max-conns", "must be at least 1"));
    }
    let header: f64 = map.get_parsed("--header-deadline", config.header_deadline.as_secs_f64())?;
    if !(header.is_finite() && header > 0.0) {
        return Err(invalid("--header-deadline", "must be a positive number of seconds"));
    }
    config.header_deadline = Duration::from_secs_f64(header);
    config.shed_highwater = map.get_parsed("--shed-highwater", config.shed_highwater)?;
    // Tracing defaults on (its overhead is bounded by design and
    // asserted by the bench gate); `--tracing off` opts out,
    // `--trace-ring` sizes the sealed-trace ring buffer.
    config.tracing = match map.get("--tracing").unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => return Err(invalid("--tracing", format!("expected on|off, got {other}"))),
    };
    config.trace_ring = map.get_parsed("--trace-ring", config.trace_ring)?;
    if config.trace_ring == 0 {
        return Err(invalid("--trace-ring", "must be at least 1"));
    }
    // How many acked delta ops a live graph absorbs in its overlay
    // before the serve layer folds them into a fresh CSR.
    config.live_rebuild_threshold =
        map.get_parsed("--live-rebuild-threshold", config.live_rebuild_threshold)?;
    if config.live_rebuild_threshold == 0 {
        return Err(invalid("--live-rebuild-threshold", "must be at least 1"));
    }
    // How many nodes past the current count one delta batch may grow a
    // live graph; ids beyond the cap are rejected before the ack.
    config.live_node_headroom =
        map.get_parsed("--live-node-headroom", config.live_node_headroom)?;
    // Process-wide byte budget across graphs + cached properties +
    // live overlays + traces. Absent means ungoverned (the seed
    // behavior, byte-identical); zero is rejected rather than treated
    // as "evict everything forever".
    if map.get("--mem-budget").is_some() {
        let budget: usize = map.get_parsed("--mem-budget", 0)?;
        if budget == 0 {
            return Err(invalid("--mem-budget", "must be at least 1 byte"));
        }
        config.mem_budget = Some(budget);
    }
    // Persistence defaults on: snapshots live next to the run
    // artifacts so `--out` moves both. `--store off` opts out;
    // `--store-dir` relocates the snapshots independently.
    config.store_dir = match map.get("--store").unwrap_or("on") {
        "on" => Some(
            map.get("--store-dir")
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|| config.out_dir.join("store")),
        ),
        "off" => {
            if map.get("--store-dir").is_some() {
                return Err(invalid("--store-dir", "conflicts with --store off"));
            }
            None
        }
        other => return Err(invalid("--store", format!("expected on|off, got {other}"))),
    };

    socnet_serve::signal::install();
    let requested_addr = config.addr.clone();
    let server = socnet_serve::Server::bind(config)
        .map_err(|e| invalid("--addr", format!("cannot bind {requested_addr}: {e}")))?;
    let addr = server.local_addr();
    let summary = server.serve().map_err(|e| CliError::Artifact {
        path: requested_addr,
        message: format!("server failed: {e}"),
    })?;
    let mut out = String::new();
    writeln!(out, "served {} requests on {addr}", summary.requests).expect("write");
    writeln!(
        out,
        "pool drain: {} finished, {} panicked, {} abandoned (timed out: {})",
        summary.drain.finished,
        summary.drain.panicked,
        summary.drain.abandoned,
        summary.drain.timed_out
    )
    .expect("write");
    writeln!(out, "uptime: {:.3}s", summary.uptime.as_secs_f64()).expect("write");
    writeln!(out, "manifest: {}", summary.manifest_path.display()).expect("write");
    writeln!(out, "metrics:  {}", summary.metrics_path.display()).expect("write");
    if let Some(snapshot) = &summary.snapshot_path {
        writeln!(out, "snapshot: {}", snapshot.display()).expect("write");
    }
    Ok(out)
}

/// `socnet store` — inspect and maintain a warm-start snapshot store:
/// `ls` inventories it, `verify` re-checksums every live snapshot, `gc`
/// prunes by age and byte budget.
pub fn store(map: &ArgMap) -> Result<String, CliError> {
    use socnet_store::{GcPolicy, SnapshotStatus, StoreDir};

    let action = map.require_positional("<ls|verify|gc>")?.to_string();
    map.check_positionals(1)?;
    let dir = map
        .get("--dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| socnet_serve::ServerConfig::default().out_dir.join("store"));
    let store = StoreDir::new(&dir);
    let artifact = |e: std::io::Error| CliError::Artifact {
        path: dir.display().to_string(),
        message: e.to_string(),
    };

    let render = |rows: &[socnet_store::SnapshotInfo], out: &mut String| {
        writeln!(out, "store: {}", dir.display()).expect("write");
        if rows.is_empty() {
            writeln!(out, "  (empty)").expect("write");
        }
        for row in rows {
            let name = row.path.file_name().unwrap_or_default().to_string_lossy();
            let status = match &row.status {
                SnapshotStatus::Ok => "ok".to_string(),
                SnapshotStatus::Quarantined => "quarantined".to_string(),
                SnapshotStatus::Torn(why) => format!("torn ({why})"),
                SnapshotStatus::Corrupt(why) => format!("CORRUPT ({why})"),
            };
            let age = row.age.map_or("?".to_string(), |a| format!("{}s", a.as_secs()));
            let rev = row.meta.as_ref().map_or("-", |m| m.git_rev.as_str());
            writeln!(
                out,
                "  {name}  {status}  {} bytes  {} records  age {age}  rev {rev}",
                row.bytes, row.records
            )
            .expect("write");
        }
    };

    let mut out = String::new();
    match action.as_str() {
        "ls" => {
            map.check_allowed(&["--dir"])?;
            render(&store.ls().map_err(artifact)?, &mut out);
        }
        "verify" => {
            map.check_allowed(&["--dir"])?;
            let (rows, corrupt) = store.verify().map_err(artifact)?;
            render(&rows, &mut out);
            writeln!(out, "verified: {} corrupt", corrupt).expect("write");
            if corrupt > 0 {
                return Err(CliError::Artifact {
                    path: dir.display().to_string(),
                    message: format!("{corrupt} live snapshot(s) failed verification:\n{out}"),
                });
            }
        }
        "gc" => {
            map.check_allowed(&["--dir", "--max-age-secs", "--byte-budget", "--keep-quarantined"])?;
            let mut policy = GcPolicy { drop_quarantined: true, ..GcPolicy::default() };
            if let Some(raw) = map.get("--max-age-secs") {
                let secs: u64 = raw
                    .parse()
                    .map_err(|e: std::num::ParseIntError| invalid("--max-age-secs", e.to_string()))?;
                policy.max_age = Some(Duration::from_secs(secs));
            }
            if let Some(raw) = map.get("--byte-budget") {
                policy.byte_budget = Some(
                    raw.parse()
                        .map_err(|e: std::num::ParseIntError| invalid("--byte-budget", e.to_string()))?,
                );
            }
            match map.get("--keep-quarantined").unwrap_or("false") {
                "true" => policy.drop_quarantined = false,
                "false" => {}
                other => {
                    return Err(invalid("--keep-quarantined", format!("expected true|false, got {other}")))
                }
            }
            let report = store.gc(&policy).map_err(artifact)?;
            for path in &report.removed {
                writeln!(out, "removed {}", path.display()).expect("write");
            }
            writeln!(
                out,
                "gc: removed {} file(s), reclaimed {} bytes, kept {}",
                report.removed.len(),
                report.reclaimed_bytes,
                report.kept
            )
            .expect("write");
        }
        other => return Err(invalid("<action>", format!("expected ls|verify|gc, got {other}"))),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> ArgMap {
        let v: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
        ArgMap::parse(&v).expect("parses")
    }

    fn temp_graph() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("socnet-cli-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(format!("g-{}.txt", std::process::id()));
        let g = socnet_gen::barabasi_albert(120, 4, &mut StdRng::seed_from_u64(1));
        write_edge_list_path(&g, &path).expect("write");
        path
    }

    #[test]
    fn generate_models_and_validation() {
        let out = generate(&args(&["--model", "ba", "--nodes", "50", "--seed", "3"]))
            .expect("generates");
        assert!(out.contains("50 nodes"));
        assert!(generate(&args(&["--model", "nope"])).is_err());
        assert!(generate(&args(&[])).is_err());
        assert!(generate(&args(&["--model", "er", "--p", "1.5"])).is_err());
        assert!(generate(&args(&["--model", "ba", "--dataset", "DBLP"])).is_err());
    }

    #[test]
    fn generate_dataset_writes_file() {
        let dir = std::env::temp_dir().join("socnet-cli-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("rice.txt");
        let out = generate(&args(&[
            "--dataset",
            "rice-grad",
            "--scale",
            "0.5",
            "--out",
            path.to_str().expect("utf8"),
        ]))
        .expect("generates");
        assert!(out.contains("wrote"));
        let g = read_edge_list_path(&path).expect("round trip");
        assert!(g.node_count() > 100);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn info_reports_statistics() {
        let path = temp_graph();
        let out = info(&args(&[path.to_str().expect("utf8")])).expect("info");
        assert!(out.contains("nodes:          120"));
        assert!(out.contains("average degree"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn info_missing_file_errors() {
        assert!(matches!(
            info(&args(&["/no/such/file.txt"])),
            Err(CliError::Graph(_))
        ));
    }

    #[test]
    fn mixing_reports_bounds_and_samples() {
        let path = temp_graph();
        let out = mixing(&args(&[
            path.to_str().expect("utf8"),
            "--sources",
            "10",
            "--max-walk",
            "30",
        ]))
        .expect("mixing");
        assert!(out.contains("second largest eigenvalue"));
        assert!(out.contains("Sinclair bounds"));
        assert!(out.contains("sampled T(0.05)"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn mixing_flag_validation() {
        let path = temp_graph();
        let p = path.to_str().expect("utf8");
        assert!(mixing(&args(&[p, "--epsilon", "0.9"])).is_err());
        assert!(mixing(&args(&[p, "--sources", "0"])).is_err());
        assert!(mixing(&args(&[p, "--bogus", "1"])).is_err());
        assert!(mixing(&args(&[p, "--time-budget", "0"])).is_err());
        assert!(mixing(&args(&[p, "--time-budget", "-3"])).is_err());
        assert!(mixing(&args(&[p, "--time-budget", "inf"])).is_err());
        assert!(mixing(&args(&[p, "--threads", "0"])).is_err());
        assert!(mixing(&args(&[p, "--threads", "two"])).is_err());
        assert!(mixing(&args(&[p, "--threads", "2", "--max-walk", "5"])).is_ok());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn mixing_respects_a_generous_time_budget() {
        let path = temp_graph();
        let p = path.to_str().expect("utf8");
        let out = mixing(&args(&[
            p,
            "--sources",
            "5",
            "--max-walk",
            "20",
            "--time-budget",
            "60",
        ]))
        .expect("mixing within budget");
        assert!(out.contains("sampled T(0.05)"));
        assert!(!out.contains("pre-empted"), "nothing should time out: {out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn cores_and_expansion_run() {
        let path = temp_graph();
        let p = path.to_str().expect("utf8");
        let out = cores(&args(&[p])).expect("cores");
        assert!(out.contains("degeneracy"));
        let out = expansion(&args(&[p, "--sources", "30"])).expect("expansion");
        assert!(out.contains("set-size"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn centrality_measures() {
        let path = temp_graph();
        let p = path.to_str().expect("utf8");
        for m in ["degree", "betweenness", "closeness"] {
            let out = centrality(&args(&[p, "--measure", m, "--top", "3"]))
                .expect("centrality");
            assert!(out.contains("top 3"), "{m}");
        }
        assert!(centrality(&args(&[p, "--measure", "pagerank"])).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn communities_runs() {
        let path = temp_graph();
        let out = communities(&args(&[path.to_str().expect("utf8")])).expect("communities");
        assert!(out.contains("modularity"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn simulate_all_defenses() {
        for defense in ["gatekeeper", "sybilinfer", "sumup", "community"] {
            let out = simulate(&args(&[
                "--dataset",
                "Rice-grad",
                "--defense",
                defense,
                "--scale",
                "0.4",
                "--sybils",
                "20",
                "--attack-edges",
                "5",
            ]))
            .expect(defense);
            assert!(out.contains("honest accepted"), "{defense}");
        }
        assert!(simulate(&args(&["--dataset", "Rice-grad", "--defense", "nope"])).is_err());
        assert!(simulate(&args(&["--defense", "gatekeeper"])).is_err());
    }

    #[test]
    fn dataset_lookup_is_case_insensitive() {
        assert_eq!(dataset_by_name("wiki-vote").expect("found"), Dataset::WikiVote);
        assert_eq!(dataset_by_name("DBLP").expect("found"), Dataset::Dblp);
        assert!(dataset_by_name("friendster").is_err());
    }

    #[test]
    fn obs_check_validates_json_and_jsonl() {
        let dir = std::env::temp_dir().join("socnet-cli-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let pid = std::process::id();
        let good = dir.join(format!("good-{pid}.json"));
        let lines = dir.join(format!("good-{pid}.jsonl"));
        let bad = dir.join(format!("bad-{pid}.json"));
        std::fs::write(&good, "{\"schema\":\"socnet-run-v1\",\"stages\":[]}\n").expect("write");
        std::fs::write(&lines, "{\"seq\":0}\n{\"seq\":1}\n").expect("write");
        std::fs::write(&bad, "{\"seq\":0,}\n").expect("write");

        let out = obs_check(&args(&[
            good.to_str().expect("utf8"),
            lines.to_str().expect("utf8"),
        ]))
        .expect("both valid");
        assert!(out.contains("(json)"));
        assert!(out.contains("(jsonl)"));

        assert!(matches!(
            obs_check(&args(&[bad.to_str().expect("utf8")])),
            Err(CliError::Artifact { .. })
        ));
        assert!(matches!(
            obs_check(&args(&["/no/such/file.json"])),
            Err(CliError::Artifact { .. })
        ));
        assert!(obs_check(&args(&[])).is_err());

        for p in [good, lines, bad] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn obs_check_validates_prometheus_and_trace_jsonl() {
        let dir = std::env::temp_dir().join("socnet-cli-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let pid = std::process::id();
        let prom = dir.join(format!("metrics-{pid}.prom"));
        let bad_prom = dir.join(format!("bad-{pid}.prom"));
        let traces = dir.join(format!("traces-{pid}.jsonl"));
        let bad_traces = dir.join(format!("bad-traces-{pid}.jsonl"));
        std::fs::write(
            &prom,
            "# TYPE http_requests_total counter\nhttp_requests_total 42\n",
        )
        .expect("write");
        std::fs::write(&bad_prom, "this is not { prometheus\n").expect("write");
        std::fs::write(
            &traces,
            concat!(
                "{\"schema\":\"socnet-trace-v1\",\"trace_id\":\"00000000000000ab\",",
                "\"method\":\"GET\",\"route\":\"healthz\",\"status\":200,",
                "\"total_ms\":0.120,\"stages\":[]}\n"
            ),
        )
        .expect("write");
        // Valid JSONL but not the trace schema: the trace-aware branch
        // must reject what the generic branch would accept.
        std::fs::write(&bad_traces, "{\"seq\":0}\n").expect("write");

        let out = obs_check(&args(&[
            prom.to_str().expect("utf8"),
            traces.to_str().expect("utf8"),
        ]))
        .expect("both valid");
        assert!(out.contains("(prometheus)"));
        assert!(out.contains("(trace-jsonl)"));

        assert!(matches!(
            obs_check(&args(&[bad_prom.to_str().expect("utf8")])),
            Err(CliError::Artifact { .. })
        ));
        assert!(matches!(
            obs_check(&args(&[bad_traces.to_str().expect("utf8")])),
            Err(CliError::Artifact { .. })
        ));

        for p in [prom, bad_prom, traces, bad_traces] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn store_ls_verify_and_gc_maintain_a_snapshot_directory() {
        use socnet_store::{write_snapshot, Record, Snapshot, SnapshotMeta, StoreDir};

        let dir = std::env::temp_dir()
            .join(format!("socnet-cli-store-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        let dir_s = dir.to_str().expect("utf8").to_string();
        let snapshot = Snapshot {
            meta: SnapshotMeta::new("rev", "hash"),
            records: vec![Record::new("body", &["k"], b"payload")],
        };
        write_snapshot(&StoreDir::new(&dir).snapshot_path("serve"), &snapshot).expect("write");
        std::fs::write(dir.join("old.snap.quarantined"), b"junk").expect("write");

        let out = store(&args(&["ls", "--dir", &dir_s])).expect("ls");
        assert!(out.contains("serve.snap"), "{out}");
        assert!(out.contains("quarantined"), "{out}");
        assert!(out.contains("1 records"), "{out}");

        let out = store(&args(&["verify", "--dir", &dir_s])).expect("all live snapshots verify");
        assert!(out.contains("verified: 0 corrupt"), "{out}");

        // A corrupt live snapshot turns verify into an error.
        std::fs::write(dir.join("bad.snap"), b"junk").expect("write");
        assert!(matches!(
            store(&args(&["verify", "--dir", &dir_s])),
            Err(CliError::Artifact { .. })
        ));

        // GC drops the quarantined file by default; budget 0 clears all.
        let out = store(&args(&["gc", "--dir", &dir_s])).expect("gc");
        assert!(out.contains("removed 1 file(s)"), "{out}");
        assert!(!dir.join("old.snap.quarantined").exists());
        let out =
            store(&args(&["gc", "--dir", &dir_s, "--byte-budget", "0"])).expect("gc to zero");
        assert!(out.contains("kept 0"), "{out}");

        assert!(store(&args(&["frobnicate", "--dir", &dir_s])).is_err());
        assert!(store(&args(&[])).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn serve_store_flags_validate() {
        // `--store` takes on|off and `--store-dir` conflicts with off.
        // (Booting a real server here would bind sockets; flag parsing
        // fails fast before any of that for these cases.)
        assert!(matches!(
            serve(&args(&["--store", "sometimes"])),
            Err(CliError::InvalidValue { .. })
        ));
        assert!(matches!(
            serve(&args(&["--store", "off", "--store-dir", "/tmp/x"])),
            Err(CliError::InvalidValue { .. })
        ));
        // `--tracing` takes on|off and the trace ring must hold at
        // least one sealed trace.
        assert!(matches!(
            serve(&args(&["--tracing", "verbose"])),
            Err(CliError::InvalidValue { .. })
        ));
        assert!(matches!(
            serve(&args(&["--trace-ring", "0"])),
            Err(CliError::InvalidValue { .. })
        ));
        // A zero rebuild threshold would fold the overlay on every
        // delta; reject it at the flag.
        assert!(matches!(
            serve(&args(&["--live-rebuild-threshold", "0"])),
            Err(CliError::InvalidValue { .. })
        ));
        // A zero memory budget would be "evict everything forever";
        // non-numbers never reach the server either.
        assert!(matches!(
            serve(&args(&["--mem-budget", "0"])),
            Err(CliError::InvalidValue { .. })
        ));
        assert!(matches!(
            serve(&args(&["--mem-budget", "lots"])),
            Err(CliError::InvalidValue { .. })
        ));
    }
}
