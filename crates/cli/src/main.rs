//! The `socnet` command-line tool.
//!
//! Thin wrapper over [`socnet_cli::run`]; all behavior (and all testing)
//! lives in the library.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match socnet_cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", socnet_cli::usage());
            ExitCode::FAILURE
        }
    }
}
