use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a vertex in a [`Graph`](crate::Graph).
///
/// Node ids are dense indices in `0..n`; they are produced by
/// [`GraphBuilder::build`](crate::GraphBuilder::build) and are only
/// meaningful relative to the graph that issued them. The wrapper keeps
/// vertex indices from being confused with counts, levels, or other
/// `usize` quantities that flow through the measurement code.
///
/// # Examples
///
/// ```
/// use socnet_core::NodeId;
///
/// let v = NodeId(7);
/// assert_eq!(v.index(), 7);
/// assert_eq!(NodeId::from_index(7), v);
/// assert_eq!(v.to_string(), "v7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a `usize` index suitable for slice addressing.
    ///
    /// ```
    /// # use socnet_core::NodeId;
    /// assert_eq!(NodeId(3).index(), 3);
    /// ```
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a node id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`, which would silently
    /// truncate the id.
    ///
    /// ```
    /// # use socnet_core::NodeId;
    /// assert_eq!(NodeId::from_index(12), NodeId(12));
    /// ```
    #[inline]
    pub fn from_index(index: usize) -> Self {
        assert!(index <= u32::MAX as usize, "node index {index} overflows u32");
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(raw: u32) -> Self {
        NodeId(raw)
    }
}

impl From<NodeId> for u32 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> Self {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for i in [0usize, 1, 77, 1_000_000] {
            assert_eq!(NodeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(NodeId(0).to_string(), "v0");
        assert_eq!(NodeId(41).to_string(), "v41");
    }

    #[test]
    fn conversions() {
        let v: NodeId = 9u32.into();
        assert_eq!(u32::from(v), 9);
        assert_eq!(usize::from(v), 9);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(5), NodeId(5));
    }

    #[test]
    #[should_panic(expected = "overflows u32")]
    fn from_index_rejects_overflow() {
        let _ = NodeId::from_index(u32::MAX as usize + 1);
    }
}
