use std::error::Error;
use std::fmt;
use std::io;

/// Errors produced while building, loading, or validating graphs.
///
/// Every fallible public function in this workspace that touches graph
/// structure or graph files reports failures through this type.
///
/// # Examples
///
/// ```
/// use socnet_core::{read_edge_list, GraphError};
///
/// let bad = "0 not-a-number\n";
/// match read_edge_list(bad.as_bytes()) {
///     Err(GraphError::Parse { line, .. }) => assert_eq!(line, 1),
///     other => panic!("expected parse error, got {other:?}"),
/// }
/// ```
#[derive(Debug)]
pub enum GraphError {
    /// A node id referenced a vertex outside `0..n`.
    NodeOutOfRange {
        /// The offending raw node index.
        node: usize,
        /// The number of nodes in the graph.
        node_count: usize,
    },
    /// A line of an edge-list file could not be parsed.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of what went wrong.
        message: String,
    },
    /// The CSR arrays handed to a raw constructor were inconsistent.
    InvalidStructure(String),
    /// An underlying I/O operation failed.
    Io(io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(f, "node index {node} out of range for graph with {node_count} nodes")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::InvalidStructure(msg) => write!(f, "invalid graph structure: {msg}"),
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for GraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::NodeOutOfRange { node: 9, node_count: 4 };
        assert_eq!(e.to_string(), "node index 9 out of range for graph with 4 nodes");

        let e = GraphError::Parse { line: 3, message: "expected two fields".into() };
        assert!(e.to_string().contains("line 3"));

        let e = GraphError::InvalidStructure("offsets not monotone".into());
        assert!(e.to_string().contains("offsets not monotone"));
    }

    #[test]
    fn io_errors_are_wrapped_with_source() {
        let inner = io::Error::new(io::ErrorKind::NotFound, "gone");
        let e = GraphError::from(inner);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
