//! Descriptive graph statistics.
//!
//! These are the characteristics the paper's Table I and related-work
//! discussion describe datasets by: size, density, degree distribution,
//! clustering, and degree assortativity.

use serde::{Deserialize, Serialize};

use crate::{Graph, NodeId};

/// Histogram of node degrees: `hist[d]` is the number of nodes with degree
/// exactly `d`.
///
/// # Examples
///
/// ```
/// use socnet_core::{degree_histogram, Graph};
///
/// let star = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
/// assert_eq!(degree_histogram(&star), vec![0, 3, 0, 1]);
/// ```
pub fn degree_histogram(graph: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; graph.max_degree() + 1];
    for v in graph.nodes() {
        hist[graph.degree(v)] += 1;
    }
    hist
}

/// Mean degree `2m / n`, or 0 for the empty graph.
pub fn average_degree(graph: &Graph) -> f64 {
    if graph.node_count() == 0 {
        0.0
    } else {
        graph.degree_sum() as f64 / graph.node_count() as f64
    }
}

/// Counts the triangles of the graph.
///
/// Uses the standard forward/sorted-adjacency intersection, `O(m^{3/2})`.
///
/// # Examples
///
/// ```
/// use socnet_core::{triangle_count, Graph};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
/// assert_eq!(triangle_count(&g), 1);
/// ```
pub fn triangle_count(graph: &Graph) -> u64 {
    let mut count = 0u64;
    for u in graph.nodes() {
        let nu = graph.neighbors(u);
        for &v in nu {
            if v <= u {
                continue;
            }
            // Intersect the tails {w > v} of both sorted lists.
            let nv = graph.neighbors(v);
            let (mut i, mut j) = (0usize, 0usize);
            while i < nu.len() && j < nv.len() {
                let (a, b) = (nu[i], nv[j]);
                if a <= v {
                    i += 1;
                } else if b <= v {
                    j += 1;
                } else if a == b {
                    count += 1;
                    i += 1;
                    j += 1;
                } else if a < b {
                    i += 1;
                } else {
                    j += 1;
                }
            }
        }
    }
    count
}

/// Local clustering coefficient of `v`: the fraction of neighbor pairs that
/// are themselves adjacent. Nodes of degree < 2 have coefficient 0.
///
/// # Panics
///
/// Panics if `v` is out of range.
pub fn local_clustering(graph: &Graph, v: NodeId) -> f64 {
    let d = graph.degree(v);
    if d < 2 {
        return 0.0;
    }
    let nv = graph.neighbors(v);
    let mut closed = 0usize;
    for (i, &a) in nv.iter().enumerate() {
        for &b in &nv[i + 1..] {
            if graph.has_edge(a, b) {
                closed += 1;
            }
        }
    }
    2.0 * closed as f64 / (d * (d - 1)) as f64
}

/// Global clustering coefficient (transitivity): `3·triangles / wedges`.
///
/// Returns 0 when the graph has no wedge (path of length 2).
///
/// # Examples
///
/// ```
/// use socnet_core::{global_clustering, Graph};
///
/// let triangle = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
/// assert!((global_clustering(&triangle) - 1.0).abs() < 1e-12);
/// ```
pub fn global_clustering(graph: &Graph) -> f64 {
    let wedges: u64 = graph
        .nodes()
        .map(|v| {
            let d = graph.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        return 0.0;
    }
    3.0 * triangle_count(graph) as f64 / wedges as f64
}

/// Degree assortativity: the Pearson correlation of endpoint degrees over
/// all edges.
///
/// Positive values mean high-degree nodes attach to high-degree nodes
/// (collaboration networks); negative values mean hubs attach to leaves
/// (many online social graphs). Returns 0 if the graph has no edges or the
/// degree variance is 0 (e.g. regular graphs).
pub fn assortativity(graph: &Graph) -> f64 {
    let m = graph.edge_count();
    if m == 0 {
        return 0.0;
    }
    // Over directed half-edges (j, k) = (deg(u), deg(v)) for each edge in
    // both directions; the symmetric form of Newman's formula.
    let mut sum_jk = 0.0f64;
    let mut sum_j = 0.0f64;
    let mut sum_j2 = 0.0f64;
    let count = (2 * m) as f64;
    for (u, v) in graph.edges() {
        let (dj, dk) = (graph.degree(u) as f64, graph.degree(v) as f64);
        sum_jk += 2.0 * dj * dk;
        sum_j += dj + dk;
        sum_j2 += dj * dj + dk * dk;
    }
    let mean = sum_j / count;
    let num = sum_jk / count - mean * mean;
    let den = sum_j2 / count - mean * mean;
    if den.abs() < 1e-15 {
        0.0
    } else {
        num / den
    }
}

/// A compact descriptive summary of a graph, the row format of a
/// Table-I-style dataset atlas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphSummary {
    /// Number of nodes `n`.
    pub nodes: usize,
    /// Number of undirected edges `m`.
    pub edges: usize,
    /// Mean degree `2m/n`.
    pub average_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Global clustering coefficient (transitivity).
    pub clustering: f64,
    /// Degree assortativity coefficient.
    pub assortativity: f64,
}

impl GraphSummary {
    /// Computes the summary of `graph`.
    ///
    /// Clustering runs the `O(m^{3/2})` triangle count; this is the
    /// expensive part on large graphs.
    ///
    /// ```
    /// use socnet_core::{Graph, GraphSummary};
    ///
    /// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
    /// let s = GraphSummary::measure(&g);
    /// assert_eq!(s.nodes, 4);
    /// assert_eq!(s.edges, 4);
    /// assert_eq!(s.max_degree, 3);
    /// ```
    pub fn measure(graph: &Graph) -> Self {
        GraphSummary {
            nodes: graph.node_count(),
            edges: graph.edge_count(),
            average_degree: average_degree(graph),
            max_degree: graph.max_degree(),
            clustering: global_clustering(graph),
            assortativity: assortativity(graph),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique(n: u32) -> Graph {
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                edges.push((i, j));
            }
        }
        Graph::from_edges(n as usize, edges)
    }

    #[test]
    fn triangles_in_clique() {
        // C(5,3) = 10 triangles in K5.
        assert_eq!(triangle_count(&clique(5)), 10);
        assert_eq!(triangle_count(&clique(4)), 4);
    }

    #[test]
    fn triangles_in_triangle_free_graph() {
        let ring = Graph::from_edges(6, (0..6).map(|i| (i, (i + 1) % 6)));
        assert_eq!(triangle_count(&ring), 0);
        assert_eq!(global_clustering(&ring), 0.0);
    }

    #[test]
    fn clique_clustering_is_one() {
        assert!((global_clustering(&clique(6)) - 1.0).abs() < 1e-12);
        for v in clique(6).nodes() {
            assert!((local_clustering(&clique(6), v) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn local_clustering_of_partial_neighborhood() {
        // Node 0 adjacent to 1,2,3; only edge 1-2 among them: c = 1/3.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2)]);
        assert!((local_clustering(&g, NodeId(0)) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(local_clustering(&g, NodeId(3)), 0.0);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 6);
        assert_eq!(h[0], 1); // node 5 isolated
        assert_eq!(h[1], 2);
        assert_eq!(h[2], 3);
    }

    #[test]
    fn average_degree_matches_handshake() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert!((average_degree(&g) - 1.5).abs() < 1e-12);
        assert_eq!(average_degree(&Graph::from_edges(0, [])), 0.0);
    }

    #[test]
    fn star_is_disassortative() {
        let star = Graph::from_edges(6, (1..6).map(|i| (0, i)));
        assert!(assortativity(&star) <= 0.0, "hub-leaf graphs are not assortative");
    }

    #[test]
    fn regular_graph_assortativity_is_defined_zero() {
        let ring = Graph::from_edges(5, (0..5).map(|i| (i, (i + 1) % 5)));
        assert_eq!(assortativity(&ring), 0.0);
    }

    #[test]
    fn assortativity_is_bounded() {
        let g = Graph::from_edges(
            8,
            [(0, 1), (0, 2), (0, 3), (4, 5), (5, 6), (6, 7), (3, 4), (1, 2)],
        );
        let a = assortativity(&g);
        assert!((-1.0..=1.0).contains(&a), "assortativity {a} out of [-1, 1]");
    }

    #[test]
    fn summary_of_clique() {
        let s = GraphSummary::measure(&clique(4));
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 6);
        assert!((s.average_degree - 3.0).abs() < 1e-12);
        assert!((s.clustering - 1.0).abs() < 1e-12);
    }
}
