//! Parallel and scratch-reusing kernels over the compact [`Csr`] slabs.
//!
//! Three primitives live here, each deterministic at any thread count:
//!
//! * [`CsrBfs`] — stamped, allocation-free breadth-first search scratch
//!   for per-source sweeps (the CSR counterpart of [`crate::Bfs`]);
//! * [`par_bfs`] — a level-synchronous frontier BFS that claims nodes
//!   with atomic compare-exchange; distances and level sizes are unique,
//!   so the result is identical whether 1 thread or 16 ran it;
//! * [`par_fill_rows`] — the blocked row-parallel driver for sparse
//!   mat-vec style kernels: each output row is a pure function of the
//!   input vector, threads own disjoint contiguous row blocks, and the
//!   per-row arithmetic order never depends on the block split — so the
//!   output is *bit-identical* to a sequential pass.

use std::sync::atomic::{AtomicU32, Ordering};

use crate::csr::Csr;
use crate::UNREACHED;

/// Process-wide kernel timing hook.
///
/// The serving layer needs per-kernel latency (CSR BFS, k-core, SLEM,
/// TVD, GateKeeper floods) attributed to the request that triggered the
/// compute, but this crate must stay dependency-free and the batch
/// binaries must pay nothing for instrumentation they never asked for.
/// So the kernels report through one optional process-wide hook:
/// [`install`] it once (a server does this at bind), and every
/// [`timed`] section calls it with a static kernel name and the
/// measured wall seconds. With no hook installed the fast path is a
/// single atomic load — no clock reads, no allocation.
pub mod timing {
    use std::sync::OnceLock;
    use std::time::Instant;

    type Hook = Box<dyn Fn(&'static str, f64) + Send + Sync>;

    static HOOK: OnceLock<Hook> = OnceLock::new();

    /// Installs the process-wide kernel timing hook. The first call
    /// wins and returns `true`; later calls are ignored and return
    /// `false` (re-binding a server in-process must not stack hooks).
    pub fn install(hook: impl Fn(&'static str, f64) + Send + Sync + 'static) -> bool {
        HOOK.set(Box::new(hook)).is_ok()
    }

    /// Reports one already-measured kernel section to the hook, if any.
    pub fn observe(kernel: &'static str, secs: f64) {
        if let Some(hook) = HOOK.get() {
            hook(kernel, secs);
        }
    }

    /// Runs `f`, reporting its wall time under `kernel` when a hook is
    /// installed. Without a hook this is exactly `f()` — the clock is
    /// never read.
    pub fn timed<T>(kernel: &'static str, f: impl FnOnce() -> T) -> T {
        match HOOK.get() {
            None => f(),
            Some(hook) => {
                let start = Instant::now();
                let out = f();
                hook(kernel, start.elapsed().as_secs_f64());
                out
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        // One test exercises install/observe/timed together because the
        // hook is process-global: a second install must lose.
        #[test]
        fn hook_installs_once_and_times_sections() {
            static CALLS: AtomicUsize = AtomicUsize::new(0);
            let first = super::install(|name, secs| {
                assert_eq!(name, "demo");
                assert!(secs >= 0.0);
                CALLS.fetch_add(1, Ordering::Relaxed);
            });
            assert!(first);
            assert!(!super::install(|_, _| {}), "second install must be rejected");
            let out = super::timed("demo", || 41 + 1);
            assert_eq!(out, 42);
            super::observe("demo", 0.001);
            assert_eq!(CALLS.load(Ordering::Relaxed), 2);
        }
    }
}

/// Reusable breadth-first search scratch over [`Csr`] slabs.
///
/// The CSR counterpart of [`crate::Bfs`]: stamped visitation instead of
/// a cleared visited array, one allocation for a whole sweep. Level
/// sizes are identical to the [`crate::Bfs`] results on the same graph.
///
/// # Examples
///
/// ```
/// use socnet_core::{Csr, CsrBfs, Graph};
///
/// let g = Graph::from_edges(5, [(0, 1), (0, 2), (1, 3), (2, 4)]);
/// let csr = Csr::from_graph(&g);
/// let mut bfs = CsrBfs::new(csr.node_count());
/// assert_eq!(bfs.level_sizes(&csr, 0), &[1, 2, 2]);
/// assert_eq!(bfs.level_sizes(&csr, 3), &[1, 1, 1, 1, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct CsrBfs {
    stamp: Vec<u32>,
    dist: Vec<u32>,
    queue: Vec<u32>,
    levels: Vec<usize>,
    current: u32,
}

impl CsrBfs {
    /// Creates scratch state for graphs of `n` nodes.
    pub fn new(n: usize) -> Self {
        CsrBfs {
            stamp: vec![0; n],
            dist: vec![0; n],
            queue: Vec::new(),
            levels: Vec::new(),
            current: 0,
        }
    }

    /// Runs a BFS from `source` and returns the node count of each
    /// level (`level_sizes[0] == 1`). Valid until the next call.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range or the scratch was sized for
    /// a different node count.
    pub fn level_sizes(&mut self, csr: &Csr, source: u32) -> &[usize] {
        assert_eq!(self.stamp.len(), csr.node_count(), "bfs state size mismatch");
        self.current = self.current.wrapping_add(1);
        if self.current == 0 {
            // Stamp counter wrapped: reset so stale stamps cannot collide.
            self.stamp.fill(0);
            self.current = 1;
        }
        self.levels.clear();
        self.queue.clear();
        self.stamp[source as usize] = self.current;
        self.dist[source as usize] = 0;
        self.queue.push(source);
        self.levels.push(1);
        let mut head = 0usize;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            let du = self.dist[u as usize];
            for &v in csr.neighbors(u) {
                if self.stamp[v as usize] != self.current {
                    self.stamp[v as usize] = self.current;
                    self.dist[v as usize] = du + 1;
                    let level = (du + 1) as usize;
                    if self.levels.len() <= level {
                        self.levels.push(0);
                    }
                    self.levels[level] += 1;
                    self.queue.push(v);
                }
            }
        }
        &self.levels
    }

    /// Runs a BFS from `source` and returns the per-node hop distances
    /// ([`UNREACHED`] for other components) plus the reached count.
    /// The slice is valid until the next call.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range or the scratch was sized for
    /// a different node count.
    pub fn distances(&mut self, csr: &Csr, source: u32) -> (&[u32], usize) {
        assert_eq!(self.dist.len(), csr.node_count(), "bfs state size mismatch");
        self.dist.fill(UNREACHED);
        self.queue.clear();
        self.dist[source as usize] = 0;
        self.queue.push(source);
        let mut head = 0usize;
        let mut reached = 1usize;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            let du = self.dist[u as usize];
            for &v in csr.neighbors(u) {
                if self.dist[v as usize] == UNREACHED {
                    self.dist[v as usize] = du + 1;
                    reached += 1;
                    self.queue.push(v);
                }
            }
        }
        (&self.dist, reached)
    }
}

/// Result of a [`par_bfs`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParBfsResult {
    /// Node count of each BFS level (`level_sizes[0] == 1`).
    pub level_sizes: Vec<usize>,
    /// Hop distance per node, [`UNREACHED`] for other components.
    pub dist: Vec<u32>,
    /// Nodes reached, including the source.
    pub reached: usize,
}

/// How many frontier nodes make spawning worthwhile; below this a level
/// is expanded on the calling thread.
const PAR_BFS_CUTOFF: usize = 2_048;

/// Level-synchronous frontier-parallel BFS over [`Csr`] slabs.
///
/// Each level, the frontier is split into per-thread chunks; workers
/// claim unvisited neighbors with an atomic compare-exchange on the
/// distance array. Hop distances (and hence level sizes) are unique
/// regardless of which thread wins a claim, so the returned result is
/// **identical at any `threads` value** — only wall-clock changes.
/// Small frontiers are expanded inline to avoid spawn overhead.
///
/// # Panics
///
/// Panics if `source` is out of range.
///
/// # Examples
///
/// ```
/// use socnet_core::{par_bfs, Csr, Graph};
///
/// let g = Graph::from_edges(5, [(0, 1), (0, 2), (1, 3), (2, 4)]);
/// let csr = Csr::from_graph(&g);
/// let r = par_bfs(&csr, 0, 4);
/// assert_eq!(r.level_sizes, vec![1, 2, 2]);
/// assert_eq!(r.reached, 5);
/// ```
pub fn par_bfs(csr: &Csr, source: u32, threads: usize) -> ParBfsResult {
    timing::timed("csr_bfs", || par_bfs_inner(csr, source, threads))
}

fn par_bfs_inner(csr: &Csr, source: u32, threads: usize) -> ParBfsResult {
    let n = csr.node_count();
    assert!((source as usize) < n, "source {source} out of range for {n} nodes");
    let threads = threads.max(1);
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHED)).collect();
    dist[source as usize].store(0, Ordering::Relaxed);

    let mut frontier = vec![source];
    let mut level_sizes = vec![1usize];
    let mut reached = 1usize;
    let mut depth = 0u32;
    while !frontier.is_empty() {
        depth += 1;
        let next = if threads == 1 || frontier.len() < PAR_BFS_CUTOFF {
            expand_level(csr, &dist, &frontier, depth)
        } else {
            let chunk = frontier.len().div_ceil(threads);
            let mut parts: Vec<Vec<u32>> = Vec::with_capacity(threads);
            std::thread::scope(|s| {
                let handles: Vec<_> = frontier
                    .chunks(chunk)
                    .map(|part| s.spawn(|| expand_level(csr, &dist, part, depth)))
                    .collect();
                for h in handles {
                    parts.push(h.join().expect("bfs worker never panics"));
                }
            });
            let mut next = Vec::with_capacity(parts.iter().map(Vec::len).sum());
            for mut p in parts {
                next.append(&mut p);
            }
            next
        };
        if next.is_empty() {
            break;
        }
        reached += next.len();
        level_sizes.push(next.len());
        frontier = next;
    }

    let dist = dist.into_iter().map(AtomicU32::into_inner).collect();
    ParBfsResult { level_sizes, dist, reached }
}

fn expand_level(csr: &Csr, dist: &[AtomicU32], frontier: &[u32], depth: u32) -> Vec<u32> {
    let mut next = Vec::new();
    for &u in frontier {
        for &v in csr.neighbors(u) {
            if dist[v as usize].load(Ordering::Relaxed) == UNREACHED
                && dist[v as usize]
                    .compare_exchange(UNREACHED, depth, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            {
                next.push(v);
            }
        }
    }
    next
}

/// Fills `out[v] = f(v)` for every row, splitting the rows of `blocks`
/// across one scoped thread per block.
///
/// The caller provides contiguous ascending row ranges covering
/// `0..out.len()` (see [`Csr::edge_balanced_blocks`]); each thread
/// writes only its own disjoint output slice. Because every row is a
/// pure function of shared inputs, the result is bit-identical to the
/// sequential loop for any block split — this is the determinism
/// contract the blocked mat-vec kernels (SLEM power iteration, TVD
/// evolution) rely on.
///
/// With zero or one block the rows are filled inline, no spawns.
///
/// # Panics
///
/// Panics if `blocks` does not tile `0..out.len()` exactly.
pub fn par_fill_rows<F>(blocks: &[std::ops::Range<usize>], out: &mut [f64], f: F)
where
    F: Fn(usize) -> f64 + Sync,
{
    if blocks.len() <= 1 {
        let end = blocks.first().map_or(out.len(), |b| {
            assert!(b.start == 0 && b.end == out.len(), "single block must cover all rows");
            b.end
        });
        for (v, slot) in out.iter_mut().enumerate().take(end) {
            *slot = f(v);
        }
        return;
    }
    assert_eq!(blocks[0].start, 0, "blocks must start at row 0");
    assert_eq!(blocks.last().expect("nonempty").end, out.len(), "blocks must cover all rows");
    std::thread::scope(|s| {
        let mut rest = out;
        let mut offset = 0usize;
        let f = &f;
        for b in blocks {
            assert_eq!(b.start, offset, "blocks must be contiguous and ascending");
            let (head, tail) = rest.split_at_mut(b.end - offset);
            let start = b.start;
            s.spawn(move || {
                for (i, slot) in head.iter_mut().enumerate() {
                    *slot = f(start + i);
                }
            });
            rest = tail;
            offset = b.end;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bfs, Bfs, Graph, NodeId};

    fn barbell() -> Graph {
        Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
    }

    #[test]
    fn csr_bfs_matches_graph_bfs() {
        let g = barbell();
        let csr = Csr::from_graph(&g);
        let mut legacy = Bfs::new(&g);
        let mut compact = CsrBfs::new(csr.node_count());
        for s in g.nodes() {
            assert_eq!(
                compact.level_sizes(&csr, s.0),
                legacy.level_sizes(&g, s),
                "source {s}"
            );
        }
    }

    #[test]
    fn csr_distances_match_graph_bfs() {
        let g = Graph::from_edges(7, [(0, 1), (1, 2), (2, 3), (4, 5)]);
        let csr = Csr::from_graph(&g);
        let mut compact = CsrBfs::new(csr.node_count());
        for s in g.nodes() {
            let fresh = bfs(&g, s);
            let (dist, reached) = compact.distances(&csr, s.0);
            assert_eq!(dist, fresh.dist.as_slice(), "source {s}");
            assert_eq!(reached, fresh.reached);
        }
    }

    #[test]
    fn par_bfs_is_identical_at_every_thread_count() {
        let g = barbell();
        let csr = Csr::from_graph(&g);
        let reference = par_bfs(&csr, 0, 1);
        for threads in [2, 4, 8] {
            assert_eq!(reference, par_bfs(&csr, 0, threads), "threads={threads}");
        }
        let fresh = bfs(&g, NodeId(0));
        assert_eq!(reference.dist, fresh.dist);
        assert_eq!(reference.reached, fresh.reached);
    }

    #[test]
    fn par_bfs_crosses_the_spawn_cutoff() {
        // A star bigger than the cutoff forces the chunked parallel path
        // on the second level.
        let n = PAR_BFS_CUTOFF + 100;
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (0, v)).collect();
        let csr = Csr::from_edges(n, edges);
        let seq = par_bfs(&csr, 0, 1);
        let par = par_bfs(&csr, 0, 4);
        assert_eq!(seq, par);
        assert_eq!(par.level_sizes, vec![1, n - 1]);
    }

    #[test]
    fn fill_rows_matches_sequential_for_any_split() {
        let g = barbell();
        let csr = Csr::from_graph(&g);
        let x: Vec<f64> = (0..csr.node_count()).map(|v| 1.0 / (v + 1) as f64).collect();
        let row = |v: usize| csr.neighbors(v as u32).iter().map(|&u| x[u as usize]).sum::<f64>();
        let mut expect = vec![0.0; csr.node_count()];
        for (v, slot) in expect.iter_mut().enumerate() {
            *slot = row(v);
        }
        for blocks in 1..=6 {
            let ranges = csr.edge_balanced_blocks(blocks);
            let mut got = vec![0.0; csr.node_count()];
            par_fill_rows(&ranges, &mut got, row);
            let bits: Vec<u64> = got.iter().map(|f| f.to_bits()).collect();
            let expect_bits: Vec<u64> = expect.iter().map(|f| f.to_bits()).collect();
            assert_eq!(bits, expect_bits, "blocks={blocks}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn par_bfs_rejects_bad_source() {
        let csr = Csr::from_edges(2, [(0, 1)]);
        let _ = par_bfs(&csr, 5, 1);
    }
}
