//! Plain-text edge-list input and output.
//!
//! The format is the one the SNAP datasets in the paper's Table I ship in:
//! one `u v` pair per line, `#`-prefixed comment lines, blank lines
//! ignored. Node ids are raw non-negative integers; the graph gets
//! `max(id) + 1` nodes.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{Graph, GraphError, NodeId};

/// Reads an undirected edge list from any reader.
///
/// Self-loops and duplicate edges are dropped, matching the paper's
/// simple-graph preprocessing.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] for malformed lines and
/// [`GraphError::Io`] for underlying read failures.
///
/// # Examples
///
/// ```
/// use socnet_core::read_edge_list;
///
/// let text = "# a comment\n0 1\n1 2\n2 0\n";
/// let g = read_edge_list(text.as_bytes())?;
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 3);
/// # Ok::<(), socnet_core::GraphError>(())
/// ```
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, GraphError> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_id = 0u32;
    let mut any = false;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let u = parse_field(fields.next(), line_no)?;
        let v = parse_field(fields.next(), line_no)?;
        if fields.next().is_some() {
            return Err(GraphError::Parse {
                line: line_no,
                message: "expected exactly two fields".into(),
            });
        }
        max_id = max_id.max(u).max(v);
        any = true;
        edges.push((u, v));
    }
    let n = if any { max_id as usize + 1 } else { 0 };
    Ok(Graph::from_edges(n, edges))
}

fn parse_field(field: Option<&str>, line: usize) -> Result<u32, GraphError> {
    let field = field.ok_or_else(|| GraphError::Parse {
        line,
        message: "expected exactly two fields".into(),
    })?;
    field.parse::<u32>().map_err(|e| GraphError::Parse {
        line,
        message: format!("invalid node id {field:?}: {e}"),
    })
}

/// Reads an edge list from a file path.
///
/// # Errors
///
/// As [`read_edge_list`], plus [`GraphError::Io`] if the file cannot be
/// opened.
pub fn read_edge_list_path<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    read_edge_list(File::open(path)?)
}

/// Writes the graph as an edge list, one `u v` line per undirected edge.
///
/// The output round-trips through [`read_edge_list`] provided the graph
/// has no trailing isolated nodes (the format cannot represent them).
///
/// # Errors
///
/// Returns [`GraphError::Io`] on write failure.
pub fn write_edge_list<W: Write>(graph: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# socnet edge list: {} nodes, {} edges", graph.node_count(), graph.edge_count())?;
    for (u, v) in graph.edges() {
        writeln!(w, "{} {}", u.0, v.0)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes the graph as an edge list to a file path.
///
/// # Errors
///
/// As [`write_edge_list`], plus [`GraphError::Io`] if the file cannot be
/// created.
pub fn write_edge_list_path<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<(), GraphError> {
    write_edge_list(graph, File::create(path)?)
}

/// Extension helpers used by tests; kept crate-private.
#[allow(dead_code)]
pub(crate) fn edge_vec(graph: &Graph) -> Vec<(NodeId, NodeId)> {
    graph.edges().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).expect("write");
        let back = read_edge_list(&buf[..]).expect("read");
        assert_eq!(back, g);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\n0 1\n   \n# middle\n1 2\n";
        let g = read_edge_list(text.as_bytes()).expect("read");
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn duplicate_and_loop_lines_collapse() {
        let text = "0 1\n1 0\n0 0\n0 1\n";
        let g = read_edge_list(text.as_bytes()).expect("read");
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list("".as_bytes()).expect("read");
        assert_eq!(g.node_count(), 0);
        let g = read_edge_list("# only comments\n".as_bytes()).expect("read");
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        match read_edge_list("0 1\nx 2\n".as_bytes()) {
            Err(GraphError::Parse { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("invalid node id"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        match read_edge_list("0\n".as_bytes()) {
            Err(GraphError::Parse { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
        match read_edge_list("0 1 2\n".as_bytes()) {
            Err(GraphError::Parse { message, .. }) => {
                assert!(message.contains("exactly two fields"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn crlf_line_endings_parse_like_unix_ones() {
        // SNAP dumps edited on Windows arrive with \r\n; the trailing
        // \r must not leak into the last field or the comment check.
        let text = "# header\r\n0 1\r\n\r\n# middle\r\n1 2\r\n2 0\r\n";
        let g = read_edge_list(text.as_bytes()).expect("read");
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        let unix = read_edge_list("# header\n0 1\n\n# middle\n1 2\n2 0\n".as_bytes())
            .expect("read");
        assert_eq!(g, unix);
    }

    #[test]
    fn tabs_and_runs_of_spaces_separate_fields() {
        let text = "0\t1\n  1 \t 2  \n";
        let g = read_edge_list(text.as_bytes()).expect("read");
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn node_id_overflow_is_a_parse_error_not_a_panic() {
        // One past u32::MAX: must surface as GraphError::Parse naming
        // the line and the offending token, never wrap or panic.
        let text = "0 1\n2 4294967296\n";
        match read_edge_list(text.as_bytes()) {
            Err(GraphError::Parse { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("invalid node id"), "{message}");
                assert!(message.contains("4294967296"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        // Negative ids are not node ids either.
        match read_edge_list("-1 2\n".as_bytes()) {
            Err(GraphError::Parse { line, message }) => {
                assert_eq!(line, 1);
                assert!(message.contains("invalid node id"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn self_loops_and_both_orientations_of_duplicates_collapse() {
        // 1-2 appears in both orientations plus a repeat, 3-3 is a pure
        // self-loop line: the simple graph keeps exactly {1-2, 2-3}.
        let text = "1 2\n2 1\n1 2\n3 3\n2 3\n";
        let g = read_edge_list(text.as_bytes()).expect("read");
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(NodeId(3)), 1, "self-loop contributes no degree");
    }

    #[test]
    fn path_round_trip() {
        let dir = std::env::temp_dir().join("socnet-core-io-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("g.txt");
        let g = Graph::from_edges(4, [(0, 1), (2, 3), (1, 2)]);
        write_edge_list_path(&g, &path).expect("write file");
        let back = read_edge_list_path(&path).expect("read file");
        assert_eq!(back, g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        match read_edge_list_path("/definitely/not/here.txt") {
            Err(GraphError::Io(_)) => {}
            other => panic!("expected io error, got {other:?}"),
        }
    }
}
