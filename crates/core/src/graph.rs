use serde::{Deserialize, Serialize};

use crate::{GraphError, NodeId};

/// A simple, undirected, unweighted graph in compressed-sparse-row form.
///
/// This is the graph model of the paper (Sec. III-A): `G = (V, E)` with
/// `|V| = n` social actors and `|E| = m` symmetric ties. The structure is
/// immutable; build it with [`GraphBuilder`](crate::GraphBuilder) or
/// [`Graph::from_edges`].
///
/// Invariants maintained by construction and checked on deserialization:
///
/// * neighbor lists are sorted and duplicate-free,
/// * adjacency is symmetric (`v ∈ N(u)` iff `u ∈ N(v)`),
/// * there are no self-loops.
///
/// # Examples
///
/// ```
/// use socnet_core::{Graph, NodeId};
///
/// // A triangle.
/// let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
/// assert_eq!(g.edge_count(), 3);
/// assert!(g.has_edge(NodeId(0), NodeId(2)));
/// assert_eq!(g.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Graph {
    /// CSR row offsets; `offsets.len() == n + 1`.
    offsets: Vec<usize>,
    /// Concatenated, per-row-sorted neighbor lists; `targets.len() == 2m`.
    targets: Vec<NodeId>,
}

impl Graph {
    /// Builds a graph with `n` nodes from an edge iterator.
    ///
    /// Duplicate edges, reversed duplicates, and self-loops are dropped;
    /// this is a convenience front-end to
    /// [`GraphBuilder`](crate::GraphBuilder).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    ///
    /// ```
    /// use socnet_core::Graph;
    /// let g = Graph::from_edges(4, [(0, 1), (1, 0), (2, 2), (2, 3)]);
    /// assert_eq!(g.edge_count(), 2); // duplicate and self-loop dropped
    /// ```
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let mut b = crate::GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(NodeId(u), NodeId(v));
        }
        b.build()
    }

    /// Constructs a graph directly from CSR arrays, validating every
    /// invariant.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidStructure`] if the offsets are not
    /// monotone or do not cover `targets`, if any neighbor list is
    /// unsorted or contains duplicates or self-loops, if any target is out
    /// of range, or if the adjacency is not symmetric.
    pub fn from_csr(offsets: Vec<usize>, targets: Vec<NodeId>) -> Result<Self, GraphError> {
        if offsets.is_empty() {
            return Err(GraphError::InvalidStructure("offsets must have length n + 1".into()));
        }
        if offsets[0] != 0 || *offsets.last().expect("non-empty") != targets.len() {
            return Err(GraphError::InvalidStructure(
                "offsets must start at 0 and end at targets.len()".into(),
            ));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::InvalidStructure("offsets not monotone".into()));
        }
        let n = offsets.len() - 1;
        let g = Graph { offsets, targets };
        for u in g.nodes() {
            let row = g.neighbors(u);
            if row.windows(2).any(|w| w[0] >= w[1]) {
                return Err(GraphError::InvalidStructure(format!(
                    "neighbor list of {u} is not strictly sorted"
                )));
            }
            for &v in row {
                if v.index() >= n {
                    return Err(GraphError::InvalidStructure(format!(
                        "neighbor {v} of {u} out of range"
                    )));
                }
                if v == u {
                    return Err(GraphError::InvalidStructure(format!("self-loop at {u}")));
                }
            }
        }
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                if !g.has_edge(v, u) {
                    return Err(GraphError::InvalidStructure(format!(
                        "asymmetric adjacency: {u} -> {v} present, reverse missing"
                    )));
                }
            }
        }
        Ok(g)
    }

    /// Constructs a graph from CSR arrays that are already known to be
    /// valid, skipping the `O(m log m)` validation pass.
    ///
    /// Intended for internal use by [`GraphBuilder`](crate::GraphBuilder)
    /// and generators that construct rows sorted and symmetric by design.
    /// The invariants are still asserted in debug builds.
    pub(crate) fn from_csr_unchecked(offsets: Vec<usize>, targets: Vec<NodeId>) -> Self {
        debug_assert!(Graph::from_csr(offsets.clone(), targets.clone()).is_ok());
        Graph { offsets, targets }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of `v`: the number of distinct neighbors.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let i = v.index();
        self.offsets[i + 1] - self.offsets[i]
    }

    /// The sorted neighbor list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        &self.targets[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Whether the undirected edge `{u, v}` is present.
    ///
    /// Runs in `O(log deg(u))`.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all node ids `0..n`.
    ///
    /// ```
    /// # use socnet_core::Graph;
    /// let g = Graph::from_edges(3, [(0, 1)]);
    /// assert_eq!(g.nodes().count(), 3);
    /// ```
    pub fn nodes(&self) -> Nodes {
        Nodes { next: 0, end: self.node_count() as u32 }
    }

    /// Iterator over each undirected edge once, as `(u, v)` with `u < v`.
    ///
    /// ```
    /// # use socnet_core::{Graph, NodeId};
    /// let g = Graph::from_edges(3, [(2, 1), (0, 2)]);
    /// let edges: Vec<_> = g.edges().collect();
    /// assert_eq!(edges, vec![(NodeId(0), NodeId(2)), (NodeId(1), NodeId(2))]);
    /// ```
    pub fn edges(&self) -> Edges<'_> {
        Edges { graph: self, row: 0, col: 0 }
    }

    /// Sum of all degrees, i.e. `2m`.
    #[inline]
    pub fn degree_sum(&self) -> usize {
        self.targets.len()
    }

    /// Maximum degree over all nodes, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.node_count()).map(|i| self.offsets[i + 1] - self.offsets[i]).max().unwrap_or(0)
    }

    /// Checks that `v` is a valid node id for this graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if `v >= n`.
    pub fn check_node(&self, v: NodeId) -> Result<(), GraphError> {
        if v.index() < self.node_count() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange { node: v.index(), node_count: self.node_count() })
        }
    }
}

impl<'de> Deserialize<'de> for Graph {
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: serde::Deserializer<'de>,
    {
        #[derive(Deserialize)]
        struct Raw {
            offsets: Vec<usize>,
            targets: Vec<NodeId>,
        }
        let raw = Raw::deserialize(deserializer)?;
        Graph::from_csr(raw.offsets, raw.targets).map_err(serde::de::Error::custom)
    }
}

/// Iterator over all node ids of a graph. Created by [`Graph::nodes`].
#[derive(Debug, Clone)]
pub struct Nodes {
    next: u32,
    end: u32,
}

impl Iterator for Nodes {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.next < self.end {
            let id = NodeId(self.next);
            self.next += 1;
            Some(id)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.end - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Nodes {}

/// Iterator over the undirected edges of a graph, each reported once with
/// `u < v`. Created by [`Graph::edges`].
#[derive(Debug, Clone)]
pub struct Edges<'a> {
    graph: &'a Graph,
    row: u32,
    col: usize,
}

impl Iterator for Edges<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        let n = self.graph.node_count() as u32;
        while self.row < n {
            let u = NodeId(self.row);
            let row = self.graph.neighbors(u);
            while self.col < row.len() {
                let v = row[self.col];
                self.col += 1;
                if u < v {
                    return Some((u, v));
                }
            }
            self.row += 1;
            self.col = 0;
        }
        None
    }
}

/// The neighbor slice type returned by [`Graph::neighbors`].
///
/// This alias documents that neighbor access is a borrowed, sorted slice —
/// no allocation happens per query.
pub type Neighbors<'a> = &'a [NodeId];

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn counts_and_degrees() {
        let g = path4();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree_sum(), 6);
        assert_eq!(g.degree(NodeId(0)), 1);
        assert_eq!(g.degree(NodeId(1)), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Graph::from_edges(5, [(3, 1), (3, 0), (3, 4), (3, 2)]);
        assert_eq!(g.neighbors(NodeId(3)), &[NodeId(0), NodeId(1), NodeId(2), NodeId(4)]);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = path4();
        for (u, v) in g.edges() {
            assert!(g.has_edge(u, v));
            assert!(g.has_edge(v, u));
        }
        assert!(!g.has_edge(NodeId(0), NodeId(3)));
    }

    #[test]
    fn edges_reported_once_in_order() {
        let g = Graph::from_edges(4, [(2, 0), (3, 2), (1, 0)]);
        let got: Vec<_> = g.edges().map(|(u, v)| (u.0, v.0)).collect();
        assert_eq!(got, vec![(0, 1), (0, 2), (2, 3)]);
    }

    #[test]
    fn nodes_iterator_is_exact_size() {
        let g = path4();
        let it = g.nodes();
        assert_eq!(it.len(), 4);
        assert_eq!(it.collect::<Vec<_>>(), vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn from_csr_accepts_valid() {
        let g = path4();
        let copy = Graph::from_csr(g.offsets.clone(), g.targets.clone()).expect("valid csr");
        assert_eq!(copy, g);
    }

    #[test]
    fn from_csr_rejects_asymmetric() {
        // 0 -> 1 without the reverse edge.
        let err = Graph::from_csr(vec![0, 1, 1], vec![NodeId(1)]).unwrap_err();
        assert!(err.to_string().contains("asymmetric"));
    }

    #[test]
    fn from_csr_rejects_self_loop() {
        let err = Graph::from_csr(vec![0, 1], vec![NodeId(0)]).unwrap_err();
        assert!(err.to_string().contains("self-loop"));
    }

    #[test]
    fn from_csr_rejects_unsorted_row() {
        let err = Graph::from_csr(
            vec![0, 2, 3, 5],
            vec![NodeId(2), NodeId(1), NodeId(0), NodeId(0), NodeId(1)],
        )
        .unwrap_err();
        assert!(err.to_string().contains("sorted"), "{err}");
    }

    #[test]
    fn from_csr_rejects_bad_offsets() {
        assert!(Graph::from_csr(vec![], vec![]).is_err());
        assert!(Graph::from_csr(vec![1, 0], vec![NodeId(0)]).is_err());
        assert!(Graph::from_csr(vec![0, 2], vec![NodeId(1)]).is_err());
    }

    #[test]
    fn check_node_bounds() {
        let g = path4();
        assert!(g.check_node(NodeId(3)).is_ok());
        assert!(matches!(
            g.check_node(NodeId(4)),
            Err(GraphError::NodeOutOfRange { node: 4, node_count: 4 })
        ));
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Graph::from_edges(0, []);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }
}
