//! The compact kernel-facing CSR representation.
//!
//! [`Graph`] is already compressed sparse row, but it carries `usize`
//! offsets and [`NodeId`]-typed targets — comfortable for API code, 50%
//! fatter than necessary for million-node kernels. [`Csr`] is the slab
//! form the hot kernels run on: one `u32` offsets slab and one `u32`
//! adjacency slab, nothing else. Converting from a [`Graph`] is a single
//! `O(E)` pass; converting back revalidates every invariant, so a `Csr`
//! obtained from a valid graph round-trips losslessly.
//!
//! Invariants (shared with [`Graph`], enforced by every constructor):
//! sorted neighbor rows, no self-loops, no parallel edges, symmetric
//! adjacency.

use crate::{Graph, NodeId};

/// A compact CSR adjacency: `u32` node ids, one offsets slab, one
/// targets slab.
///
/// This is the kernel-facing format: BFS frontiers, sparse mat-vec, and
/// bucket k-core all read these two slabs directly. The old [`Graph`]
/// API stays the construction/serving surface; kernels convert once per
/// measurement with [`Csr::from_graph`] (`O(E)`).
///
/// # Examples
///
/// ```
/// use socnet_core::{Csr, Graph};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
/// let csr = Csr::from_graph(&g);
/// assert_eq!(csr.node_count(), 4);
/// assert_eq!(csr.edge_count(), 3);
/// assert_eq!(csr.neighbors(1), &[0, 2]);
/// assert_eq!(csr.to_graph(), g);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `n + 1` row boundaries into `targets`.
    offsets: Vec<u32>,
    /// Concatenated sorted neighbor rows; `2m` entries.
    targets: Vec<u32>,
}

impl Csr {
    /// Converts a [`Graph`] into compact slabs in one `O(E)` pass.
    ///
    /// # Panics
    ///
    /// Panics if the graph has `2m ≥ u32::MAX` directed edge slots —
    /// beyond the compact format's address range.
    pub fn from_graph(graph: &Graph) -> Self {
        let slots = graph.degree_sum();
        assert!(
            slots < u32::MAX as usize,
            "graph has {slots} directed edge slots, above the u32 CSR limit"
        );
        let n = graph.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(slots);
        offsets.push(0u32);
        for v in graph.nodes() {
            for &u in graph.neighbors(v) {
                targets.push(u.0);
            }
            offsets.push(targets.len() as u32);
        }
        Csr { offsets, targets }
    }

    /// Builds a `Csr` directly from an edge list, deduplicating,
    /// dropping self-loops, and symmetrizing — the same normalization
    /// as [`crate::GraphBuilder`], without materializing a [`Graph`].
    ///
    /// # Panics
    ///
    /// Panics if `n` or an endpoint exceeds the `u32` id range, or an
    /// endpoint is `≥ n`.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        assert!(n <= u32::MAX as usize, "node count {n} above the u32 id range");
        let mut pairs: Vec<(u32, u32)> = edges
            .into_iter()
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| {
                assert!((a as usize) < n && (b as usize) < n, "edge ({a}, {b}) out of range");
                if a < b {
                    (a, b)
                } else {
                    (b, a)
                }
            })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();

        // Counting sort into the two slabs: count both directions, prefix
        // sum, place, then each row is already sorted for the (v, u)
        // direction but not for (u, v) placements — sort rows to finish.
        let mut degree = vec![0u32; n];
        for &(a, b) in &pairs {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut total = 0u64;
        offsets.push(0u32);
        for &d in &degree {
            total += u64::from(d);
            assert!(total < u64::from(u32::MAX), "edge list above the u32 CSR limit");
            offsets.push(total as u32);
        }
        let mut next: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![0u32; total as usize];
        for &(a, b) in &pairs {
            targets[next[a as usize] as usize] = b;
            next[a as usize] += 1;
            targets[next[b as usize] as usize] = a;
            next[b as usize] += 1;
        }
        for v in 0..n {
            let (s, e) = (offsets[v] as usize, offsets[v + 1] as usize);
            targets[s..e].sort_unstable();
        }
        Csr { offsets, targets }
    }

    /// Expands back into the [`Graph`] API form, revalidating every CSR
    /// invariant.
    ///
    /// # Panics
    ///
    /// Panics if the slabs violate a graph invariant — impossible for a
    /// `Csr` built by this module's constructors.
    pub fn to_graph(&self) -> Graph {
        let offsets = self.offsets.iter().map(|&o| o as usize).collect();
        let targets = self.targets.iter().map(|&t| NodeId(t)).collect();
        Graph::from_csr(offsets, targets).expect("Csr invariants match Graph invariants")
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Sum of all degrees (`2m`, the directed edge-slot count).
    pub fn degree_sum(&self) -> usize {
        self.targets.len()
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// The sorted neighbor row of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.targets[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Iterates every undirected edge exactly once as `(u, v)` with
    /// `u < v`, in row order — the inverse of [`Csr::from_edges`], used
    /// by overlay rebuilds that need the base edge list back.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.node_count() as u32)
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
            .filter(|&(u, v)| u < v)
    }

    /// The largest degree (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.node_count()).map(|v| self.degree(v as u32)).max().unwrap_or(0)
    }

    /// Resident bytes of the two slabs.
    pub fn byte_size(&self) -> usize {
        (self.offsets.len() + self.targets.len()) * std::mem::size_of::<u32>()
    }

    /// Splits the node range into up to `blocks` contiguous row ranges
    /// of roughly equal *edge* weight, for blocked row-parallel kernels.
    ///
    /// Every node lands in exactly one range and ranges are returned in
    /// ascending order, so a kernel that writes one output element per
    /// row can hand each block to its own thread with disjoint output
    /// slices. Returns at least one range for a non-empty graph.
    pub fn edge_balanced_blocks(&self, blocks: usize) -> Vec<std::ops::Range<usize>> {
        let n = self.node_count();
        if n == 0 {
            return Vec::new();
        }
        let blocks = blocks.clamp(1, n);
        let total = self.targets.len() as u64 + n as u64; // weight rows ≥ 1
        let per_block = total.div_ceil(blocks as u64);
        let mut out = Vec::with_capacity(blocks);
        let mut start = 0usize;
        let mut weight = 0u64;
        for v in 0..n {
            weight += self.degree(v as u32) as u64 + 1;
            if weight >= per_block && v + 1 < n {
                out.push(start..v + 1);
                start = v + 1;
                weight = 0;
            }
        }
        out.push(start..n);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)])
    }

    #[test]
    fn from_graph_round_trips() {
        let g = sample();
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.node_count(), g.node_count());
        assert_eq!(csr.edge_count(), g.edge_count());
        assert_eq!(csr.degree_sum(), g.degree_sum());
        assert_eq!(csr.max_degree(), g.max_degree());
        assert_eq!(csr.to_graph(), g);
    }

    #[test]
    fn rows_match_graph_neighbors() {
        let g = sample();
        let csr = Csr::from_graph(&g);
        for v in g.nodes() {
            let expect: Vec<u32> = g.neighbors(v).iter().map(|u| u.0).collect();
            assert_eq!(csr.neighbors(v.0), expect.as_slice(), "row {v}");
            assert_eq!(csr.degree(v.0), g.degree(v));
        }
    }

    #[test]
    fn from_edges_normalizes_like_the_builder() {
        // Duplicates, reversed duplicates, and self-loops all collapse.
        let csr = Csr::from_edges(4, [(0, 1), (1, 0), (2, 2), (1, 2), (1, 2), (3, 0)]);
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 3)]);
        assert_eq!(csr, Csr::from_graph(&g));
    }

    #[test]
    fn empty_and_isolated_rows() {
        let csr = Csr::from_edges(3, []);
        assert_eq!(csr.node_count(), 3);
        assert_eq!(csr.edge_count(), 0);
        assert_eq!(csr.neighbors(1), &[] as &[u32]);
        assert_eq!(csr.max_degree(), 0);
        assert_eq!(Csr::from_edges(0, []).node_count(), 0);
    }

    #[test]
    fn blocks_cover_all_rows_in_order() {
        let g = sample();
        let csr = Csr::from_graph(&g);
        for blocks in 1..=8 {
            let ranges = csr.edge_balanced_blocks(blocks);
            assert!(!ranges.is_empty());
            assert!(ranges.len() <= blocks.max(1));
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, csr.node_count());
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous ranges");
                assert!(!w[0].is_empty());
            }
        }
        assert!(Csr::from_edges(0, []).edge_balanced_blocks(4).is_empty());
    }

    #[test]
    fn edges_round_trip_through_from_edges() {
        let csr = Csr::from_graph(&sample());
        let edges: Vec<(u32, u32)> = csr.edges().collect();
        assert_eq!(edges.len(), csr.edge_count());
        assert!(edges.iter().all(|&(u, v)| u < v));
        assert_eq!(Csr::from_edges(csr.node_count(), edges), csr);
        assert_eq!(Csr::from_edges(0, []).edges().count(), 0);
    }

    #[test]
    fn byte_size_counts_both_slabs() {
        let csr = Csr::from_graph(&sample());
        assert_eq!(csr.byte_size(), (7 + 14) * 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_rejects_out_of_range() {
        let _ = Csr::from_edges(2, [(0, 5)]);
    }
}
