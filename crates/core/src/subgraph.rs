use crate::{Graph, GraphBuilder, NodeId};

/// Mapping between a subgraph's dense node ids and the parent graph's ids.
///
/// Returned alongside the subgraph by [`induced_subgraph`]; the `Vec`
/// variant used throughout the workspace is `map[new.index()] == old`.
pub type SubgraphMap = Vec<NodeId>;

/// Extracts the subgraph induced by `nodes`, relabeling them densely.
///
/// Nodes keep their relative order: the `i`-th entry of the (deduplicated,
/// sorted) member list becomes `NodeId(i)`. Returns the subgraph and the
/// new-to-old id map.
///
/// # Panics
///
/// Panics if any member id is out of range for `graph`.
///
/// # Examples
///
/// ```
/// use socnet_core::{induced_subgraph, Graph, NodeId};
///
/// let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
/// let (sub, map) = induced_subgraph(&g, &[NodeId(0), NodeId(1), NodeId(4)]);
/// assert_eq!(sub.node_count(), 3);
/// assert_eq!(sub.edge_count(), 2); // 0-1 and 4-0 survive, 1-2 etc. do not
/// assert_eq!(map, vec![NodeId(0), NodeId(1), NodeId(4)]);
/// ```
pub fn induced_subgraph(graph: &Graph, nodes: &[NodeId]) -> (Graph, SubgraphMap) {
    let mut members: Vec<NodeId> = nodes.to_vec();
    members.sort_unstable();
    members.dedup();
    for &v in &members {
        assert!(
            v.index() < graph.node_count(),
            "subgraph member {v} out of range for {} nodes",
            graph.node_count()
        );
    }

    let mut old_to_new = vec![u32::MAX; graph.node_count()];
    for (new, &old) in members.iter().enumerate() {
        old_to_new[old.index()] = new as u32;
    }

    let mut builder = GraphBuilder::new(members.len());
    for (new_u, &old_u) in members.iter().enumerate() {
        for &old_v in graph.neighbors(old_u) {
            let new_v = old_to_new[old_v.index()];
            if new_v != u32::MAX && old_u < old_v {
                builder.add_edge(NodeId(new_u as u32), NodeId(new_v));
            }
        }
    }
    (builder.build(), members)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_internal_edges_only() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)]);
        let (sub, map) = induced_subgraph(&g, &[NodeId(1), NodeId(2), NodeId(4)]);
        assert_eq!(map, vec![NodeId(1), NodeId(2), NodeId(4)]);
        // Internal edges among {1,2,4}: 1-2 and 1-4.
        assert_eq!(sub.edge_count(), 2);
        assert!(sub.has_edge(NodeId(0), NodeId(1))); // old 1-2
        assert!(sub.has_edge(NodeId(0), NodeId(2))); // old 1-4
        assert!(!sub.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn duplicate_and_unsorted_members_are_normalized() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let (sub, map) = induced_subgraph(&g, &[NodeId(2), NodeId(0), NodeId(2), NodeId(1)]);
        assert_eq!(map, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2);
    }

    #[test]
    fn empty_selection_yields_empty_graph() {
        let g = Graph::from_edges(3, [(0, 1)]);
        let (sub, map) = induced_subgraph(&g, &[]);
        assert_eq!(sub.node_count(), 0);
        assert!(map.is_empty());
    }

    #[test]
    fn full_selection_is_identity_up_to_relabel() {
        let g = Graph::from_edges(4, [(0, 2), (1, 3), (2, 3)]);
        let all: Vec<NodeId> = g.nodes().collect();
        let (sub, map) = induced_subgraph(&g, &all);
        assert_eq!(sub, g);
        assert_eq!(map, all);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_member_panics() {
        let g = Graph::from_edges(2, [(0, 1)]);
        let _ = induced_subgraph(&g, &[NodeId(5)]);
    }
}
