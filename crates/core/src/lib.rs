//! Compact graph substrate for social-network measurement.
//!
//! This crate provides the data model shared by every other `socnet`
//! crate: a compressed-sparse-row ([`Graph`]) representation of a simple,
//! undirected, unweighted graph, together with the traversal, component,
//! distance, sampling, statistics, and I/O routines that the measurement
//! pipelines are built from.
//!
//! The representation is immutable by design: graphs are assembled through
//! a [`GraphBuilder`] (which deduplicates edges, drops self-loops, and
//! symmetrizes), and every analysis downstream can then rely on the CSR
//! invariants — sorted neighbor lists, symmetric adjacency, no parallel
//! edges — without re-validating them.
//!
//! # Examples
//!
//! ```
//! use socnet_core::{GraphBuilder, NodeId};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(NodeId(0), NodeId(1));
//! b.add_edge(NodeId(1), NodeId(2));
//! b.add_edge(NodeId(2), NodeId(3));
//! b.add_edge(NodeId(3), NodeId(0));
//! let g = b.build();
//!
//! assert_eq!(g.node_count(), 4);
//! assert_eq!(g.edge_count(), 4);
//! assert_eq!(g.degree(NodeId(0)), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod csr;
mod distance;
mod error;
mod graph;
mod io;
mod kernels;
mod node;
mod sample;
mod stats;
mod subgraph;
mod traversal;

pub mod prelude;

pub use builder::GraphBuilder;
pub use csr::Csr;
pub use distance::{double_sweep_lower_bound, eccentricity, exact_diameter, pseudo_diameter};
pub use error::GraphError;
pub use graph::{Edges, Graph, Neighbors, Nodes};
pub use io::{read_edge_list, read_edge_list_path, write_edge_list, write_edge_list_path};
pub use kernels::{par_bfs, par_fill_rows, CsrBfs, ParBfsResult};
pub use kernels::timing as kernel_timing;
pub use node::NodeId;
pub use sample::{random_node, sample_nodes, shuffled_nodes};
pub use subgraph::{induced_subgraph, SubgraphMap};
pub use stats::{
    assortativity, average_degree, degree_histogram, global_clustering, local_clustering,
    triangle_count, GraphSummary,
};
pub use traversal::{
    bfs, connected_components, is_connected, largest_component, Bfs, BfsResult, Components,
    UNREACHED,
};
