//! Distance and diameter estimation.
//!
//! Expansion measurements (Sec. III-D of the paper) run a BFS from every
//! node up to the graph diameter, so the harness needs both an exact
//! diameter for small graphs and a cheap lower bound for large ones.

use crate::{Bfs, Graph, NodeId};

/// Eccentricity of `v`: the maximum hop distance from `v` to any node in
/// its component.
///
/// # Panics
///
/// Panics if `v` is out of range.
///
/// # Examples
///
/// ```
/// use socnet_core::{eccentricity, Graph, NodeId};
///
/// let path = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
/// assert_eq!(eccentricity(&path, NodeId(0)), 3);
/// assert_eq!(eccentricity(&path, NodeId(1)), 2);
/// ```
pub fn eccentricity(graph: &Graph, v: NodeId) -> u32 {
    Bfs::new(graph).eccentricity(graph, v).0
}

/// Exact diameter of the graph's largest component, by all-pairs BFS.
///
/// Runs in `O(n·m)`; intended for graphs up to a few tens of thousands of
/// edges (tests, calibration). Use [`double_sweep_lower_bound`] or
/// [`pseudo_diameter`] for measurement-scale graphs. Returns 0 for graphs
/// with fewer than two nodes.
///
/// # Examples
///
/// ```
/// use socnet_core::{exact_diameter, Graph};
///
/// let ring = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
/// assert_eq!(exact_diameter(&ring), 3);
/// ```
pub fn exact_diameter(graph: &Graph) -> u32 {
    let mut bfs = Bfs::new(graph);
    let mut best = 0u32;
    for v in graph.nodes() {
        let (ecc, _) = bfs.eccentricity(graph, v);
        best = best.max(ecc);
    }
    best
}

/// Double-sweep lower bound on the diameter.
///
/// Runs two BFS passes: from `start` to its farthest node `f`, then from
/// `f`. The second eccentricity is a lower bound on the diameter that is
/// exact on trees and empirically tight on social graphs.
///
/// # Panics
///
/// Panics if `start` is out of range.
pub fn double_sweep_lower_bound(graph: &Graph, start: NodeId) -> u32 {
    let mut bfs = Bfs::new(graph);
    let (_, far) = bfs.eccentricity(graph, start);
    let (ecc, _) = bfs.eccentricity(graph, far);
    ecc
}

/// Iterated double-sweep diameter estimate ("pseudo-diameter").
///
/// Repeats the double sweep, restarting from the farthest node found, until
/// the bound stops improving (at most `max_rounds` rounds). Returns the
/// best lower bound found. With `max_rounds == 0` this is just a single
/// BFS eccentricity from node 0.
///
/// # Examples
///
/// ```
/// use socnet_core::{exact_diameter, pseudo_diameter, Graph};
///
/// let g = Graph::from_edges(7, [(0, 1), (1, 2), (2, 3), (3, 4), (2, 5), (5, 6)]);
/// let est = pseudo_diameter(&g, 4);
/// assert!(est <= exact_diameter(&g));
/// assert_eq!(est, exact_diameter(&g)); // exact on trees
/// ```
pub fn pseudo_diameter(graph: &Graph, max_rounds: usize) -> u32 {
    if graph.node_count() == 0 {
        return 0;
    }
    let mut bfs = Bfs::new(graph);
    let (mut best, mut frontier) = bfs.eccentricity(graph, NodeId(0));
    for _ in 0..max_rounds {
        let (ecc, far) = bfs.eccentricity(graph, frontier);
        if ecc <= best {
            break;
        }
        best = ecc;
        frontier = far;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: u32) -> Graph {
        Graph::from_edges(n as usize, (0..n).map(|i| (i, (i + 1) % n)))
    }

    #[test]
    fn ring_diameter() {
        assert_eq!(exact_diameter(&ring(8)), 4);
        assert_eq!(exact_diameter(&ring(9)), 4);
    }

    #[test]
    fn clique_diameter_is_one() {
        let mut edges = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(5, edges);
        assert_eq!(exact_diameter(&g), 1);
        assert_eq!(pseudo_diameter(&g, 3), 1);
    }

    #[test]
    fn double_sweep_is_lower_bound_everywhere() {
        let g = Graph::from_edges(
            9,
            [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (2, 6), (6, 7), (7, 8)],
        );
        let exact = exact_diameter(&g);
        for s in g.nodes() {
            assert!(double_sweep_lower_bound(&g, s) <= exact, "source {s}");
        }
    }

    #[test]
    fn pseudo_diameter_bounds_exact() {
        let g = ring(12);
        let est = pseudo_diameter(&g, 8);
        assert!(est <= exact_diameter(&g));
        assert!(est >= exact_diameter(&g) / 2, "double sweep is at least half the diameter");
    }

    #[test]
    fn eccentricity_on_star() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(eccentricity(&g, NodeId(0)), 1);
        assert_eq!(eccentricity(&g, NodeId(3)), 2);
    }

    #[test]
    fn degenerate_graphs() {
        assert_eq!(exact_diameter(&Graph::from_edges(0, [])), 0);
        assert_eq!(exact_diameter(&Graph::from_edges(1, [])), 0);
        assert_eq!(pseudo_diameter(&Graph::from_edges(0, []), 3), 0);
    }

    #[test]
    fn diameter_uses_largest_component_semantics() {
        // Two components: a path of diameter 3 and an edge.
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (4, 5)]);
        assert_eq!(exact_diameter(&g), 3);
    }
}
