use crate::{Graph, NodeId};

/// Incremental constructor for [`Graph`].
///
/// The builder accepts edges in any order and any multiplicity; at
/// [`build`](GraphBuilder::build) time it drops self-loops, deduplicates
/// parallel and reversed duplicates, symmetrizes the adjacency, and emits
/// a validated CSR graph.
///
/// # Examples
///
/// ```
/// use socnet_core::{GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(NodeId(0), NodeId(1));
/// b.add_edge(NodeId(1), NodeId(0)); // reversed duplicate: ignored
/// b.add_edge(NodeId(1), NodeId(1)); // self-loop: ignored
/// b.add_edge(NodeId(1), NodeId(2));
/// let g = b.build();
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    node_count: usize,
    /// Accumulated half-edges normalized to `u < v`.
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph over exactly `n` nodes (`0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder { node_count: n, edges: Vec::new() }
    }

    /// Creates a builder for `n` nodes, pre-allocating room for
    /// `edge_capacity` edges.
    pub fn with_capacity(n: usize, edge_capacity: usize) -> Self {
        GraphBuilder { node_count: n, edges: Vec::with_capacity(edge_capacity) }
    }

    /// Number of nodes the built graph will have.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edges added so far, *before* deduplication.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Grows the node set to at least `n` nodes.
    ///
    /// Existing node ids remain valid; new nodes start isolated.
    pub fn grow_to(&mut self, n: usize) -> &mut Self {
        self.node_count = self.node_count.max(n);
        self
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// Self-loops are silently ignored; duplicates are removed at build
    /// time. Returns `&mut self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is outside `0..n`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        assert!(
            u.index() < self.node_count && v.index() < self.node_count,
            "edge ({u}, {v}) out of range for {} nodes",
            self.node_count
        );
        if u != v {
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            self.edges.push((a, b));
        }
        self
    }

    /// Adds every edge from an iterator of raw index pairs.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is outside `0..n`.
    pub fn extend_edges<I>(&mut self, edges: I) -> &mut Self
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        for (u, v) in edges {
            self.add_edge(NodeId(u), NodeId(v));
        }
        self
    }

    /// Consumes the accumulated edges and produces the CSR graph.
    ///
    /// Runs in `O(m log m)` for the deduplicating sort plus `O(n + m)`
    /// assembly.
    pub fn build(&mut self) -> Graph {
        let mut edges = std::mem::take(&mut self.edges);
        edges.sort_unstable();
        edges.dedup();

        let n = self.node_count;
        let mut degree = vec![0usize; n];
        for &(u, v) in &edges {
            degree[u.index()] += 1;
            degree[v.index()] += 1;
        }

        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }

        let mut cursor = offsets.clone();
        let mut targets = vec![NodeId(0); acc];
        // Edges are sorted by (u, v); inserting u's half-edges in order and
        // v's half-edges in order of increasing u keeps every row sorted.
        for &(u, v) in &edges {
            targets[cursor[u.index()]] = v;
            cursor[u.index()] += 1;
        }
        for &(u, v) in &edges {
            targets[cursor[v.index()]] = u;
            cursor[v.index()] += 1;
        }
        // The second pass appends `u` values into row `v` in sorted order,
        // but those come *after* the first pass's `v` values which are all
        // larger-id rows... Row contents are: first-pass targets (all > u
        // for row u) then second-pass targets (all < v for row v). A final
        // per-row sort restores order where the two runs interleave.
        for i in 0..n {
            targets[offsets[i]..offsets[i + 1]].sort_unstable();
        }

        Graph::from_csr_unchecked(offsets, targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loop_removal() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(2), NodeId(2));
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(NodeId(2)), 0);
    }

    #[test]
    fn rows_are_sorted_after_build() {
        let mut b = GraphBuilder::new(6);
        // Deliberately insert in scrambled order around node 3.
        for v in [5u32, 0, 4, 1, 2] {
            b.add_edge(NodeId(3), NodeId(v));
        }
        let g = b.build();
        let row: Vec<u32> = g.neighbors(NodeId(3)).iter().map(|v| v.0).collect();
        assert_eq!(row, vec![0, 1, 2, 4, 5]);
    }

    #[test]
    fn grow_to_extends_node_range() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1));
        b.grow_to(5);
        b.add_edge(NodeId(4), NodeId(0));
        let g = b.build();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn grow_to_never_shrinks() {
        let mut b = GraphBuilder::new(7);
        b.grow_to(3);
        assert_eq!(b.node_count(), 7);
    }

    #[test]
    fn extend_edges_round_trip() {
        let mut b = GraphBuilder::with_capacity(4, 4);
        b.extend_edges([(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(b.raw_edge_count(), 4);
        let g = b.build();
        assert_eq!(g.edge_count(), 4);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        GraphBuilder::new(2).add_edge(NodeId(0), NodeId(2));
    }

    #[test]
    fn build_empties_builder() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1));
        let g1 = b.build();
        assert_eq!(g1.edge_count(), 1);
        let g2 = b.build();
        assert_eq!(g2.edge_count(), 0);
        assert_eq!(g2.node_count(), 2);
    }
}
