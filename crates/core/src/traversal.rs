use std::collections::VecDeque;

use crate::{Graph, NodeId};

/// Distance value marking a node not reached by a traversal.
pub const UNREACHED: u32 = u32::MAX;

/// Result of a single-source breadth-first search.
///
/// Produced by [`bfs`]; distances use [`UNREACHED`] for nodes in other
/// components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsResult {
    /// Hop distance from the source per node, [`UNREACHED`] if unreachable.
    pub dist: Vec<u32>,
    /// BFS-tree parent per node; `None` for the source and unreachable nodes.
    pub parent: Vec<Option<NodeId>>,
    /// Number of nodes reached (including the source).
    pub reached: usize,
    /// Eccentricity of the source within its component.
    pub max_dist: u32,
}

/// Runs a breadth-first search from `source`.
///
/// # Panics
///
/// Panics if `source` is out of range.
///
/// # Examples
///
/// ```
/// use socnet_core::{bfs, Graph, NodeId};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2)]);
/// let r = bfs(&g, NodeId(0));
/// assert_eq!(r.dist[2], 2);
/// assert_eq!(r.parent[2], Some(NodeId(1)));
/// assert_eq!(r.reached, 3);
/// assert_eq!(r.dist[3], socnet_core::UNREACHED);
/// ```
pub fn bfs(graph: &Graph, source: NodeId) -> BfsResult {
    let n = graph.node_count();
    let mut dist = vec![UNREACHED; n];
    let mut parent = vec![None; n];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    let mut reached = 1usize;
    let mut max_dist = 0u32;
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for &v in graph.neighbors(u) {
            if dist[v.index()] == UNREACHED {
                dist[v.index()] = du + 1;
                parent[v.index()] = Some(u);
                max_dist = max_dist.max(du + 1);
                reached += 1;
                queue.push_back(v);
            }
        }
    }
    BfsResult { dist, parent, reached, max_dist }
}

/// Reusable breadth-first search state.
///
/// Measurement sweeps (expansion, distance estimates) run a BFS from
/// *every* node; this type amortizes the per-source allocations by using
/// stamped visitation instead of clearing a visited array each run.
///
/// # Examples
///
/// ```
/// use socnet_core::{Bfs, Graph, NodeId};
///
/// let g = Graph::from_edges(5, [(0, 1), (0, 2), (1, 3), (2, 4)]);
/// let mut bfs = Bfs::new(&g);
/// assert_eq!(bfs.level_sizes(&g, NodeId(0)), &[1, 2, 2]);
/// assert_eq!(bfs.level_sizes(&g, NodeId(3)), &[1, 1, 1, 1, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct Bfs {
    stamp: Vec<u32>,
    dist: Vec<u32>,
    queue: VecDeque<NodeId>,
    levels: Vec<usize>,
    current: u32,
}

impl Bfs {
    /// Creates BFS scratch state sized for `graph`.
    pub fn new(graph: &Graph) -> Self {
        let n = graph.node_count();
        Bfs {
            stamp: vec![0; n],
            dist: vec![0; n],
            queue: VecDeque::new(),
            levels: Vec::new(),
            current: 0,
        }
    }

    /// Runs a BFS from `source` and returns the node count of each level.
    ///
    /// `level_sizes[i]` is the number of nodes at hop distance exactly `i`
    /// (so `level_sizes[0] == 1`). The returned slice is valid until the
    /// next call.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range or the state was built for a
    /// different graph size.
    pub fn level_sizes(&mut self, graph: &Graph, source: NodeId) -> &[usize] {
        assert_eq!(self.stamp.len(), graph.node_count(), "bfs state size mismatch");
        self.current = self.current.wrapping_add(1);
        if self.current == 0 {
            // Stamp counter wrapped: reset so stale stamps cannot collide.
            self.stamp.fill(0);
            self.current = 1;
        }
        self.levels.clear();
        self.queue.clear();
        self.stamp[source.index()] = self.current;
        self.dist[source.index()] = 0;
        self.queue.push_back(source);
        self.levels.push(1);
        while let Some(u) = self.queue.pop_front() {
            let du = self.dist[u.index()];
            for &v in graph.neighbors(u) {
                if self.stamp[v.index()] != self.current {
                    self.stamp[v.index()] = self.current;
                    self.dist[v.index()] = du + 1;
                    let level = (du + 1) as usize;
                    if self.levels.len() <= level {
                        self.levels.push(0);
                    }
                    self.levels[level] += 1;
                    self.queue.push_back(v);
                }
            }
        }
        &self.levels
    }

    /// Runs a BFS from `source` and returns the source's eccentricity and
    /// the farthest node reached (ties broken by smallest id).
    pub fn eccentricity(&mut self, graph: &Graph, source: NodeId) -> (u32, NodeId) {
        self.level_sizes(graph, source);
        let mut far = source;
        let mut far_d = 0u32;
        for v in graph.nodes() {
            if self.stamp[v.index()] == self.current && self.dist[v.index()] > far_d {
                far_d = self.dist[v.index()];
                far = v;
            }
        }
        (far_d, far)
    }
}

/// Connected-component labeling of a graph.
///
/// Produced by [`connected_components`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// Component label per node, in `0..count`.
    pub label: Vec<u32>,
    /// Number of connected components.
    pub count: usize,
    /// Number of nodes in each component.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Label of the largest component (ties broken by smallest label).
    pub fn largest(&self) -> u32 {
        let mut best = 0usize;
        for (i, &s) in self.sizes.iter().enumerate() {
            if s > self.sizes[best] {
                best = i;
            }
        }
        best as u32
    }
}

/// Labels the connected components of `graph` with repeated BFS.
///
/// # Examples
///
/// ```
/// use socnet_core::{connected_components, Graph};
///
/// let g = Graph::from_edges(5, [(0, 1), (2, 3)]);
/// let c = connected_components(&g);
/// assert_eq!(c.count, 3); // {0,1}, {2,3}, {4}
/// assert_eq!(c.sizes.iter().sum::<usize>(), 5);
/// ```
pub fn connected_components(graph: &Graph) -> Components {
    let n = graph.node_count();
    let mut label = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = VecDeque::new();
    let mut count = 0u32;
    for s in graph.nodes() {
        if label[s.index()] != u32::MAX {
            continue;
        }
        let mut size = 0usize;
        label[s.index()] = count;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            size += 1;
            for &v in graph.neighbors(u) {
                if label[v.index()] == u32::MAX {
                    label[v.index()] = count;
                    queue.push_back(v);
                }
            }
        }
        sizes.push(size);
        count += 1;
    }
    Components { label, count: count as usize, sizes }
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(graph: &Graph) -> bool {
    graph.node_count() == 0 || connected_components(graph).count == 1
}

/// Extracts the largest connected component as a standalone graph.
///
/// Returns the component graph and the mapping from new node ids to the
/// original ids (`map[new.index()] == old`).
///
/// # Examples
///
/// ```
/// use socnet_core::{largest_component, Graph, NodeId};
///
/// let g = Graph::from_edges(6, [(0, 1), (1, 2), (4, 5)]);
/// let (lcc, map) = largest_component(&g);
/// assert_eq!(lcc.node_count(), 3);
/// assert_eq!(map, vec![NodeId(0), NodeId(1), NodeId(2)]);
/// ```
pub fn largest_component(graph: &Graph) -> (Graph, Vec<NodeId>) {
    let comps = connected_components(graph);
    let keep = comps.largest();
    let members: Vec<NodeId> =
        graph.nodes().filter(|v| comps.label[v.index()] == keep).collect();
    crate::induced_subgraph(graph, &members)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn barbell() -> Graph {
        // Two triangles joined by a bridge 2-3.
        Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
    }

    #[test]
    fn bfs_distances_on_barbell() {
        let g = barbell();
        let r = bfs(&g, NodeId(0));
        assert_eq!(r.dist, vec![0, 1, 1, 2, 3, 3]);
        assert_eq!(r.reached, 6);
        assert_eq!(r.max_dist, 3);
    }

    #[test]
    fn bfs_parents_form_tree() {
        let g = barbell();
        let r = bfs(&g, NodeId(0));
        assert_eq!(r.parent[0], None);
        for v in g.nodes().skip(1) {
            let p = r.parent[v.index()].expect("reached node has parent");
            assert_eq!(r.dist[v.index()], r.dist[p.index()] + 1);
        }
    }

    #[test]
    fn reusable_bfs_matches_fresh_bfs() {
        let g = barbell();
        let mut b = Bfs::new(&g);
        for s in g.nodes() {
            let fresh = bfs(&g, s);
            let levels = b.level_sizes(&g, s).to_vec();
            let mut expect = vec![0usize; (fresh.max_dist + 1) as usize];
            for v in g.nodes() {
                if fresh.dist[v.index()] != UNREACHED {
                    expect[fresh.dist[v.index()] as usize] += 1;
                }
            }
            assert_eq!(levels, expect, "source {s}");
        }
    }

    #[test]
    fn bfs_eccentricity_reports_farthest() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let mut b = Bfs::new(&g);
        let (ecc, far) = b.eccentricity(&g, NodeId(0));
        assert_eq!(ecc, 3);
        assert_eq!(far, NodeId(3));
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = Graph::from_edges(7, [(0, 1), (2, 3), (3, 4)]);
        let c = connected_components(&g);
        assert_eq!(c.count, 4);
        assert_eq!(c.sizes.iter().sum::<usize>(), 7);
        assert_eq!(c.label[0], c.label[1]);
        assert_ne!(c.label[0], c.label[2]);
        let mut sorted = c.sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 1, 2, 3]);
    }

    #[test]
    fn largest_component_extraction() {
        let g = Graph::from_edges(7, [(0, 1), (2, 3), (3, 4), (4, 2), (5, 6)]);
        let (lcc, map) = largest_component(&g);
        assert_eq!(lcc.node_count(), 3);
        assert_eq!(lcc.edge_count(), 3);
        let olds: Vec<u32> = map.iter().map(|v| v.0).collect();
        assert_eq!(olds, vec![2, 3, 4]);
    }

    #[test]
    fn connectivity_predicates() {
        assert!(is_connected(&Graph::from_edges(0, [])));
        assert!(is_connected(&Graph::from_edges(3, [(0, 1), (1, 2)])));
        assert!(!is_connected(&Graph::from_edges(3, [(0, 1)])));
    }

    #[test]
    fn isolated_node_bfs() {
        let g = Graph::from_edges(2, []);
        let r = bfs(&g, NodeId(0));
        assert_eq!(r.reached, 1);
        assert_eq!(r.dist[1], UNREACHED);
        let mut b = Bfs::new(&g);
        assert_eq!(b.level_sizes(&g, NodeId(0)), &[1]);
    }
}
