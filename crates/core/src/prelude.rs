//! Convenience re-exports of the items nearly every consumer needs.
//!
//! ```
//! use socnet_core::prelude::*;
//!
//! let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
//! assert!(is_connected(&g));
//! ```

pub use crate::{
    bfs, connected_components, induced_subgraph, is_connected, largest_component, Bfs, Graph,
    GraphBuilder, GraphError, NodeId,
};
