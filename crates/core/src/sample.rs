//! Node sampling helpers.
//!
//! The sampling method for mixing-time measurement and the GateKeeper
//! experiments both draw uniform node samples; these helpers centralize
//! that so every experiment is reproducible from a seed.

use rand::seq::SliceRandom;
use rand::{Rng, RngExt};

use crate::{Graph, NodeId};

/// Draws one node uniformly at random.
///
/// # Panics
///
/// Panics if the graph has no nodes.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use socnet_core::{random_node, Graph};
///
/// let g = Graph::from_edges(10, [(0, 1)]);
/// let mut rng = StdRng::seed_from_u64(7);
/// let v = random_node(&g, &mut rng);
/// assert!(v.index() < 10);
/// ```
pub fn random_node<R: Rng + ?Sized>(graph: &Graph, rng: &mut R) -> NodeId {
    assert!(graph.node_count() > 0, "cannot sample from an empty graph");
    NodeId(rng.random_range(0..graph.node_count() as u32))
}

/// Draws `k` distinct nodes uniformly at random, in sorted order.
///
/// If `k >= n` all nodes are returned.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use socnet_core::{sample_nodes, Graph};
///
/// let g = Graph::from_edges(100, [(0, 1)]);
/// let mut rng = StdRng::seed_from_u64(7);
/// let s = sample_nodes(&g, 10, &mut rng);
/// assert_eq!(s.len(), 10);
/// assert!(s.windows(2).all(|w| w[0] < w[1])); // distinct and sorted
/// ```
pub fn sample_nodes<R: Rng + ?Sized>(graph: &Graph, k: usize, rng: &mut R) -> Vec<NodeId> {
    let n = graph.node_count();
    if k >= n {
        return graph.nodes().collect();
    }
    let mut picked = rand::seq::index::sample(rng, n, k).into_vec();
    picked.sort_unstable();
    picked.into_iter().map(NodeId::from_index).collect()
}

/// Returns all node ids in a uniformly random order.
///
/// Useful for experiments that process every node but must not be biased
/// by id order (e.g. tie-breaking in admission experiments).
pub fn shuffled_nodes<R: Rng + ?Sized>(graph: &Graph, rng: &mut R) -> Vec<NodeId> {
    let mut all: Vec<NodeId> = graph.nodes().collect();
    all.shuffle(rng);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph(n: usize) -> Graph {
        Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn sample_is_distinct_and_in_range() {
        let g = graph(50);
        let mut rng = StdRng::seed_from_u64(1);
        let s = sample_nodes(&g, 20, &mut rng);
        assert_eq!(s.len(), 20);
        for w in s.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(s.iter().all(|v| v.index() < 50));
    }

    #[test]
    fn oversized_sample_returns_everything() {
        let g = graph(5);
        let mut rng = StdRng::seed_from_u64(1);
        let s = sample_nodes(&g, 100, &mut rng);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let g = graph(200);
        let a = sample_nodes(&g, 17, &mut StdRng::seed_from_u64(42));
        let b = sample_nodes(&g, 17, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
        let c = sample_nodes(&g, 17, &mut StdRng::seed_from_u64(43));
        assert_ne!(a, c, "different seeds should (overwhelmingly) differ");
    }

    #[test]
    fn shuffle_is_permutation() {
        let g = graph(30);
        let mut rng = StdRng::seed_from_u64(9);
        let mut s = shuffled_nodes(&g, &mut rng);
        s.sort_unstable();
        assert_eq!(s, g.nodes().collect::<Vec<_>>());
    }

    #[test]
    fn random_node_covers_support() {
        let g = graph(4);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[random_node(&g, &mut rng).index()] = true;
        }
        assert!(seen.iter().all(|&b| b), "uniform draws should hit all 4 nodes in 200 tries");
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn random_node_empty_panics() {
        let g = Graph::from_edges(0, []);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = random_node(&g, &mut rng);
    }
}
