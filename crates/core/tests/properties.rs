//! Property-based tests of the CSR graph invariants.

use proptest::prelude::*;
use socnet_core::{
    bfs, connected_components, degree_histogram, induced_subgraph, read_edge_list,
    write_edge_list, Graph, NodeId, UNREACHED,
};

/// Strategy: an arbitrary small graph as (n, edge list with endpoints < n).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..120)
            .prop_map(move |edges| Graph::from_edges(n, edges))
    })
}

proptest! {
    #[test]
    fn adjacency_is_symmetric_and_sorted(g in arb_graph()) {
        for u in g.nodes() {
            let row = g.neighbors(u);
            prop_assert!(row.windows(2).all(|w| w[0] < w[1]), "row of {u} sorted+distinct");
            for &v in row {
                prop_assert!(v != u, "no self-loop at {u}");
                prop_assert!(g.has_edge(v, u), "reverse edge {v}->{u}");
            }
        }
    }

    #[test]
    fn handshake_lemma(g in arb_graph()) {
        let total: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, 2 * g.edge_count());
        prop_assert_eq!(total, g.degree_sum());
    }

    #[test]
    fn edges_iterator_matches_has_edge(g in arb_graph()) {
        let listed: Vec<_> = g.edges().collect();
        prop_assert_eq!(listed.len(), g.edge_count());
        for &(u, v) in &listed {
            prop_assert!(u < v);
            prop_assert!(g.has_edge(u, v));
        }
        // No duplicates.
        let mut dedup = listed.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), listed.len());
    }

    #[test]
    fn degree_histogram_accounts_for_every_node(g in arb_graph()) {
        let h = degree_histogram(&g);
        prop_assert_eq!(h.iter().sum::<usize>(), g.node_count());
        let weighted: usize = h.iter().enumerate().map(|(d, c)| d * c).sum();
        prop_assert_eq!(weighted, g.degree_sum());
    }

    #[test]
    fn bfs_distances_are_consistent(g in arb_graph()) {
        let src = NodeId(0);
        let r = bfs(&g, src);
        prop_assert_eq!(r.dist[0], 0);
        for (u, v) in g.edges() {
            let (du, dv) = (r.dist[u.index()], r.dist[v.index()]);
            // Adjacent nodes differ by at most one hop (both reached or both not).
            prop_assert_eq!(du == UNREACHED, dv == UNREACHED);
            if du != UNREACHED {
                prop_assert!(du.abs_diff(dv) <= 1, "edge ({u},{v}) dist {du},{dv}");
            }
        }
    }

    #[test]
    fn components_partition_the_nodes(g in arb_graph()) {
        let c = connected_components(&g);
        prop_assert_eq!(c.sizes.len(), c.count);
        prop_assert_eq!(c.sizes.iter().sum::<usize>(), g.node_count());
        for v in g.nodes() {
            prop_assert!((c.label[v.index()] as usize) < c.count);
        }
        // Edges never cross component boundaries.
        for (u, v) in g.edges() {
            prop_assert_eq!(c.label[u.index()], c.label[v.index()]);
        }
    }

    #[test]
    fn subgraph_degrees_never_exceed_parent(g in arb_graph()) {
        let members: Vec<NodeId> = g.nodes().filter(|v| v.0 % 2 == 0).collect();
        let (sub, map) = induced_subgraph(&g, &members);
        prop_assert_eq!(sub.node_count(), members.len());
        for new in sub.nodes() {
            let old = map[new.index()];
            prop_assert!(sub.degree(new) <= g.degree(old));
        }
        // Every subgraph edge exists in the parent.
        for (a, b) in sub.edges() {
            prop_assert!(g.has_edge(map[a.index()], map[b.index()]));
        }
    }

    #[test]
    fn edge_list_round_trips(g in arb_graph()) {
        // The text format drops trailing isolated nodes, so compare edges.
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).expect("write");
        let back = read_edge_list(&buf[..]).expect("read");
        prop_assert_eq!(back.edge_count(), g.edge_count());
        for (u, v) in g.edges() {
            prop_assert!(back.has_edge(u, v));
        }
    }
}
