//! Property-based tests of the CSR graph invariants.

use proptest::prelude::*;
use socnet_core::{
    bfs, connected_components, degree_histogram, induced_subgraph, par_bfs, read_edge_list,
    write_edge_list, Csr, CsrBfs, Graph, NodeId, UNREACHED,
};

/// Strategy: an arbitrary small graph as (n, edge list with endpoints < n).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..120)
            .prop_map(move |edges| Graph::from_edges(n, edges))
    })
}

proptest! {
    #[test]
    fn adjacency_is_symmetric_and_sorted(g in arb_graph()) {
        for u in g.nodes() {
            let row = g.neighbors(u);
            prop_assert!(row.windows(2).all(|w| w[0] < w[1]), "row of {u} sorted+distinct");
            for &v in row {
                prop_assert!(v != u, "no self-loop at {u}");
                prop_assert!(g.has_edge(v, u), "reverse edge {v}->{u}");
            }
        }
    }

    #[test]
    fn handshake_lemma(g in arb_graph()) {
        let total: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, 2 * g.edge_count());
        prop_assert_eq!(total, g.degree_sum());
    }

    #[test]
    fn edges_iterator_matches_has_edge(g in arb_graph()) {
        let listed: Vec<_> = g.edges().collect();
        prop_assert_eq!(listed.len(), g.edge_count());
        for &(u, v) in &listed {
            prop_assert!(u < v);
            prop_assert!(g.has_edge(u, v));
        }
        // No duplicates.
        let mut dedup = listed.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), listed.len());
    }

    #[test]
    fn degree_histogram_accounts_for_every_node(g in arb_graph()) {
        let h = degree_histogram(&g);
        prop_assert_eq!(h.iter().sum::<usize>(), g.node_count());
        let weighted: usize = h.iter().enumerate().map(|(d, c)| d * c).sum();
        prop_assert_eq!(weighted, g.degree_sum());
    }

    #[test]
    fn bfs_distances_are_consistent(g in arb_graph()) {
        let src = NodeId(0);
        let r = bfs(&g, src);
        prop_assert_eq!(r.dist[0], 0);
        for (u, v) in g.edges() {
            let (du, dv) = (r.dist[u.index()], r.dist[v.index()]);
            // Adjacent nodes differ by at most one hop (both reached or both not).
            prop_assert_eq!(du == UNREACHED, dv == UNREACHED);
            if du != UNREACHED {
                prop_assert!(du.abs_diff(dv) <= 1, "edge ({u},{v}) dist {du},{dv}");
            }
        }
    }

    #[test]
    fn components_partition_the_nodes(g in arb_graph()) {
        let c = connected_components(&g);
        prop_assert_eq!(c.sizes.len(), c.count);
        prop_assert_eq!(c.sizes.iter().sum::<usize>(), g.node_count());
        for v in g.nodes() {
            prop_assert!((c.label[v.index()] as usize) < c.count);
        }
        // Edges never cross component boundaries.
        for (u, v) in g.edges() {
            prop_assert_eq!(c.label[u.index()], c.label[v.index()]);
        }
    }

    #[test]
    fn subgraph_degrees_never_exceed_parent(g in arb_graph()) {
        let members: Vec<NodeId> = g.nodes().filter(|v| v.0 % 2 == 0).collect();
        let (sub, map) = induced_subgraph(&g, &members);
        prop_assert_eq!(sub.node_count(), members.len());
        for new in sub.nodes() {
            let old = map[new.index()];
            prop_assert!(sub.degree(new) <= g.degree(old));
        }
        // Every subgraph edge exists in the parent.
        for (a, b) in sub.edges() {
            prop_assert!(g.has_edge(map[a.index()], map[b.index()]));
        }
    }

    #[test]
    fn csr_round_trips_through_graph(g in arb_graph()) {
        // Graph → Csr → Graph is the identity: same offsets, rows, edges.
        let csr = Csr::from_graph(&g);
        prop_assert_eq!(csr.node_count(), g.node_count());
        prop_assert_eq!(csr.edge_count(), g.edge_count());
        prop_assert_eq!(csr.to_graph(), g.clone());
    }

    #[test]
    fn csr_degree_sums_and_symmetry(g in arb_graph()) {
        let csr = Csr::from_graph(&g);
        // Handshake lemma holds on the compact slabs too.
        let total: usize = (0..csr.node_count()).map(|v| csr.degree(v as u32)).sum();
        prop_assert_eq!(total, 2 * csr.edge_count());
        prop_assert_eq!(total, csr.degree_sum());
        prop_assert_eq!(csr.max_degree(), g.max_degree());
        for v in 0..csr.node_count() as u32 {
            let row = csr.neighbors(v);
            prop_assert!(row.windows(2).all(|w| w[0] < w[1]), "row of {} sorted+distinct", v);
            for &u in row {
                prop_assert!(u != v, "no self-loop at {}", v);
                prop_assert!(csr.neighbors(u).binary_search(&v).is_ok(), "reverse {}->{}", u, v);
            }
        }
    }

    #[test]
    fn csr_from_edges_matches_graph_from_edges(g in arb_graph()) {
        // Building straight from the (already normalized) edge list gives
        // the same slabs as going through Graph.
        let edges: Vec<(u32, u32)> = g.edges().map(|(u, v)| (u.0, v.0)).collect();
        let direct = Csr::from_edges(g.node_count(), edges);
        prop_assert_eq!(direct, Csr::from_graph(&g));
    }

    #[test]
    fn csr_bfs_kernels_agree_with_legacy(g in arb_graph()) {
        let csr = Csr::from_graph(&g);
        let mut scratch = CsrBfs::new(csr.node_count());
        let src = NodeId(0);
        let legacy = bfs(&g, src);
        let (dist, reached) = scratch.distances(&csr, 0);
        prop_assert_eq!(dist, legacy.dist.as_slice());
        prop_assert_eq!(reached, legacy.reached);
        for threads in [1usize, 3] {
            let par = par_bfs(&csr, 0, threads);
            prop_assert_eq!(par.dist.as_slice(), legacy.dist.as_slice());
            prop_assert_eq!(par.reached, legacy.reached);
        }
    }

    #[test]
    fn edge_list_round_trips(g in arb_graph()) {
        // The text format drops trailing isolated nodes, so compare edges.
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).expect("write");
        let back = read_edge_list(&buf[..]).expect("read");
        prop_assert_eq!(back.edge_count(), g.edge_count());
        for (u, v) in g.edges() {
            prop_assert!(back.has_edge(u, v));
        }
    }
}
