//! Graph degeneracy: k-core decomposition and core-structure profiles.
//!
//! Implements the paper's Sec. III-B machinery:
//!
//! * [`CoreDecomposition`] — the Batagelj–Žaveršnik `O(m)` bucket
//!   algorithm assigning every node its **coreness** (the largest `c`
//!   such that the node survives in the `c`-core), plus the graph's
//!   **degeneracy** `k_max` and a degeneracy ordering.
//! * [`core_profiles`] — for every `k`, the size of the union-of-cores
//!   `G'_k` (the paper's `ν'_k`, `τ'_k`), the size of the largest
//!   connected `k`-core `G_k` (`ν_k`, `τ_k`), and the **number of
//!   connected cores** — the quantity Figure 5 uses to separate
//!   fast-mixing (single large core) from slow-mixing (multiple small
//!   cores) graphs.
//! * [`Ecdf`] / [`coreness_ecdf`] — the empirical CDF of coreness values
//!   plotted in Figure 2.
//!
//! # Examples
//!
//! ```
//! use socnet_core::Graph;
//! use socnet_kcore::CoreDecomposition;
//!
//! // A triangle with a pendant node: the triangle is the 2-core.
//! let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
//! let d = CoreDecomposition::compute(&g);
//! assert_eq!(d.degeneracy(), 2);
//! assert_eq!(d.coreness_slice(), &[2, 2, 2, 1]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cores;
mod decompose;
mod ecdf;
mod incremental;

pub use cores::{core_profiles, CoreProfile};
pub use decompose::CoreDecomposition;
pub use ecdf::{coreness_ecdf, Ecdf};
pub use incremental::{EdgeRepair, LiveCores, DEFAULT_DAMAGE_BOUND};
