use serde::{Deserialize, Serialize};
use socnet_core::{Csr, Graph, GraphError, NodeId};

/// The coreness of every node, computed with the Batagelj–Žaveršnik
/// bucket algorithm in `O(n + m)` time and memory.
///
/// The `k`-core of `G` is the maximal subgraph with minimum degree `k`;
/// a node's **coreness** is the largest `k` for which it belongs to the
/// `k`-core, and the graph's **degeneracy** is the largest non-empty `k`.
///
/// # Examples
///
/// ```
/// use socnet_core::{Graph, NodeId};
/// use socnet_kcore::CoreDecomposition;
///
/// // Two triangles sharing a path: both triangles are 2-cores.
/// let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]);
/// let d = CoreDecomposition::compute(&g);
/// assert_eq!(d.degeneracy(), 2);
/// assert_eq!(d.coreness(NodeId(0)), 2);
/// assert_eq!(d.core_members(2).len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreDecomposition {
    coreness: Vec<u32>,
    degeneracy: u32,
    /// Nodes in the order the peeling removed them (a degeneracy order).
    order: Vec<NodeId>,
}

impl CoreDecomposition {
    /// Runs the decomposition on `graph` (one `O(E)` conversion to the
    /// compact slabs, then [`compute_csr`](CoreDecomposition::compute_csr)).
    pub fn compute(graph: &Graph) -> Self {
        Self::compute_csr(&Csr::from_graph(graph))
    }

    /// Runs the bucket decomposition directly on compact CSR slabs —
    /// the kernel-facing path: all working arrays are `u32`, halving
    /// the peeling footprint on million-node graphs. Identical output
    /// (coreness, degeneracy, *and* peeling order) to the historical
    /// [`Graph`]-based implementation.
    pub fn compute_csr(csr: &Csr) -> Self {
        socnet_core::kernel_timing::timed("kcore", || Self::compute_csr_inner(csr))
    }

    fn compute_csr_inner(csr: &Csr) -> Self {
        let n = csr.node_count();
        if n == 0 {
            return CoreDecomposition { coreness: Vec::new(), degeneracy: 0, order: Vec::new() };
        }
        let max_deg = csr.max_degree();

        // Bucket sort nodes by degree: pos/vert arrays as in the paper's
        // reference [1] (Batagelj & Žaveršnik).
        let mut degree: Vec<u32> = (0..n).map(|v| csr.degree(v as u32) as u32).collect();
        let mut bin = vec![0u32; max_deg + 2];
        for &d in &degree {
            bin[d as usize] += 1;
        }
        let mut start = 0u32;
        for b in bin.iter_mut() {
            let count = *b;
            *b = start;
            start += count;
        }
        // bin[d] = first index of degree-d nodes in `vert`.
        let mut vert = vec![0u32; n];
        let mut pos = vec![0u32; n];
        {
            let mut next = bin.clone();
            for v in 0..n as u32 {
                let d = degree[v as usize] as usize;
                pos[v as usize] = next[d];
                vert[next[d] as usize] = v;
                next[d] += 1;
            }
        }

        let mut coreness = vec![0u32; n];
        let mut order = Vec::with_capacity(n);
        let mut degeneracy = 0u32;
        for i in 0..n {
            let v = vert[i];
            let c = degree[v as usize];
            coreness[v as usize] = c.max(degeneracy); // peeling degree is monotone
            degeneracy = degeneracy.max(coreness[v as usize]);
            order.push(NodeId(v));
            for &u in csr.neighbors(v) {
                if degree[u as usize] > degree[v as usize] {
                    // Move u one bucket down: swap it with the first node
                    // of its current bucket, then shrink the bucket.
                    let du = degree[u as usize] as usize;
                    let pu = pos[u as usize];
                    let pw = bin[du];
                    let w = vert[pw as usize];
                    if u != w {
                        pos[u as usize] = pw;
                        pos[w as usize] = pu;
                        vert[pu as usize] = w;
                        vert[pw as usize] = u;
                    }
                    bin[du] += 1;
                    degree[u as usize] -= 1;
                }
            }
        }

        CoreDecomposition { coreness, degeneracy, order }
    }

    /// The historical [`Graph`]-walking implementation, kept verbatim so
    /// equivalence suites can pin the CSR kernel against it bit for bit.
    #[doc(hidden)]
    pub fn compute_legacy(graph: &Graph) -> Self {
        let n = graph.node_count();
        if n == 0 {
            return CoreDecomposition { coreness: Vec::new(), degeneracy: 0, order: Vec::new() };
        }
        let max_deg = graph.max_degree();
        let mut degree: Vec<usize> = (0..n).map(|i| graph.degree(NodeId(i as u32))).collect();
        let mut bin = vec![0usize; max_deg + 2];
        for &d in &degree {
            bin[d] += 1;
        }
        let mut start = 0usize;
        for b in bin.iter_mut() {
            let count = *b;
            *b = start;
            start += count;
        }
        let mut vert = vec![0usize; n];
        let mut pos = vec![0usize; n];
        {
            let mut next = bin.clone();
            for v in 0..n {
                pos[v] = next[degree[v]];
                vert[pos[v]] = v;
                next[degree[v]] += 1;
            }
        }

        let mut coreness = vec![0u32; n];
        let mut order = Vec::with_capacity(n);
        let mut degeneracy = 0u32;
        for i in 0..n {
            let v = vert[i];
            let c = degree[v] as u32;
            coreness[v] = c.max(degeneracy);
            degeneracy = degeneracy.max(coreness[v]);
            order.push(NodeId(v as u32));
            for &u in graph.neighbors(NodeId(v as u32)) {
                let u = u.index();
                if degree[u] > degree[v] {
                    let du = degree[u];
                    let pu = pos[u];
                    let pw = bin[du];
                    let w = vert[pw];
                    if u != w {
                        pos[u] = pw;
                        pos[w] = pu;
                        vert[pu] = w;
                        vert[pw] = u;
                    }
                    bin[du] += 1;
                    degree[u] -= 1;
                }
            }
        }

        CoreDecomposition { coreness, degeneracy, order }
    }

    /// Coreness of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn coreness(&self, v: NodeId) -> u32 {
        self.coreness[v.index()]
    }

    /// Fallible variant of [`coreness`](CoreDecomposition::coreness)
    /// for callers serving untrusted node ids: out-of-range is an
    /// error, never a panic.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if `v` is outside the
    /// decomposed graph's node range.
    ///
    /// # Examples
    ///
    /// ```
    /// use socnet_core::NodeId;
    /// use socnet_gen::ring;
    /// use socnet_kcore::CoreDecomposition;
    ///
    /// let d = CoreDecomposition::compute(&ring(5));
    /// assert_eq!(d.try_coreness(NodeId(0)).unwrap(), 2);
    /// assert!(d.try_coreness(NodeId(99)).is_err());
    /// ```
    pub fn try_coreness(&self, v: NodeId) -> Result<u32, GraphError> {
        self.coreness.get(v.index()).copied().ok_or(GraphError::NodeOutOfRange {
            node: v.index(),
            node_count: self.coreness.len(),
        })
    }

    /// Coreness of every node, indexed by node id.
    pub fn coreness_slice(&self) -> &[u32] {
        &self.coreness
    }

    /// The graph's degeneracy `k_max` (0 for the empty graph).
    pub fn degeneracy(&self) -> u32 {
        self.degeneracy
    }

    /// A degeneracy ordering: nodes in peeling order, so every node has at
    /// most `degeneracy` neighbors *later* in the order.
    pub fn degeneracy_order(&self) -> &[NodeId] {
        &self.order
    }

    /// Nodes of the `k`-core union `G'_k`: every node with coreness ≥ `k`.
    pub fn core_members(&self, k: u32) -> Vec<NodeId> {
        (0..self.coreness.len())
            .filter(|&i| self.coreness[i] >= k)
            .map(NodeId::from_index)
            .collect()
    }

    /// Number of nodes with coreness exactly `c`, for `c = 0..=degeneracy`.
    pub fn coreness_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.degeneracy as usize + 1];
        for &c in &self.coreness {
            hist[c as usize] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socnet_gen::{barbell, complete, ring, star};

    #[test]
    fn clique_coreness() {
        let d = CoreDecomposition::compute(&complete(6));
        assert_eq!(d.degeneracy(), 5);
        assert!(d.coreness_slice().iter().all(|&c| c == 5));
    }

    #[test]
    fn ring_coreness_is_two() {
        let d = CoreDecomposition::compute(&ring(10));
        assert!(d.coreness_slice().iter().all(|&c| c == 2));
    }

    #[test]
    fn star_coreness_is_one() {
        let d = CoreDecomposition::compute(&star(7));
        assert_eq!(d.degeneracy(), 1);
        assert!(d.coreness_slice().iter().all(|&c| c == 1));
    }

    #[test]
    fn barbell_cliques_dominate() {
        let g = barbell(5, 3);
        let d = CoreDecomposition::compute(&g);
        assert_eq!(d.degeneracy(), 4);
        // Clique nodes have coreness 4; the bridge path is a 2-core
        // (every bridge node keeps two neighbors under pruning).
        assert_eq!(d.coreness(NodeId(0)), 4);
        assert_eq!(d.coreness(NodeId(5)), 2);
        assert_eq!(d.core_members(4).len(), 10);
    }

    #[test]
    fn pendant_chain_peels_to_one() {
        // Triangle with a tail of two nodes.
        let g = socnet_core::Graph::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let d = CoreDecomposition::compute(&g);
        assert_eq!(d.coreness_slice(), &[2, 2, 2, 1, 1]);
        assert_eq!(d.coreness_histogram(), vec![0, 2, 3]);
    }

    #[test]
    fn degeneracy_order_property() {
        let g = socnet_gen::grid(5, 6);
        let d = CoreDecomposition::compute(&g);
        let rank: std::collections::HashMap<NodeId, usize> =
            d.degeneracy_order().iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for v in g.nodes() {
            let later = g.neighbors(v).iter().filter(|&&u| rank[&u] > rank[&v]).count();
            assert!(
                later as u32 <= d.degeneracy(),
                "{v} has {later} later neighbors > degeneracy {}",
                d.degeneracy()
            );
        }
    }

    #[test]
    fn isolated_nodes_have_zero_coreness() {
        let g = socnet_core::Graph::from_edges(4, [(0, 1)]);
        let d = CoreDecomposition::compute(&g);
        assert_eq!(d.coreness(NodeId(2)), 0);
        assert_eq!(d.coreness(NodeId(3)), 0);
        assert_eq!(d.degeneracy(), 1);
    }

    #[test]
    fn empty_graph() {
        let d = CoreDecomposition::compute(&socnet_core::Graph::from_edges(0, []));
        assert_eq!(d.degeneracy(), 0);
        assert!(d.core_members(0).is_empty());
        assert!(d.degeneracy_order().is_empty());
    }

    #[test]
    fn csr_and_legacy_decompositions_are_identical() {
        // Coreness, degeneracy, AND peeling order must match exactly:
        // the CSR port is the same algorithm with the same tie-breaking.
        let graphs = [
            complete(9),
            ring(17),
            star(12),
            barbell(6, 3),
            socnet_gen::grid(5, 7),
            socnet_core::Graph::from_edges(4, []),
            socnet_core::Graph::from_edges(0, []),
        ];
        for g in &graphs {
            let csr = CoreDecomposition::compute(g);
            let legacy = CoreDecomposition::compute_legacy(g);
            assert_eq!(csr, legacy, "n={} m={}", g.node_count(), g.edge_count());
        }
    }

    #[test]
    fn core_members_are_nested() {
        let g = socnet_gen::barbell(6, 2);
        let d = CoreDecomposition::compute(&g);
        for k in 1..=d.degeneracy() {
            let outer = d.core_members(k - 1);
            let inner = d.core_members(k);
            assert!(inner.len() <= outer.len());
            assert!(inner.iter().all(|v| outer.contains(v)));
        }
    }
}
