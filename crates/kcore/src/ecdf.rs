use serde::{Deserialize, Serialize};

use crate::CoreDecomposition;

/// An empirical cumulative distribution function over `f64` samples.
///
/// `eval(x)` returns the fraction of samples `≤ x`; [`points`](Ecdf::points)
/// returns the step-function breakpoints, which is what the paper's
/// Figure 2 plots for coreness values.
///
/// # Examples
///
/// ```
/// use socnet_kcore::Ecdf;
///
/// let e = Ecdf::new([1.0, 2.0, 2.0, 5.0]);
/// assert_eq!(e.eval(0.0), 0.0);
/// assert_eq!(e.eval(2.0), 0.75);
/// assert_eq!(e.eval(10.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF of the given samples.
    ///
    /// # Panics
    ///
    /// Panics if the sample set is empty or contains NaN.
    pub fn new<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        assert!(!sorted.is_empty(), "ecdf needs at least one sample");
        assert!(sorted.iter().all(|x| !x.is_nan()), "ecdf samples must not be NaN");
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Ecdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample set is empty (never true for a constructed ECDF).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `≤ x`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point gives the count of samples <= x.
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Quantile: the smallest sample `v` with `eval(v) ≥ q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0, 1]");
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).saturating_sub(1);
        self.sorted[idx.min(self.sorted.len() - 1)]
    }

    /// The distinct sample values and their cumulative fractions, i.e. the
    /// plot points of the ECDF step function.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (i, &v) in self.sorted.iter().enumerate() {
            let frac = (i + 1) as f64 / n;
            match out.last_mut() {
                Some(last) if last.0 == v => last.1 = frac,
                _ => out.push((v, frac)),
            }
        }
        out
    }
}

/// ECDF of the coreness of every node — the paper's Figure 2 series.
///
/// # Examples
///
/// ```
/// use socnet_core::Graph;
/// use socnet_kcore::{coreness_ecdf, CoreDecomposition};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
/// let e = coreness_ecdf(&CoreDecomposition::compute(&g));
/// assert_eq!(e.eval(1.0), 0.25); // one node of coreness 1
/// assert_eq!(e.eval(2.0), 1.0);
/// ```
pub fn coreness_ecdf(decomposition: &CoreDecomposition) -> Ecdf {
    Ecdf::new(decomposition.coreness_slice().iter().map(|&c| c as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_monotone_and_bounded() {
        let e = Ecdf::new([3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        let mut prev = 0.0;
        for x in -1..11 {
            let y = e.eval(x as f64);
            assert!((0.0..=1.0).contains(&y));
            assert!(y >= prev);
            prev = y;
        }
        assert_eq!(e.eval(f64::INFINITY), 1.0);
    }

    #[test]
    fn points_end_at_one() {
        let e = Ecdf::new([2.0, 2.0, 7.0]);
        let pts = e.points();
        assert_eq!(pts, vec![(2.0, 2.0 / 3.0), (7.0, 1.0)]);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::new((1..=100).map(|i| i as f64));
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(0.5), 50.0);
        assert_eq!(e.quantile(1.0), 100.0);
        assert_eq!(e.len(), 100);
        assert!(!e.is_empty());
    }

    #[test]
    fn coreness_ecdf_of_clique_is_degenerate() {
        let d = CoreDecomposition::compute(&socnet_gen::complete(5));
        let e = coreness_ecdf(&d);
        assert_eq!(e.points(), vec![(4.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_panic() {
        let _ = Ecdf::new(std::iter::empty());
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_samples_panic() {
        let _ = Ecdf::new([1.0, f64::NAN]);
    }
}
