use serde::{Deserialize, Serialize};
use socnet_core::{connected_components, induced_subgraph, Graph};

use crate::CoreDecomposition;

/// Structure of the graph's cores at one depth `k`.
///
/// The paper distinguishes the connected `k`-core `G_k` (the largest
/// connected maximal subgraph of minimum degree `k`) from the possibly
/// disconnected union of cores `G'_k`; this profile carries both, plus
/// the count of connected cores that Figure 5 tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreProfile {
    /// The core depth `k`.
    pub k: u32,
    /// `n'_k`: nodes in the union of `k`-cores `G'_k`.
    pub nodes: usize,
    /// `m'_k`: edges in `G'_k`.
    pub edges: usize,
    /// Number of connected components of `G'_k` — the paper's "number of
    /// cores" (1 means a single core).
    pub components: usize,
    /// `n_k`: nodes of the largest connected `k`-core `G_k`.
    pub largest_nodes: usize,
    /// `m_k`: edges of `G_k`.
    pub largest_edges: usize,
}

impl CoreProfile {
    /// Node-relative size `ν'_k = n'_k / n` of the union of cores.
    pub fn nu_prime(&self, total_nodes: usize) -> f64 {
        ratio(self.nodes, total_nodes)
    }

    /// Edge-relative size `τ'_k = m'_k / m` of the union of cores.
    pub fn tau_prime(&self, total_edges: usize) -> f64 {
        ratio(self.edges, total_edges)
    }

    /// Node-relative size `ν_k = n_k / n` of the largest connected core.
    pub fn nu(&self, total_nodes: usize) -> f64 {
        ratio(self.largest_nodes, total_nodes)
    }

    /// Edge-relative size `τ_k = m_k / m` of the largest connected core.
    pub fn tau(&self, total_edges: usize) -> f64 {
        ratio(self.largest_edges, total_edges)
    }
}

fn ratio(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

/// Computes a [`CoreProfile`] for every `k` in `1..=degeneracy`.
///
/// Each profile extracts the induced subgraph on nodes of coreness ≥ `k`
/// and labels its components, so the total cost is
/// `O(degeneracy · (n + m))` — linear passes, one per core level.
///
/// # Examples
///
/// ```
/// use socnet_core::Graph;
/// use socnet_kcore::{core_profiles, CoreDecomposition};
///
/// // Two 4-cliques joined by a path: the 3-core has two components.
/// let g = Graph::from_edges(9, [
///     (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
///     (3, 4), (4, 5),
///     (5, 6), (5, 7), (5, 8), (6, 7), (6, 8), (7, 8),
/// ]);
/// let d = CoreDecomposition::compute(&g);
/// let profiles = core_profiles(&g, &d);
/// assert_eq!(profiles.len(), 3);
/// assert_eq!(profiles[2].k, 3);
/// assert_eq!(profiles[2].components, 2); // the two cliques
/// assert_eq!(profiles[2].nodes, 8);
/// assert_eq!(profiles[2].largest_nodes, 4);
/// ```
pub fn core_profiles(graph: &Graph, decomposition: &CoreDecomposition) -> Vec<CoreProfile> {
    let mut out = Vec::with_capacity(decomposition.degeneracy() as usize);
    for k in 1..=decomposition.degeneracy() {
        let members = decomposition.core_members(k);
        let (sub, _) = induced_subgraph(graph, &members);
        let comps = connected_components(&sub);
        let largest = comps.largest();
        let largest_nodes = comps.sizes[largest as usize];
        // Count edges inside the largest component.
        let mut largest_edges = 0usize;
        for (u, v) in sub.edges() {
            if comps.label[u.index()] == largest && comps.label[v.index()] == largest {
                largest_edges += 1;
            }
        }
        out.push(CoreProfile {
            k,
            nodes: sub.node_count(),
            edges: sub.edge_count(),
            components: comps.count,
            largest_nodes,
            largest_edges,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use socnet_gen::{barbell, complete, ring};

    #[test]
    fn clique_has_single_full_core_at_every_k() {
        let g = complete(6);
        let d = CoreDecomposition::compute(&g);
        let profiles = core_profiles(&g, &d);
        assert_eq!(profiles.len(), 5);
        for p in &profiles {
            assert_eq!(p.nodes, 6);
            assert_eq!(p.components, 1);
            assert_eq!(p.nu_prime(6), 1.0);
            assert_eq!(p.tau_prime(15), 1.0);
            assert_eq!(p.nodes, p.largest_nodes);
        }
    }

    #[test]
    fn barbell_splits_into_two_cores() {
        let g = barbell(5, 2);
        let d = CoreDecomposition::compute(&g);
        let profiles = core_profiles(&g, &d);
        // k = 1: everything, one component.
        assert_eq!(profiles[0].nodes, 12);
        assert_eq!(profiles[0].components, 1);
        // k = 4: the two cliques, disconnected.
        let p4 = &profiles[3];
        assert_eq!(p4.k, 4);
        assert_eq!(p4.nodes, 10);
        assert_eq!(p4.components, 2);
        assert_eq!(p4.largest_nodes, 5);
        assert_eq!(p4.largest_edges, 10);
        assert!((p4.nu_prime(12) - 10.0 / 12.0).abs() < 1e-12);
        assert!((p4.nu(12) - 5.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn profiles_shrink_monotonically() {
        let g = socnet_gen::grid(6, 6);
        let d = CoreDecomposition::compute(&g);
        let profiles = core_profiles(&g, &d);
        for w in profiles.windows(2) {
            assert!(w[1].nodes <= w[0].nodes);
            assert!(w[1].edges <= w[0].edges);
        }
    }

    #[test]
    fn ring_has_exactly_the_two_core() {
        let g = ring(9);
        let d = CoreDecomposition::compute(&g);
        let profiles = core_profiles(&g, &d);
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[1].nodes, 9);
        assert_eq!(profiles[1].components, 1);
    }

    #[test]
    fn ratios_handle_empty_totals() {
        let p = CoreProfile {
            k: 1,
            nodes: 0,
            edges: 0,
            components: 0,
            largest_nodes: 0,
            largest_edges: 0,
        };
        assert_eq!(p.nu_prime(0), 0.0);
        assert_eq!(p.tau(0), 0.0);
    }
}
