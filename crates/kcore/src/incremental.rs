//! Incremental coreness maintenance under single-edge updates.
//!
//! A single edge insert or delete changes any node's coreness by at
//! most 1, and the only nodes that can change are those with coreness
//! `K = min(c(u), c(v))` reachable from the touched endpoints through
//! coreness-`K` paths (the *subcore*) — the classical locality theorems
//! behind traversal-style repair (Sarıyüce et al.). [`LiveCores`]
//! exploits this: instead of re-peeling the whole graph per update, it
//! walks the subcore, recomputes who still qualifies, and adjusts just
//! those nodes.
//!
//! The walk is bounded: past a damage bound the repair gives up and
//! reports [`EdgeRepair::RecomputeNeeded`], and the caller re-peels
//! from scratch — on a skewed social graph almost every update repairs
//! locally, and the bound caps the tail.
//!
//! The structure is deliberately graph-agnostic: both repair entry
//! points take the *post-update* adjacency as a closure, so the caller
//! can back it with a CSR, an overlay, or anything else.

use std::collections::VecDeque;

/// Generation-stamped per-node scratch: `O(1)` membership and a `u32`
/// payload slot without clearing between ops (a bumped generation
/// invalidates everything at once). Kept on [`LiveCores`] so repeated
/// repairs reuse the allocations — hashing per neighbor visit is what
/// dominates repair cost otherwise.
#[derive(Debug, Clone, Default)]
struct Scratch {
    mark: Vec<u32>,
    slot: Vec<u32>,
    gen: u32,
}

impl Scratch {
    /// Sizes for `n` nodes and starts a fresh generation.
    fn begin(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
            self.slot.resize(n, 0);
        }
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            self.mark.fill(0);
            self.gen = 1;
        }
    }

    fn contains(&self, x: u32) -> bool {
        self.mark[x as usize] == self.gen
    }

    fn set(&mut self, x: u32, value: u32) {
        self.mark[x as usize] = self.gen;
        self.slot[x as usize] = value;
    }

    fn get(&self, x: u32) -> Option<u32> {
        self.contains(x).then(|| self.slot[x as usize])
    }
}

/// Outcome of one incremental repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeRepair {
    /// The subcore walk stayed under the damage bound and coreness is
    /// exact again. `visited` is how many nodes the walk examined.
    Repaired {
        /// Nodes visited by the subcore traversal.
        visited: usize,
    },
    /// The walk exceeded the damage bound. Coreness values are now
    /// unspecified; the caller must re-peel and [`LiveCores::reset`].
    RecomputeNeeded,
}

/// Maintained coreness values for a mutable graph.
///
/// Seed it from a full decomposition, then feed it every edge change
/// together with the post-change adjacency. Exactness (proven by the
/// randomized equivalence suite in `socnet-live`) holds as long as
/// every applied change is reported and `RecomputeNeeded` is always
/// answered with a [`reset`](LiveCores::reset).
///
/// # Examples
///
/// ```
/// use socnet_kcore::LiveCores;
///
/// // A triangle plus an isolated node; insert the closing edge 2-3.
/// let adj = [vec![1u32, 2], vec![0, 2], vec![0, 1, 3], vec![2]];
/// let mut cores = LiveCores::new(vec![2, 2, 2, 0]);
/// let repair = cores.insert_edge(2, 3, |v, visit| {
///     for &u in &adj[v as usize] {
///         visit(u);
///     }
/// });
/// assert!(matches!(repair, socnet_kcore::EdgeRepair::Repaired { .. }));
/// assert_eq!(cores.coreness_slice(), &[2, 2, 2, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct LiveCores {
    coreness: Vec<u32>,
    damage_bound: usize,
    scratch: Scratch,
}

/// Default cap on subcore size before falling back to a full re-peel.
pub const DEFAULT_DAMAGE_BOUND: usize = 10_000;

impl LiveCores {
    /// Wraps a coreness vector (typically
    /// `CoreDecomposition::coreness_slice().to_vec()`).
    pub fn new(coreness: Vec<u32>) -> LiveCores {
        Self::with_damage_bound(coreness, DEFAULT_DAMAGE_BOUND)
    }

    /// Same, with an explicit damage bound (`0` forces every update to
    /// report `RecomputeNeeded` — useful for exercising the fallback).
    pub fn with_damage_bound(coreness: Vec<u32>, damage_bound: usize) -> LiveCores {
        LiveCores { coreness, damage_bound, scratch: Scratch::default() }
    }

    /// Replaces the maintained values after a full recompute.
    pub fn reset(&mut self, coreness: Vec<u32>) {
        self.coreness = coreness;
    }

    /// Maintained coreness, indexed by node id.
    pub fn coreness_slice(&self) -> &[u32] {
        &self.coreness
    }

    /// Coreness of `v`, `None` when out of range.
    pub fn coreness(&self, v: u32) -> Option<u32> {
        self.coreness.get(v as usize).copied()
    }

    /// Degeneracy = the largest maintained coreness (`O(n)` scan).
    pub fn degeneracy(&self) -> u32 {
        self.coreness.iter().copied().max().unwrap_or(0)
    }

    /// Number of tracked nodes.
    pub fn len(&self) -> usize {
        self.coreness.len()
    }

    /// `true` when no nodes are tracked.
    pub fn is_empty(&self) -> bool {
        self.coreness.is_empty()
    }

    /// Grows the node range to `n`; new nodes arrive isolated with
    /// coreness 0.
    pub fn ensure_len(&mut self, n: usize) {
        if n > self.coreness.len() {
            self.coreness.resize(n, 0);
        }
    }

    /// Repairs coreness after inserting edge `(u, v)`. `neighbors` must
    /// present the **post-insert** adjacency.
    ///
    /// On `RecomputeNeeded` nothing has been mutated — the walk aborts
    /// before applying any change.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is outside the tracked node range (call
    /// [`ensure_len`](LiveCores::ensure_len) first).
    pub fn insert_edge<F>(&mut self, u: u32, v: u32, neighbors: F) -> EdgeRepair
    where
        F: Fn(u32, &mut dyn FnMut(u32)),
    {
        let k = self.coreness[u as usize].min(self.coreness[v as usize]);
        // Pruned subcore walk (Sarıyüce-style MCD pruning). A node can
        // only rise to K+1 if it has ≥ K+1 neighbors whose coreness is
        // already ≥ K — its cd. Any promoted node therefore has cd > K,
        // and promoted nodes form coreness-K chains back to a touched
        // endpoint, so a BFS that *expands* only cd > K members still
        // discovers every promotable node; cd ≤ K members are collected
        // (they seed the evict cascade) but not expanded. On skewed
        // graphs this keeps the walk local instead of sweeping the
        // whole K-shell.
        let bound = self.damage_bound.max(1);
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.begin(self.coreness.len());
        let mut members: Vec<u32> = Vec::new();
        let mut cd: Vec<u32> = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut pending: Vec<u32> = Vec::new();
        for s in [u, v] {
            if self.coreness[s as usize] == k {
                pending.push(s);
            }
        }
        let mut overflow = false;
        loop {
            while let Some(x) = pending.pop() {
                if scratch.contains(x) {
                    continue;
                }
                if members.len() >= bound {
                    overflow = true;
                    break;
                }
                let d = self.count_at_least(x, k, &neighbors);
                scratch.set(x, members.len() as u32);
                members.push(x);
                cd.push(d);
                if d > k {
                    queue.push_back(members.len() - 1);
                }
            }
            if overflow {
                break;
            }
            let Some(i) = queue.pop_front() else { break };
            neighbors(members[i], &mut |x| {
                if self.coreness[x as usize] == k && !scratch.contains(x) {
                    pending.push(x);
                }
            });
        }
        if overflow {
            // Nothing was mutated; the caller re-peels and resets.
            self.scratch = scratch;
            return EdgeRepair::RecomputeNeeded;
        }

        // Evict cascade: a member survives only with cd ≥ K+1, where cd
        // counts coreness > K neighbors (fixed) plus unevicted members
        // (every coreness-K neighbor of an *expanded* member is itself
        // a member, and only expanded members can survive).
        let mut evicted = vec![false; members.len()];
        let mut work: VecDeque<usize> =
            (0..members.len()).filter(|&i| cd[i] <= k).collect();
        while let Some(i) = work.pop_front() {
            if evicted[i] {
                continue;
            }
            evicted[i] = true;
            neighbors(members[i], &mut |x| {
                if self.coreness[x as usize] == k {
                    if let Some(j) = scratch.get(x) {
                        let j = j as usize;
                        if !evicted[j] {
                            cd[j] -= 1;
                            if cd[j] <= k {
                                work.push_back(j);
                            }
                        }
                    }
                }
            });
        }
        for (i, &w) in members.iter().enumerate() {
            if !evicted[i] {
                self.coreness[w as usize] = k + 1;
            }
        }
        self.scratch = scratch;
        EdgeRepair::Repaired { visited: members.len() }
    }

    /// Repairs coreness after deleting edge `(u, v)`. `neighbors` must
    /// present the **post-delete** adjacency.
    ///
    /// Unlike insert, a bounded-out delete leaves partially-updated
    /// values behind; `RecomputeNeeded` obliges the caller to re-peel
    /// and [`reset`](LiveCores::reset) before trusting the values
    /// again.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is outside the tracked node range.
    pub fn delete_edge<F>(&mut self, u: u32, v: u32, neighbors: F) -> EdgeRepair
    where
        F: Fn(u32, &mut dyn FnMut(u32)),
    {
        let k = self.coreness[u as usize].min(self.coreness[v as usize]);
        if k == 0 {
            // Coreness cannot drop below zero; nothing to repair.
            return EdgeRepair::Repaired { visited: 0 };
        }
        // cd(x) = neighbors with coreness ≥ K under the *current*
        // (mutating) values, computed lazily on first touch (scratch
        // slot). A node drops out of the K-core when cd < K; each drop
        // decrements the cd of its still-at-K neighbors exactly once
        // (fresh computations after the drop already exclude it).
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.begin(self.coreness.len());
        let mut work: VecDeque<u32> = VecDeque::new();
        let mut visited = 0usize;
        for s in [u, v] {
            if self.coreness[s as usize] == k && !scratch.contains(s) {
                let d = self.count_at_least(s, k, &neighbors);
                scratch.set(s, d);
                if d < k {
                    work.push_back(s);
                }
            }
        }
        let mut touched: Vec<u32> = Vec::new();
        while let Some(x) = work.pop_front() {
            if self.coreness[x as usize] != k {
                continue; // already dropped
            }
            if scratch.get(x).unwrap_or(u32::MAX) >= k {
                continue;
            }
            self.coreness[x as usize] = k - 1;
            visited += 1;
            if visited > self.damage_bound {
                self.scratch = scratch;
                return EdgeRepair::RecomputeNeeded;
            }
            touched.clear();
            neighbors(x, &mut |y| {
                if self.coreness[y as usize] == k {
                    touched.push(y);
                }
            });
            for &y in &touched {
                let d = match scratch.get(y) {
                    Some(d) => {
                        let d = d.saturating_sub(1);
                        scratch.set(y, d);
                        d
                    }
                    None => {
                        let d = self.count_at_least(y, k, &neighbors);
                        scratch.set(y, d);
                        d
                    }
                };
                if d < k {
                    work.push_back(y);
                }
            }
        }
        self.scratch = scratch;
        EdgeRepair::Repaired { visited }
    }

    fn count_at_least<F>(&self, x: u32, k: u32, neighbors: &F) -> u32
    where
        F: Fn(u32, &mut dyn FnMut(u32)),
    {
        let mut count = 0u32;
        neighbors(x, &mut |y| {
            if self.coreness[y as usize] >= k {
                count += 1;
            }
        });
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoreDecomposition;
    use socnet_core::Graph;
    use std::collections::BTreeSet;

    /// A mutable edge set with the closure-shaped adjacency the live
    /// path uses, checked against full re-decompositions.
    struct Mutable {
        n: usize,
        edges: BTreeSet<(u32, u32)>,
        adj: Vec<BTreeSet<u32>>,
    }

    impl Mutable {
        fn from_graph(g: &Graph) -> Mutable {
            let n = g.node_count();
            let mut m = Mutable { n, edges: BTreeSet::new(), adj: vec![BTreeSet::new(); n] };
            for v in g.nodes() {
                for &u in g.neighbors(v) {
                    if v.0 < u.0 {
                        m.insert(v.0, u.0);
                    }
                }
            }
            m
        }

        fn insert(&mut self, a: u32, b: u32) -> bool {
            let key = (a.min(b), a.max(b));
            if a == b || !self.edges.insert(key) {
                return false;
            }
            self.adj[a as usize].insert(b);
            self.adj[b as usize].insert(a);
            true
        }

        fn remove(&mut self, a: u32, b: u32) -> bool {
            let key = (a.min(b), a.max(b));
            if !self.edges.remove(&key) {
                return false;
            }
            self.adj[a as usize].remove(&b);
            self.adj[b as usize].remove(&a);
            true
        }

        fn neighbors(&self) -> impl Fn(u32, &mut dyn FnMut(u32)) + '_ {
            |v, visit| {
                for &u in &self.adj[v as usize] {
                    visit(u);
                }
            }
        }

        fn full_coreness(&self) -> Vec<u32> {
            let g = Graph::from_edges(self.n, self.edges.iter().copied());
            CoreDecomposition::compute(&g).coreness_slice().to_vec()
        }
    }

    fn live_from(m: &Mutable) -> LiveCores {
        LiveCores::new(m.full_coreness())
    }

    /// Tiny deterministic generator so the suite needs no rand crate.
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    #[test]
    fn triangle_insert_and_delete_round_trip() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0)]);
        let mut m = Mutable::from_graph(&g);
        let mut live = live_from(&m);
        assert_eq!(live.coreness_slice(), &[2, 2, 2, 0]);

        m.insert(2, 3);
        let r = live.insert_edge(2, 3, m.neighbors());
        assert!(matches!(r, EdgeRepair::Repaired { .. }));
        assert_eq!(live.coreness_slice(), m.full_coreness());

        m.remove(0, 1);
        let r = live.delete_edge(0, 1, m.neighbors());
        assert!(matches!(r, EdgeRepair::Repaired { .. }));
        assert_eq!(live.coreness_slice(), &[1, 1, 1, 1]);
        assert_eq!(live.coreness_slice(), m.full_coreness());
    }

    #[test]
    fn closing_a_square_promotes_the_cycle() {
        // Path 0-1-2-3; closing 3-0 makes every node a 2-core member.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let mut m = Mutable::from_graph(&g);
        let mut live = live_from(&m);
        m.insert(3, 0);
        live.insert_edge(3, 0, m.neighbors());
        assert_eq!(live.coreness_slice(), &[2, 2, 2, 2]);
    }

    #[test]
    fn deleting_a_cycle_edge_demotes_the_whole_cycle() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let mut m = Mutable::from_graph(&g);
        let mut live = live_from(&m);
        assert!(live.coreness_slice().iter().all(|&c| c == 2));
        m.remove(2, 3);
        live.delete_edge(2, 3, m.neighbors());
        assert!(live.coreness_slice().iter().all(|&c| c == 1), "{:?}", live.coreness_slice());
    }

    #[test]
    fn new_nodes_join_at_zero_and_grow() {
        let g = Graph::from_edges(2, [(0, 1)]);
        let mut m = Mutable::from_graph(&g);
        m.n = 4;
        m.adj.resize(4, BTreeSet::new());
        let mut live = live_from(&m);
        live.ensure_len(4);
        assert_eq!(live.coreness_slice(), &[1, 1, 0, 0]);
        m.insert(2, 3);
        live.insert_edge(2, 3, m.neighbors());
        assert_eq!(live.coreness_slice(), &[1, 1, 1, 1]);
    }

    #[test]
    fn zero_damage_bound_always_asks_for_recompute_on_insert() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let mut m = Mutable::from_graph(&g);
        let mut live = LiveCores::with_damage_bound(m.full_coreness(), 0);
        let before = live.coreness_slice().to_vec();
        m.insert(2, 0);
        assert_eq!(live.insert_edge(2, 0, m.neighbors()), EdgeRepair::RecomputeNeeded);
        // Insert aborts before mutating; the caller re-peels and resets.
        assert_eq!(live.coreness_slice(), before.as_slice());
        live.reset(m.full_coreness());
        assert_eq!(live.coreness_slice(), &[2, 2, 2]);
    }

    #[test]
    fn random_churn_matches_full_recompute_exactly() {
        // 400 random inserts/deletes over a small dense id space:
        // incremental values must equal a from-scratch peel after every
        // single operation.
        let n = 24u32;
        let g = Graph::from_edges(n as usize, [(0, 1), (1, 2), (2, 0), (3, 4)]);
        let mut m = Mutable::from_graph(&g);
        let mut live = live_from(&m);
        let mut rng = XorShift(0x5eed_cafe_f00d_0001);
        for step in 0..400 {
            let a = rng.below(n as u64) as u32;
            let b = rng.below(n as u64) as u32;
            if a == b {
                continue;
            }
            if rng.below(100) < 60 {
                if m.insert(a, b) {
                    match live.insert_edge(a, b, m.neighbors()) {
                        EdgeRepair::Repaired { .. } => {}
                        EdgeRepair::RecomputeNeeded => live.reset(m.full_coreness()),
                    }
                }
            } else if m.remove(a, b) {
                match live.delete_edge(a, b, m.neighbors()) {
                    EdgeRepair::Repaired { .. } => {}
                    EdgeRepair::RecomputeNeeded => live.reset(m.full_coreness()),
                }
            }
            assert_eq!(
                live.coreness_slice(),
                m.full_coreness().as_slice(),
                "divergence at step {step} (edge {a}-{b})"
            );
        }
        assert!(live.degeneracy() >= 2, "churn should have built some core");
    }

    #[test]
    fn tiny_damage_bound_still_converges_via_fallback() {
        // Same churn, but a bound of 2 forces frequent fallbacks; the
        // fallback contract (re-peel + reset) must keep values exact.
        let n = 16u32;
        let mut m = Mutable::from_graph(&Graph::from_edges(n as usize, []));
        let mut live = LiveCores::with_damage_bound(m.full_coreness(), 2);
        let mut rng = XorShift(0xdead_beef_0bad_cafe);
        let mut fallbacks = 0;
        for _ in 0..200 {
            let a = rng.below(n as u64) as u32;
            let b = rng.below(n as u64) as u32;
            if a == b {
                continue;
            }
            let applied = if rng.below(100) < 70 {
                m.insert(a, b).then(|| live.insert_edge(a, b, m.neighbors()))
            } else {
                m.remove(a, b).then(|| live.delete_edge(a, b, m.neighbors()))
            };
            if let Some(EdgeRepair::RecomputeNeeded) = applied {
                fallbacks += 1;
                live.reset(m.full_coreness());
            }
            assert_eq!(live.coreness_slice(), m.full_coreness().as_slice());
        }
        assert!(fallbacks > 0, "a bound of 2 must trip the fallback");
    }
}
