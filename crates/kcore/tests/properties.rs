//! Property-based tests of k-core invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet_core::{induced_subgraph, Graph};
use socnet_kcore::{core_profiles, coreness_ecdf, CoreDecomposition};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..150).prop_map(move |edges| Graph::from_edges(n, edges))
    })
}

proptest! {
    #[test]
    fn coreness_never_exceeds_degree(g in arb_graph()) {
        let d = CoreDecomposition::compute(&g);
        for v in g.nodes() {
            prop_assert!(d.coreness(v) as usize <= g.degree(v));
        }
    }

    #[test]
    fn coreness_is_supported_by_neighbors(g in arb_graph()) {
        // Defining property: v has >= coreness(v) neighbors of coreness
        // >= coreness(v) (v's core contains them).
        let d = CoreDecomposition::compute(&g);
        for v in g.nodes() {
            let c = d.coreness(v);
            let support = g
                .neighbors(v)
                .iter()
                .filter(|&&u| d.coreness(u) >= c)
                .count();
            prop_assert!(support as u32 >= c, "{v}: coreness {c}, support {support}");
        }
    }

    #[test]
    fn coreness_is_maximal(g in arb_graph()) {
        // No node could be given coreness c+1: the subgraph induced by
        // {u : coreness(u) >= c+1} ∪ {v} must leave v with degree <= c
        // after iterative pruning. A cheaper sound check: within the
        // *union* graph of nodes with coreness >= c, iteratively peeling
        // nodes of degree < c must delete nothing.
        let d = CoreDecomposition::compute(&g);
        let kmax = d.degeneracy();
        for k in 1..=kmax {
            let members = d.core_members(k);
            let (sub, _) = induced_subgraph(&g, &members);
            for v in sub.nodes() {
                prop_assert!(
                    sub.degree(v) >= k as usize,
                    "k-core member with degree {} < k = {k}",
                    sub.degree(v)
                );
            }
        }
    }

    #[test]
    fn degeneracy_matches_max_coreness(g in arb_graph()) {
        let d = CoreDecomposition::compute(&g);
        let max = d.coreness_slice().iter().copied().max().unwrap_or(0);
        prop_assert_eq!(d.degeneracy(), max);
    }

    #[test]
    fn degeneracy_order_is_a_permutation(g in arb_graph()) {
        let d = CoreDecomposition::compute(&g);
        let mut order: Vec<_> = d.degeneracy_order().to_vec();
        order.sort_unstable();
        prop_assert_eq!(order, g.nodes().collect::<Vec<_>>());
    }

    #[test]
    fn profiles_are_consistent_with_members(g in arb_graph()) {
        let d = CoreDecomposition::compute(&g);
        let profiles = core_profiles(&g, &d);
        prop_assert_eq!(profiles.len(), d.degeneracy() as usize);
        for p in &profiles {
            prop_assert_eq!(p.nodes, d.core_members(p.k).len());
            prop_assert!(p.largest_nodes <= p.nodes);
            prop_assert!(p.largest_edges <= p.edges);
            prop_assert!(p.components >= 1);
            if p.components == 1 {
                prop_assert_eq!(p.largest_nodes, p.nodes);
                prop_assert_eq!(p.largest_edges, p.edges);
            }
        }
    }

    #[test]
    fn ecdf_of_coreness_is_a_distribution(g in arb_graph()) {
        let d = CoreDecomposition::compute(&g);
        let e = coreness_ecdf(&d);
        prop_assert_eq!(e.len(), g.node_count());
        prop_assert_eq!(e.eval(d.degeneracy() as f64), 1.0);
        let hist = d.coreness_histogram();
        prop_assert_eq!(hist.iter().sum::<usize>(), g.node_count());
    }

    #[test]
    fn random_graph_coreness_is_seed_stable(n in 10usize..60, m in 1usize..4, seed in any::<u64>()) {
        prop_assume!(n > m + 1);
        let g = socnet_gen::barabasi_albert(n, m, &mut StdRng::seed_from_u64(seed));
        let a = CoreDecomposition::compute(&g);
        let b = CoreDecomposition::compute(&g);
        prop_assert_eq!(&a, &b);
        // BA graphs: every node has coreness >= m within the connected body.
        prop_assert!(a.degeneracy() >= m as u32);
    }
}
