//! Property-based tests of the DHT machinery.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet_dht::{lookup_success_rate, ring_distance, DhtConfig, FingerStrategy, KeyRing, SocialDht};
use socnet_core::NodeId;
use socnet_gen::barabasi_albert;
use socnet_sybil::{AttackedGraph, SybilAttack, SybilTopology};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ring_distance_properties(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        prop_assert_eq!(ring_distance(a, a), 0);
        prop_assert_eq!(ring_distance(a, b), ring_distance(b, a));
        prop_assert!(ring_distance(a, b) <= 1u64 << 63);
        // Triangle inequality (saturating to avoid overflow in the bound).
        prop_assert!(
            ring_distance(a, c) <= ring_distance(a, b).saturating_add(ring_distance(b, c))
        );
        // Translation invariance.
        prop_assert_eq!(
            ring_distance(a.wrapping_add(c), b.wrapping_add(c)),
            ring_distance(a, b)
        );
    }

    #[test]
    fn owner_is_argmin_of_distance(n in 1usize..40, key in any::<u64>(), seed in any::<u64>()) {
        let ring = KeyRing::generate(n, seed);
        let owner = ring.owner(key);
        for i in 0..n {
            prop_assert!(
                ring_distance(ring.key(owner), key)
                    <= ring_distance(ring.key(NodeId(i as u32)), key)
            );
        }
    }

    #[test]
    fn replicas_are_the_closest_honest_nodes(
        honest_n in 8usize..40,
        key in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let honest = barabasi_albert(honest_n, 2, &mut StdRng::seed_from_u64(seed));
        let a = AttackedGraph::mount(
            &honest,
            &SybilAttack { sybil_count: 5, attack_edges: 2, topology: SybilTopology::Clique, seed },
        );
        let dht = SocialDht::build(
            &a,
            &DhtConfig { fingers: 4, strategy: FingerStrategy::Uniform, replication: 3, seed },
        );
        let replicas = dht.replicas(key);
        prop_assert_eq!(replicas.len(), 3);
        // All honest, and every non-replica honest node is no closer.
        let worst = replicas
            .iter()
            .map(|&r| ring_distance(dht.ring().key(r), key))
            .max()
            .expect("non-empty");
        for h in a.honest_nodes() {
            if !replicas.contains(&h) {
                prop_assert!(ring_distance(dht.ring().key(h), key) >= worst);
            }
        }
        for &r in &replicas {
            prop_assert!(!a.is_sybil(r));
        }
    }

    #[test]
    fn lookup_paths_are_valid(seed in any::<u64>()) {
        let honest = barabasi_albert(60, 3, &mut StdRng::seed_from_u64(seed));
        let a = AttackedGraph::mount(
            &honest,
            &SybilAttack { sybil_count: 20, attack_edges: 4, topology: SybilTopology::Clique, seed },
        );
        let dht = SocialDht::build(&a, &DhtConfig::default());
        let key = dht.ring().key(NodeId(30));
        let out = dht.lookup(&a, NodeId(1), key, 25).expect("querier in range");
        prop_assert!(out.path.len() <= 26);
        prop_assert_eq!(out.path[0], NodeId(1));
        if out.success {
            let last = *out.path.last().expect("non-empty");
            prop_assert!(dht.replicas(key).contains(&last));
        }
        // Distances to the key are strictly decreasing along honest hops.
        for w in out.path.windows(2) {
            prop_assert!(
                ring_distance(dht.ring().key(w[1]), key)
                    < ring_distance(dht.ring().key(w[0]), key)
            );
        }
    }

    #[test]
    fn success_rate_is_a_probability(seed in any::<u64>()) {
        let honest = barabasi_albert(40, 3, &mut StdRng::seed_from_u64(seed));
        let a = AttackedGraph::mount(
            &honest,
            &SybilAttack { sybil_count: 10, attack_edges: 2, topology: SybilTopology::Clique, seed },
        );
        let dht = SocialDht::build(&a, &DhtConfig::default());
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        let rate = lookup_success_rate(&a, &dht, 20, 25, &mut rng);
        prop_assert!((0.0..=1.0).contains(&rate));
    }
}
