//! Sybil-resistant DHT routing over social graphs.
//!
//! The paper's introduction motivates its measurements with the systems
//! built on top of social trust; distributed hash tables are the oldest
//! of them (Marti et al.'s social-link routing, Danezis et al.'s
//! Sybil-resistant DHT, Lesniewski-Laas's Whānau). Their common insight
//! is the one the paper quantifies: **random walks on a fast-mixing
//! honest region rarely escape through the few attack edges**, so walk
//! endpoints are a Sybil-resistant way to sample routing-table entries,
//! while uniform sampling over the *claimed* membership is trivially
//! poisoned by Sybil identities.
//!
//! The crate builds the whole loop:
//!
//! * [`KeyRing`] — nodes mapped to keys on a `u64` ring with wrapping
//!   distance and ownership;
//! * [`FingerStrategy`] — routing-table sampling: `Uniform` over all
//!   identities (the poisoned baseline) or `SocialWalk` endpoints;
//! * [`SocialDht`] — per-node finger tables plus greedy ring routing,
//!   where Sybil nodes misroute into the Sybil region (an eclipse
//!   adversary);
//! * [`LookupOutcome`] / [`lookup_success_rate`] — end-to-end evaluation
//!   under a mounted [`AttackedGraph`](socnet_sybil::AttackedGraph).
//!
//! # Examples
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use socnet_dht::{lookup_success_rate, DhtConfig, FingerStrategy, SocialDht};
//! use socnet_gen::complete;
//! use socnet_sybil::{AttackedGraph, SybilAttack, SybilTopology};
//!
//! let attacked = AttackedGraph::mount(
//!     &complete(40),
//!     &SybilAttack { sybil_count: 40, attack_edges: 2, topology: SybilTopology::Clique, seed: 1 },
//! );
//! let cfg = DhtConfig {
//!     fingers: 8,
//!     strategy: FingerStrategy::SocialWalk { length: 6 },
//!     replication: 4,
//!     seed: 1,
//! };
//! let dht = SocialDht::build(&attacked, &cfg);
//! let mut rng = StdRng::seed_from_u64(2);
//! let rate = lookup_success_rate(&attacked, &dht, 50, 30, &mut rng);
//! assert!(rate > 0.8, "social-walk fingers should route well, got {rate}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod keyring;
mod routing;

pub use error::DhtError;
pub use keyring::{ring_distance, KeyRing};
pub use routing::{
    lookup_success_rate, DhtConfig, FingerStrategy, LookupOutcome, SocialDht,
};
