//! Finger tables and greedy ring routing under Sybil attack.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use socnet_core::{Graph, NodeId};
use socnet_sybil::AttackedGraph;

use crate::{ring_distance, DhtError, KeyRing};

/// How nodes sample their routing-table (finger) entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FingerStrategy {
    /// Uniform over all identities — the baseline every Sybil-resistant
    /// design replaces, because the attacker controls an arbitrary
    /// fraction of identities.
    Uniform,
    /// Endpoints of random walks on the social graph (Whānau-style):
    /// honest walks rarely cross the attack edges, so honest fingers
    /// stay honest.
    SocialWalk {
        /// Walk length; around the honest region's mixing time.
        length: usize,
    },
}

/// Configuration for [`SocialDht::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DhtConfig {
    /// Fingers per node.
    pub fingers: usize,
    /// Finger sampling strategy.
    pub strategy: FingerStrategy,
    /// Replication factor: each object is stored on the `replication`
    /// honest nodes ring-closest to its key, so a lookup succeeds at any
    /// replica (greedy routing over random fingers reaches the key's
    /// neighborhood quickly but the single closest node only rarely).
    pub replication: usize,
    /// Seed for keys, walks, and Sybil misrouting.
    pub seed: u64,
}

impl Default for DhtConfig {
    fn default() -> Self {
        DhtConfig {
            fingers: 16,
            strategy: FingerStrategy::SocialWalk { length: 8 },
            replication: 4,
            seed: 0xd47,
        }
    }
}

/// The outcome of one greedy lookup.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LookupOutcome {
    /// Nodes visited, starting at the querier.
    pub path: Vec<NodeId>,
    /// Whether the lookup terminated at one of the key's honest
    /// replicas (the `replication` ring-closest honest nodes).
    pub success: bool,
}

/// A DHT instantiated over an attacked social graph.
///
/// Honest nodes follow the protocol; Sybil nodes are an eclipse
/// adversary — any query reaching them is answered with another Sybil,
/// so a lookup that enters the Sybil region never returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocialDht {
    ring: KeyRing,
    fingers: Vec<Vec<NodeId>>,
    honest_count: usize,
    replication: usize,
    /// Honest nodes sorted by their ring key, for O(log h + r) replica
    /// queries.
    honest_by_key: Vec<NodeId>,
}

impl SocialDht {
    /// Builds keys and finger tables for every node of `attacked`.
    ///
    /// Sybil nodes' *own* tables are irrelevant (they misroute anyway);
    /// honest nodes sample according to `config.strategy`:
    /// `Uniform` draws from all identities (Sybils included — they
    /// advertise themselves), `SocialWalk` draws walk endpoints on the
    /// composed graph.
    ///
    /// # Panics
    ///
    /// Panics if `fingers == 0` or a `SocialWalk` length of 0 is given.
    pub fn build(attacked: &AttackedGraph, config: &DhtConfig) -> Self {
        assert!(config.fingers > 0, "need at least one finger per node");
        assert!(config.replication > 0, "need a positive replication factor");
        if let FingerStrategy::SocialWalk { length } = config.strategy {
            assert!(length > 0, "walk length must be positive");
        }
        let g = attacked.graph();
        let n = g.node_count();
        let ring = KeyRing::generate(n, config.seed);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xf17e);

        let fingers = g
            .nodes()
            .map(|v| {
                if attacked.is_sybil(v) {
                    return Vec::new();
                }
                (0..config.fingers)
                    .map(|_| match config.strategy {
                        FingerStrategy::Uniform => {
                            NodeId(rng.random_range(0..n as u32))
                        }
                        FingerStrategy::SocialWalk { length } => {
                            walk_endpoint(g, v, length, &mut rng)
                        }
                    })
                    .collect()
            })
            .collect();

        let honest_count = attacked.honest_count();
        let mut honest_by_key: Vec<NodeId> =
            (0..honest_count).map(NodeId::from_index).collect();
        honest_by_key.sort_by_key(|&v| ring.key(v));
        SocialDht {
            ring,
            fingers,
            honest_count,
            replication: config.replication.min(honest_count),
            honest_by_key,
        }
    }

    /// The honest nodes storing `key`: the `replication` ring-closest.
    ///
    /// Runs in `O(log h + replication)` against the prebuilt key-sorted
    /// index, expanding outward from the key's insertion point in both
    /// ring directions.
    pub fn replicas(&self, key: u64) -> Vec<NodeId> {
        let h = self.honest_by_key.len();
        if h == 0 {
            return Vec::new();
        }
        let start = self
            .honest_by_key
            .partition_point(|&v| self.ring.key(v) < key);
        // Two cyclic cursors: `right` begins at the insertion point,
        // `left` one before it; pick the ring-closer side each step.
        let mut out = Vec::with_capacity(self.replication);
        let mut right = start % h;
        let mut left = (start + h - 1) % h;
        let mut taken = 0usize;
        while taken < self.replication && taken < h {
            let dr = ring_distance(self.ring.key(self.honest_by_key[right]), key);
            let dl = ring_distance(self.ring.key(self.honest_by_key[left]), key);
            if taken + 1 == h || left == right {
                out.push(self.honest_by_key[right]);
            } else if dr <= dl {
                out.push(self.honest_by_key[right]);
                right = (right + 1) % h;
            } else {
                out.push(self.honest_by_key[left]);
                left = (left + h - 1) % h;
            }
            taken += 1;
        }
        out
    }

    /// The key ring in use.
    pub fn ring(&self) -> &KeyRing {
        &self.ring
    }

    /// The fingers of `v` (empty for Sybil nodes).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn fingers(&self, v: NodeId) -> &[NodeId] {
        &self.fingers[v.index()]
    }

    /// Fraction of honest nodes' finger entries that point at Sybils —
    /// the table-poisoning rate the sampling strategy determines.
    pub fn poisoned_finger_rate(&self) -> f64 {
        let mut total = 0usize;
        let mut poisoned = 0usize;
        for (i, fs) in self.fingers.iter().enumerate() {
            if i >= self.honest_count {
                continue;
            }
            for f in fs {
                total += 1;
                if f.index() >= self.honest_count {
                    poisoned += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            poisoned as f64 / total as f64
        }
    }

    /// Greedy lookup of `key` from `querier` over an attacked graph.
    ///
    /// At each honest hop the next node is the ring-closest candidate
    /// among the current node's fingers and social neighbors that is
    /// strictly closer than the current node; the lookup succeeds as soon
    /// as it touches any replica of the key (one of the `replication`
    /// honest nodes ring-closest to it). Reaching a Sybil node, getting
    /// stuck away from every replica, or exceeding `max_hops` fails it.
    ///
    /// # Errors
    ///
    /// Returns [`DhtError::InvalidNode`] if `querier` is out of range
    /// for the attacked graph.
    pub fn lookup(
        &self,
        attacked: &AttackedGraph,
        querier: NodeId,
        key: u64,
        max_hops: usize,
    ) -> Result<LookupOutcome, DhtError> {
        let g = attacked.graph();
        g.check_node(querier)?;
        let replicas = self.replicas(key);
        let mut path = vec![querier];
        let mut current = querier;

        for _ in 0..=max_hops {
            if replicas.contains(&current) {
                return Ok(LookupOutcome { path, success: true });
            }
            if attacked.is_sybil(current) {
                // Eclipse adversary: the query is absorbed.
                return Ok(LookupOutcome { path, success: false });
            }
            if path.len() > max_hops {
                break;
            }
            let here = ring_distance(self.ring.key(current), key);
            let next = self
                .candidates(g, current)
                .filter(|&c| ring_distance(self.ring.key(c), key) < here)
                .min_by_key(|&c| ring_distance(self.ring.key(c), key));
            match next {
                Some(c) => {
                    path.push(c);
                    current = c;
                }
                None => return Ok(LookupOutcome { path, success: false }),
            }
        }
        Ok(LookupOutcome { path, success: false })
    }

    fn candidates<'a>(
        &'a self,
        graph: &'a Graph,
        v: NodeId,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.fingers[v.index()]
            .iter()
            .copied()
            .chain(graph.neighbors(v).iter().copied())
    }
}

/// Endpoint of one random walk (local helper to avoid a crate cycle).
fn walk_endpoint<R: Rng + ?Sized>(
    graph: &Graph,
    from: NodeId,
    length: usize,
    rng: &mut R,
) -> NodeId {
    let mut cur = from;
    for _ in 0..length {
        let nbrs = graph.neighbors(cur);
        if nbrs.is_empty() {
            break;
        }
        cur = nbrs[rng.random_range(0..nbrs.len())];
    }
    cur
}

/// Runs `trials` lookups between random honest queriers and random
/// honest-owned keys; returns the success fraction.
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn lookup_success_rate<R: Rng + ?Sized>(
    attacked: &AttackedGraph,
    dht: &SocialDht,
    trials: usize,
    max_hops: usize,
    rng: &mut R,
) -> f64 {
    assert!(trials > 0, "need at least one trial");
    let mut ok = 0usize;
    for _ in 0..trials {
        let querier = attacked.random_honest(rng);
        let target = attacked.random_honest(rng);
        let key = dht.ring().key(target);
        let out = dht
            .lookup(attacked, querier, key, max_hops)
            .expect("querier sampled from the graph is in range");
        if out.success {
            ok += 1;
        }
    }
    ok as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use socnet_gen::complete;
    use socnet_sybil::{SybilAttack, SybilTopology};

    fn attacked(sybils: usize, edges: usize) -> AttackedGraph {
        AttackedGraph::mount(
            &complete(40),
            &SybilAttack {
                sybil_count: sybils,
                attack_edges: edges,
                topology: SybilTopology::Clique,
                seed: 3,
            },
        )
    }

    fn cfg(strategy: FingerStrategy) -> DhtConfig {
        DhtConfig { fingers: 8, strategy, replication: 4, seed: 5 }
    }

    #[test]
    fn lookups_succeed_without_sybils() {
        // One token sybil with one edge: effectively clean.
        let a = attacked(1, 1);
        let dht = SocialDht::build(&a, &cfg(FingerStrategy::SocialWalk { length: 4 }));
        let mut rng = StdRng::seed_from_u64(1);
        let rate = lookup_success_rate(&a, &dht, 60, 30, &mut rng);
        assert!(rate > 0.95, "clean-network success {rate}");
    }

    #[test]
    fn walk_fingers_resist_heavy_sybil_presence() {
        // Sparse honest region (routing must be multi-hop, so fingers
        // matter); Sybils outnumber honest nodes 2:1 behind 3 edges.
        let honest = socnet_gen::barabasi_albert(
            150,
            4,
            &mut StdRng::seed_from_u64(11),
        );
        let a = AttackedGraph::mount(
            &honest,
            &SybilAttack {
                sybil_count: 300,
                attack_edges: 3,
                topology: SybilTopology::Clique,
                seed: 3,
            },
        );
        let big = |strategy| DhtConfig { fingers: 16, strategy, replication: 8, seed: 5 };
        let walk = SocialDht::build(&a, &big(FingerStrategy::SocialWalk { length: 5 }));
        let uniform = SocialDht::build(&a, &big(FingerStrategy::Uniform));
        assert!(
            walk.poisoned_finger_rate() < 0.1,
            "walk poisoning {}",
            walk.poisoned_finger_rate()
        );
        assert!(
            uniform.poisoned_finger_rate() > 0.5,
            "uniform poisoning {}",
            uniform.poisoned_finger_rate()
        );
        let mut rng = StdRng::seed_from_u64(2);
        let walk_rate = lookup_success_rate(&a, &walk, 100, 40, &mut rng);
        let uniform_rate = lookup_success_rate(&a, &uniform, 100, 40, &mut rng);
        assert!(
            walk_rate > uniform_rate + 0.2,
            "walk {walk_rate} should beat uniform {uniform_rate}"
        );
        assert!(walk_rate > 0.8, "walk fingers should mostly succeed, got {walk_rate}");
    }

    #[test]
    fn lookup_path_starts_at_querier_and_is_bounded() {
        let a = attacked(5, 1);
        let dht = SocialDht::build(&a, &cfg(FingerStrategy::SocialWalk { length: 3 }));
        let key = dht.ring().key(NodeId(7));
        let out = dht.lookup(&a, NodeId(0), key, 10).expect("querier in range");
        assert_eq!(out.path[0], NodeId(0));
        assert!(out.path.len() <= 11);
        if out.success {
            assert_eq!(*out.path.last().expect("non-empty"), NodeId(7));
        }
    }

    #[test]
    fn zero_hop_budget_only_succeeds_at_home() {
        let a = attacked(5, 1);
        let dht = SocialDht::build(&a, &cfg(FingerStrategy::SocialWalk { length: 3 }));
        let own_key = dht.ring().key(NodeId(4));
        assert!(dht.lookup(&a, NodeId(4), own_key, 0).expect("in range").success);
        let other = dht.ring().key(NodeId(9));
        assert!(!dht.lookup(&a, NodeId(4), other, 0).expect("in range").success);
    }

    #[test]
    fn out_of_range_querier_is_an_error_not_a_panic() {
        let a = attacked(5, 1);
        let dht = SocialDht::build(&a, &cfg(FingerStrategy::Uniform));
        let err = dht.lookup(&a, NodeId(4000), 0, 10).unwrap_err();
        assert!(matches!(err, crate::DhtError::InvalidNode(_)), "got {err}");
    }

    #[test]
    fn sybil_tables_are_empty_and_builds_are_deterministic() {
        let a = attacked(10, 2);
        let c = cfg(FingerStrategy::Uniform);
        let d1 = SocialDht::build(&a, &c);
        let d2 = SocialDht::build(&a, &c);
        assert_eq!(d1, d2);
        for s in a.sybil_nodes() {
            assert!(d1.fingers(s).is_empty());
        }
        for h in a.honest_nodes() {
            assert_eq!(d1.fingers(h).len(), 8);
        }
    }

    #[test]
    #[should_panic(expected = "at least one finger")]
    fn zero_fingers_rejected() {
        let a = attacked(2, 1);
        let _ = SocialDht::build(
            &a,
            &DhtConfig { fingers: 0, strategy: FingerStrategy::Uniform, replication: 1, seed: 0 },
        );
    }
}
