use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use socnet_core::NodeId;

/// Wrapping distance between two keys on the `u64` ring (the smaller of
/// the two arc lengths).
///
/// # Examples
///
/// ```
/// use socnet_dht::ring_distance;
///
/// assert_eq!(ring_distance(10, 13), 3);
/// assert_eq!(ring_distance(13, 10), 3);
/// assert_eq!(ring_distance(u64::MAX, 1), 2); // wraps through 0
/// ```
pub fn ring_distance(a: u64, b: u64) -> u64 {
    let forward = a.wrapping_sub(b);
    let backward = b.wrapping_sub(a);
    forward.min(backward)
}

/// Assignment of ring keys to nodes.
///
/// Keys are drawn uniformly at random per node (collisions over `u64`
/// are negligible but handled: ownership ties break to the smaller id).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyRing {
    keys: Vec<u64>,
}

impl KeyRing {
    /// Draws a uniform key for each of `n` nodes.
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        KeyRing { keys: (0..n).map(|_| rng.random_range(0..u64::MAX)).collect() }
    }

    /// Number of nodes with keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The key of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn key(&self, v: NodeId) -> u64 {
        self.keys[v.index()]
    }

    /// The node owning `key`: the one whose own key is ring-closest.
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty.
    pub fn owner(&self, key: u64) -> NodeId {
        assert!(!self.keys.is_empty(), "ring has no nodes");
        let mut best = 0usize;
        let mut best_d = u64::MAX;
        for (i, &k) in self.keys.iter().enumerate() {
            let d = ring_distance(k, key);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        NodeId::from_index(best)
    }

    /// The honest owner of `key`: closest among the first
    /// `honest_count` nodes — what a correct lookup should return when
    /// Sybils must not be storage nodes.
    ///
    /// # Panics
    ///
    /// Panics if `honest_count` is 0 or exceeds the ring size.
    pub fn honest_owner(&self, key: u64, honest_count: usize) -> NodeId {
        assert!(
            honest_count > 0 && honest_count <= self.keys.len(),
            "honest count {honest_count} out of range"
        );
        let mut best = 0usize;
        let mut best_d = u64::MAX;
        for (i, &k) in self.keys.iter().take(honest_count).enumerate() {
            let d = ring_distance(k, key);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        NodeId::from_index(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_distance_is_a_metric_on_samples() {
        let pts = [0u64, 1, 7, u64::MAX / 2, u64::MAX - 3, u64::MAX];
        for &a in &pts {
            assert_eq!(ring_distance(a, a), 0);
            for &b in &pts {
                assert_eq!(ring_distance(a, b), ring_distance(b, a));
                for &c in &pts {
                    assert!(
                        ring_distance(a, c) <= ring_distance(a, b).saturating_add(ring_distance(b, c)),
                        "triangle violated at {a},{b},{c}"
                    );
                }
            }
        }
    }

    #[test]
    fn max_distance_is_half_the_ring() {
        // The ring circumference is 2^64 (wrapping arithmetic), so the
        // farthest any two keys can be is 2^63.
        assert_eq!(ring_distance(0, 1u64 << 63), 1u64 << 63);
        assert_eq!(ring_distance(0, (1u64 << 63) + 1), (1u64 << 63) - 1);
    }

    #[test]
    fn owner_returns_the_closest_key() {
        let ring = KeyRing { keys: vec![100, 200, 300] };
        assert_eq!(ring.owner(120), NodeId(0));
        assert_eq!(ring.owner(180), NodeId(1));
        assert_eq!(ring.owner(1000), NodeId(2));
        // Exact hit.
        assert_eq!(ring.owner(200), NodeId(1));
    }

    #[test]
    fn honest_owner_ignores_sybil_keys() {
        // Node 2 (a sybil) sits exactly on the key; the honest owner is 1.
        let ring = KeyRing { keys: vec![100, 200, 500] };
        assert_eq!(ring.owner(499), NodeId(2));
        assert_eq!(ring.honest_owner(499, 2), NodeId(1));
    }

    #[test]
    fn generated_keys_are_deterministic_and_spread() {
        let a = KeyRing::generate(100, 7);
        let b = KeyRing::generate(100, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        // No trivially repeated keys among 100 u64 draws.
        let mut keys: Vec<u64> = (0..100).map(|i| a.key(NodeId(i))).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 100);
    }

    #[test]
    #[should_panic(expected = "no nodes")]
    fn empty_ring_owner_panics() {
        let ring = KeyRing { keys: vec![] };
        let _ = ring.owner(1);
    }
}
