//! Error type for DHT operations.

use socnet_core::GraphError;

/// An error from building or querying a [`SocialDht`](crate::SocialDht).
#[derive(Debug)]
pub enum DhtError {
    /// A node id passed to a query is out of range for the attacked
    /// graph the DHT was built over.
    ///
    /// ```
    /// use socnet_dht::{DhtConfig, DhtError, FingerStrategy, SocialDht};
    /// use socnet_core::NodeId;
    /// use socnet_gen::complete;
    /// use socnet_sybil::{AttackedGraph, SybilAttack, SybilTopology};
    ///
    /// let a = AttackedGraph::mount(
    ///     &complete(10),
    ///     &SybilAttack { sybil_count: 2, attack_edges: 1, topology: SybilTopology::Clique, seed: 1 },
    /// );
    /// let dht = SocialDht::build(&a, &DhtConfig::default());
    /// let err = dht.lookup(&a, NodeId(99), 0, 10).unwrap_err();
    /// assert!(matches!(err, DhtError::InvalidNode(_)));
    /// ```
    InvalidNode(GraphError),
}

impl std::fmt::Display for DhtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DhtError::InvalidNode(e) => write!(f, "invalid node: {e}"),
        }
    }
}

impl std::error::Error for DhtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DhtError::InvalidNode(e) => Some(e),
        }
    }
}

impl From<GraphError> for DhtError {
    fn from(e: GraphError) -> Self {
        DhtError::InvalidNode(e)
    }
}
