//! Property-based tests of the attack harness and defenses.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet_core::NodeId;
use socnet_gen::{complete, erdos_renyi_gnp};
use socnet_sybil::{
    eval, AttackedGraph, GateKeeper, GateKeeperConfig, RouteTables, SumUp, SumUpConfig,
    SybilAttack, SybilInfer, SybilInferConfig, SybilTopology,
};

fn arb_attack() -> impl Strategy<Value = (usize, SybilAttack)> {
    (6usize..24, 2usize..12, 1usize..6, any::<u64>(), 0usize..3).prop_map(
        |(honest_n, sybils, edges, seed, topo)| {
            let topology = match topo {
                0 => SybilTopology::Clique,
                1 => SybilTopology::ErdosRenyi { p: 0.5 },
                _ => SybilTopology::ScaleFree { m_attach: 2 },
            };
            (
                honest_n,
                SybilAttack {
                    sybil_count: sybils,
                    attack_edges: edges.min(honest_n * sybils),
                    topology,
                    seed,
                },
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn attack_edge_budget_is_exact((honest_n, attack) in arb_attack()) {
        let honest = complete(honest_n);
        let a = AttackedGraph::mount(&honest, &attack);
        let crossings = a
            .graph()
            .edges()
            .filter(|&(u, v)| a.is_sybil(u) != a.is_sybil(v))
            .count();
        prop_assert_eq!(crossings, attack.attack_edges);
        prop_assert_eq!(a.graph().node_count(), honest_n + attack.sybil_count);
        // Honest-internal edges are untouched.
        let honest_internal = a
            .graph()
            .edges()
            .filter(|&(u, v)| !a.is_sybil(u) && !a.is_sybil(v))
            .count();
        prop_assert_eq!(honest_internal, honest.edge_count());
    }

    #[test]
    fn admission_stats_are_consistent((honest_n, attack) in arb_attack(), mask in any::<u64>()) {
        let a = AttackedGraph::mount(&complete(honest_n), &attack);
        let n = a.graph().node_count();
        let admitted: Vec<bool> = (0..n).map(|i| (mask >> (i % 64)) & 1 == 1).collect();
        let s = eval::admission_stats(&a, &admitted);
        prop_assert_eq!(s.honest_total, honest_n);
        prop_assert_eq!(s.sybil_total, attack.sybil_count);
        prop_assert!(s.honest_accepted <= s.honest_total);
        prop_assert!(s.sybil_accepted <= s.sybil_total);
        prop_assert!((0.0..=1.0).contains(&s.honest_accept_rate));
    }

    #[test]
    fn auc_is_invariant_to_within_class_order((honest_n, attack) in arb_attack()) {
        let a = AttackedGraph::mount(&complete(honest_n), &attack);
        let mut fwd: Vec<NodeId> = a.honest_nodes().collect();
        fwd.extend(a.sybil_nodes());
        let mut rev: Vec<NodeId> = a.honest_nodes().collect();
        rev.reverse();
        let mut sybs: Vec<NodeId> = a.sybil_nodes().collect();
        sybs.reverse();
        rev.extend(sybs);
        prop_assert_eq!(eval::ranking_auc(&a, &fwd), 1.0);
        prop_assert_eq!(eval::ranking_auc(&a, &rev), 1.0);
    }

    #[test]
    fn routes_are_reversible(n in 4usize..20, p in 0.2f64..0.9, seed in any::<u64>()) {
        // Back-traceability: distinct entry edges at a node map to
        // distinct exit edges (the permutation property).
        let g = erdos_renyi_gnp(n, p, &mut StdRng::seed_from_u64(seed));
        let tables = RouteTables::generate(&g, &mut StdRng::seed_from_u64(seed ^ 1));
        for v in g.nodes() {
            let deg = g.degree(v);
            if deg < 2 {
                continue;
            }
            let mut exits = std::collections::HashSet::new();
            for first in 0..deg {
                let r = tables.route(&g, v, first, 2);
                if r.len() == 3 {
                    exits.insert((r[1], r[2]));
                }
            }
            // All explored 2-step routes leaving v along distinct edges
            // arrive at distinct directed second edges *per middle node*.
            let mut per_mid: std::collections::HashMap<NodeId, usize> = Default::default();
            for (mid, _) in &exits {
                *per_mid.entry(*mid).or_insert(0) += 1;
            }
            for (mid, count) in per_mid {
                prop_assert!(count <= g.degree(mid), "more exits than edges at {mid}");
            }
        }
    }

    #[test]
    fn gatekeeper_admits_controller_region(seed in any::<u64>()) {
        let a = AttackedGraph::mount(
            &complete(20),
            &SybilAttack {
                sybil_count: 6,
                attack_edges: 1,
                topology: SybilTopology::Clique,
                seed,
            },
        );
        let out = GateKeeper::new(GateKeeperConfig {
            distributors: 12,
            f_admit: 0.2,
            seed,
            ..Default::default()
        })
        .run(&a);
        let s = eval::admission_stats(&a, out.admitted());
        prop_assert!(s.honest_accept_rate > 0.8, "honest rate {}", s.honest_accept_rate);
    }

    #[test]
    fn sumup_budget_is_never_exceeded(budget in 1usize..20, seed in any::<u64>()) {
        let g = erdos_renyi_gnp(30, 0.3, &mut StdRng::seed_from_u64(seed));
        prop_assume!(g.edge_count() > 0);
        let collector = NodeId(0);
        let voters: Vec<NodeId> = g.nodes().collect();
        let out = SumUp::new(SumUpConfig { expected_votes: budget, seed })
            .collect(&g, collector, &voters);
        prop_assert!(out.accepted_count <= budget);
        prop_assert_eq!(out.accepted.iter().filter(|&&b| b).count(), out.accepted_count);
    }

    #[test]
    fn sybilinfer_scores_sum_consistency(seed in any::<u64>()) {
        let g = complete(10);
        let si = SybilInfer::infer(
            &g,
            NodeId(0),
            &SybilInferConfig { walks: 2000, walk_length: 4, seed },
        );
        // Scores times degree times walks must sum back to the walk count.
        let total: f64 = g
            .nodes()
            .map(|v| si.scores()[v.index()] * g.degree(v) as f64 * 2000.0)
            .sum();
        prop_assert!((total - 2000.0).abs() < 1e-6);
        // Ranking is a permutation.
        let mut r = si.ranking();
        r.sort_unstable();
        prop_assert_eq!(r, g.nodes().collect::<Vec<_>>());
    }
}
