//! The level-synchronous ticket-distribution primitive shared by
//! GateKeeper and SumUp.
//!
//! A source starts with `t` tickets; processing its BFS tree level by
//! level, every node consumes one ticket and forwards the remainder split
//! evenly among its next-level neighbors. Tickets reaching a dead end are
//! lost. A node *holds* a ticket (is inside the envelope) if it received
//! at least one.
//!
//! The floods run on compact [`Csr`] slabs; the [`Graph`]-facing wrappers
//! convert once and produce identical results (nodes are processed in
//! ascending id order per level and neighbor lists are sorted in both
//! representations, so every ticket split happens in the same order).

use socnet_core::{Csr, CsrBfs, Graph, NodeId, UNREACHED};

/// Runs one flood of `tickets` from `source` given precomputed BFS
/// distances. Returns per-node holder flags and the holder count.
pub(crate) fn ticket_flood_csr(
    csr: &Csr,
    source: u32,
    dist: &[u32],
    tickets: f64,
) -> (Vec<bool>, usize) {
    let n = csr.node_count();
    let mut amount = vec![0.0f64; n];
    amount[source as usize] = tickets;

    let mut by_level: Vec<Vec<u32>> = Vec::new();
    for v in 0..n as u32 {
        let d = dist[v as usize];
        if d == UNREACHED {
            continue;
        }
        let d = d as usize;
        if by_level.len() <= d {
            by_level.resize_with(d + 1, Vec::new);
        }
        by_level[d].push(v);
    }

    let mut holders = vec![false; n];
    let mut count = 0usize;
    for (level, nodes) in by_level.iter().enumerate() {
        for &v in nodes {
            let have = amount[v as usize];
            if have < 1.0 {
                continue;
            }
            holders[v as usize] = true;
            count += 1;
            let forward = have - 1.0;
            if forward <= 0.0 {
                continue;
            }
            let next: Vec<u32> = csr
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| dist[u as usize] == (level + 1) as u32)
                .collect();
            if next.is_empty() {
                continue;
            }
            let share = forward / next.len() as f64;
            for u in next {
                amount[u as usize] += share;
            }
        }
    }
    (holders, count)
}

/// [`ticket_flood_csr`] addressed with a [`Graph`] (converted per call —
/// kept for callers and tests that don't hold slabs).
#[cfg(test)]
pub(crate) fn ticket_flood(
    graph: &Graph,
    source: NodeId,
    dist: &[u32],
    tickets: f64,
) -> (Vec<bool>, usize) {
    ticket_flood_csr(&Csr::from_graph(graph), source.0, dist, tickets)
}

/// Doubles the ticket budget until at least `target` nodes hold tickets
/// (or the source's whole component is covered). Returns the holder flags
/// and the final budget. `bfs` is reusable traversal scratch for sweeps
/// flooding from many sources.
pub(crate) fn flood_until_holders_csr(
    csr: &Csr,
    source: u32,
    target: usize,
    bfs: &mut CsrBfs,
) -> (Vec<bool>, f64) {
    let (dist, reached) = bfs.distances(csr, source);
    let dist = dist.to_vec();
    let target = target.min(reached);
    let mut tickets = 8.0f64;
    let (mut holders, mut count) = ticket_flood_csr(csr, source, &dist, tickets);
    while count < target && tickets < 4.0 * csr.node_count() as f64 {
        tickets *= 2.0;
        let (h, c) = ticket_flood_csr(csr, source, &dist, tickets);
        holders = h;
        count = c;
        if count >= reached {
            break;
        }
    }
    (holders, tickets)
}

/// [`flood_until_holders_csr`] addressed with a [`Graph`] (converted per
/// call).
pub(crate) fn flood_until_holders(
    graph: &Graph,
    source: NodeId,
    target: usize,
) -> (Vec<bool>, f64) {
    let csr = Csr::from_graph(graph);
    let mut bfs = CsrBfs::new(csr.node_count());
    flood_until_holders_csr(&csr, source.0, target, &mut bfs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use socnet_core::bfs;
    use socnet_gen::{complete, ring, star};

    #[test]
    fn source_always_holds_when_budget_positive() {
        let g = ring(10);
        let d = bfs(&g, NodeId(0)).dist;
        let (holders, count) = ticket_flood(&g, NodeId(0), &d, 1.0);
        assert!(holders[0]);
        assert_eq!(count, 1);
    }

    #[test]
    fn flood_spends_one_ticket_per_holder_on_a_ring() {
        let g = ring(30);
        let d = bfs(&g, NodeId(0)).dist;
        let (_, count) = ticket_flood(&g, NodeId(0), &d, 15.0);
        assert_eq!(count, 15);
    }

    #[test]
    fn splitting_below_one_stops_the_flood() {
        let g = star(20);
        let d = bfs(&g, NodeId(0)).dist;
        // 10 tickets split over 19 leaves: each < 1, only the hub holds.
        let (holders, count) = ticket_flood(&g, NodeId(0), &d, 10.0);
        assert_eq!(count, 1);
        assert!(holders[0]);
    }

    #[test]
    fn adaptive_flood_reaches_target() {
        let g = complete(40);
        let (holders, budget) = flood_until_holders(&g, NodeId(3), 20);
        let count = holders.iter().filter(|&&h| h).count();
        assert!(count >= 20, "held {count}");
        assert!(budget >= 8.0);
    }

    #[test]
    fn adaptive_flood_is_bounded_by_component() {
        let g = socnet_core::Graph::from_edges(6, [(0, 1), (1, 2), (3, 4)]);
        let (holders, _) = flood_until_holders(&g, NodeId(0), 6);
        assert_eq!(holders.iter().filter(|&&h| h).count(), 3);
        assert!(!holders[3] && !holders[4] && !holders[5]);
    }

    /// The historical `Graph`-walking flood, reproduced as the reference
    /// the CSR flood is pinned against bit-for-bit (ticket shares are
    /// floats; identical split order must give identical holder sets and
    /// budgets).
    fn legacy_flood(graph: &Graph, source: NodeId, dist: &[u32], tickets: f64) -> (Vec<bool>, usize) {
        let n = graph.node_count();
        let mut amount = vec![0.0f64; n];
        amount[source.index()] = tickets;
        let mut by_level: Vec<Vec<NodeId>> = Vec::new();
        for v in graph.nodes() {
            let d = dist[v.index()];
            if d == UNREACHED {
                continue;
            }
            let d = d as usize;
            if by_level.len() <= d {
                by_level.resize_with(d + 1, Vec::new);
            }
            by_level[d].push(v);
        }
        let mut holders = vec![false; n];
        let mut count = 0usize;
        for (level, nodes) in by_level.iter().enumerate() {
            for &v in nodes {
                let have = amount[v.index()];
                if have < 1.0 {
                    continue;
                }
                holders[v.index()] = true;
                count += 1;
                let forward = have - 1.0;
                if forward <= 0.0 {
                    continue;
                }
                let next: Vec<NodeId> = graph
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|u| dist[u.index()] == (level + 1) as u32)
                    .collect();
                if next.is_empty() {
                    continue;
                }
                let share = forward / next.len() as f64;
                for u in next {
                    amount[u.index()] += share;
                }
            }
        }
        (holders, count)
    }

    #[test]
    fn csr_flood_matches_legacy_flood() {
        for g in [complete(15), ring(20), star(12), socnet_gen::barbell(6, 2)] {
            let csr = Csr::from_graph(&g);
            let d = bfs(&g, NodeId(0)).dist;
            for tickets in [1.0, 7.5, 40.0, 400.0] {
                let want = legacy_flood(&g, NodeId(0), &d, tickets);
                let got = ticket_flood_csr(&csr, 0, &d, tickets);
                assert_eq!(got, want, "tickets = {tickets}");
            }
        }
    }
}
