//! Random routes: the shared machinery of SybilGuard and SybilLimit.
//!
//! A random *route* differs from a random walk: every node fixes a random
//! one-to-one mapping (a permutation) between its incoming and outgoing
//! edges, so a route is fully determined by its first hop. Two key
//! properties follow (Yu et al.): routes are **back-traceable**, and two
//! routes entering a node along the same edge **converge** forever.

use rand::seq::SliceRandom;
use rand::Rng;
use socnet_core::{Graph, NodeId};

/// Per-node routing permutations for random routes.
///
/// `perm[v][i] = j` means a route entering `v` along its `i`-th incident
/// edge (i.e. from `neighbors(v)[i]`) leaves along its `j`-th incident
/// edge.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use socnet_core::NodeId;
/// use socnet_gen::ring;
/// use socnet_sybil::RouteTables;
///
/// let g = ring(6);
/// let mut rng = StdRng::seed_from_u64(3);
/// let t = RouteTables::generate(&g, &mut rng);
/// let route = t.route(&g, NodeId(0), 0, 4);
/// assert_eq!(route.len(), 5);
/// assert_eq!(route[0], NodeId(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteTables {
    perm: Vec<Vec<u32>>,
}

impl RouteTables {
    /// Draws one uniform permutation per node.
    pub fn generate<R: Rng + ?Sized>(graph: &Graph, rng: &mut R) -> Self {
        let perm = graph
            .nodes()
            .map(|v| {
                let mut p: Vec<u32> = (0..graph.degree(v) as u32).collect();
                p.shuffle(rng);
                p
            })
            .collect();
        RouteTables { perm }
    }

    /// Follows the route that starts at `start` and leaves along its
    /// `first_edge`-th incident edge, for `length` hops. Returns the full
    /// node trajectory (`length + 1` nodes, or just `[start]` if `start`
    /// is isolated).
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of range, or `first_edge` is not a valid
    /// incident-edge index of a non-isolated `start`.
    pub fn route(&self, graph: &Graph, start: NodeId, first_edge: usize, length: usize) -> Vec<NodeId> {
        graph.check_node(start).expect("start in range");
        let mut out = Vec::with_capacity(length + 1);
        out.push(start);
        if graph.degree(start) == 0 {
            return out;
        }
        assert!(
            first_edge < graph.degree(start),
            "first edge {first_edge} out of range for degree {}",
            graph.degree(start)
        );
        let mut prev = start;
        let mut cur = graph.neighbors(start)[first_edge];
        out.push(cur);
        for _ in 1..length {
            // Index of the edge we arrived along, in cur's sorted list.
            let in_idx = graph
                .neighbors(cur)
                .binary_search(&prev)
                .expect("arrived along an existing edge");
            let out_idx = self.perm[cur.index()][in_idx] as usize;
            let next = graph.neighbors(cur)[out_idx];
            prev = cur;
            cur = next;
            out.push(cur);
        }
        out
    }

    /// The directed *tail* (last traversed edge) of the route, or `None`
    /// for routes shorter than one hop.
    pub fn route_tail(
        &self,
        graph: &Graph,
        start: NodeId,
        first_edge: usize,
        length: usize,
    ) -> Option<(NodeId, NodeId)> {
        if length == 0 || graph.degree(start) == 0 {
            return None;
        }
        let route = self.route(graph, start, first_edge, length);
        let k = route.len();
        Some((route[k - 2], route[k - 1]))
    }

    /// All `deg(v)` routes of `v` (one per incident edge), as trajectories.
    pub fn routes_from(&self, graph: &Graph, v: NodeId, length: usize) -> Vec<Vec<NodeId>> {
        (0..graph.degree(v)).map(|e| self.route(graph, v, e, length)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use socnet_gen::{complete, ring};

    fn tables(g: &Graph, seed: u64) -> RouteTables {
        RouteTables::generate(g, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn routes_follow_edges() {
        let g = complete(8);
        let t = tables(&g, 1);
        for e in 0..7 {
            let r = t.route(&g, NodeId(0), e, 10);
            assert_eq!(r.len(), 11);
            for w in r.windows(2) {
                assert!(g.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn routes_are_deterministic_given_tables() {
        let g = ring(9);
        let t = tables(&g, 5);
        let a = t.route(&g, NodeId(2), 1, 20);
        let b = t.route(&g, NodeId(2), 1, 20);
        assert_eq!(a, b);
    }

    #[test]
    fn convergence_property() {
        // Two routes that traverse the same directed edge continue
        // identically afterwards.
        let g = complete(6);
        let t = tables(&g, 7);
        let len = 12;
        let mut seen: std::collections::HashMap<(NodeId, NodeId), Vec<NodeId>> =
            Default::default();
        for v in g.nodes() {
            for e in 0..g.degree(v) {
                let r = t.route(&g, v, e, len);
                for i in 0..r.len() - 1 {
                    let key = (r[i], r[i + 1]);
                    let suffix: Vec<NodeId> = r[i + 1..].to_vec();
                    if let Some(prev) = seen.get(&key) {
                        let common = prev.len().min(suffix.len());
                        assert_eq!(
                            &prev[..common],
                            &suffix[..common],
                            "routes diverged after shared edge {key:?}"
                        );
                    } else {
                        seen.insert(key, suffix);
                    }
                }
            }
        }
    }

    #[test]
    fn tail_is_last_edge() {
        let g = ring(7);
        let t = tables(&g, 2);
        let r = t.route(&g, NodeId(0), 0, 5);
        let tail = t.route_tail(&g, NodeId(0), 0, 5).expect("long enough");
        assert_eq!(tail, (r[4], r[5]));
        assert_eq!(t.route_tail(&g, NodeId(0), 0, 0), None);
    }

    #[test]
    fn routes_from_yields_one_per_edge() {
        let g = complete(5);
        let t = tables(&g, 3);
        let routes = t.routes_from(&g, NodeId(1), 6);
        assert_eq!(routes.len(), 4);
        let firsts: std::collections::HashSet<NodeId> =
            routes.iter().map(|r| r[1]).collect();
        assert_eq!(firsts.len(), 4, "each route leaves along a distinct edge");
    }

    #[test]
    fn isolated_start_is_a_singleton_route() {
        let g = socnet_core::Graph::from_edges(3, [(0, 1)]);
        let t = tables(&g, 1);
        assert_eq!(t.route(&g, NodeId(2), 0, 5), vec![NodeId(2)]);
    }
}
