//! Social-network Sybil defenses, built from scratch.
//!
//! The paper's Table II runs GateKeeper on four social graphs under Sybil
//! attack, and its related-work discussion compares the random-walk
//! defense family. This crate implements the full toolchain:
//!
//! * [`SybilAttack`] — mount a Sybil region (clique, random, or scale-free)
//!   onto an honest graph through a budget of attack edges, with ground
//!   truth labels ([`AttackedGraph`]);
//! * [`GateKeeper`] — distributed ticket distribution admission control
//!   (Tran et al., INFOCOM 2011): `m` random distributors flood tickets
//!   level by level; a node is admitted if at least `f·m` distributors
//!   reach it;
//! * [`SybilGuard`] — random routes with per-node routing permutations;
//!   verifier and suspect must have intersecting routes (Yu et al.,
//!   SIGCOMM 2006);
//! * [`SybilLimit`] — `r` independent short random routes with tail
//!   intersection and the balance condition (Yu et al., S&P 2008);
//! * [`SybilInfer`] — walk-trace scoring: degree-normalized landing
//!   frequency of short walks from a trusted node (the likelihood core of
//!   Danezis–Mittal's inference, in its ranking form);
//! * [`SumUp`] — envelope-capacity vote collection (Tran et al., NSDI
//!   2009);
//! * [`eval`] — admission metrics: honest acceptance rate, Sybils
//!   admitted per attack edge, and ranking AUC for cross-defense
//!   comparison.
//!
//! # Examples
//!
//! ```
//! use socnet_gen::Dataset;
//! use socnet_sybil::{AttackedGraph, GateKeeper, GateKeeperConfig, SybilAttack, SybilTopology};
//!
//! let honest = Dataset::RiceGrad.generate_scaled(0.5, 7);
//! let attack = SybilAttack {
//!     sybil_count: 30,
//!     attack_edges: 10,
//!     topology: SybilTopology::ErdosRenyi { p: 0.2 },
//!     seed: 7,
//! };
//! let attacked = AttackedGraph::mount(&honest, &attack);
//! let outcome = GateKeeper::new(GateKeeperConfig::default()).run(&attacked);
//! let stats = socnet_sybil::eval::admission_stats(&attacked, outcome.admitted());
//! assert!(stats.honest_accept_rate > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attack;
mod error;
pub mod eval;
mod gatekeeper;
mod random_route;
mod sybilguard;
mod sybilinfer;
mod sybillimit;
mod sumup;
mod ticket;

pub use attack::{AttackedGraph, SybilAttack, SybilTopology};
pub use error::SybilError;
pub use gatekeeper::{GateKeeper, GateKeeperConfig, GateKeeperOutcome};
pub use random_route::RouteTables;
pub use sybilguard::{SybilGuard, SybilGuardConfig};
pub use sybilinfer::{SybilInfer, SybilInferConfig};
pub use sybillimit::{SybilLimit, SybilLimitConfig};
pub use sumup::{SumUp, SumUpConfig, VoteOutcome};
