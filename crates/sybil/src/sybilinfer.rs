//! SybilInfer-style inference: walk-trace scoring from a trusted node.
//!
//! Danezis and Mittal's SybilInfer samples many short random walks from
//! known-honest nodes and infers the honest cut by Bayesian sampling over
//! the walk traces. The signal the likelihood exploits is that walks
//! started in the honest region land on honest nodes with probability
//! proportional to degree, while Sybil nodes are under-visited because
//! every visit must cross an attack edge.
//!
//! This module implements that signal directly: the **degree-normalized
//! landing frequency** of `T`-step walks from a trusted node. In the
//! fast-mixing honest region the score concentrates around `1/2m`; in
//! the Sybil region it is depressed by the attack-edge bottleneck. The
//! scores give the node *ranking* that Viswanath et al. showed is the
//! common core of all these defenses; a cut threshold turns the ranking
//! into a classification.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use socnet_core::{Graph, NodeId};

/// Parameters for [`SybilInfer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SybilInferConfig {
    /// Number of sampled walks.
    pub walks: usize,
    /// Walk length `T` (should be around the honest region's mixing time;
    /// too long and walks leak into the Sybil region).
    pub walk_length: usize,
    /// RNG seed for walk sampling.
    pub seed: u64,
}

impl Default for SybilInferConfig {
    fn default() -> Self {
        SybilInferConfig { walks: 20_000, walk_length: 10, seed: 0x1f3a }
    }
}

/// Walk-trace scores from a trusted node.
///
/// # Examples
///
/// ```
/// use socnet_core::NodeId;
/// use socnet_gen::complete;
/// use socnet_sybil::{SybilInfer, SybilInferConfig};
///
/// let g = complete(16);
/// let si = SybilInfer::infer(&g, NodeId(0), &SybilInferConfig::default());
/// assert_eq!(si.scores().len(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SybilInfer {
    scores: Vec<f64>,
    trusted: NodeId,
}

impl SybilInfer {
    /// Samples walk traces from `trusted` and computes per-node scores.
    ///
    /// The score of `v` is `visits(v) / (walks · deg(v))`, where a "visit"
    /// counts landing on `v` at the *end* of a walk. Isolated nodes score
    /// 0.
    ///
    /// # Panics
    ///
    /// Panics if `trusted` is out of range, the graph has no edges, or
    /// `walks == 0`.
    pub fn infer(graph: &Graph, trusted: NodeId, config: &SybilInferConfig) -> Self {
        graph.check_node(trusted).expect("trusted in range");
        assert!(graph.edge_count() > 0, "inference needs edges");
        assert!(config.walks > 0, "need at least one walk");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut visits = vec![0u64; graph.node_count()];
        for _ in 0..config.walks {
            let mut cur = trusted;
            for _ in 0..config.walk_length {
                let nbrs = graph.neighbors(cur);
                if nbrs.is_empty() {
                    break;
                }
                cur = nbrs[rng.random_range(0..nbrs.len())];
            }
            visits[cur.index()] += 1;
        }
        let scores = graph
            .nodes()
            .map(|v| {
                let d = graph.degree(v);
                if d == 0 {
                    0.0
                } else {
                    visits[v.index()] as f64 / (config.walks as f64 * d as f64)
                }
            })
            .collect();
        SybilInfer { scores, trusted }
    }

    /// The degree-normalized landing score of every node.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// The trusted node the walks started from.
    pub fn trusted(&self) -> NodeId {
        self.trusted
    }

    /// Nodes sorted by decreasing score (ties by id) — the trust ranking.
    pub fn ranking(&self) -> Vec<NodeId> {
        let mut order: Vec<NodeId> = (0..self.scores.len()).map(NodeId::from_index).collect();
        order.sort_by(|&a, &b| {
            self.scores[b.index()]
                .partial_cmp(&self.scores[a.index()])
                .expect("scores are finite")
                .then(a.cmp(&b))
        });
        order
    }

    /// Classifies nodes as honest (`true`) when their score is at least
    /// `threshold` times the ideal stationary score `1/2m`.
    pub fn classify(&self, graph: &Graph, threshold: f64) -> Vec<bool> {
        let ideal = 1.0 / graph.degree_sum() as f64;
        self.scores.iter().map(|&s| s >= threshold * ideal).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttackedGraph, SybilAttack, SybilTopology};
    use socnet_gen::complete;

    fn cfg(walks: usize, len: usize) -> SybilInferConfig {
        SybilInferConfig { walks, walk_length: len, seed: 3 }
    }

    #[test]
    fn scores_concentrate_on_clique() {
        let g = complete(12);
        let si = SybilInfer::infer(&g, NodeId(0), &cfg(30_000, 8));
        let ideal = 1.0 / g.degree_sum() as f64;
        for v in g.nodes() {
            let s = si.scores()[v.index()];
            assert!(
                (s - ideal).abs() < 0.5 * ideal,
                "{v}: score {s} far from ideal {ideal}"
            );
        }
    }

    #[test]
    fn sybils_score_below_honest() {
        let attacked = AttackedGraph::mount(
            &complete(40),
            &SybilAttack {
                sybil_count: 30,
                attack_edges: 2,
                topology: SybilTopology::Clique,
                seed: 5,
            },
        );
        let g = attacked.graph();
        let si = SybilInfer::infer(g, NodeId(0), &cfg(40_000, 6));
        let honest_mean: f64 = attacked
            .honest_nodes()
            .map(|v| si.scores()[v.index()])
            .sum::<f64>()
            / attacked.honest_count() as f64;
        let sybil_mean: f64 = attacked
            .sybil_nodes()
            .map(|v| si.scores()[v.index()])
            .sum::<f64>()
            / attacked.sybil_count() as f64;
        assert!(
            honest_mean > 3.0 * sybil_mean,
            "honest {honest_mean} vs sybil {sybil_mean}"
        );
    }

    #[test]
    fn ranking_puts_honest_first_under_attack() {
        let attacked = AttackedGraph::mount(
            &complete(25),
            &SybilAttack {
                sybil_count: 20,
                attack_edges: 1,
                topology: SybilTopology::ErdosRenyi { p: 0.3 },
                seed: 2,
            },
        );
        let si = SybilInfer::infer(attacked.graph(), NodeId(0), &cfg(30_000, 5));
        let top: Vec<NodeId> = si.ranking().into_iter().take(attacked.honest_count()).collect();
        let honest_in_top = top.iter().filter(|&&v| !attacked.is_sybil(v)).count();
        assert!(
            honest_in_top as f64 >= 0.9 * attacked.honest_count() as f64,
            "only {honest_in_top}/{} honest in top",
            attacked.honest_count()
        );
    }

    #[test]
    fn classification_threshold_behaviour() {
        let g = complete(10);
        let si = SybilInfer::infer(&g, NodeId(0), &cfg(20_000, 6));
        let all = si.classify(&g, 0.1);
        assert!(all.iter().all(|&b| b), "tiny threshold accepts everyone");
        let none = si.classify(&g, 100.0);
        assert!(none.iter().all(|&b| !b), "huge threshold rejects everyone");
    }

    #[test]
    fn inference_is_deterministic() {
        let g = complete(8);
        let a = SybilInfer::infer(&g, NodeId(1), &cfg(500, 4));
        let b = SybilInfer::infer(&g, NodeId(1), &cfg(500, 4));
        assert_eq!(a, b);
        assert_eq!(a.trusted(), NodeId(1));
    }
}
