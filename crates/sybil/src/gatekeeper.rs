//! GateKeeper: optimal Sybil-resilient node admission control.
//!
//! Reimplementation of the protocol the paper's Table II evaluates
//! (Tran, Li, Subramanian, Chow — INFOCOM 2011):
//!
//! 1. The admission controller samples `m` **ticket distributors** by
//!    short random walks (so the sample is degree-biased, and can even
//!    land on Sybils — the protocol tolerates it).
//! 2. Each distributor floods tickets level by level over its BFS tree:
//!    a node consumes one ticket and forwards the rest, split evenly
//!    among its next-level neighbors. The distributor doubles its ticket
//!    budget until the flood *reaches* (delivers a ticket to) at least
//!    half the network.
//! 3. A node is **admitted** if it is reached by at least `f_admit · m`
//!    distributors.
//!
//! Sybil resistance comes from the bottleneck: all tickets entering the
//! Sybil region must cross the few attack edges, and each edge forwards
//! only its local share of the flood.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use socnet_core::{Csr, CsrBfs, Graph, NodeId};
use socnet_runner::{par_sweep, ParConfig, StageReport, UnitError};

use crate::ticket::flood_until_holders_csr;
use crate::{AttackedGraph, SybilError};

/// Tuning parameters for a [`GateKeeper`] run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GateKeeperConfig {
    /// Number of ticket distributors `m` (the paper's Table II samples 99).
    pub distributors: usize,
    /// Admission threshold `f`: a node needs tickets from at least
    /// `f · distributors` distributors.
    pub f_admit: f64,
    /// Fraction of the network a distributor's flood must reach before it
    /// stops doubling its ticket budget.
    pub coverage: f64,
    /// Length of the random walks used to sample distributors.
    pub sample_walk_length: usize,
    /// RNG seed (controller position, distributor sampling).
    pub seed: u64,
}

impl Default for GateKeeperConfig {
    fn default() -> Self {
        GateKeeperConfig {
            distributors: 99,
            f_admit: 0.2,
            coverage: 0.5,
            sample_walk_length: 25,
            seed: 0x6a7e,
        }
    }
}

/// The GateKeeper admission-control protocol.
///
/// See the module-level documentation for the protocol outline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GateKeeper {
    config: GateKeeperConfig,
}

/// Result of running GateKeeper from one admission controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateKeeperOutcome {
    admitted: Vec<bool>,
    reach_counts: Vec<u32>,
    distributors: Vec<NodeId>,
    controller: NodeId,
    threshold: u32,
}

impl GateKeeperOutcome {
    /// Per-node admission verdicts, indexed by node id.
    pub fn admitted(&self) -> &[bool] {
        &self.admitted
    }

    /// How many distributors reached each node.
    pub fn reach_counts(&self) -> &[u32] {
        &self.reach_counts
    }

    /// The sampled distributors.
    pub fn distributors(&self) -> &[NodeId] {
        &self.distributors
    }

    /// The admission controller's own node.
    pub fn controller(&self) -> NodeId {
        self.controller
    }

    /// The reach-count threshold `⌈f·m⌉` that was applied.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }
}

impl GateKeeper {
    /// Creates the protocol with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `f_admit` or `coverage` is outside `(0, 1]` or
    /// `distributors == 0`.
    pub fn new(config: GateKeeperConfig) -> Self {
        assert!(config.distributors > 0, "need at least one distributor");
        assert!(
            config.f_admit > 0.0 && config.f_admit <= 1.0,
            "f_admit {} out of (0, 1]",
            config.f_admit
        );
        assert!(
            config.coverage > 0.0 && config.coverage <= 1.0,
            "coverage {} out of (0, 1]",
            config.coverage
        );
        GateKeeper { config }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &GateKeeperConfig {
        &self.config
    }

    /// Runs the protocol on an attacked graph, with an honest admission
    /// controller chosen at random.
    pub fn run(&self, attacked: &AttackedGraph) -> GateKeeperOutcome {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let controller = attacked.random_honest(&mut rng);
        self.run_from(attacked.graph(), controller)
            .expect("controller sampled from the graph is in range")
    }

    /// Runs the protocol on a plain graph from an explicit controller.
    ///
    /// # Errors
    ///
    /// Returns [`SybilError::InvalidNode`] if `controller` is out of
    /// range, or [`SybilError::EmptyGraph`] if the graph has no edges.
    ///
    /// # Panics
    ///
    /// Panics if a flood worker fails (use
    /// [`run_from_reported`](GateKeeper::run_from_reported) to degrade
    /// instead).
    pub fn run_from(
        &self,
        graph: &Graph,
        controller: NodeId,
    ) -> Result<GateKeeperOutcome, SybilError> {
        let (outcome, report) =
            self.run_from_reported(graph, controller, &ParConfig::default())?;
        assert!(
            report.is_complete(),
            "gatekeeper stage degraded: {}",
            report.summary_line()
        );
        Ok(outcome)
    }

    /// Fault-tolerant variant of [`run_from`](GateKeeper::run_from):
    /// every distributor floods as a panic-isolated unit, so a poisoned
    /// or deadline-cancelled flood drops only that distributor's tickets.
    /// The returned [`StageReport`] says how many distributors actually
    /// flooded; the admission threshold still uses the *configured*
    /// distributor count, so a degraded run under-admits rather than
    /// over-admits.
    ///
    /// # Errors
    ///
    /// Returns [`SybilError::InvalidNode`] if `controller` is out of
    /// range, or [`SybilError::EmptyGraph`] if the graph has no edges.
    pub fn run_from_reported(
        &self,
        graph: &Graph,
        controller: NodeId,
        par: &ParConfig,
    ) -> Result<(GateKeeperOutcome, StageReport), SybilError> {
        self.run_from_reported_csr(graph, &Csr::from_graph(graph), controller, par)
    }

    /// [`run_from_reported`](GateKeeper::run_from_reported) over prebuilt
    /// CSR slabs: every distributor's BFS and ticket flood runs on the
    /// compact arrays (with per-worker traversal scratch), and callers
    /// that already keep a [`Csr`] skip the conversion. Results are
    /// identical to the graph entry point.
    ///
    /// # Errors
    ///
    /// Returns [`SybilError::InvalidNode`] if `controller` is out of
    /// range, or [`SybilError::EmptyGraph`] if the graph has no edges.
    ///
    /// # Panics
    ///
    /// Panics if the slabs do not match the graph's node count.
    pub fn run_from_reported_csr(
        &self,
        graph: &Graph,
        csr: &Csr,
        controller: NodeId,
        par: &ParConfig,
    ) -> Result<(GateKeeperOutcome, StageReport), SybilError> {
        socnet_core::kernel_timing::timed("gatekeeper", || {
            self.run_from_reported_csr_inner(graph, csr, controller, par)
        })
    }

    fn run_from_reported_csr_inner(
        &self,
        graph: &Graph,
        csr: &Csr,
        controller: NodeId,
        par: &ParConfig,
    ) -> Result<(GateKeeperOutcome, StageReport), SybilError> {
        graph.check_node(controller)?;
        assert_eq!(csr.node_count(), graph.node_count(), "csr/graph node count mismatch");
        if csr.edge_count() == 0 {
            return Err(SybilError::EmptyGraph);
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x9e37_79b9);

        // 1. Sample distributors by short random walks from the controller.
        let distributors: Vec<NodeId> = (0..self.config.distributors)
            .map(|_| sample_by_walk(graph, controller, self.config.sample_walk_length, &mut rng))
            .collect();

        // 2+3. Flood from every distributor (one sweep unit each), then
        // tally reaches from the slotted outputs in distributor order.
        // The `+=` tally is order-independent anyway (each flood is
        // deterministic in isolation), so any thread count produces the
        // same counts.
        let n = graph.node_count();
        let target = ((n as f64) * self.config.coverage).ceil() as usize;
        let out = par_sweep(
            "gatekeeper",
            &distributors,
            par,
            |i, d| format!("distributor-{i}-node-{}", d.index()),
            || CsrBfs::new(n),
            |bfs, ctx, &d| {
                if ctx.cancel.is_cancelled() {
                    return Err(UnitError::Cancelled);
                }
                let (reached, _) = flood_until_holders_csr(csr, d.0, target, bfs);
                Ok(reached)
            },
        );

        let mut reach_counts = vec![0u32; n];
        for reached in out.outputs.iter().flatten() {
            for (count, hit) in reach_counts.iter_mut().zip(reached) {
                *count += u32::from(*hit);
            }
        }
        let threshold =
            ((self.config.f_admit * self.config.distributors as f64).ceil() as u32).max(1);
        let admitted = reach_counts.iter().map(|&c| c >= threshold).collect();
        Ok((
            GateKeeperOutcome {
                admitted,
                reach_counts,
                distributors,
                controller,
                threshold,
            },
            out.report,
        ))
    }
}

/// Degree-biased distributor sampling: the endpoint of a short random walk.
fn sample_by_walk<R: Rng + ?Sized>(
    graph: &Graph,
    from: NodeId,
    length: usize,
    rng: &mut R,
) -> NodeId {
    let mut cur = from;
    for _ in 0..length {
        let nbrs = graph.neighbors(cur);
        if nbrs.is_empty() {
            break;
        }
        cur = nbrs[rng.random_range(0..nbrs.len())];
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ticket::flood_until_holders;
    use crate::{SybilAttack, SybilTopology};
    use socnet_gen::{complete, ring};

    fn small_attack() -> AttackedGraph {
        AttackedGraph::mount(
            &complete(30),
            &SybilAttack {
                sybil_count: 10,
                attack_edges: 2,
                topology: SybilTopology::Clique,
                seed: 5,
            },
        )
    }

    #[test]
    fn flood_reaches_target_coverage() {
        let g = complete(20);
        let (reached, _) = flood_until_holders(&g, NodeId(0), 10);
        let count = reached.iter().filter(|&&b| b).count();
        assert!(count >= 10, "reached only {count}");
    }

    #[test]
    fn admits_most_honest_nodes_on_expander() {
        let attacked = small_attack();
        let gk = GateKeeper::new(GateKeeperConfig {
            distributors: 30,
            f_admit: 0.2,
            ..Default::default()
        });
        let out = gk.run(&attacked);
        let stats = crate::eval::admission_stats(&attacked, out.admitted());
        assert!(
            stats.honest_accept_rate > 0.9,
            "honest rate {}",
            stats.honest_accept_rate
        );
    }

    #[test]
    fn sybil_admission_is_bounded_per_attack_edge() {
        let attacked = small_attack();
        let gk = GateKeeper::new(GateKeeperConfig {
            distributors: 30,
            f_admit: 0.4,
            ..Default::default()
        });
        let out = gk.run(&attacked);
        let stats = crate::eval::admission_stats(&attacked, out.admitted());
        assert!(
            stats.sybils_per_attack_edge < 4.0,
            "sybils per edge {}",
            stats.sybils_per_attack_edge
        );
    }

    #[test]
    fn higher_f_admits_fewer_nodes() {
        let attacked = small_attack();
        let lax = GateKeeper::new(GateKeeperConfig {
            distributors: 30,
            f_admit: 0.1,
            ..Default::default()
        })
        .run(&attacked);
        let strict = GateKeeper::new(GateKeeperConfig {
            distributors: 30,
            f_admit: 0.6,
            ..Default::default()
        })
        .run(&attacked);
        let lax_count = lax.admitted().iter().filter(|&&b| b).count();
        let strict_count = strict.admitted().iter().filter(|&&b| b).count();
        assert!(strict_count <= lax_count);
        assert!(strict.threshold() > lax.threshold());
    }

    #[test]
    fn outcome_shapes_are_consistent() {
        let attacked = small_attack();
        let gk = GateKeeper::new(GateKeeperConfig {
            distributors: 10,
            ..Default::default()
        });
        let out = gk.run(&attacked);
        let n = attacked.graph().node_count();
        assert_eq!(out.admitted().len(), n);
        assert_eq!(out.reach_counts().len(), n);
        assert_eq!(out.distributors().len(), 10);
        assert!(out.reach_counts().iter().all(|&c| c <= 10));
        assert!(!attacked.is_sybil(out.controller()));
    }

    #[test]
    fn runs_are_deterministic() {
        let attacked = small_attack();
        let gk = GateKeeper::new(GateKeeperConfig {
            distributors: 8,
            ..Default::default()
        });
        assert_eq!(gk.run(&attacked), gk.run(&attacked));
    }

    #[test]
    fn sweep_is_identical_at_every_thread_count() {
        let attacked = small_attack();
        let gk = GateKeeper::new(GateKeeperConfig {
            distributors: 12,
            ..Default::default()
        });
        let run = |threads| {
            let par = ParConfig {
                threads,
                ..Default::default()
            };
            gk.run_from_reported(attacked.graph(), NodeId(0), &par)
                .expect("controller in range")
                .0
        };
        let reference = run(1);
        for threads in [2, 4] {
            assert_eq!(reference, run(threads), "threads={threads}");
        }
    }

    #[test]
    fn csr_run_matches_graph_run() {
        let attacked = small_attack();
        let gk = GateKeeper::new(GateKeeperConfig {
            distributors: 10,
            ..Default::default()
        });
        let par = ParConfig::default();
        let want = gk
            .run_from_reported(attacked.graph(), NodeId(0), &par)
            .expect("controller in range")
            .0;
        let csr = Csr::from_graph(attacked.graph());
        let got = gk
            .run_from_reported_csr(attacked.graph(), &csr, NodeId(0), &par)
            .expect("controller in range")
            .0;
        assert_eq!(got, want);
    }

    #[test]
    fn ring_flood_covers_the_requested_holders() {
        // On a ring, tickets creep one hop per ticket along two arms;
        // the adaptive budget must still hit the target.
        let g = ring(40);
        let (reached, budget) = flood_until_holders(&g, NodeId(0), 20);
        let count = reached.iter().filter(|&&b| b).count();
        assert!(count >= 20, "reached {count}");
        assert!(budget >= 16.0, "rings need a generous budget, got {budget}");
    }

    #[test]
    #[should_panic(expected = "out of (0, 1]")]
    fn zero_f_rejected() {
        let _ = GateKeeper::new(GateKeeperConfig {
            f_admit: 0.0,
            ..Default::default()
        });
    }
}
