//! SybilGuard: Sybil defense via intersecting random routes.
//!
//! Each node runs one random route per incident edge, of length
//! `w = Θ(√(n log n))`. Because honest routes stay in the honest region
//! with high probability and any two long routes in a fast-mixing region
//! intersect w.h.p. (birthday bound), a verifier accepts a suspect when a
//! majority of the verifier's routes intersect the suspect's routes.
//! Sybil suspects' routes must enter the honest region through the scarce
//! attack edges, so only `O(√(n log n))` Sybils per attack edge pass.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use socnet_core::{Graph, NodeId};

use crate::RouteTables;

/// Parameters for [`SybilGuard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SybilGuardConfig {
    /// Random-route length `w`. The protocol's guidance is
    /// `Θ(√(n log n))`; [`SybilGuardConfig::recommended_route_length`]
    /// computes that default.
    pub route_length: usize,
    /// RNG seed for the routing permutations.
    pub seed: u64,
}

impl SybilGuardConfig {
    /// The `√(n·ln n)` route length the protocol analysis prescribes.
    pub fn recommended_route_length(n: usize) -> usize {
        let n = n.max(2) as f64;
        (n.ln() * n).sqrt().ceil() as usize
    }
}

impl Default for SybilGuardConfig {
    fn default() -> Self {
        SybilGuardConfig { route_length: 50, seed: 0x9a2d }
    }
}

/// The SybilGuard verifier machinery over one graph.
///
/// # Examples
///
/// ```
/// use socnet_core::NodeId;
/// use socnet_gen::complete;
/// use socnet_sybil::{SybilGuard, SybilGuardConfig};
///
/// let g = complete(30);
/// let guard = SybilGuard::new(&g, SybilGuardConfig::default());
/// // In one well-connected region everyone verifies everyone.
/// assert!(guard.accepts(NodeId(0), NodeId(17)));
/// ```
#[derive(Debug, Clone)]
pub struct SybilGuard<'g> {
    graph: &'g Graph,
    tables: RouteTables,
    route_length: usize,
}

impl<'g> SybilGuard<'g> {
    /// Instantiates routing tables for `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `route_length == 0`.
    pub fn new(graph: &'g Graph, config: SybilGuardConfig) -> Self {
        assert!(config.route_length > 0, "route length must be positive");
        let tables = RouteTables::generate(graph, &mut StdRng::seed_from_u64(config.seed));
        SybilGuard { graph, tables, route_length: config.route_length }
    }

    /// The route length in effect.
    pub fn route_length(&self) -> usize {
        self.route_length
    }

    /// The nodes covered by all of `v`'s routes (one per incident edge).
    pub fn route_union(&self, v: NodeId) -> Vec<NodeId> {
        let mut mark = vec![false; self.graph.node_count()];
        for route in self.tables.routes_from(self.graph, v, self.route_length) {
            for node in route {
                mark[node.index()] = true;
            }
        }
        (0..mark.len()).filter(|&i| mark[i]).map(NodeId::from_index).collect()
    }

    /// Whether `verifier` accepts `suspect`: a strict majority of the
    /// verifier's routes must intersect the union of the suspect's routes.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn accepts(&self, verifier: NodeId, suspect: NodeId) -> bool {
        self.graph.check_node(verifier).expect("verifier in range");
        let verifier_routes = self.tables.routes_from(self.graph, verifier, self.route_length);
        let mut suspect_mark = vec![false; self.graph.node_count()];
        self.accepts_with(verifier, &verifier_routes, suspect, &mut suspect_mark)
    }

    /// Evaluates a whole suspect list against one verifier, computing the
    /// verifier's routes once.
    pub fn admitted_set(&self, verifier: NodeId, suspects: &[NodeId]) -> Vec<bool> {
        self.graph.check_node(verifier).expect("verifier in range");
        let verifier_routes = self.tables.routes_from(self.graph, verifier, self.route_length);
        let mut suspect_mark = vec![false; self.graph.node_count()];
        suspects
            .iter()
            .map(|&s| self.accepts_with(verifier, &verifier_routes, s, &mut suspect_mark))
            .collect()
    }

    fn accepts_with(
        &self,
        verifier: NodeId,
        verifier_routes: &[Vec<NodeId>],
        suspect: NodeId,
        suspect_mark: &mut [bool],
    ) -> bool {
        self.graph.check_node(suspect).expect("suspect in range");
        if verifier == suspect {
            return true;
        }
        let dv = self.graph.degree(verifier);
        if dv == 0 || self.graph.degree(suspect) == 0 {
            return false;
        }

        suspect_mark.fill(false);
        for route in self.tables.routes_from(self.graph, suspect, self.route_length) {
            for node in route {
                suspect_mark[node.index()] = true;
            }
        }

        let mut intersecting = 0usize;
        for route in verifier_routes {
            if route.iter().any(|node| suspect_mark[node.index()]) {
                intersecting += 1;
            }
        }
        2 * intersecting > dv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttackedGraph, SybilAttack, SybilTopology};
    use socnet_gen::complete;

    #[test]
    fn recommended_length_grows_like_sqrt_n_log_n() {
        let small = SybilGuardConfig::recommended_route_length(100);
        let large = SybilGuardConfig::recommended_route_length(10_000);
        assert!(small >= 21 && small <= 22, "sqrt(100 ln 100) ≈ 21.5, got {small}");
        assert!(large > 250 && large < 350);
    }

    #[test]
    fn honest_nodes_verify_each_other_in_expander() {
        let g = complete(40);
        let guard = SybilGuard::new(&g, SybilGuardConfig { route_length: 30, seed: 1 });
        let mut ok = 0;
        for s in 1..20u32 {
            if guard.accepts(NodeId(0), NodeId(s)) {
                ok += 1;
            }
        }
        assert!(ok >= 18, "only {ok}/19 honest suspects accepted");
    }

    #[test]
    fn sybils_behind_one_attack_edge_are_mostly_rejected() {
        let attacked = AttackedGraph::mount(
            &complete(60),
            &SybilAttack {
                sybil_count: 40,
                attack_edges: 1,
                topology: SybilTopology::Clique,
                seed: 3,
            },
        );
        let g = attacked.graph();
        let guard = SybilGuard::new(g, SybilGuardConfig { route_length: 25, seed: 2 });
        let verifier = NodeId(0);
        let sybils: Vec<NodeId> = attacked.sybil_nodes().collect();
        let accepted = guard
            .admitted_set(verifier, &sybils)
            .iter()
            .filter(|&&b| b)
            .count();
        // One attack edge bounds accepted sybils by ~route length, and in a
        // clique region most routes never cross at all.
        assert!(
            accepted < sybils.len() / 2,
            "accepted {accepted} of {} sybils",
            sybils.len()
        );
    }

    #[test]
    fn self_acceptance_and_isolated_rejection() {
        let g = socnet_core::Graph::from_edges(4, [(0, 1), (1, 2)]);
        let guard = SybilGuard::new(&g, SybilGuardConfig { route_length: 5, seed: 0 });
        assert!(guard.accepts(NodeId(3), NodeId(3)), "self is always accepted");
        assert!(!guard.accepts(NodeId(0), NodeId(3)), "isolated suspect rejected");
        assert!(!guard.accepts(NodeId(3), NodeId(0)), "isolated verifier rejects");
    }

    #[test]
    fn route_union_contains_self_and_neighbors_start() {
        let g = complete(10);
        let guard = SybilGuard::new(&g, SybilGuardConfig { route_length: 3, seed: 4 });
        let union = guard.route_union(NodeId(5));
        assert!(union.contains(&NodeId(5)));
        assert!(union.len() > 1);
    }

    #[test]
    fn determinism_per_seed() {
        let g = complete(15);
        let a = SybilGuard::new(&g, SybilGuardConfig { route_length: 10, seed: 9 });
        let b = SybilGuard::new(&g, SybilGuardConfig { route_length: 10, seed: 9 });
        for v in 0..15u32 {
            assert_eq!(a.accepts(NodeId(0), NodeId(v)), b.accepts(NodeId(0), NodeId(v)));
        }
    }
}
