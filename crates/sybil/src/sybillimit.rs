//! SybilLimit: near-optimal Sybil defense via many short random routes.
//!
//! SybilLimit improves on SybilGuard by running `r = Θ(√m)` *independent*
//! route instances of only `w = O(mixing time)` steps each. A verifier
//! accepts a suspect when their route **tails** (last directed edges)
//! intersect in some instance — the "intersection condition" — subject to
//! the **balance condition**: no verifier tail may vouch for dispropor-
//! tionately many suspects, which is what caps accepted Sybils at
//! `O(log n)` per attack edge.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use socnet_core::{Graph, NodeId};

use crate::RouteTables;

/// Parameters for [`SybilLimit`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SybilLimitConfig {
    /// Number of independent route instances `r` (protocol: `r₀·√m`).
    pub instances: usize,
    /// Route length `w` (protocol: the graph's mixing time).
    pub route_length: usize,
    /// Balance slack `h ≥ 1`: a tail may vouch for at most
    /// `h·max(1, A/r)` suspects, where `A` is the number already accepted.
    pub balance_slack: f64,
    /// RNG seed for the per-instance routing permutations.
    pub seed: u64,
}

impl SybilLimitConfig {
    /// The `r₀√m` instance count with the protocol's usual `r₀ = 4`.
    pub fn recommended_instances(edge_count: usize) -> usize {
        (4.0 * (edge_count.max(1) as f64).sqrt()).ceil() as usize
    }
}

impl Default for SybilLimitConfig {
    fn default() -> Self {
        SybilLimitConfig { instances: 64, route_length: 10, balance_slack: 4.0, seed: 0x11f7 }
    }
}

/// The SybilLimit protocol over one graph.
///
/// # Examples
///
/// ```
/// use socnet_core::NodeId;
/// use socnet_gen::complete;
/// use socnet_sybil::{SybilLimit, SybilLimitConfig};
///
/// let g = complete(24);
/// let sl = SybilLimit::new(&g, SybilLimitConfig::default());
/// let verdicts = sl.verify_all(NodeId(0), &g.nodes().collect::<Vec<_>>());
/// let accepted = verdicts.iter().filter(|&&b| b).count();
/// assert!(accepted > 20, "expander nodes verify, got {accepted}");
/// ```
#[derive(Debug, Clone)]
pub struct SybilLimit<'g> {
    graph: &'g Graph,
    tables: Vec<RouteTables>,
    config: SybilLimitConfig,
}

impl<'g> SybilLimit<'g> {
    /// Instantiates `r` independent routing-table instances.
    ///
    /// # Panics
    ///
    /// Panics if `instances == 0`, `route_length == 0`, or
    /// `balance_slack < 1`.
    pub fn new(graph: &'g Graph, config: SybilLimitConfig) -> Self {
        assert!(config.instances > 0, "need at least one instance");
        assert!(config.route_length > 0, "route length must be positive");
        assert!(config.balance_slack >= 1.0, "balance slack must be >= 1");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let tables = (0..config.instances)
            .map(|_| RouteTables::generate(graph, &mut rng))
            .collect();
        SybilLimit { graph, tables, config }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SybilLimitConfig {
        &self.config
    }

    /// The per-instance route tails of `v`: instance `i`'s tail is the
    /// last directed edge of a route of length `w` leaving `v` along a
    /// pseudo-random incident edge of that instance.
    pub fn tails(&self, v: NodeId) -> Vec<Option<(NodeId, NodeId)>> {
        let deg = self.graph.degree(v);
        if deg == 0 {
            return vec![None; self.config.instances];
        }
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| {
                // Deterministic per-instance first hop: mix v and i.
                let first = (v.index().wrapping_mul(31).wrapping_add(i * 17)) % deg;
                t.route_tail(self.graph, v, first, self.config.route_length)
            })
            .collect()
    }

    /// Verifies a batch of suspects against `verifier`, applying the
    /// intersection and balance conditions in suspect order.
    ///
    /// Order matters (earlier suspects consume balance capacity first);
    /// callers wanting order-independence should randomize the batch.
    ///
    /// # Panics
    ///
    /// Panics if any node is out of range.
    pub fn verify_all(&self, verifier: NodeId, suspects: &[NodeId]) -> Vec<bool> {
        self.graph.check_node(verifier).expect("verifier in range");
        let verifier_tails = self.tails(verifier);
        // Map each verifier tail edge to its load counter.
        let mut load: std::collections::HashMap<(NodeId, NodeId), usize> = Default::default();
        for t in verifier_tails.iter().flatten() {
            load.entry(*t).or_insert(0);
        }

        let r = self.config.instances as f64;
        let mut accepted_count = 0usize;
        let mut out = Vec::with_capacity(suspects.len());
        for &s in suspects {
            self.graph.check_node(s).expect("suspect in range");
            if s == verifier {
                out.push(true);
                continue;
            }
            let cap = (self.config.balance_slack * ((accepted_count as f64 + 1.0) / r).max(1.0))
                .ceil() as usize;
            // Intersection condition: a suspect tail that is also a
            // verifier tail, with remaining balance capacity.
            let mut accepted = false;
            for tail in self.tails(s).into_iter().flatten() {
                if let Some(l) = load.get_mut(&tail) {
                    if *l < cap {
                        *l += 1;
                        accepted = true;
                        break;
                    }
                }
            }
            accepted_count += usize::from(accepted);
            out.push(accepted);
        }
        out
    }

    /// Convenience single-suspect check (no cross-suspect balance state).
    pub fn accepts(&self, verifier: NodeId, suspect: NodeId) -> bool {
        self.verify_all(verifier, &[suspect])[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttackedGraph, SybilAttack, SybilTopology};
    use socnet_gen::complete;

    fn cfg(instances: usize, w: usize) -> SybilLimitConfig {
        SybilLimitConfig { instances, route_length: w, balance_slack: 4.0, seed: 5 }
    }

    #[test]
    fn recommended_instances_scale_with_sqrt_m() {
        assert_eq!(SybilLimitConfig::recommended_instances(100), 40);
        assert_eq!(SybilLimitConfig::recommended_instances(10_000), 400);
    }

    #[test]
    fn honest_acceptance_in_expander() {
        let g = complete(30);
        let sl = SybilLimit::new(&g, cfg(60, 6));
        let suspects: Vec<NodeId> = (1..30).map(NodeId).collect();
        let verdicts = sl.verify_all(NodeId(0), &suspects);
        let ok = verdicts.iter().filter(|&&b| b).count();
        assert!(ok > 25, "only {ok}/29 accepted");
    }

    #[test]
    fn sybil_acceptance_bounded_by_balance() {
        let attacked = AttackedGraph::mount(
            &complete(50),
            &SybilAttack {
                sybil_count: 60,
                attack_edges: 2,
                topology: SybilTopology::Clique,
                seed: 8,
            },
        );
        let sl = SybilLimit::new(attacked.graph(), cfg(40, 6));
        let sybils: Vec<NodeId> = attacked.sybil_nodes().collect();
        let accepted = sl
            .verify_all(NodeId(0), &sybils)
            .iter()
            .filter(|&&b| b)
            .count();
        assert!(
            accepted <= 20,
            "balance should cap sybil acceptance, got {accepted}/60"
        );
    }

    #[test]
    fn tails_shape_and_isolated_nodes() {
        let g = socnet_core::Graph::from_edges(4, [(0, 1), (1, 2)]);
        let sl = SybilLimit::new(&g, cfg(7, 3));
        assert_eq!(sl.tails(NodeId(0)).len(), 7);
        assert!(sl.tails(NodeId(3)).iter().all(|t| t.is_none()));
        assert!(!sl.accepts(NodeId(0), NodeId(3)));
        assert!(sl.accepts(NodeId(2), NodeId(2)), "self-acceptance");
    }

    #[test]
    fn verdicts_are_deterministic() {
        let g = complete(16);
        let sl = SybilLimit::new(&g, cfg(20, 5));
        let suspects: Vec<NodeId> = (0..16).map(NodeId).collect();
        assert_eq!(sl.verify_all(NodeId(3), &suspects), sl.verify_all(NodeId(3), &suspects));
    }

    #[test]
    #[should_panic(expected = "balance slack")]
    fn bad_slack_rejected() {
        let g = complete(4);
        let _ = SybilLimit::new(
            &g,
            SybilLimitConfig { instances: 2, route_length: 2, balance_slack: 0.5, seed: 0 },
        );
    }
}
