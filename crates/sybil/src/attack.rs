use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use socnet_core::{Graph, GraphBuilder, NodeId};

/// Internal wiring of the Sybil region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SybilTopology {
    /// Sybils form an Erdős–Rényi graph among themselves.
    ErdosRenyi {
        /// Edge probability inside the Sybil region.
        p: f64,
    },
    /// Sybils form a scale-free (preferential attachment) region, the
    /// strongest internal structure an attacker can cheaply build.
    ScaleFree {
        /// Attachment degree of the internal BA process.
        m_attach: usize,
    },
    /// Sybils form a complete graph.
    Clique,
}

/// Parameters of a Sybil attack against an honest social graph.
///
/// The trust assumption of every defense in this crate is that creating
/// an edge to an honest node is expensive, so the attacker controls
/// arbitrarily many Sybil identities but only `attack_edges` links into
/// the honest region (the paper's `g` attack edges).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SybilAttack {
    /// Number of Sybil identities to create.
    pub sybil_count: usize,
    /// Number of attack edges crossing into the honest region.
    pub attack_edges: usize,
    /// Internal Sybil-region wiring.
    pub topology: SybilTopology,
    /// RNG seed for region generation and endpoint selection.
    pub seed: u64,
}

impl Default for SybilAttack {
    fn default() -> Self {
        SybilAttack {
            sybil_count: 100,
            attack_edges: 20,
            topology: SybilTopology::ErdosRenyi { p: 0.1 },
            seed: 0x5b11,
        }
    }
}

/// An honest graph with a mounted Sybil region and ground-truth labels.
///
/// Honest nodes keep their ids `0..honest_count`; Sybils occupy
/// `honest_count..node_count`.
///
/// # Examples
///
/// ```
/// use socnet_gen::complete;
/// use socnet_sybil::{AttackedGraph, SybilAttack, SybilTopology};
///
/// let honest = complete(20);
/// let attacked = AttackedGraph::mount(
///     &honest,
///     &SybilAttack { sybil_count: 5, attack_edges: 3, topology: SybilTopology::Clique, seed: 1 },
/// );
/// assert_eq!(attacked.graph().node_count(), 25);
/// assert_eq!(attacked.sybil_nodes().count(), 5);
/// assert_eq!(attacked.attack_edges().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AttackedGraph {
    graph: Graph,
    honest_count: usize,
    attack_edges: Vec<(NodeId, NodeId)>,
}

impl AttackedGraph {
    /// Mounts `attack` onto `honest`.
    ///
    /// Attack-edge endpoints are drawn uniformly: honest endpoint over all
    /// honest nodes, Sybil endpoint over all Sybils; duplicate edges are
    /// re-drawn, so exactly `attack_edges` distinct crossings exist.
    ///
    /// # Panics
    ///
    /// Panics if the honest graph or the Sybil region is empty, or if more
    /// attack edges are requested than distinct honest–Sybil pairs exist.
    pub fn mount(honest: &Graph, attack: &SybilAttack) -> AttackedGraph {
        let h = honest.node_count();
        let s = attack.sybil_count;
        assert!(h > 0, "honest region must be non-empty");
        assert!(s > 0, "sybil region must be non-empty");
        assert!(
            attack.attack_edges <= h * s,
            "cannot place {} attack edges among {} pairs",
            attack.attack_edges,
            h * s
        );

        let mut rng = StdRng::seed_from_u64(attack.seed);
        let mut b = GraphBuilder::with_capacity(h + s, honest.edge_count() + s * 4);
        for (u, v) in honest.edges() {
            b.add_edge(u, v);
        }

        // Sybil region, shifted by h.
        let region = match attack.topology {
            SybilTopology::ErdosRenyi { p } => socnet_gen::erdos_renyi_gnp(s, p, &mut rng),
            SybilTopology::ScaleFree { m_attach } => {
                if s > m_attach + 1 {
                    socnet_gen::barabasi_albert(s, m_attach, &mut rng)
                } else {
                    socnet_gen::complete(s)
                }
            }
            SybilTopology::Clique => socnet_gen::complete(s),
        };
        for (u, v) in region.edges() {
            b.add_edge(NodeId(u.0 + h as u32), NodeId(v.0 + h as u32));
        }

        // Attack edges: distinct honest–sybil crossings.
        let mut chosen = std::collections::HashSet::with_capacity(attack.attack_edges);
        let mut attack_edge_list = Vec::with_capacity(attack.attack_edges);
        while chosen.len() < attack.attack_edges {
            let honest_end = NodeId(rng.random_range(0..h as u32));
            let sybil_end = NodeId(h as u32 + rng.random_range(0..s as u32));
            if chosen.insert((honest_end, sybil_end)) {
                b.add_edge(honest_end, sybil_end);
                attack_edge_list.push((honest_end, sybil_end));
            }
        }

        AttackedGraph { graph: b.build(), honest_count: h, attack_edges: attack_edge_list }
    }

    /// The composed graph (honest region, Sybil region, attack edges).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of honest nodes (ids `0..honest_count`).
    pub fn honest_count(&self) -> usize {
        self.honest_count
    }

    /// Number of Sybil nodes.
    pub fn sybil_count(&self) -> usize {
        self.graph.node_count() - self.honest_count
    }

    /// Ground truth: whether `v` is a Sybil identity.
    pub fn is_sybil(&self, v: NodeId) -> bool {
        v.index() >= self.honest_count
    }

    /// Iterator over the honest node ids.
    pub fn honest_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.honest_count).map(NodeId::from_index)
    }

    /// Iterator over the Sybil node ids.
    pub fn sybil_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (self.honest_count..self.graph.node_count()).map(NodeId::from_index)
    }

    /// The attack edges, as `(honest endpoint, sybil endpoint)` pairs.
    pub fn attack_edges(&self) -> &[(NodeId, NodeId)] {
        &self.attack_edges
    }

    /// Draws a uniformly random *honest* node, e.g. a verifier.
    pub fn random_honest<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        NodeId(rng.random_range(0..self.honest_count as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socnet_gen::{complete, ring};

    fn attack(seed: u64) -> SybilAttack {
        SybilAttack {
            sybil_count: 8,
            attack_edges: 5,
            topology: SybilTopology::ErdosRenyi { p: 0.4 },
            seed,
        }
    }

    #[test]
    fn mount_preserves_honest_region() {
        let honest = ring(12);
        let a = AttackedGraph::mount(&honest, &attack(3));
        assert_eq!(a.honest_count(), 12);
        assert_eq!(a.sybil_count(), 8);
        // Every honest edge survives.
        for (u, v) in honest.edges() {
            assert!(a.graph().has_edge(u, v));
        }
    }

    #[test]
    fn exact_attack_edge_budget() {
        let a = AttackedGraph::mount(&ring(10), &attack(9));
        assert_eq!(a.attack_edges().len(), 5);
        // Count crossings in the composed graph.
        let crossings = a
            .graph()
            .edges()
            .filter(|&(u, v)| a.is_sybil(u) != a.is_sybil(v))
            .count();
        assert_eq!(crossings, 5);
        for &(h, s) in a.attack_edges() {
            assert!(!a.is_sybil(h));
            assert!(a.is_sybil(s));
            assert!(a.graph().has_edge(h, s));
        }
    }

    #[test]
    fn labels_partition_nodes() {
        let a = AttackedGraph::mount(&ring(6), &attack(1));
        let honest: Vec<_> = a.honest_nodes().collect();
        let sybil: Vec<_> = a.sybil_nodes().collect();
        assert_eq!(honest.len() + sybil.len(), a.graph().node_count());
        assert!(honest.iter().all(|&v| !a.is_sybil(v)));
        assert!(sybil.iter().all(|&v| a.is_sybil(v)));
    }

    #[test]
    fn clique_topology_is_complete() {
        let a = AttackedGraph::mount(
            &ring(5),
            &SybilAttack { sybil_count: 4, attack_edges: 1, topology: SybilTopology::Clique, seed: 0 },
        );
        let sybils: Vec<_> = a.sybil_nodes().collect();
        for (i, &u) in sybils.iter().enumerate() {
            for &v in &sybils[i + 1..] {
                assert!(a.graph().has_edge(u, v));
            }
        }
    }

    #[test]
    fn scale_free_topology_small_fallback() {
        let a = AttackedGraph::mount(
            &ring(5),
            &SybilAttack {
                sybil_count: 2,
                attack_edges: 1,
                topology: SybilTopology::ScaleFree { m_attach: 3 },
                seed: 0,
            },
        );
        assert_eq!(a.sybil_count(), 2);
    }

    #[test]
    fn mount_is_deterministic() {
        let honest = complete(9);
        let a = AttackedGraph::mount(&honest, &attack(42));
        let b = AttackedGraph::mount(&honest, &attack(42));
        assert_eq!(a, b);
        let c = AttackedGraph::mount(&honest, &attack(43));
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn overfull_attack_panics() {
        let _ = AttackedGraph::mount(
            &ring(3),
            &SybilAttack { sybil_count: 1, attack_edges: 4, topology: SybilTopology::Clique, seed: 0 },
        );
    }
}
