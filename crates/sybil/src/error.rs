//! Error type for fallible Sybil-defense entry points.

use std::error::Error;
use std::fmt;

use socnet_core::GraphError;

/// Errors from Sybil-defense runs driven by caller-supplied nodes.
///
/// # Examples
///
/// ```
/// use socnet_core::NodeId;
/// use socnet_gen::complete;
/// use socnet_sybil::{GateKeeper, GateKeeperConfig, SybilError};
///
/// let gk = GateKeeper::new(GateKeeperConfig { distributors: 5, ..Default::default() });
/// let err = gk.run_from(&complete(10), NodeId(99)).unwrap_err();
/// assert!(matches!(err, SybilError::InvalidNode(_)));
/// ```
#[derive(Debug)]
pub enum SybilError {
    /// A caller-supplied node id was outside the graph's node range.
    InvalidNode(GraphError),
    /// The graph has no edges, so no random walk (and hence no
    /// flood-based admission protocol) is defined on it. Returned by
    /// the fallible entry points instead of panicking, so a serving
    /// process can turn a degenerate query into a client error.
    EmptyGraph,
}

impl fmt::Display for SybilError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SybilError::InvalidNode(e) => write!(f, "invalid node: {e}"),
            SybilError::EmptyGraph => {
                write!(f, "defense protocols need a graph with at least one edge")
            }
        }
    }
}

impl Error for SybilError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SybilError::InvalidNode(e) => Some(e),
            SybilError::EmptyGraph => None,
        }
    }
}

impl From<GraphError> for SybilError {
    fn from(e: GraphError) -> Self {
        SybilError::InvalidNode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_graph_detail() {
        let e = SybilError::from(GraphError::NodeOutOfRange { node: 9, node_count: 4 });
        assert!(e.to_string().contains("node index 9"));
        assert!(e.source().is_some());
    }
}
