//! SumUp: Sybil-resilient online content voting.
//!
//! Tran et al. (NSDI 2009) collect votes over the social graph: the vote
//! collector provisions capacity for an expected number of votes `t` and
//! distributes that capacity with the ticket-distribution process the
//! paper's Sec. II describes — tickets decay with distance from the
//! collector, forming a capacitated *envelope*. A vote is collected only
//! if the voter sits inside the envelope and the collector's global vote
//! budget is not exhausted. Sybil votes are bounded because all ticket
//! flow into the Sybil region squeezes through the few attack edges.

use serde::{Deserialize, Serialize};
use socnet_core::{Graph, NodeId};

use crate::ticket::flood_until_holders;

/// Parameters for [`SumUp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SumUpConfig {
    /// Expected number of honest votes `t`: both the envelope's ticket
    /// target and the global acceptance budget.
    pub expected_votes: usize,
    /// Reserved for tie-breaking extensions; the protocol itself is
    /// deterministic.
    pub seed: u64,
}

impl Default for SumUpConfig {
    fn default() -> Self {
        SumUpConfig { expected_votes: 100, seed: 0x5u64 }
    }
}

/// Result of one vote collection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoteOutcome {
    /// Per-voter verdicts, parallel to the `voters` slice passed in.
    pub accepted: Vec<bool>,
    /// Number of accepted votes.
    pub accepted_count: usize,
    /// The adapted ticket budget the envelope ended up with.
    pub tickets: f64,
}

/// The SumUp vote-collection protocol.
///
/// # Examples
///
/// ```
/// use socnet_core::NodeId;
/// use socnet_gen::complete;
/// use socnet_sybil::{SumUp, SumUpConfig};
///
/// let g = complete(20);
/// let sumup = SumUp::new(SumUpConfig { expected_votes: 10, seed: 0 });
/// let voters: Vec<NodeId> = (1..15).map(NodeId).collect();
/// let outcome = sumup.collect(&g, NodeId(0), &voters);
/// assert_eq!(outcome.accepted_count, 10); // budget caps at t
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SumUp {
    config: SumUpConfig,
}

impl SumUp {
    /// Creates the protocol.
    ///
    /// # Panics
    ///
    /// Panics if `expected_votes == 0`.
    pub fn new(config: SumUpConfig) -> Self {
        assert!(config.expected_votes > 0, "need a positive vote budget");
        SumUp { config }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SumUpConfig {
        &self.config
    }

    /// Collects votes from `voters` toward `collector`.
    ///
    /// The envelope is adapted until it holds at least `t` ticket holders
    /// (or the collector's component is covered); votes are then accepted
    /// in the order given, from ticket holders only, up to the global
    /// budget `t`.
    ///
    /// # Panics
    ///
    /// Panics if `collector` or any voter is out of range, or the graph
    /// has no edges.
    pub fn collect(&self, graph: &Graph, collector: NodeId, voters: &[NodeId]) -> VoteOutcome {
        graph.check_node(collector).expect("collector in range");
        assert!(graph.edge_count() > 0, "vote collection needs edges");

        let t = self.config.expected_votes;
        let (holders, tickets) = flood_until_holders(graph, collector, t);

        let mut budget = t;
        let mut accepted = Vec::with_capacity(voters.len());
        let mut accepted_count = 0usize;
        for &voter in voters {
            graph.check_node(voter).expect("voter in range");
            let ok = budget > 0 && holders[voter.index()];
            if ok {
                budget -= 1;
                accepted_count += 1;
            }
            accepted.push(ok);
        }
        VoteOutcome { accepted, accepted_count, tickets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttackedGraph, SybilAttack, SybilTopology};
    use socnet_gen::{complete, star};

    #[test]
    fn honest_votes_within_budget_are_collected() {
        let g = complete(30);
        let sumup = SumUp::new(SumUpConfig { expected_votes: 20, seed: 0 });
        let voters: Vec<NodeId> = (1..21).map(NodeId).collect();
        let out = sumup.collect(&g, NodeId(0), &voters);
        assert_eq!(out.accepted_count, 20, "all {} honest votes fit the budget", voters.len());
    }

    #[test]
    fn votes_beyond_budget_are_dropped() {
        let g = star(50);
        let sumup = SumUp::new(SumUpConfig { expected_votes: 5, seed: 0 });
        let voters: Vec<NodeId> = (1..50).map(NodeId).collect();
        let out = sumup.collect(&g, NodeId(0), &voters);
        assert_eq!(out.accepted_count, 5, "budget is a hard cap");
        // Exactly the first five eligible voters won.
        assert!(out.accepted[..5].iter().all(|&b| b));
        assert!(out.accepted[5..].iter().all(|&b| !b));
    }

    #[test]
    fn sybil_votes_bounded_by_attack_edges() {
        let attacked = AttackedGraph::mount(
            &complete(40),
            &SybilAttack {
                sybil_count: 50,
                attack_edges: 3,
                topology: SybilTopology::Clique,
                seed: 4,
            },
        );
        let g = attacked.graph();
        let sumup = SumUp::new(SumUpConfig { expected_votes: 30, seed: 0 });
        let sybil_voters: Vec<NodeId> = attacked.sybil_nodes().collect();
        let out = sumup.collect(g, NodeId(0), &sybil_voters);
        assert!(
            out.accepted_count <= 3 * 4,
            "sybil votes should be throttled near the attack-edge count, got {}",
            out.accepted_count
        );
    }

    #[test]
    fn disconnected_voters_never_vote() {
        let g = socnet_core::Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
        let sumup = SumUp::new(SumUpConfig { expected_votes: 5, seed: 0 });
        let out = sumup.collect(&g, NodeId(0), &[NodeId(3), NodeId(4), NodeId(2)]);
        assert_eq!(out.accepted, vec![false, false, true]);
    }

    #[test]
    fn collection_is_deterministic() {
        let g = complete(12);
        let sumup = SumUp::new(SumUpConfig { expected_votes: 6, seed: 0 });
        let voters: Vec<NodeId> = (1..12).map(NodeId).collect();
        assert_eq!(sumup.collect(&g, NodeId(0), &voters), sumup.collect(&g, NodeId(0), &voters));
    }

    #[test]
    #[should_panic(expected = "positive vote budget")]
    fn zero_budget_rejected() {
        let _ = SumUp::new(SumUpConfig { expected_votes: 0, seed: 0 });
    }
}
