//! Evaluation metrics for Sybil defenses.
//!
//! The paper's Table II reports two numbers per run: the fraction of the
//! whole graph's honest nodes accepted, and the number of Sybil
//! identities accepted *per attack edge*. For cross-defense comparison
//! (the Viswanath et al. observation the paper's Sec. II discusses) the
//! module also provides ranking quality as an AUC.

use serde::{Deserialize, Serialize};
use socnet_core::NodeId;

use crate::AttackedGraph;

/// Admission quality of one defense run against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionStats {
    /// Honest nodes accepted.
    pub honest_accepted: usize,
    /// Total honest nodes.
    pub honest_total: usize,
    /// Sybil identities accepted.
    pub sybil_accepted: usize,
    /// Total Sybil identities.
    pub sybil_total: usize,
    /// Attack edges in the mounted attack.
    pub attack_edges: usize,
    /// `honest_accepted / honest_total` — Table II's "Honest %".
    pub honest_accept_rate: f64,
    /// `sybil_accepted / attack_edges` — Table II's "Sybil" row.
    pub sybils_per_attack_edge: f64,
}

/// Scores a per-node admission vector against the attack's ground truth.
///
/// # Panics
///
/// Panics if `admitted.len()` differs from the attacked graph's node
/// count.
///
/// # Examples
///
/// ```
/// use socnet_gen::complete;
/// use socnet_sybil::{eval, AttackedGraph, SybilAttack, SybilTopology};
///
/// let attacked = AttackedGraph::mount(
///     &complete(10),
///     &SybilAttack { sybil_count: 5, attack_edges: 2, topology: SybilTopology::Clique, seed: 1 },
/// );
/// // A defense that admits everyone:
/// let all = vec![true; 15];
/// let stats = eval::admission_stats(&attacked, &all);
/// assert_eq!(stats.honest_accept_rate, 1.0);
/// assert_eq!(stats.sybils_per_attack_edge, 2.5);
/// ```
pub fn admission_stats(attacked: &AttackedGraph, admitted: &[bool]) -> AdmissionStats {
    assert_eq!(
        admitted.len(),
        attacked.graph().node_count(),
        "admission vector must cover every node"
    );
    let honest_total = attacked.honest_count();
    let sybil_total = attacked.sybil_count();
    let honest_accepted = attacked.honest_nodes().filter(|v| admitted[v.index()]).count();
    let sybil_accepted = attacked.sybil_nodes().filter(|v| admitted[v.index()]).count();
    let attack_edges = attacked.attack_edges().len();
    AdmissionStats {
        honest_accepted,
        honest_total,
        sybil_accepted,
        sybil_total,
        attack_edges,
        honest_accept_rate: if honest_total == 0 {
            0.0
        } else {
            honest_accepted as f64 / honest_total as f64
        },
        sybils_per_attack_edge: if attack_edges == 0 {
            0.0
        } else {
            sybil_accepted as f64 / attack_edges as f64
        },
    }
}

/// Area under the ROC curve of a trust *ranking*: the probability that a
/// uniformly random honest node outranks a uniformly random Sybil.
///
/// `ranking` lists nodes from most to least trusted. Ties in the
/// underlying scores should already be broken; 1.0 means perfect
/// separation, 0.5 is chance.
///
/// # Panics
///
/// Panics if the ranking does not cover exactly the attacked graph's
/// nodes.
pub fn ranking_auc(attacked: &AttackedGraph, ranking: &[NodeId]) -> f64 {
    assert_eq!(ranking.len(), attacked.graph().node_count(), "ranking must cover every node");
    let honest_total = attacked.honest_count() as f64;
    let sybil_total = attacked.sybil_count() as f64;
    if honest_total == 0.0 || sybil_total == 0.0 {
        return 1.0;
    }
    // Count (honest, sybil) pairs ordered correctly: walk the ranking,
    // each honest node beats every sybil that comes later.
    let mut sybils_seen = 0f64;
    let mut inversions = 0f64; // honest ranked after a sybil
    for &v in ranking {
        if attacked.is_sybil(v) {
            sybils_seen += 1.0;
        } else {
            inversions += sybils_seen;
        }
    }
    1.0 - inversions / (honest_total * sybil_total)
}

/// Cut-based evaluation of a ranking: the fraction of honest nodes in the
/// top `honest_total` ranks (Viswanath et al.'s partition quality).
///
/// # Panics
///
/// Panics if the ranking does not cover exactly the attacked graph's
/// nodes.
pub fn top_partition_precision(attacked: &AttackedGraph, ranking: &[NodeId]) -> f64 {
    assert_eq!(ranking.len(), attacked.graph().node_count(), "ranking must cover every node");
    let k = attacked.honest_count();
    if k == 0 {
        return 0.0;
    }
    let honest_in_top = ranking[..k].iter().filter(|&&v| !attacked.is_sybil(v)).count();
    honest_in_top as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SybilAttack, SybilTopology};
    use socnet_gen::complete;

    fn attacked() -> AttackedGraph {
        AttackedGraph::mount(
            &complete(8),
            &SybilAttack {
                sybil_count: 4,
                attack_edges: 2,
                topology: SybilTopology::Clique,
                seed: 0,
            },
        )
    }

    #[test]
    fn stats_count_correctly() {
        let a = attacked();
        let mut admitted = vec![false; 12];
        // Admit honest 0..6 and sybil 8, 9.
        for i in 0..6 {
            admitted[i] = true;
        }
        admitted[8] = true;
        admitted[9] = true;
        let s = admission_stats(&a, &admitted);
        assert_eq!(s.honest_accepted, 6);
        assert_eq!(s.honest_total, 8);
        assert_eq!(s.sybil_accepted, 2);
        assert_eq!(s.sybil_total, 4);
        assert!((s.honest_accept_rate - 0.75).abs() < 1e-12);
        assert!((s.sybils_per_attack_edge - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_ranking_has_auc_one() {
        let a = attacked();
        let mut ranking: Vec<NodeId> = a.honest_nodes().collect();
        ranking.extend(a.sybil_nodes());
        assert_eq!(ranking_auc(&a, &ranking), 1.0);
        assert_eq!(top_partition_precision(&a, &ranking), 1.0);
    }

    #[test]
    fn inverted_ranking_has_auc_zero() {
        let a = attacked();
        let mut ranking: Vec<NodeId> = a.sybil_nodes().collect();
        ranking.extend(a.honest_nodes());
        assert_eq!(ranking_auc(&a, &ranking), 0.0);
        assert!((top_partition_precision(&a, &ranking) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn interleaved_ranking_is_half() {
        let a = attacked();
        // 8 honest, 4 sybil. Alternate sybil/honest for the first 8, then
        // the remaining honest; AUC = fraction of (h, s) pairs in order.
        let honest: Vec<NodeId> = a.honest_nodes().collect();
        let sybil: Vec<NodeId> = a.sybil_nodes().collect();
        let mut ranking = Vec::new();
        for i in 0..4 {
            ranking.push(sybil[i]);
            ranking.push(honest[i]);
        }
        ranking.extend_from_slice(&honest[4..]);
        let auc = ranking_auc(&a, &ranking);
        // Honest i (i<4) beats sybils i+1..4: (3+2+1+0) = 6 of 32 pairs,
        // plus last 4 honest beat none... inversions: honest i after
        // sybils 0..=i → 1+2+3+4 for i=0..4 = 10; last 4 honest after all
        // 4 sybils = 16. AUC = 1 - 26/32.
        assert!((auc - (1.0 - 26.0 / 32.0)).abs() < 1e-12, "auc = {auc}");
    }

    #[test]
    #[should_panic(expected = "cover every node")]
    fn wrong_length_panics() {
        let a = attacked();
        let _ = admission_stats(&a, &[true; 3]);
    }
}
