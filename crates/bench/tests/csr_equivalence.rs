//! CSR kernels vs. the legacy `Graph` implementations, across every
//! generator family at `--scale tiny` equivalents: the compact slabs
//! are a pure representation change, so BFS levels, SLEM bits, and
//! coreness arrays must match exactly. Also cross-checks the sampled
//! mixing estimator against the exact evolution at small scale, and
//! carries the `--scale xl` acceptance workload as an `#[ignore]`d
//! million-node test (`cargo test --release -- --ignored million`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet_core::{par_bfs, Bfs, Csr, Graph, NodeId};
use socnet_gen::{
    barabasi_albert, complete, erdos_renyi_gnp, grid, holme_kim, relaxed_caveman, ring,
    stochastic_block_model, watts_strogatz, Dataset,
};
use socnet_kcore::CoreDecomposition;
use socnet_mixing::{
    estimate_mixing_csr, slem_legacy, try_slem_csr, MixingConfig, MixingMeasurement,
    SampleMixingConfig, SpectralConfig,
};

/// One representative per generator family, sized like `--scale tiny`,
/// plus a few registry datasets at the tiny preset itself.
fn tiny_graphs() -> Vec<(String, Graph)> {
    let mut rng = StdRng::seed_from_u64(7);
    let mut graphs: Vec<(String, Graph)> = vec![
        ("ba".into(), barabasi_albert(400, 4, &mut rng)),
        ("sbm".into(), stochastic_block_model(&[80, 80, 80], 0.2, 0.01, &mut rng)),
        ("er".into(), erdos_renyi_gnp(300, 0.03, &mut rng)),
        ("ws".into(), watts_strogatz(300, 6, 0.1, &mut rng)),
        ("hk".into(), holme_kim(300, 3, 0.4, &mut rng)),
        ("caveman".into(), relaxed_caveman(12, 20, 0.15, &mut rng)),
        ("ring".into(), ring(64)),
        ("grid".into(), grid(12, 9)),
        ("complete".into(), complete(40)),
    ];
    for d in [Dataset::WikiVote, Dataset::Physics1, Dataset::FacebookA] {
        graphs.push((format!("{}@tiny", d.name()), d.generate_scaled(0.02, 42)));
    }
    graphs
}

#[test]
fn bfs_levels_and_distances_match_legacy_everywhere() {
    for (name, g) in tiny_graphs() {
        let csr = Csr::from_graph(&g);
        let mut legacy = Bfs::new(&g);
        let mut compact = socnet_core::CsrBfs::new(csr.node_count());
        let step = (g.node_count() / 17).max(1);
        for s in (0..g.node_count()).step_by(step) {
            let want = legacy.level_sizes(&g, NodeId(s as u32)).to_vec();
            assert_eq!(compact.level_sizes(&csr, s as u32), &want[..], "{name} src {s}");
            let fresh = socnet_core::bfs(&g, NodeId(s as u32));
            for threads in [1, 4] {
                let par = par_bfs(&csr, s as u32, threads);
                assert_eq!(par.dist, fresh.dist, "{name} src {s} threads {threads}");
                assert_eq!(par.reached, fresh.reached, "{name} src {s}");
            }
        }
    }
}

#[test]
fn slem_is_bit_identical_to_legacy_everywhere() {
    let cfg = SpectralConfig { max_iterations: 400, ..SpectralConfig::default() };
    for (name, g) in tiny_graphs() {
        if g.edge_count() == 0 {
            continue;
        }
        let legacy = slem_legacy(&g, &cfg);
        for threads in [1, 3] {
            let csr_cfg = SpectralConfig { threads, ..cfg };
            let s = try_slem_csr(&Csr::from_graph(&g), &csr_cfg).expect("edges exist");
            assert_eq!(s.lambda2.to_bits(), legacy.lambda2.to_bits(), "{name} λ2");
            assert_eq!(
                s.lambda_min.to_bits(),
                legacy.lambda_min.to_bits(),
                "{name} λmin (threads {threads})"
            );
            assert_eq!(s.iterations, legacy.iterations, "{name} iterations");
        }
    }
}

#[test]
fn coreness_matches_legacy_everywhere() {
    for (name, g) in tiny_graphs() {
        let legacy = CoreDecomposition::compute_legacy(&g);
        let csr = CoreDecomposition::compute_csr(&Csr::from_graph(&g));
        assert_eq!(csr.coreness_slice(), legacy.coreness_slice(), "{name}");
        assert_eq!(csr.degeneracy(), legacy.degeneracy(), "{name} degeneracy");
    }
}

#[test]
fn sampled_mixing_agrees_with_exact_at_small_scale() {
    // Fast mixer: the sampled estimator and the exact evolution must
    // both see mixing almost immediately.
    let g = complete(50);
    let exact = MixingMeasurement::measure(
        &g,
        &MixingConfig { sources: 5, max_walk: 20, laziness: 0.0, seed: 11 },
    );
    let exact_t = exact.mixing_time(0.2).expect("complete graphs mix");
    let est = estimate_mixing_csr(
        &Csr::from_graph(&g),
        NodeId(0),
        &SampleMixingConfig { walks: 2_000, max_walk: 20, laziness: 0.0, seed: 11 },
    )
    .expect("valid input");
    let sampled_t = est.mixing_time(0.2).expect("estimator must see fast mixing");
    assert!(
        sampled_t <= exact_t + 3,
        "sampled {sampled_t} vs exact {exact_t}: estimator far off on a fast mixer"
    );

    // Slow mixer: neither method may report mixing within the horizon.
    let g = socnet_gen::barbell(10, 0);
    let exact = MixingMeasurement::measure(
        &g,
        &MixingConfig { sources: 4, max_walk: 8, laziness: 0.5, seed: 11 },
    );
    assert_eq!(exact.mixing_time(0.05), None);
    let est = estimate_mixing_csr(
        &Csr::from_graph(&g),
        NodeId(0),
        &SampleMixingConfig { walks: 1_000, max_walk: 8, laziness: 0.5, seed: 11 },
    )
    .expect("valid input");
    assert_eq!(est.mixing_time(0.05), None, "estimator must not see mixing through a bottleneck");
}

/// The PR's acceptance workload: a 10⁶-node preferential-attachment
/// graph must build CSR slabs and complete frontier-parallel BFS plus
/// bucket k-core, with throughput printed for the record. Run with
/// `cargo test --release -- --ignored million`.
#[test]
#[ignore = "million-node acceptance run; needs --release and ~1 GiB"]
fn million_node_ba_builds_and_runs_parallel_kernels() {
    use std::time::Instant;

    let n = 1_000_000;
    let mut rng = StdRng::seed_from_u64(1);
    let g = barabasi_albert(n, 8, &mut rng);

    let start = Instant::now();
    let csr = Csr::from_graph(&g);
    let build = start.elapsed();
    assert_eq!(csr.node_count(), n);
    assert!(csr.edge_count() > n, "BA with m=8 is well past tree density");

    let start = Instant::now();
    let bfs = par_bfs(&csr, 0, 4);
    let bfs_wall = start.elapsed();
    assert_eq!(bfs.reached, n, "preferential attachment yields one component");

    let start = Instant::now();
    let cores = CoreDecomposition::compute_csr(&csr);
    let kcore_wall = start.elapsed();
    assert!(cores.degeneracy() >= 8, "every BA node enters with 8 edges");

    for (kernel, wall) in [("csr_build", build), ("bfs", bfs_wall), ("kcore", kcore_wall)] {
        println!(
            "{kernel}: {:.3}s, {:.0} nodes/s, {:.0} edges/s",
            wall.as_secs_f64(),
            n as f64 / wall.as_secs_f64(),
            csr.edge_count() as f64 / wall.as_secs_f64()
        );
    }
}
