//! Integration tests for the fault-tolerant experiment harness: a
//! panicking unit surfaces in the run report instead of killing the
//! process, and an interrupted run resumed from its checkpoint journal
//! produces byte-identical artifacts.

use std::fs;
use std::path::{Path, PathBuf};

use socnet_bench::{cell, fmt_f64, Experiment, ExperimentArgs, TableView};
use socnet_runner::{RunReport, UnitError};

const DATASETS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
const STEPS: usize = 8;

fn temp_out(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("socnet-bench-ft-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

fn args_in(dir: &Path) -> ExperimentArgs {
    // Keep the BENCH_*.json emitted by `finish` inside the temp dir.
    std::env::set_var("SOCNET_BENCH_DIR", dir);
    let mut args = ExperimentArgs::default();
    args.out_dir = dir.to_path_buf();
    args
}

/// A deterministic stand-in for a fig1 mixing curve.
fn curve_for(name: &str) -> Vec<f64> {
    (1..=STEPS).map(|t| name.len() as f64 / (t as f64 + 0.1)).collect()
}

/// A fig1-style run: one unit per dataset, curve payloads, one CSV.
fn run_figx(
    args: &ExperimentArgs,
    fail_from: Option<usize>,
) -> (Vec<Option<Vec<f64>>>, RunReport) {
    let mut exp = Experiment::new("figx", args);
    let curves = exp.stage(
        "panel",
        &DATASETS,
        |_, d| format!("panel/{d}"),
        |ctx, &d| {
            if fail_from.is_some_and(|k| ctx.index >= k) {
                return Err(UnitError::Failed("injected crash".into()));
            }
            Ok(curve_for(d))
        },
    );
    (curves, exp.finish())
}

fn write_figx_csv(args: &ExperimentArgs, cols: &[Vec<f64>]) -> PathBuf {
    let mut headers = vec!["walk-length".to_string()];
    headers.extend(DATASETS.iter().map(|d| d.to_string()));
    let mut csv = TableView::new("fig1-style", headers);
    for t in 1..=STEPS {
        let mut row = vec![cell(t)];
        row.extend(cols.iter().map(|c| fmt_f64(c[t - 1])));
        csv.push_row(row);
    }
    csv.write_csv(&args.out_dir, "figx").expect("csv write")
}

#[test]
fn panicking_unit_is_isolated_and_reported() {
    let dir = temp_out("panic");
    let args = args_in(&dir);
    let mut exp = Experiment::new("panicky", &args);
    let out = exp.stage(
        "stage",
        &DATASETS,
        |_, d| format!("stage/{d}"),
        |_, &d| {
            if d == "gamma" {
                panic!("injected panic");
            }
            Ok(curve_for(d))
        },
    );
    let report = exp.finish();

    assert_eq!(out.len(), DATASETS.len());
    assert!(out[2].is_none(), "the panicking unit has no output");
    assert_eq!(out.iter().filter(|o| o.is_some()).count(), 3);
    let stage = &report.stages[0];
    assert_eq!(stage.failed(), 1, "exactly one failed unit: {}", stage.summary_line());
    assert_eq!(stage.completed(), 3);
    assert!(!report.is_complete());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn interrupted_then_resumed_run_writes_byte_identical_csv() {
    let dir_resumed = temp_out("resume");
    let dir_baseline = temp_out("baseline");
    let args_resumed = args_in(&dir_resumed);
    let args_baseline = args_in(&dir_baseline);

    // Run 1: the last two datasets crash mid-run; the first two land in
    // the journal.
    let (_, report) = run_figx(&args_resumed, Some(2));
    assert!(!report.is_complete());
    assert!(
        dir_resumed.join("figx.ckpt").exists(),
        "incomplete run keeps its journal for resume"
    );

    // Run 2: same parameters, healthy workers. The journaled units are
    // replayed, the rest computed.
    let (curves, report) = run_figx(&args_resumed, None);
    assert!(report.is_complete());
    assert_eq!(report.stages[0].resumed(), 2);
    assert_eq!(report.stages[0].completed(), 2);
    let cols: Vec<Vec<f64>> = curves.into_iter().map(|c| c.expect("complete run")).collect();
    let resumed_csv = write_figx_csv(&args_resumed, &cols);
    assert!(
        !dir_resumed.join("figx.ckpt").exists(),
        "complete run removes its journal"
    );

    // Baseline: the same run uninterrupted, in a fresh directory.
    let (curves, report) = run_figx(&args_baseline, None);
    assert!(report.is_complete());
    assert_eq!(report.stages[0].resumed(), 0);
    let cols: Vec<Vec<f64>> = curves.into_iter().map(|c| c.expect("complete run")).collect();
    let baseline_csv = write_figx_csv(&args_baseline, &cols);

    assert_eq!(
        fs::read(&resumed_csv).expect("resumed csv"),
        fs::read(&baseline_csv).expect("baseline csv"),
        "resumed artifacts must be byte-identical to an uninterrupted run"
    );
    fs::remove_dir_all(&dir_resumed).ok();
    fs::remove_dir_all(&dir_baseline).ok();
}

#[test]
fn mismatched_parameters_reset_the_journal_instead_of_resuming() {
    let dir = temp_out("rekey");
    let mut args = args_in(&dir);
    let (_, report) = run_figx(&args, Some(2));
    assert!(!report.is_complete());

    // A different seed must not replay the old units.
    args.seed += 1;
    let (_, report) = run_figx(&args, None);
    assert!(report.is_complete());
    assert_eq!(report.stages[0].resumed(), 0, "stale journal must be reset");
    assert_eq!(report.stages[0].completed(), DATASETS.len());
    fs::remove_dir_all(&dir).ok();
}
