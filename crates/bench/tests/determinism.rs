//! Integration tests for the parallel sweep determinism contract: the
//! experiment binaries' CSV artifacts are byte-identical whatever
//! `--threads` says — including when a run is cancelled mid-sweep and
//! resumed from its checkpoint journal at a *different* thread count.

use std::fs;
use std::path::{Path, PathBuf};

use socnet_bench::{cell, degraded, fmt_f64, inner_par, Experiment, ExperimentArgs, TableView};
use socnet_gen::{barbell, ring};
use socnet_mixing::{MixingConfig, MixingMeasurement};
use socnet_runner::{RunReport, UnitError};

const DATASETS: [&str; 3] = ["barbell", "ring", "barbell-wide"];
const MAX_WALK: usize = 20;

fn temp_out(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("socnet-bench-det-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

fn args_in(dir: &Path, threads: usize) -> ExperimentArgs {
    // Keep the BENCH_*.json emitted by `finish` inside the temp dir.
    std::env::set_var("SOCNET_BENCH_DIR", dir);
    let mut args = ExperimentArgs::default();
    args.out_dir = dir.to_path_buf();
    args.threads = threads;
    args
}

fn graph_for(name: &str) -> socnet_core::Graph {
    match name {
        "barbell" => barbell(8, 2),
        "ring" => ring(31),
        "barbell-wide" => barbell(6, 6),
        other => unreachable!("unknown dataset {other}"),
    }
}

/// A fig1-style run over real parallel mixing sweeps: one outer unit
/// per dataset, each fanning its sources out `args.threads` wide.
/// `stop_from` makes outer units at or past that index report
/// cancellation without running — a deterministic stand-in for a
/// deadline tripping mid-run.
fn run_sweeps(
    args: &ExperimentArgs,
    stop_from: Option<usize>,
) -> (Vec<Option<Vec<f64>>>, RunReport) {
    let mut exp = Experiment::new("det", args);
    let threads = args.threads;
    let curves = exp.sweep_stage(
        "sweep",
        &DATASETS,
        |_, d| format!("sweep/{d}"),
        |ctx, &d| {
            if stop_from.is_some_and(|k| ctx.index >= k) {
                return Err(UnitError::Cancelled);
            }
            let g = graph_for(d);
            let cfg = MixingConfig {
                sources: 8,
                max_walk: MAX_WALK,
                laziness: 0.5,
                seed: 11,
            };
            let (m, report) =
                MixingMeasurement::measure_reported(&g, &cfg, &inner_par(ctx.cancel, threads));
            if !report.is_complete() {
                return Err(degraded(ctx.cancel, &report));
            }
            Ok(m.mean_curve())
        },
    );
    (curves, exp.finish())
}

fn write_csv(args: &ExperimentArgs, cols: &[Vec<f64>]) -> PathBuf {
    let mut headers = vec!["walk-length".to_string()];
    headers.extend(DATASETS.iter().map(|d| d.to_string()));
    let mut csv = TableView::new("det", headers);
    for t in 1..=MAX_WALK {
        let mut row = vec![cell(t)];
        row.extend(cols.iter().map(|c| fmt_f64(c[t - 1])));
        csv.push_row(row);
    }
    csv.write_csv(&args.out_dir, "det").expect("csv write")
}

fn complete_run_csv(tag: &str, threads: usize) -> (PathBuf, PathBuf) {
    let dir = temp_out(tag);
    let args = args_in(&dir, threads);
    let (curves, report) = run_sweeps(&args, None);
    assert!(report.is_complete(), "threads={threads}: {}", report.render());
    let cols: Vec<Vec<f64>> = curves.into_iter().map(|c| c.expect("complete run")).collect();
    (write_csv(&args, &cols), dir)
}

#[test]
fn csv_is_byte_identical_for_thread_counts_1_2_4() {
    let (reference_csv, reference_dir) = complete_run_csv("t1", 1);
    let reference = fs::read(&reference_csv).expect("reference csv");
    assert!(
        reference.len() > DATASETS.len() * MAX_WALK,
        "reference CSV should hold a full grid"
    );
    for threads in [2usize, 4] {
        let (csv, dir) = complete_run_csv(&format!("t{threads}"), threads);
        assert_eq!(
            reference,
            fs::read(&csv).expect("parallel csv"),
            "threads={threads} must reproduce the sequential bytes"
        );
        fs::remove_dir_all(&dir).ok();
    }
    fs::remove_dir_all(&reference_dir).ok();
}

#[test]
fn cancelled_parallel_run_resumes_at_another_thread_count_byte_identically() {
    // Reference: an uninterrupted single-threaded run.
    let (reference_csv, reference_dir) = complete_run_csv("resume-ref", 1);

    // A 4-thread run is cancelled after its first dataset ...
    let dir = temp_out("resume");
    let args4 = args_in(&dir, 4);
    let (_, report) = run_sweeps(&args4, Some(1));
    assert!(!report.is_complete());
    assert_eq!(report.stages[0].completed(), 1);
    assert_eq!(report.stages[0].cancelled(), 2);
    assert!(
        dir.join("det.ckpt").exists(),
        "pre-empted run keeps its journal for resume"
    );

    // ... and resumed with 2 threads: the journal is honored across
    // thread counts (the run key excludes --threads, because threads
    // never change outputs).
    let args2 = args_in(&dir, 2);
    let (curves, report) = run_sweeps(&args2, None);
    assert!(report.is_complete(), "{}", report.render());
    assert_eq!(report.stages[0].resumed(), 1);
    assert_eq!(report.stages[0].completed(), 2);
    let cols: Vec<Vec<f64>> = curves.into_iter().map(|c| c.expect("complete run")).collect();
    let resumed_csv = write_csv(&args2, &cols);

    assert_eq!(
        fs::read(&reference_csv).expect("reference csv"),
        fs::read(&resumed_csv).expect("resumed csv"),
        "cancel + cross-thread-count resume must reproduce the sequential bytes"
    );
    fs::remove_dir_all(&dir).ok();
    fs::remove_dir_all(&reference_dir).ok();
}
