//! Integration tests for the observability layer: the metrics snapshot
//! is identical whatever `--threads` says, the JSONL event log stays
//! machine-parseable when units panic or are cancelled mid-run, and the
//! run manifest / bench summary keep their pinned schemas across a
//! checkpoint resume.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use socnet_bench::{Experiment, ExperimentArgs};
use socnet_runner::obs::LogFormat;
use socnet_runner::{json, RunReport, UnitError};

const DATASETS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// The logger, metrics registry, and `SOCNET_BENCH_DIR` are process
/// globals; tests that run an [`Experiment`] are serialized.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn temp_out(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("socnet-bench-obs-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

fn args_in(dir: &Path, threads: usize) -> ExperimentArgs {
    std::env::set_var("SOCNET_BENCH_DIR", dir);
    let mut args = ExperimentArgs::default();
    args.out_dir = dir.to_path_buf();
    args.threads = threads;
    args.quiet = true;
    args
}

fn payload_for(name: &str) -> Vec<f64> {
    (1..=6).map(|t| name.len() as f64 / (t as f64 + 0.1)).collect()
}

/// One stage over the four datasets; `fail_from` makes units at or past
/// that index fail deterministically.
fn run_obs(args: &ExperimentArgs, fail_from: Option<usize>) -> RunReport {
    let mut exp = Experiment::new("obs", args);
    let _ = exp.stage(
        "work",
        &DATASETS,
        |_, d| format!("work/{d}"),
        |ctx, &d| {
            if fail_from.is_some_and(|k| ctx.index >= k) {
                return Err(UnitError::Failed("injected crash".into()));
            }
            Ok(payload_for(d))
        },
    );
    exp.finish()
}

#[test]
fn metrics_counters_are_identical_across_thread_counts() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let mut counter_lines = Vec::new();
    for threads in [1usize, 2, 4] {
        let dir = temp_out(&format!("metrics-t{threads}"));
        let args = args_in(&dir, threads);
        let report = run_obs(&args, None);
        assert!(report.is_complete(), "threads={threads}: {}", report.render());

        let text = fs::read_to_string(dir.join("obs_metrics.json")).expect("metrics snapshot");
        assert!(json::is_valid(&text), "threads={threads}: invalid JSON:\n{text}");
        assert!(text.contains("\"schema\":\"socnet-metrics-v1\""));
        // The counters section is rendered on a single sorted line
        // precisely so this comparison can be byte-for-byte.
        let counters = text
            .lines()
            .find(|l| l.starts_with("\"counters\""))
            .expect("counters line")
            .to_string();
        assert!(counters.contains("\"units.completed\":4"), "{counters}");
        assert!(counters.contains("\"checkpoint.appends\":4"), "{counters}");
        counter_lines.push((threads, counters));
        fs::remove_dir_all(&dir).ok();
    }
    let (_, reference) = &counter_lines[0];
    for (threads, line) in &counter_lines[1..] {
        assert_eq!(line, reference, "threads={threads} must not change the counters");
    }
}

#[test]
fn jsonl_event_log_survives_panics_and_cancellation() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let dir = temp_out("jsonl");
    let mut args = args_in(&dir, 2);
    args.log_format = LogFormat::Json;
    args.log_file = Some(dir.join("events.jsonl"));

    let mut exp = Experiment::new("obs", &args);
    let out = exp.stage(
        "mixed",
        &DATASETS,
        |_, d| format!("mixed/{d}"),
        |_, &d| match d {
            "beta" => panic!("injected panic"),
            "gamma" => Err(UnitError::Cancelled),
            _ => Ok(payload_for(d)),
        },
    );
    let report = exp.finish();

    assert_eq!(out.iter().filter(|o| o.is_some()).count(), 2);
    assert!(!report.is_complete());
    let text = fs::read_to_string(dir.join("events.jsonl")).expect("event log");
    assert!(json::is_valid_jsonl(&text), "log must stay valid JSONL:\n{text}");
    for event in ["run.start", "stage.start", "stage.done", "artifact.written", "run.done"] {
        assert!(text.contains(&format!("\"event\":\"{event}\"")), "missing {event}:\n{text}");
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn manifest_and_bench_summary_keep_their_schemas_across_a_resume() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let dir = temp_out("resume");
    let args = args_in(&dir, 1);

    // Run 1 fails its last two units, leaving a journal ...
    let report = run_obs(&args, Some(2));
    assert!(!report.is_complete());
    assert!(dir.join("obs.ckpt").exists());

    // ... run 2 replays the finished units and completes.
    let report = run_obs(&args, None);
    assert!(report.is_complete(), "{}", report.render());
    assert_eq!(report.stages[0].resumed(), 2);

    let manifest = fs::read_to_string(dir.join("run.json")).expect("run manifest");
    assert!(json::is_valid(&manifest), "invalid run.json:\n{manifest}");
    assert!(manifest.contains("\"schema\":\"socnet-run-v1\""));
    // Replayed units are explicit: zero wall and a resumed marker, so
    // downstream tooling never mistakes a journal hit for measured time.
    assert!(manifest.contains("\"resumed\":true"), "{manifest}");
    assert!(manifest.contains("\"wall_s\":0.000"), "{manifest}");
    assert!(manifest.contains("\"coverage\":1.0000"), "{manifest}");

    let bench = fs::read_to_string(dir.join("BENCH_obs.json")).expect("bench summary");
    assert!(json::is_valid(&bench), "invalid BENCH_obs.json:\n{bench}");
    assert!(bench.contains("\"schema\":\"socnet-bench-v1\""));
    assert!(bench.contains("\"work\""), "stage name in summary: {bench}");
    assert!(bench.contains("\"units\":4"), "{bench}");
    fs::remove_dir_all(&dir).ok();
}
