//! Criterion benchmarks of the DHT substrate.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet_dht::{DhtConfig, FingerStrategy, KeyRing, SocialDht};
use socnet_gen::barabasi_albert;
use socnet_sybil::{AttackedGraph, SybilAttack, SybilTopology};

fn attacked() -> AttackedGraph {
    let honest = barabasi_albert(5_000, 6, &mut StdRng::seed_from_u64(1));
    AttackedGraph::mount(
        &honest,
        &SybilAttack {
            sybil_count: 1_000,
            attack_edges: 20,
            topology: SybilTopology::ScaleFree { m_attach: 3 },
            seed: 2,
        },
    )
}

fn build_tables(c: &mut Criterion) {
    let a = attacked();
    let mut group = c.benchmark_group("dht/build");
    group.sample_size(10);
    for (name, strategy) in [
        ("uniform", FingerStrategy::Uniform),
        ("walk8", FingerStrategy::SocialWalk { length: 8 }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &strategy, |b, &strategy| {
            b.iter(|| {
                black_box(SocialDht::build(
                    &a,
                    &DhtConfig { fingers: 16, strategy, replication: 8, seed: 3 },
                ))
            })
        });
    }
    group.finish();
}

fn lookups(c: &mut Criterion) {
    let a = attacked();
    let dht = SocialDht::build(
        &a,
        &DhtConfig {
            fingers: 16,
            strategy: FingerStrategy::SocialWalk { length: 8 },
            replication: 8,
            seed: 3,
        },
    );
    let key = dht.ring().key(socnet_core::NodeId(123));
    c.bench_function("dht/lookup-6k", |b| {
        b.iter(|| black_box(dht.lookup(&a, socnet_core::NodeId(7), key, 40).expect("in range")))
    });
}

fn keyring(c: &mut Criterion) {
    let ring = KeyRing::generate(100_000, 5);
    c.bench_function("dht/owner-100k", |b| b.iter(|| black_box(ring.owner(0xdead_beef))));
}

criterion_group!(benches, build_tables, lookups, keyring);
criterion_main!(benches);
