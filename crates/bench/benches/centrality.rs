//! Criterion benchmarks of the centrality measures.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet_centrality::{approximate_betweenness, betweenness, closeness, ClosenessMode};
use socnet_gen::barabasi_albert;

fn exact_betweenness(c: &mut Criterion) {
    let mut group = c.benchmark_group("centrality/betweenness");
    group.sample_size(10);
    for n in [500usize, 2_000] {
        let g = barabasi_albert(n, 6, &mut StdRng::seed_from_u64(1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(betweenness(g)))
        });
    }
    group.finish();
}

fn sampled_betweenness(c: &mut Criterion) {
    let g = barabasi_albert(10_000, 6, &mut StdRng::seed_from_u64(2));
    let mut group = c.benchmark_group("centrality/approx-betweenness");
    group.sample_size(10);
    for pivots in [32usize, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(pivots), &pivots, |b, &p| {
            b.iter(|| black_box(approximate_betweenness(&g, p, 7)))
        });
    }
    group.finish();
}

fn closeness_modes(c: &mut Criterion) {
    let g = barabasi_albert(2_000, 6, &mut StdRng::seed_from_u64(3));
    let mut group = c.benchmark_group("centrality/closeness-2k");
    group.sample_size(10);
    group.bench_function("classic", |b| {
        b.iter(|| black_box(closeness(&g, ClosenessMode::Classic)))
    });
    group.bench_function("harmonic", |b| {
        b.iter(|| black_box(closeness(&g, ClosenessMode::Harmonic)))
    });
    group.finish();
}

criterion_group!(benches, exact_betweenness, sampled_betweenness, closeness_modes);
criterion_main!(benches);
