//! Criterion benchmarks of the Sybil defenses (E4/E8 kernels).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet_core::NodeId;
use socnet_gen::barabasi_albert;
use socnet_sybil::{
    AttackedGraph, GateKeeper, GateKeeperConfig, RouteTables, SumUp, SumUpConfig, SybilAttack,
    SybilInfer, SybilInferConfig, SybilLimit, SybilLimitConfig, SybilTopology,
};

fn attacked() -> AttackedGraph {
    let honest = barabasi_albert(5_000, 8, &mut StdRng::seed_from_u64(1));
    AttackedGraph::mount(
        &honest,
        &SybilAttack {
            sybil_count: 100,
            attack_edges: 20,
            topology: SybilTopology::ErdosRenyi { p: 0.1 },
            seed: 2,
        },
    )
}

fn gatekeeper(c: &mut Criterion) {
    let a = attacked();
    let mut group = c.benchmark_group("sybil/gatekeeper");
    group.sample_size(10);
    group.bench_function("33dist-5k", |b| {
        let gk = GateKeeper::new(GateKeeperConfig { distributors: 33, ..Default::default() });
        b.iter(|| black_box(gk.run(&a)))
    });
    group.finish();
}

fn routes(c: &mut Criterion) {
    let a = attacked();
    let g = a.graph();
    c.bench_function("sybil/route-tables-5k", |b| {
        b.iter(|| black_box(RouteTables::generate(g, &mut StdRng::seed_from_u64(3))))
    });
    let tables = RouteTables::generate(g, &mut StdRng::seed_from_u64(3));
    c.bench_function("sybil/one-route-w200", |b| {
        b.iter(|| black_box(tables.route(g, NodeId(0), 0, 200)))
    });
}

fn sybillimit(c: &mut Criterion) {
    let a = attacked();
    let mut group = c.benchmark_group("sybil/sybillimit");
    group.sample_size(10);
    group.bench_function("setup-48inst-5k", |b| {
        b.iter(|| {
            black_box(SybilLimit::new(
                a.graph(),
                SybilLimitConfig { instances: 48, route_length: 10, balance_slack: 4.0, seed: 4 },
            ))
        })
    });
    group.finish();
}

fn sybilinfer_and_sumup(c: &mut Criterion) {
    let a = attacked();
    let g = a.graph();
    let mut group = c.benchmark_group("sybil/inference");
    group.sample_size(10);
    group.bench_function("sybilinfer-20kwalks-5k", |b| {
        b.iter(|| {
            black_box(SybilInfer::infer(
                g,
                NodeId(0),
                &SybilInferConfig { walks: 20_000, walk_length: 10, seed: 5 },
            ))
        })
    });
    group.bench_function("sumup-5k", |b| {
        let voters: Vec<NodeId> = g.nodes().collect();
        let sumup = SumUp::new(SumUpConfig { expected_votes: 2_000, seed: 0 });
        b.iter(|| black_box(sumup.collect(g, NodeId(0), &voters)))
    });
    group.finish();
}

criterion_group!(benches, gatekeeper, routes, sybillimit, sybilinfer_and_sumup);
criterion_main!(benches);
