//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * trust modulation schemes vs. the plain walk (how much each slows
//!   mixing, and what each costs);
//! * caveman rewiring probability (the knob controlling how slow the
//!   strict-trust registry entries mix);
//! * GateKeeper distributor count (admission cost vs. sample size);
//! * SybilLimit instance count (the `r₀√m` rule vs. cheaper settings).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet_core::NodeId;
use socnet_gen::{barabasi_albert, relaxed_caveman};
use socnet_mixing::{ModulatedOperator, TrustModulation};
use socnet_sybil::{
    AttackedGraph, GateKeeper, GateKeeperConfig, SybilAttack, SybilLimit, SybilLimitConfig,
    SybilTopology,
};

fn modulation_schemes(c: &mut Criterion) {
    let g = barabasi_albert(3_000, 6, &mut StdRng::seed_from_u64(1));
    let mut group = c.benchmark_group("ablation/modulated-mixing-curve");
    group.sample_size(10);
    for (name, m) in [
        ("uniform", TrustModulation::Uniform),
        ("lazy-0.5", TrustModulation::Lazy { alpha: 0.5 }),
        ("originator-0.2", TrustModulation::OriginatorBiased { beta: 0.2 }),
        ("similarity", TrustModulation::SimilarityBiased),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &m, |b, &m| {
            let op = ModulatedOperator::new(&g, m);
            b.iter(|| black_box(op.mixing_curve(NodeId(0), 30)))
        });
    }
    group.finish();
}

fn caveman_rewiring(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/caveman-rewire");
    group.sample_size(10);
    for p in [0.0f64, 0.05, 0.2] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                black_box(relaxed_caveman(300, 15, p, &mut StdRng::seed_from_u64(2)))
            })
        });
    }
    group.finish();
}

fn gatekeeper_distributors(c: &mut Criterion) {
    let honest = barabasi_albert(3_000, 6, &mut StdRng::seed_from_u64(3));
    let attacked = AttackedGraph::mount(
        &honest,
        &SybilAttack {
            sybil_count: 60,
            attack_edges: 10,
            topology: SybilTopology::Clique,
            seed: 4,
        },
    );
    let mut group = c.benchmark_group("ablation/gatekeeper-distributors");
    group.sample_size(10);
    for m in [11usize, 33, 99] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let gk = GateKeeper::new(GateKeeperConfig { distributors: m, ..Default::default() });
            b.iter(|| black_box(gk.run(&attacked)))
        });
    }
    group.finish();
}

fn sybillimit_instances(c: &mut Criterion) {
    let g = barabasi_albert(2_000, 6, &mut StdRng::seed_from_u64(5));
    let mut group = c.benchmark_group("ablation/sybillimit-instances");
    group.sample_size(10);
    for r in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            b.iter(|| {
                black_box(SybilLimit::new(
                    &g,
                    SybilLimitConfig {
                        instances: r,
                        route_length: 8,
                        balance_slack: 4.0,
                        seed: 6,
                    },
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    modulation_schemes,
    caveman_rewiring,
    gatekeeper_distributors,
    sybillimit_instances
);
criterion_main!(benches);
