//! Criterion benchmarks of the expansion estimators (E5/E6 kernels).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet_core::NodeId;
use socnet_expansion::{sampled_set_expansion, EnvelopeExpansion, ExpansionSweep, SourceSelection};
use socnet_gen::barabasi_albert;

fn per_source(c: &mut Criterion) {
    let g = barabasi_albert(20_000, 8, &mut StdRng::seed_from_u64(1));
    c.bench_function("expansion/envelope-20k", |b| {
        b.iter(|| black_box(EnvelopeExpansion::measure(&g, NodeId(7))))
    });
}

fn sweep(c: &mut Criterion) {
    let g = barabasi_albert(5_000, 8, &mut StdRng::seed_from_u64(2));
    let mut group = c.benchmark_group("expansion/sweep");
    group.sample_size(10);
    group.bench_function("sample200-5k", |b| {
        b.iter(|| black_box(ExpansionSweep::measure(&g, SourceSelection::Sample(200), 1)))
    });
    group.finish();
}

fn random_sets(c: &mut Criterion) {
    let g = barabasi_albert(5_000, 8, &mut StdRng::seed_from_u64(3));
    c.bench_function("expansion/random-sets-5k", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(4);
            black_box(sampled_set_expansion(&g, 64, 20, &mut rng))
        })
    });
}

criterion_group!(benches, per_source, sweep, random_sets);
criterion_main!(benches);
