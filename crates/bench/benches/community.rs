//! Criterion benchmarks of the community machinery.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet_community::{conductance, label_propagation, modularity, LocalCommunity};
use socnet_core::NodeId;
use socnet_gen::{planted_partition, relaxed_caveman};

fn labelprop(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let g = planted_partition(50, 200, 0.03, 0.0005, &mut rng);
    let mut group = c.benchmark_group("community/label-propagation");
    group.sample_size(10);
    group.bench_function("10k-nodes", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            black_box(label_propagation(&g, 30, &mut rng))
        })
    });
    group.finish();
}

fn quality_measures(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let g = relaxed_caveman(300, 20, 0.05, &mut rng);
    let labels: Vec<u32> = (0..g.node_count()).map(|i| (i / 20) as u32).collect();
    c.bench_function("community/modularity-6k", |b| {
        b.iter(|| black_box(modularity(&g, &labels)))
    });
    let set: Vec<NodeId> = (0..200).map(NodeId).collect();
    c.bench_function("community/conductance-6k", |b| {
        b.iter(|| black_box(conductance(&g, &set)))
    });
}

fn local_sweep(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let g = planted_partition(20, 250, 0.05, 0.001, &mut rng);
    let mut group = c.benchmark_group("community/local-sweep");
    group.sample_size(10);
    group.bench_function("to-1000-of-5k", |b| {
        b.iter(|| black_box(LocalCommunity::sweep(&g, NodeId(0), 1_000)))
    });
    group.finish();
}

criterion_group!(benches, labelprop, quality_measures, local_sweep);
criterion_main!(benches);
