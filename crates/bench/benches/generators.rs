//! Criterion benchmarks of the graph generators.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet_gen::{
    barabasi_albert, erdos_renyi_gnp, holme_kim, planted_partition, relaxed_caveman,
    watts_strogatz, Dataset,
};

fn families(c: &mut Criterion) {
    let mut group = c.benchmark_group("gen/families-10k");
    group.bench_function("erdos-renyi", |b| {
        b.iter(|| black_box(erdos_renyi_gnp(10_000, 0.001, &mut StdRng::seed_from_u64(1))))
    });
    group.bench_function("barabasi-albert", |b| {
        b.iter(|| black_box(barabasi_albert(10_000, 5, &mut StdRng::seed_from_u64(1))))
    });
    group.bench_function("holme-kim", |b| {
        b.iter(|| black_box(holme_kim(10_000, 5, 0.5, &mut StdRng::seed_from_u64(1))))
    });
    group.bench_function("watts-strogatz", |b| {
        b.iter(|| black_box(watts_strogatz(10_000, 10, 0.1, &mut StdRng::seed_from_u64(1))))
    });
    group.bench_function("caveman", |b| {
        b.iter(|| black_box(relaxed_caveman(500, 20, 0.05, &mut StdRng::seed_from_u64(1))))
    });
    group.bench_function("planted-partition", |b| {
        b.iter(|| {
            black_box(planted_partition(50, 200, 0.03, 0.001, &mut StdRng::seed_from_u64(1)))
        })
    });
    group.finish();
}

fn registry(c: &mut Criterion) {
    let mut group = c.benchmark_group("gen/registry");
    group.sample_size(10);
    for d in [Dataset::WikiVote, Dataset::Physics1, Dataset::RiceGrad] {
        group.bench_with_input(BenchmarkId::from_parameter(d.name()), &d, |b, &d| {
            b.iter(|| black_box(d.generate_scaled(0.25, 7)))
        });
    }
    group.finish();
}

criterion_group!(benches, families, registry);
criterion_main!(benches);
