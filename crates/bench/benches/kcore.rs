//! Criterion benchmarks of the k-core decomposition (E3/E7 kernels).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet_gen::{barabasi_albert, relaxed_caveman};
use socnet_kcore::{core_profiles, coreness_ecdf, CoreDecomposition};

fn decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("kcore/decompose");
    for n in [10_000usize, 50_000] {
        let g = barabasi_albert(n, 8, &mut StdRng::seed_from_u64(1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(CoreDecomposition::compute(g)))
        });
    }
    group.finish();
}

fn profiles(c: &mut Criterion) {
    let g = relaxed_caveman(400, 15, 0.05, &mut StdRng::seed_from_u64(2));
    let d = CoreDecomposition::compute(&g);
    c.bench_function("kcore/profiles-6k", |b| b.iter(|| black_box(core_profiles(&g, &d))));
    c.bench_function("kcore/ecdf-6k", |b| b.iter(|| black_box(coreness_ecdf(&d))));
}

criterion_group!(benches, decomposition, profiles);
criterion_main!(benches);
