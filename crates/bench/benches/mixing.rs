//! Criterion benchmarks of the mixing-time machinery (E1/E2 kernels).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet_gen::barabasi_albert;
use socnet_mixing::{
    slem, stationary_distribution, MixingConfig, MixingMeasurement, SpectralConfig, WalkOperator,
};

fn walk_step(c: &mut Criterion) {
    let g = barabasi_albert(20_000, 8, &mut StdRng::seed_from_u64(1));
    let op = WalkOperator::new(&g);
    let pi = stationary_distribution(&g);
    let mut x = pi.as_slice().to_vec();
    let mut y = vec![0.0; x.len()];
    c.bench_function("mixing/step-20k", |b| {
        b.iter(|| {
            op.step(&x, &mut y);
            std::mem::swap(&mut x, &mut y);
            black_box(x[0])
        })
    });
}

fn sampling_method(c: &mut Criterion) {
    let g = barabasi_albert(5_000, 8, &mut StdRng::seed_from_u64(2));
    let mut group = c.benchmark_group("mixing/sampling");
    group.sample_size(10);
    group.bench_function("10src-x-50steps-5k", |b| {
        b.iter(|| {
            black_box(MixingMeasurement::measure(
                &g,
                &MixingConfig { sources: 10, max_walk: 50, laziness: 0.0, seed: 1 },
            ))
        })
    });
    group.finish();
}

fn spectral(c: &mut Criterion) {
    let g = barabasi_albert(5_000, 8, &mut StdRng::seed_from_u64(3));
    let mut group = c.benchmark_group("mixing/spectral");
    group.sample_size(10);
    group.bench_function("slem-5k", |b| {
        b.iter(|| black_box(slem(&g, &SpectralConfig { tolerance: 1e-8, ..Default::default() })))
    });
    group.finish();
}

criterion_group!(benches, walk_step, sampling_method, spectral);
criterion_main!(benches);
