//! Criterion benchmarks of the directed-graph machinery.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet_digraph::{strongly_connected_components, Digraph, DirectedWalk};
use socnet_gen::barabasi_albert;

fn build_digraph() -> Digraph {
    let g = barabasi_albert(10_000, 6, &mut StdRng::seed_from_u64(1));
    Digraph::from_undirected(&g)
}

fn scc(c: &mut Criterion) {
    let g = build_digraph();
    c.bench_function("digraph/tarjan-10k", |b| {
        b.iter(|| black_box(strongly_connected_components(&g)))
    });
}

fn surfer(c: &mut Criterion) {
    let g = build_digraph();
    let walk = DirectedWalk::new(&g, 0.15);
    let n = g.node_count();
    let mut x = vec![1.0 / n as f64; n];
    let mut y = vec![0.0; n];
    c.bench_function("digraph/surfer-step-10k", |b| {
        b.iter(|| {
            walk.step(&x, &mut y);
            std::mem::swap(&mut x, &mut y);
            black_box(x[0])
        })
    });

    let mut group = c.benchmark_group("digraph/pagerank");
    group.sample_size(10);
    group.bench_function("stationary-10k", |b| {
        b.iter(|| black_box(walk.stationary(1e-9, 10_000)))
    });
    group.finish();
}

fn construction(c: &mut Criterion) {
    let und = barabasi_albert(10_000, 6, &mut StdRng::seed_from_u64(2));
    c.bench_function("digraph/from-undirected-10k", |b| {
        b.iter(|| black_box(Digraph::from_undirected(&und)))
    });
}

criterion_group!(benches, scc, surfer, construction);
criterion_main!(benches);
