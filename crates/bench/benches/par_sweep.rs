//! Criterion benchmarks of the deterministic parallel sweep engine:
//! the same per-source sweeps at 1 thread vs. all available cores, so
//! the bench trajectory records the fan-out speedup (and catches a
//! regression that serializes a sweep).
//!
//! On a single-core runner the pairs collapse to parity — the engine
//! trades nothing for its determinism guarantee, so 1-thread sweeps
//! through `par_sweep` cost the same as the old sequential loops.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet_expansion::{ExpansionSweep, SourceSelection};
use socnet_gen::barabasi_albert;
use socnet_mixing::{MixingConfig, MixingMeasurement};
use socnet_runner::ParConfig;
use socnet_sybil::{GateKeeper, GateKeeperConfig};

fn threads_all() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

fn par(threads: usize) -> ParConfig {
    ParConfig { threads, ..Default::default() }
}

fn mixing_sweep(c: &mut Criterion) {
    let g = barabasi_albert(5_000, 8, &mut StdRng::seed_from_u64(1));
    let cfg = MixingConfig { sources: 32, max_walk: 50, laziness: 0.0, seed: 1 };
    let mut group = c.benchmark_group("par_sweep/mixing-32src-5k");
    group.sample_size(10);
    for threads in [1, threads_all()] {
        group.bench_function(format!("{threads}t"), |b| {
            b.iter(|| black_box(MixingMeasurement::measure_reported(&g, &cfg, &par(threads))))
        });
    }
    group.finish();
}

fn expansion_sweep(c: &mut Criterion) {
    let g = barabasi_albert(20_000, 8, &mut StdRng::seed_from_u64(2));
    let mut group = c.benchmark_group("par_sweep/expansion-256cores-20k");
    group.sample_size(10);
    for threads in [1, threads_all()] {
        group.bench_function(format!("{threads}t"), |b| {
            b.iter(|| {
                black_box(ExpansionSweep::measure_reported(
                    &g,
                    SourceSelection::Sample(256),
                    2,
                    &par(threads),
                ))
            })
        });
    }
    group.finish();
}

fn gatekeeper_sweep(c: &mut Criterion) {
    let g = barabasi_albert(10_000, 8, &mut StdRng::seed_from_u64(3));
    let gk = GateKeeper::new(GateKeeperConfig { distributors: 32, ..Default::default() });
    let controller = socnet_core::NodeId(0);
    let mut group = c.benchmark_group("par_sweep/gatekeeper-32dist-10k");
    group.sample_size(10);
    for threads in [1, threads_all()] {
        group.bench_function(format!("{threads}t"), |b| {
            b.iter(|| {
                black_box(
                    gk.run_from_reported(&g, controller, &par(threads))
                        .expect("controller in range"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, mixing_sweep, expansion_sweep, gatekeeper_sweep);
criterion_main!(benches);
