//! Criterion benchmarks of the graph substrate: construction, BFS,
//! components, and triangle counting.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet_core::{bfs, connected_components, triangle_count, GraphBuilder, NodeId};
use socnet_gen::barabasi_albert;

fn build_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph/build");
    for n in [1_000usize, 10_000] {
        let g = barabasi_albert(n, 8, &mut StdRng::seed_from_u64(1));
        let edges: Vec<(u32, u32)> = g.edges().map(|(u, v)| (u.0, v.0)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &edges, |b, edges| {
            b.iter(|| {
                let mut builder = GraphBuilder::with_capacity(n, edges.len());
                builder.extend_edges(edges.iter().copied());
                black_box(builder.build())
            })
        });
    }
    group.finish();
}

fn traversal(c: &mut Criterion) {
    let g = barabasi_albert(20_000, 8, &mut StdRng::seed_from_u64(2));
    c.bench_function("graph/bfs-20k", |b| b.iter(|| black_box(bfs(&g, NodeId(0)))));
    c.bench_function("graph/components-20k", |b| {
        b.iter(|| black_box(connected_components(&g)))
    });
}

fn triangles(c: &mut Criterion) {
    let g = barabasi_albert(4_000, 6, &mut StdRng::seed_from_u64(3));
    c.bench_function("graph/triangles-4k", |b| b.iter(|| black_box(triangle_count(&g))));
}

fn neighbor_queries(c: &mut Criterion) {
    let g = barabasi_albert(10_000, 8, &mut StdRng::seed_from_u64(4));
    c.bench_function("graph/has-edge-10k", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for i in 0..1_000u32 {
                if g.has_edge(NodeId(i), NodeId((i * 7 + 1) % 10_000)) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

criterion_group!(benches, build_graph, traversal, triangles, neighbor_queries);
criterion_main!(benches);
