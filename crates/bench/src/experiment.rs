//! The fault-tolerant experiment harness the binaries run on.
//!
//! [`Experiment`] ties the pieces of `socnet-runner` together for the
//! `src/bin/` artifact generators: panic-isolated stages, a run-wide
//! cooperative deadline, a checkpoint journal keyed by the invocation's
//! parameters, and a run report printed and written beside the CSVs.

use std::path::PathBuf;
use std::time::Instant;

use std::time::Duration;

use socnet_runner::obs::{self, Heartbeat};
use socnet_runner::{
    run_units, write_bench_with, CancelToken, Checkpoint, Metrics, ParConfig, Payload, Pool,
    PoolConfig, RunManifest, RunReport, StageReport, UnitCtx, UnitError, UnitRecord,
};

/// The sweep configuration for measurers invoked *inside* a stage worker
/// (`MixingMeasurement::measure_reported` and friends): `threads` worker
/// threads for the per-source sweep, and the worker's cancellation
/// token, so a run-wide deadline reaches all the way down into the
/// inner units. The sweep engine does not retry — the outer stage
/// retries whole units.
///
/// Stages that parallelize across datasets pass `threads = 1` here (the
/// outer fan-out already owns the cores); per-source sweep stages run
/// their outer loop serially and pass `--threads` through.
pub fn inner_par(cancel: &CancelToken, threads: usize) -> ParConfig {
    ParConfig::new(cancel.clone(), threads)
}

/// Maps a degraded inner-stage report to the worker's unit error:
/// [`UnitError::Cancelled`] when the run-wide token tripped (so the
/// unit is recorded as pre-empted, not broken), a retryable
/// [`UnitError::Failed`] otherwise.
pub fn degraded(cancel: &CancelToken, report: &StageReport) -> UnitError {
    if cancel.is_cancelled() {
        UnitError::Cancelled
    } else {
        UnitError::Failed(format!("inner stage degraded: {}", report.summary_line()))
    }
}

use crate::ExperimentArgs;

/// One fault-tolerant experiment run (one binary invocation).
///
/// A run is a sequence of named stages; each stage fans its items out
/// over the panic-isolated pool, resumes units journaled by a previous
/// identical invocation, journals units as they complete, and feeds the
/// run report. Binaries end with [`finish`](Experiment::finish), which
/// prints the report and writes it beside the artifacts.
///
/// The checkpoint journal lives at `<out>/<name>.ckpt` and is keyed by
/// `name`, `--scale`, `--seed`, and `--sources`: invoking with different
/// parameters resets it rather than resuming mismatched units.
///
/// # Examples
///
/// ```
/// use socnet_bench::{Experiment, ExperimentArgs};
/// use socnet_runner::UnitError;
///
/// let mut args = ExperimentArgs::default();
/// args.out_dir = std::env::temp_dir().join("socnet-experiment-doc");
/// // Keep the BENCH_*.json perf summary out of the working directory.
/// std::env::set_var("SOCNET_BENCH_DIR", &args.out_dir);
/// let mut exp = Experiment::new("doc-demo", &args);
/// let squares = exp.stage(
///     "squares",
///     &[1u64, 2, 3],
///     |_, x| format!("unit-{x}"),
///     |_ctx, &x| Ok::<u64, UnitError>(x * x),
/// );
/// assert_eq!(squares, vec![Some(1), Some(4), Some(9)]);
/// let report = exp.finish();
/// assert!(report.is_complete());
/// # std::fs::remove_dir_all(std::env::temp_dir().join("socnet-experiment-doc")).ok();
/// ```
pub struct Experiment {
    name: String,
    args: ExperimentArgs,
    ckpt: Option<Checkpoint>,
    report: RunReport,
    cancel: CancelToken,
    started: Instant,
    manifest: RunManifest,
    /// Panic-isolated side pool for work outside the journaled stages
    /// (load generators, warm-up probes). Built lazily so binaries that
    /// never touch it pay for no worker threads.
    pool: Option<Pool>,
    /// Extra `"key": raw-json` pairs appended to `BENCH_<name>.json`.
    extras: Vec<(String, String)>,
    /// Kept alive for the run's duration; dropping it joins the thread.
    _heartbeat: Option<Heartbeat>,
}

impl Experiment {
    /// Starts a run: installs the event sink chosen by the log flags,
    /// resets the metrics registry (one invocation owns it), arms the
    /// time budget, starts the heartbeat thread, and opens (or, under
    /// `--no-resume`, resets) the checkpoint journal.
    ///
    /// A journal that cannot be opened (unwritable directory, corrupt
    /// beyond the header) degrades to running without checkpoints — an
    /// experiment never refuses to run because its bookkeeping is sick.
    pub fn new(name: &str, args: &ExperimentArgs) -> Self {
        if let Err(e) = obs::init(args.log_format, args.log_file.as_deref(), args.quiet) {
            // Fall back to stderr so diagnostics are never lost.
            obs::init(args.log_format, None, args.quiet).ok();
            obs::warn(
                "log.file_failed",
                &[("error", e.to_string().into())],
            );
        }
        Metrics::global().reset();
        Metrics::global().gauge_set("threads", args.threads as f64);
        Metrics::global().gauge_set("scale", args.scale);

        let mut manifest = RunManifest::new(name);
        manifest
            .arg_num("scale", args.scale, 6)
            .arg_int("seed", args.seed)
            .arg_int("sources", args.sources as u64)
            .arg_str("out", &args.out_dir.display().to_string())
            .arg_bool("resume", args.resume)
            .arg_int("retries", args.retries as u64)
            .arg_int("threads", args.threads as u64);
        if let Some(budget) = args.time_budget {
            manifest.arg_num("time_budget_s", budget.as_secs_f64(), 3);
        }

        obs::info(
            "run.start",
            &[
                ("name", name.into()),
                ("scale", args.scale.into()),
                ("seed", args.seed.into()),
                ("sources", args.sources.into()),
                ("threads", args.threads.into()),
            ],
        );

        let cancel = match args.time_budget {
            Some(budget) => CancelToken::with_budget(budget),
            None => CancelToken::new(),
        };
        let path = args.out_dir.join(format!("{name}.ckpt"));
        if !args.resume {
            std::fs::remove_file(&path).ok();
        }
        let key = format!(
            "{name} scale={} seed={} sources={}",
            args.scale, args.seed, args.sources
        );
        let ckpt = match Checkpoint::open(&path, &key) {
            Ok(c) => Some(c),
            Err(e) => {
                obs::warn(
                    "checkpoint.unavailable",
                    &[
                        ("path", path.display().to_string().into()),
                        ("error", e.to_string().into()),
                    ],
                );
                None
            }
        };
        Experiment {
            name: name.to_string(),
            args: args.clone(),
            ckpt,
            report: RunReport::new(),
            cancel,
            started: Instant::now(),
            manifest,
            pool: None,
            extras: Vec::new(),
            _heartbeat: Heartbeat::start(),
        }
    }

    /// The arguments the run was invoked with.
    pub fn args(&self) -> &ExperimentArgs {
        &self.args
    }

    /// The run-wide cancellation token (deadline included).
    pub fn cancel(&self) -> &CancelToken {
        &self.cancel
    }

    /// The report accumulated so far.
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// The run's shared side pool (`--threads` workers), built on first
    /// use. [`finish`](Experiment::finish) drains it with a bounded
    /// deadline, so every bench binary ends with an accounted shutdown
    /// instead of detached threads.
    pub fn pool(&mut self) -> &Pool {
        let threads = self.args.threads.max(1);
        self.pool.get_or_insert_with(|| Pool::new(threads))
    }

    /// Appends a `"key": value` pair to the run's `BENCH_<name>.json`.
    /// `raw` must already be valid JSON (use `socnet_runner::json::num`
    /// for floats); it is emitted verbatim under `"extras"`.
    pub fn bench_extra(&mut self, key: &str, raw: impl Into<String>) {
        self.extras.push((key.to_string(), raw.into()));
    }

    /// Runs one stage: journaled units are resumed without recomputing,
    /// the rest fan out over the panic-isolated pool (`--threads` wide)
    /// and are journaled as they complete. Returns one output slot per
    /// item, `None` where the unit failed or was pre-empted.
    ///
    /// `id_of` must be stable across invocations — it is the resume key.
    pub fn stage<I, O, F, G>(
        &mut self,
        stage: &str,
        items: &[I],
        id_of: G,
        worker: F,
    ) -> Vec<Option<O>>
    where
        I: Sync,
        O: Payload + Send,
        F: Fn(UnitCtx<'_>, &I) -> Result<O, UnitError> + Sync,
        G: Fn(usize, &I) -> String + Sync,
    {
        let threads = self.args.threads;
        self.stage_with_threads(stage, items, threads, id_of, worker)
    }

    /// Like [`stage`](Experiment::stage), but the outer per-dataset loop
    /// runs serially: for stages whose workers are themselves parallel
    /// per-source sweeps (via [`inner_par`] with `args.threads`), so the
    /// machine is never oversubscribed with `datasets × threads` workers.
    pub fn sweep_stage<I, O, F, G>(
        &mut self,
        stage: &str,
        items: &[I],
        id_of: G,
        worker: F,
    ) -> Vec<Option<O>>
    where
        I: Sync,
        O: Payload + Send,
        F: Fn(UnitCtx<'_>, &I) -> Result<O, UnitError> + Sync,
        G: Fn(usize, &I) -> String + Sync,
    {
        self.stage_with_threads(stage, items, 1, id_of, worker)
    }

    fn stage_with_threads<I, O, F, G>(
        &mut self,
        stage: &str,
        items: &[I],
        threads: usize,
        id_of: G,
        worker: F,
    ) -> Vec<Option<O>>
    where
        I: Sync,
        O: Payload + Send,
        F: Fn(UnitCtx<'_>, &I) -> Result<O, UnitError> + Sync,
        G: Fn(usize, &I) -> String + Sync,
    {
        let stage_start = Instant::now();
        let ids: Vec<String> = items.iter().enumerate().map(|(i, it)| id_of(i, it)).collect();

        // Partition into resumed (journaled with a decodable payload)
        // and pending units.
        let mut outputs: Vec<Option<O>> = Vec::with_capacity(items.len());
        let mut resumed: Vec<bool> = Vec::with_capacity(items.len());
        for id in &ids {
            let restored = self
                .ckpt
                .as_ref()
                .and_then(|c| c.get(id))
                .and_then(|payload| O::decode_payload(&payload));
            resumed.push(restored.is_some());
            outputs.push(restored);
        }
        let pending: Vec<usize> = (0..items.len()).filter(|&i| !resumed[i]).collect();
        let hits = items.len() - pending.len();
        Metrics::global().incr("checkpoint.hits", hits as u64);
        obs::info(
            "stage.start",
            &[
                ("stage", stage.into()),
                ("units", items.len().into()),
                ("resumed", hits.into()),
                ("threads", threads.into()),
            ],
        );

        let pool = PoolConfig {
            threads,
            max_attempts: self.args.retries + 1,
            cancel: self.cancel.clone(),
        };
        let pooled = run_units(
            stage,
            &pending,
            &pool,
            |_, &i| ids[i].clone(),
            |ctx, &i| {
                worker(
                    UnitCtx {
                        index: i,
                        attempt: ctx.attempt,
                        cancel: ctx.cancel,
                    },
                    &items[i],
                )
            },
        );

        // Journal fresh completions, then merge everything in item order.
        let mut fresh: Vec<Option<O>> = pooled.outputs;
        let mut stage_report = StageReport::new(stage);
        let mut fresh_records = pooled.report.units.into_iter();
        let mut fresh_iter = 0usize;
        for (i, id) in ids.iter().enumerate() {
            if resumed[i] {
                stage_report.units.push(UnitRecord::resumed(id.clone()));
                continue;
            }
            let record = fresh_records.next().expect("one record per pending unit");
            let out = fresh[fresh_iter].take();
            fresh_iter += 1;
            if let Some(o) = &out {
                if let Some(ckpt) = &self.ckpt {
                    if let Err(e) = ckpt.record(id, &o.encode_payload()) {
                        obs::warn(
                            "checkpoint.append_failed",
                            &[("id", id.as_str().into()), ("error", e.to_string().into())],
                        );
                    }
                }
            }
            outputs[i] = out;
            stage_report.units.push(record);
        }
        stage_report.wall = stage_start.elapsed();
        // Resumed units never reach the pool, so account for them here.
        Metrics::global().incr("units.resumed", hits as u64);
        obs::info(
            "stage.done",
            &[
                ("stage", stage.into()),
                ("ok", (stage_report.completed() + stage_report.resumed()).into()),
                ("total", stage_report.total().into()),
                ("coverage", stage_report.coverage().into()),
                ("wall_s", stage_report.wall.as_secs_f64().into()),
            ],
        );
        self.report.push(stage_report);
        outputs
    }

    /// Finishes the run: prints the report, writes it beside the CSVs as
    /// `<name>_report.txt`, and writes the machine-readable artifacts —
    /// `<out>/run.json` (manifest), `<out>/<name>_metrics.json` (metrics
    /// snapshot), and `BENCH_<name>.json` (per-stage wall/throughput,
    /// into `SOCNET_BENCH_DIR` or the working directory) — then returns
    /// the report.
    ///
    /// A complete run removes its checkpoint journal (there is nothing
    /// left to resume); a degraded or pre-empted run keeps it so the
    /// next invocation picks up the finished units.
    pub fn finish(self) -> RunReport {
        // Drain the side pool first so its jobs are finished (and its
        // panics counted) before the metrics snapshot is written.
        if let Some(pool) = &self.pool {
            let drain = pool.drain(Duration::from_secs(10));
            obs::info(
                "run.pool_drained",
                &[
                    ("finished", drain.finished.into()),
                    ("panicked", drain.panicked.into()),
                    ("abandoned", drain.abandoned.into()),
                    ("timed_out", drain.timed_out.into()),
                ],
            );
        }
        println!("{}", self.report.render());
        if let Err(e) = self
            .report
            .write_beside_artifacts(&self.args.out_dir, &self.name)
        {
            obs::warn("report.write_failed", &[("error", e.to_string().into())]);
        }

        let run_path = self.args.out_dir.join("run.json");
        match self.manifest.write(&self.report, &run_path) {
            Ok(()) => obs::info(
                "artifact.written",
                &[("path", run_path.display().to_string().into())],
            ),
            Err(e) => obs::warn(
                "manifest.write_failed",
                &[("error", e.to_string().into())],
            ),
        }

        let metrics_path = self.args.out_dir.join(format!("{}_metrics.json", self.name));
        match Metrics::global().write_snapshot(&metrics_path) {
            Ok(()) => obs::info(
                "artifact.written",
                &[("path", metrics_path.display().to_string().into())],
            ),
            Err(e) => obs::warn(
                "metrics.write_failed",
                &[("error", e.to_string().into())],
            ),
        }

        let bench_dir = std::env::var_os("SOCNET_BENCH_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."));
        match write_bench_with(&self.name, &self.report, &bench_dir, &self.extras) {
            Ok(path) => obs::info(
                "artifact.written",
                &[("path", path.display().to_string().into())],
            ),
            Err(e) => obs::warn("bench.write_failed", &[("error", e.to_string().into())]),
        }

        if self.report.is_complete() {
            if let Some(ckpt) = &self.ckpt {
                std::fs::remove_file(ckpt.path()).ok();
            }
        } else {
            obs::info(
                "run.resumable",
                &[(
                    "hint",
                    "rerun with the same --scale/--seed/--sources to resume".into(),
                )],
            );
        }
        obs::info(
            "run.done",
            &[
                ("name", self.name.as_str().into()),
                ("wall_s", self.started.elapsed().as_secs_f64().into()),
                ("complete", self.report.is_complete().into()),
            ],
        );
        self.report
    }
}
