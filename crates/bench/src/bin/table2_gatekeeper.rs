//! Table II — GateKeeper on four social graphs with different mixing
//! characteristics: honest acceptance (percent of the whole honest
//! graph) and Sybils admitted per attack edge, for admission thresholds
//! `f ∈ {0.1, 0.2, 0.4}`. Attackers are selected randomly and 99
//! distributors are sampled in each case, as in the paper.

use socnet_bench::{cell, fmt_f64, panels, ExperimentArgs, TableView};
use socnet_sybil::{
    eval, AttackedGraph, GateKeeper, GateKeeperConfig, SybilAttack, SybilTopology,
};

fn main() {
    let args = ExperimentArgs::parse();
    let mut headers = vec!["dataset".to_string(), "attack-edges".into(), "accept".into()];
    headers.extend(panels::TABLE2_F.iter().map(|f| format!("f={f}")));
    let mut table =
        TableView::new("Table II: GateKeeper admission under Sybil attack", headers);

    for &(d, attack_edges) in &panels::TABLE2 {
        let honest = args.dataset(d);
        let attack_edges = ((attack_edges as f64 * args.scale).round() as usize).max(1);
        let attack = SybilAttack {
            sybil_count: 100,
            attack_edges,
            topology: SybilTopology::ErdosRenyi { p: 0.1 },
            seed: args.seed,
        };
        let attacked = AttackedGraph::mount(&honest, &attack);
        eprintln!(
            "  {}: honest n = {}, sybils = {}, attack edges = {}",
            d.name(),
            attacked.honest_count(),
            attacked.sybil_count(),
            attack_edges
        );

        let mut honest_row =
            vec![cell(d.name()), cell(attack_edges), "Honest %".to_string()];
        let mut sybil_row =
            vec![cell(d.name()), cell(attack_edges), "Sybil/edge".to_string()];
        for &f in &panels::TABLE2_F {
            let gk = GateKeeper::new(GateKeeperConfig {
                distributors: 99,
                f_admit: f,
                coverage: 0.5,
                sample_walk_length: 25,
                seed: args.seed,
            });
            let outcome = gk.run(&attacked);
            let stats = eval::admission_stats(&attacked, outcome.admitted());
            honest_row.push(format!("{:.1}%", 100.0 * stats.honest_accept_rate));
            sybil_row.push(fmt_f64(stats.sybils_per_attack_edge));
            eprintln!(
                "    f = {f}: honest {:.1}%, sybil/edge {:.2}",
                100.0 * stats.honest_accept_rate,
                stats.sybils_per_attack_edge
            );
        }
        table.push_row(honest_row);
        table.push_row(sybil_row);
    }

    table.print();
    match table.write_csv(&args.out_dir, "table2") {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
