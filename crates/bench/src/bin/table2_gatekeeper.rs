//! Table II — GateKeeper on four social graphs with different mixing
//! characteristics: honest acceptance (percent of the whole honest
//! graph) and Sybils admitted per attack edge, for admission thresholds
//! `f ∈ {0.1, 0.2, 0.4}`. Attackers are selected randomly and 99
//! distributors are sampled in each case, as in the paper.
//!
//! Runs on the fault-tolerant harness: one unit per dataset, with the
//! per-distributor floods inside it sharing the run's deadline.

use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet_bench::{
    cell, degraded, emit_csv, fmt_f64, inner_par, panels, Experiment, ExperimentArgs, TableView,
};
use socnet_runner::{obs, UnitError};
use socnet_sybil::{
    eval, AttackedGraph, GateKeeper, GateKeeperConfig, SybilAttack, SybilTopology,
};

fn main() {
    let args = ExperimentArgs::parse();
    let mut exp = Experiment::new("table2", &args);
    let blocks = exp.sweep_stage(
        "gatekeeper",
        &panels::TABLE2,
        |_, (d, _)| format!("gatekeeper/{}", d.name()),
        |ctx, &(d, attack_edges)| {
            let honest = args.dataset(d);
            let attack_edges = ((attack_edges as f64 * args.scale).round() as usize).max(1);
            let attack = SybilAttack {
                sybil_count: 100,
                attack_edges,
                topology: SybilTopology::ErdosRenyi { p: 0.1 },
                seed: args.seed,
            };
            let attacked = AttackedGraph::mount(&honest, &attack);
            obs::info(
                "dataset.measured",
                &[
                    ("dataset", d.name().into()),
                    ("honest_n", attacked.honest_count().into()),
                    ("sybils", attacked.sybil_count().into()),
                    ("attack_edges", attack_edges.into()),
                ],
            );

            let mut honest_row =
                vec![cell(d.name()), cell(attack_edges), "Honest %".to_string()];
            let mut sybil_row =
                vec![cell(d.name()), cell(attack_edges), "Sybil/edge".to_string()];
            for &f in &panels::TABLE2_F {
                let gk = GateKeeper::new(GateKeeperConfig {
                    distributors: 99,
                    f_admit: f,
                    coverage: 0.5,
                    sample_walk_length: 25,
                    seed: args.seed,
                });
                // Same controller `run` would sample, but through the
                // reported entry point so the floods share our token.
                let controller =
                    attacked.random_honest(&mut StdRng::seed_from_u64(args.seed));
                let (outcome, report) = gk
                    .run_from_reported(
                        attacked.graph(),
                        controller,
                        &inner_par(ctx.cancel, args.threads),
                    )
                    .map_err(|e| UnitError::Failed(e.to_string()))?;
                if !report.is_complete() {
                    return Err(degraded(ctx.cancel, &report));
                }
                let stats = eval::admission_stats(&attacked, outcome.admitted());
                honest_row.push(format!("{:.1}%", 100.0 * stats.honest_accept_rate));
                sybil_row.push(fmt_f64(stats.sybils_per_attack_edge));
                obs::info(
                    "gatekeeper.threshold",
                    &[
                        ("dataset", d.name().into()),
                        ("f", f.into()),
                        ("honest_accept", stats.honest_accept_rate.into()),
                        ("sybils_per_edge", stats.sybils_per_attack_edge.into()),
                    ],
                );
            }
            Ok(vec![honest_row, sybil_row])
        },
    );

    let mut headers = vec!["dataset".to_string(), "attack-edges".into(), "accept".into()];
    headers.extend(panels::TABLE2_F.iter().map(|f| format!("f={f}")));
    let mut table =
        TableView::new("Table II: GateKeeper admission under Sybil attack", headers);
    for rows in blocks.into_iter().flatten() {
        for row in rows {
            table.push_row(row);
        }
    }

    table.print();
    emit_csv(&table, &args.out_dir, "table2");
    exp.finish();
}
