//! E10 (extension) — directed mixing: the authors' follow-up question.
//!
//! The paper symmetrizes its directed crawls (Wiki-vote, Slashdot,
//! Epinion, LiveJournal) before measuring; the follow-up work asks what
//! the *directed* chains look like. This experiment orients each
//! weak-trust registry dataset's edges (keeping a fraction reciprocal),
//! extracts the largest strongly connected component, and measures the
//! directed chain against its symmetrized version under the same
//! random surfer.
//!
//! Runs on the fault-tolerant harness: one unit per dataset, resumable
//! from the checkpoint journal under the same parameters.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use socnet_bench::{cell, emit_csv, fmt_f64, Experiment, ExperimentArgs, TableView};
use socnet_digraph::{largest_scc, Digraph, DirectedMixing, DirectedMixingConfig};
use socnet_gen::Dataset;
use socnet_runner::{obs, UnitError};

/// Fraction of edges kept reciprocal when orienting (measured values for
/// who-trusts-whom crawls are around 0.2–0.4).
const RECIPROCITY: f64 = 0.3;

const DATASETS: [Dataset; 6] = [
    Dataset::WikiVote,
    Dataset::SlashdotA,
    Dataset::Epinion,
    Dataset::Enron,
    Dataset::Physics1,
    Dataset::Physics3,
];

fn main() {
    let args = ExperimentArgs::parse();
    let mut exp = Experiment::new("e10_directed", &args);
    let rows = exp.stage(
        "orient",
        &DATASETS,
        |_, d| format!("orient/{}", d.name()),
        |ctx, &d| {
            if ctx.cancel.is_cancelled() {
                return Err(UnitError::Cancelled);
            }
            let undirected = d.generate_scaled(0.2 * args.scale, args.seed);
            let mut rng = StdRng::seed_from_u64(args.seed);
            let mut arcs = Vec::with_capacity(undirected.degree_sum());
            for (u, v) in undirected.edges() {
                if rng.random_range(0.0..1.0) < RECIPROCITY {
                    arcs.push((u.0, v.0));
                    arcs.push((v.0, u.0));
                } else if rng.random_range(0.0..1.0) < 0.5 {
                    arcs.push((u.0, v.0));
                } else {
                    arcs.push((v.0, u.0));
                }
            }
            let directed = Digraph::from_arcs(undirected.node_count(), arcs);
            let (core, _) = largest_scc(&directed);
            let symmetrized = Digraph::from_undirected(&core.to_undirected());

            let cfg = DirectedMixingConfig {
                sources: args.sources.min(50),
                max_walk: 150,
                teleport: 0.0,
                seed: args.seed,
                ..Default::default()
            };
            let dir = DirectedMixing::measure(&core, &cfg);
            if ctx.cancel.is_cancelled() {
                return Err(UnitError::Cancelled);
            }
            let sym = DirectedMixing::measure(&symmetrized, &cfg);
            let fmt_t = |t: Option<usize>| {
                t.map(|v| v.to_string()).unwrap_or_else(|| format!(">{}", cfg.max_walk))
            };
            obs::info(
                "dataset.measured",
                &[
                    ("dataset", d.name().into()),
                    ("n", undirected.node_count().into()),
                    ("scc_nodes", core.node_count().into()),
                    (
                        "scc_pct",
                        (100 * core.node_count() / undirected.node_count().max(1)).into(),
                    ),
                ],
            );
            Ok(vec![
                cell(d.name()),
                cell(core.node_count()),
                fmt_f64(core.node_count() as f64 / undirected.node_count() as f64),
                cell(core.arc_count()),
                fmt_f64(dir.mean_curve()[24]),
                fmt_f64(sym.mean_curve()[24]),
                fmt_t(dir.mixing_time(0.1)),
                fmt_t(sym.mixing_time(0.1)),
            ])
        },
    );

    let mut table = TableView::new(
        "E10: directed vs symmetrized mixing (oriented registry graphs)",
        vec![
            "dataset".into(),
            "scc-nodes".into(),
            "scc-frac".into(),
            "arcs".into(),
            "dir-TVD@25".into(),
            "sym-TVD@25".into(),
            "dir-T(0.1)".into(),
            "sym-T(0.1)".into(),
        ],
    );
    for row in rows.into_iter().flatten() {
        table.push_row(row);
    }

    table.print();
    emit_csv(&table, &args.out_dir, "e10_directed");
    exp.finish();
}
