//! Figure 5 — relative size of the union-of-cores `ν'_k` and the number
//! of connected cores, as functions of the core depth `k`. Fast-mixing
//! graphs keep a single large core; slow-mixing graphs fragment into
//! multiple small ones.

use socnet_bench::{cell, fmt_f64, panels, ExperimentArgs, TableView};
use socnet_kcore::{core_profiles, CoreDecomposition};

fn main() {
    let args = ExperimentArgs::parse();
    for (i, &d) in panels::FIG5.iter().enumerate() {
        let g = args.dataset(d);
        let decomp = CoreDecomposition::compute(&g);
        let profiles = core_profiles(&g, &decomp);
        eprintln!(
            "  {}: n = {}, degeneracy = {}, cores at k_max = {}",
            d.name(),
            g.node_count(),
            decomp.degeneracy(),
            profiles.last().map(|p| p.components).unwrap_or(0)
        );

        let panel = (b'a' + i as u8) as char;
        let title = format!("Figure 5({panel}): {}", d.name());
        let headers: Vec<String> =
            ["k", "nu-prime", "tau-prime", "num-cores", "largest-core-nodes"]
                .map(String::from)
                .to_vec();
        let mut csv = TableView::new(title.clone(), headers.clone());
        let mut table = TableView::new(title, headers);
        let n = g.node_count();
        let m = g.edge_count();
        let stride = (profiles.len() / 12).max(1);
        for (j, p) in profiles.iter().enumerate() {
            let row = vec![
                cell(p.k),
                fmt_f64(p.nu_prime(n)),
                fmt_f64(p.tau_prime(m)),
                cell(p.components),
                cell(p.largest_nodes),
            ];
            if j % stride == 0 || j + 1 == profiles.len() {
                table.push_row(row.clone());
            }
            csv.push_row(row);
        }
        match csv.write_csv(&args.out_dir, &format!("fig5{panel}")) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("csv write failed: {e}"),
        }
        table.print();
    }
}
