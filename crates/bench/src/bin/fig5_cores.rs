//! Figure 5 — relative size of the union-of-cores `ν'_k` and the number
//! of connected cores, as functions of the core depth `k`. Fast-mixing
//! graphs keep a single large core; slow-mixing graphs fragment into
//! multiple small ones.
//!
//! Runs on the fault-tolerant harness: one unit per dataset (panel),
//! journaling each panel's finished row block so an interrupted run
//! resumes without recomputing core decompositions.

use socnet_bench::{cell, emit_csv, fmt_f64, panels, Experiment, ExperimentArgs, TableView};
use socnet_kcore::{core_profiles, CoreDecomposition};
use socnet_runner::{obs, UnitError};

fn main() {
    let args = ExperimentArgs::parse();
    let mut exp = Experiment::new("fig5", &args);
    let blocks = exp.stage(
        "profiles",
        &panels::FIG5,
        |_, d| format!("profiles/{}", d.name()),
        |ctx, &d| {
            if ctx.cancel.is_cancelled() {
                return Err(UnitError::Cancelled);
            }
            let g = args.dataset(d);
            let decomp = CoreDecomposition::compute(&g);
            let profiles = core_profiles(&g, &decomp);
            obs::info(
                "dataset.measured",
                &[
                    ("dataset", d.name().into()),
                    ("n", g.node_count().into()),
                    ("degeneracy", decomp.degeneracy().into()),
                    (
                        "cores_at_k_max",
                        profiles.last().map(|p| p.components).unwrap_or(0).into(),
                    ),
                ],
            );
            let n = g.node_count();
            let m = g.edge_count();
            let rows: Vec<Vec<String>> = profiles
                .iter()
                .map(|p| {
                    vec![
                        cell(p.k),
                        fmt_f64(p.nu_prime(n)),
                        fmt_f64(p.tau_prime(m)),
                        cell(p.components),
                        cell(p.largest_nodes),
                    ]
                })
                .collect();
            Ok(rows)
        },
    );

    for (i, (d, rows)) in panels::FIG5.iter().zip(blocks).enumerate() {
        let Some(rows) = rows else { continue };
        let panel = (b'a' + i as u8) as char;
        let title = format!("Figure 5({panel}): {}", d.name());
        let headers: Vec<String> =
            ["k", "nu-prime", "tau-prime", "num-cores", "largest-core-nodes"]
                .map(String::from)
                .to_vec();
        let mut csv = TableView::new(title.clone(), headers.clone());
        let mut table = TableView::new(title, headers);
        let stride = (rows.len() / 12).max(1);
        for (j, row) in rows.iter().enumerate() {
            if j % stride == 0 || j + 1 == rows.len() {
                table.push_row(row.clone());
            }
            csv.push_row(row.clone());
        }
        emit_csv(&csv, &args.out_dir, &format!("fig5{panel}"));
        table.print();
    }
    exp.finish();
}
