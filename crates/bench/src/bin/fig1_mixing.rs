//! Figure 1 — mixing time of the social graphs, measured with the
//! sampling method: mean total variation distance over sampled walk
//! sources, as a function of walk length. Panel (a) covers the
//! small-to-medium datasets, panel (b) the large ones.
//!
//! Runs on the fault-tolerant harness: each dataset is one unit, so a
//! panicking or over-deadline dataset costs only its column, and an
//! interrupted run resumed with the same `--scale/--seed/--sources`
//! replays finished datasets from the checkpoint journal. Datasets run
//! serially; within each dataset the per-source sweep fans out
//! `--threads` wide (identical output bytes at any width).

use socnet_bench::{
    cell, degraded, emit_csv, fmt_f64, inner_par, panels, Experiment, ExperimentArgs, TableView,
};
use socnet_gen::Dataset;
use socnet_mixing::{MixingConfig, MixingMeasurement};
use socnet_runner::obs;

const MAX_WALK: usize = 300;
/// Walk lengths printed in the on-screen table (CSV gets full resolution).
const PRINT_AT: [usize; 9] = [1, 2, 5, 10, 20, 50, 100, 200, 300];

fn main() {
    let args = ExperimentArgs::parse();
    let mut exp = Experiment::new("fig1", &args);
    run_panel(&mut exp, "fig1a", "Figure 1(a): small to medium datasets", &panels::FIG1_SMALL);
    run_panel(&mut exp, "fig1b", "Figure 1(b): large datasets", &panels::FIG1_LARGE);
    exp.finish();
}

fn run_panel(exp: &mut Experiment, stem: &str, title: &str, datasets: &[Dataset]) {
    let args = exp.args().clone();
    let curves = exp.sweep_stage(
        stem,
        datasets,
        |_, d| format!("{stem}/{}", d.name()),
        |ctx, &d| {
            let g = args.dataset(d);
            let cfg = MixingConfig {
                sources: args.sources,
                max_walk: MAX_WALK,
                laziness: 0.0,
                seed: args.seed.wrapping_add(u64::from(ctx.attempt) - 1),
            };
            let (m, report) =
                MixingMeasurement::measure_reported(&g, &cfg, &inner_par(ctx.cancel, args.threads));
            if !report.is_complete() {
                return Err(degraded(ctx.cancel, &report));
            }
            let curve = m.mean_curve();
            obs::info(
                "dataset.measured",
                &[
                    ("dataset", d.name().into()),
                    ("n", g.node_count().into()),
                    ("tvd_at_10", curve[9].into()),
                    ("tvd_at_100", curve[99].into()),
                    ("mixing_time_0.1", format!("{:?}", m.mixing_time(0.10)).into()),
                ],
            );
            Ok(curve)
        },
    );

    // Completed datasets only: a degraded run writes the columns it has.
    let mut names: Vec<String> = Vec::new();
    let mut cols: Vec<Vec<f64>> = Vec::new();
    for (d, c) in datasets.iter().zip(curves) {
        if let Some(c) = c {
            names.push(d.name().to_string());
            cols.push(c);
        }
    }
    let mut headers = vec!["walk-length".to_string()];
    headers.extend(names);

    // Full-resolution CSV.
    let mut csv = TableView::new(title, headers.clone());
    for t in 1..=MAX_WALK {
        let mut row = vec![cell(t)];
        row.extend(cols.iter().map(|c| fmt_f64(c[t - 1])));
        csv.push_row(row);
    }
    emit_csv(&csv, &args.out_dir, stem);

    // Condensed console table.
    let mut table = TableView::new(title, headers);
    for t in PRINT_AT {
        if t > MAX_WALK {
            continue;
        }
        let mut row = vec![cell(t)];
        row.extend(cols.iter().map(|c| fmt_f64(c[t - 1])));
        table.push_row(row);
    }
    table.print();
}
