//! Figure 1 — mixing time of the social graphs, measured with the
//! sampling method: mean total variation distance over sampled walk
//! sources, as a function of walk length. Panel (a) covers the
//! small-to-medium datasets, panel (b) the large ones.
//!
//! Runs on the fault-tolerant harness: each dataset is one unit, so a
//! panicking or over-deadline dataset costs only its column, and an
//! interrupted run resumed with the same `--scale/--seed/--sources`
//! replays finished datasets from the checkpoint journal. Datasets run
//! serially; within each dataset the per-source sweep fans out
//! `--threads` wide (identical output bytes at any width).

use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet_bench::{
    cell, degraded, emit_csv, fmt_f64, inner_par, panels, Experiment, ExperimentArgs,
    MixingEstimator, TableView,
};
use socnet_core::{sample_nodes, Csr, Graph};
use socnet_gen::Dataset;
use socnet_mixing::{
    estimate_mixing_csr, MixingConfig, MixingError, MixingMeasurement, SampleMixingConfig,
};
use socnet_runner::{obs, CancelToken, UnitError};

const MAX_WALK: usize = 300;
/// Walk lengths printed in the on-screen table (CSV gets full resolution).
const PRINT_AT: [usize; 9] = [1, 2, 5, 10, 20, 50, 100, 200, 300];

fn main() {
    let args = ExperimentArgs::parse();
    let mut exp = Experiment::new("fig1", &args);
    run_panel(&mut exp, "fig1a", "Figure 1(a): small to medium datasets", &panels::FIG1_SMALL);
    run_panel(&mut exp, "fig1b", "Figure 1(b): large datasets", &panels::FIG1_LARGE);
    exp.finish();
}

fn run_panel(exp: &mut Experiment, stem: &str, title: &str, datasets: &[Dataset]) {
    let args = exp.args().clone();
    // The estimator is part of the resume key: a journal written by the
    // exact path must never be replayed into a sampled run (or vice
    // versa), since their curves measure different quantities.
    let id_suffix = match args.mixing_est {
        MixingEstimator::Exact => "",
        MixingEstimator::Sample => "/sample",
    };
    let curves = exp.sweep_stage(
        stem,
        datasets,
        |_, d| format!("{stem}/{}{id_suffix}", d.name()),
        |ctx, &d| {
            let g = args.dataset(d);
            let seed = args.seed.wrapping_add(u64::from(ctx.attempt) - 1);
            let (curve, mixing_time) = match args.mixing_est {
                MixingEstimator::Exact => {
                    let cfg = MixingConfig {
                        sources: args.sources,
                        max_walk: MAX_WALK,
                        laziness: 0.0,
                        seed,
                    };
                    let (m, report) = MixingMeasurement::measure_reported(
                        &g,
                        &cfg,
                        &inner_par(ctx.cancel, args.threads),
                    );
                    if !report.is_complete() {
                        return Err(degraded(ctx.cancel, &report));
                    }
                    let mt = m.mixing_time(0.10);
                    (m.mean_curve(), mt)
                }
                MixingEstimator::Sample => sampled_curve(&g, seed, args.sources, ctx.cancel)?,
            };
            obs::info(
                "dataset.measured",
                &[
                    ("dataset", d.name().into()),
                    ("n", g.node_count().into()),
                    ("tvd_at_10", curve[9].into()),
                    ("tvd_at_100", curve[99].into()),
                    ("mixing_time_0.1", format!("{mixing_time:?}").into()),
                ],
            );
            Ok(curve)
        },
    );

    // Completed datasets only: a degraded run writes the columns it has.
    let mut names: Vec<String> = Vec::new();
    let mut cols: Vec<Vec<f64>> = Vec::new();
    for (d, c) in datasets.iter().zip(curves) {
        if let Some(c) = c {
            names.push(d.name().to_string());
            cols.push(c);
        }
    }
    let mut headers = vec!["walk-length".to_string()];
    headers.extend(names);

    // Full-resolution CSV.
    let mut csv = TableView::new(title, headers.clone());
    for t in 1..=MAX_WALK {
        let mut row = vec![cell(t)];
        row.extend(cols.iter().map(|c| fmt_f64(c[t - 1])));
        csv.push_row(row);
    }
    emit_csv(&csv, &args.out_dir, stem);

    // Condensed console table.
    let mut table = TableView::new(title, headers);
    for t in PRINT_AT {
        if t > MAX_WALK {
            continue;
        }
        let mut row = vec![cell(t)];
        row.extend(cols.iter().map(|c| fmt_f64(c[t - 1])));
        table.push_row(row);
    }
    table.print();
}

/// `--mixing-est sample`: the mean collision-sampled TVD upper bound
/// over randomly chosen walk sources, mirroring the exact path's mean
/// curve (and its `mixing_time` read-off at ε = 0.1). Isolated sources
/// cannot host a walk and are skipped; a graph where every sampled
/// source is isolated fails the unit.
fn sampled_curve(
    g: &Graph,
    seed: u64,
    sources: usize,
    cancel: &CancelToken,
) -> Result<(Vec<f64>, Option<usize>), UnitError> {
    let csr = Csr::from_graph(g);
    let mut rng = StdRng::seed_from_u64(seed);
    let picked = sample_nodes(g, sources, &mut rng);
    let mut mean = vec![0.0f64; MAX_WALK];
    let mut used = 0usize;
    for s in picked {
        if cancel.is_cancelled() {
            return Err(UnitError::Cancelled);
        }
        let cfg = SampleMixingConfig {
            max_walk: MAX_WALK,
            seed: seed ^ (u64::from(s.0) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ..Default::default()
        };
        match estimate_mixing_csr(&csr, s, &cfg) {
            Ok(est) => {
                for (m, b) in mean.iter_mut().zip(&est.bound) {
                    *m += *b;
                }
                used += 1;
            }
            // An isolated source (or other degenerate input) cannot be
            // estimated; the mean is over the sources that can.
            Err(MixingError::InvalidParameter(_)) => continue,
            Err(e) => return Err(UnitError::Failed(e.to_string())),
        }
    }
    if used == 0 {
        return Err(UnitError::Failed(
            "no sampled source supports a random walk".to_string(),
        ));
    }
    for m in &mut mean {
        *m /= used as f64;
    }
    let mixing_time = mean.iter().position(|&d| d < 0.10).map(|t| t + 1);
    Ok((mean, mixing_time))
}
