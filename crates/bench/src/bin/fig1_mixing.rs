//! Figure 1 — mixing time of the social graphs, measured with the
//! sampling method: mean total variation distance over sampled walk
//! sources, as a function of walk length. Panel (a) covers the
//! small-to-medium datasets, panel (b) the large ones.

use socnet_bench::{cell, fmt_f64, panels, ExperimentArgs, TableView};
use socnet_gen::Dataset;
use socnet_mixing::{MixingConfig, MixingMeasurement};

const MAX_WALK: usize = 300;
/// Walk lengths printed in the on-screen table (CSV gets full resolution).
const PRINT_AT: [usize; 9] = [1, 2, 5, 10, 20, 50, 100, 200, 300];

fn main() {
    let args = ExperimentArgs::parse();
    run_panel("fig1a", "Figure 1(a): small to medium datasets", &panels::FIG1_SMALL, &args);
    run_panel("fig1b", "Figure 1(b): large datasets", &panels::FIG1_LARGE, &args);
}

fn run_panel(stem: &str, title: &str, datasets: &[Dataset], args: &ExperimentArgs) {
    let mut headers = vec!["walk-length".to_string()];
    headers.extend(datasets.iter().map(|d| d.name().to_string()));

    let mut curves: Vec<Vec<f64>> = Vec::new();
    for &d in datasets {
        let g = args.dataset(d);
        let cfg = MixingConfig {
            sources: args.sources,
            max_walk: MAX_WALK,
            laziness: 0.0,
            seed: args.seed,
        };
        let m = MixingMeasurement::measure(&g, &cfg);
        let curve = m.mean_curve();
        eprintln!(
            "  {}: n = {}, TVD@10 = {:.4}, TVD@100 = {:.4}, T(0.1) = {:?}",
            d.name(),
            g.node_count(),
            curve[9],
            curve[99],
            m.mixing_time(0.10)
        );
        curves.push(curve);
    }

    // Full-resolution CSV.
    let mut csv = TableView::new(title, headers.clone());
    for t in 1..=MAX_WALK {
        let mut row = vec![cell(t)];
        row.extend(curves.iter().map(|c| fmt_f64(c[t - 1])));
        csv.push_row(row);
    }
    match csv.write_csv(&args.out_dir, stem) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }

    // Condensed console table.
    let mut table = TableView::new(title, headers);
    for t in PRINT_AT {
        if t > MAX_WALK {
            continue;
        }
        let mut row = vec![cell(t)];
        row.extend(curves.iter().map(|c| fmt_f64(c[t - 1])));
        table.push_row(row);
    }
    table.print();
}
