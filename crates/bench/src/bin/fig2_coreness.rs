//! Figure 2 — coreness distribution (empirical CDF) of the social
//! graphs. Fast-mixing graphs put a large node mass at high coreness;
//! slow-mixing graphs concentrate at low coreness.
//!
//! Runs on the fault-tolerant harness: one unit per dataset. Each unit's
//! checkpoint payload is its ECDF evaluated at every integer core number
//! up to that dataset's own degeneracy, so the cross-dataset grid can be
//! rebuilt after a resume without recomputing any decomposition.

use socnet_bench::{cell, emit_csv, fmt_f64, panels, Experiment, ExperimentArgs, TableView};
use socnet_gen::Dataset;
use socnet_kcore::{coreness_ecdf, CoreDecomposition};
use socnet_runner::{obs, UnitError};

fn main() {
    let args = ExperimentArgs::parse();
    let mut exp = Experiment::new("fig2", &args);
    run_panel(&mut exp, "fig2a", "Figure 2(a): coreness ECDF, small datasets", &panels::FIG2_SMALL);
    run_panel(&mut exp, "fig2b", "Figure 2(b): coreness ECDF, large datasets", &panels::FIG2_LARGE);
    exp.finish();
}

fn run_panel(exp: &mut Experiment, stem: &str, title: &str, datasets: &[Dataset]) {
    let args = exp.args().clone();
    let evals = exp.stage(
        stem,
        datasets,
        |_, d| format!("{stem}/{}", d.name()),
        |ctx, &d| {
            if ctx.cancel.is_cancelled() {
                return Err(UnitError::Cancelled);
            }
            let g = args.dataset(d);
            let decomp = CoreDecomposition::compute(&g);
            let ecdf = coreness_ecdf(&decomp);
            obs::info(
                "dataset.measured",
                &[
                    ("dataset", d.name().into()),
                    ("n", g.node_count().into()),
                    ("degeneracy", decomp.degeneracy().into()),
                    ("median_coreness", ecdf.quantile(0.5).into()),
                ],
            );
            let evals: Vec<f64> =
                (0..=decomp.degeneracy()).map(|k| ecdf.eval(k as f64)).collect();
            Ok(evals)
        },
    );

    // Completed datasets only; evaluate every ECDF on a common grid of
    // core numbers so the table lines up like the paper's plot. Beyond a
    // dataset's own degeneracy the CDF has saturated at its last value.
    let mut names: Vec<String> = Vec::new();
    let mut cols: Vec<Vec<f64>> = Vec::new();
    for (d, e) in datasets.iter().zip(evals) {
        if let Some(e) = e {
            names.push(d.name().to_string());
            cols.push(e);
        }
    }
    let max_core = cols.iter().map(|c| c.len().saturating_sub(1)).max().unwrap_or(0);

    let mut headers = vec!["core-number".to_string()];
    headers.extend(names);
    let mut csv = TableView::new(title, headers.clone());
    let mut table = TableView::new(title, headers);

    let grid: Vec<usize> = (0..=max_core).collect();
    let print_stride = (grid.len() / 12).max(1);
    for (i, &k) in grid.iter().enumerate() {
        let mut row = vec![cell(k)];
        row.extend(
            cols.iter()
                .map(|c| fmt_f64(c.get(k).or(c.last()).copied().unwrap_or(1.0))),
        );
        if i % print_stride == 0 || i + 1 == grid.len() {
            table.push_row(row.clone());
        }
        csv.push_row(row);
    }
    emit_csv(&csv, &args.out_dir, stem);
    table.print();
}
