//! Figure 2 — coreness distribution (empirical CDF) of the social
//! graphs. Fast-mixing graphs put a large node mass at high coreness;
//! slow-mixing graphs concentrate at low coreness.

use socnet_bench::{cell, fmt_f64, panels, ExperimentArgs, TableView};
use socnet_gen::Dataset;
use socnet_kcore::{coreness_ecdf, CoreDecomposition};

fn main() {
    let args = ExperimentArgs::parse();
    run_panel("fig2a", "Figure 2(a): coreness ECDF, small datasets", &panels::FIG2_SMALL, &args);
    run_panel("fig2b", "Figure 2(b): coreness ECDF, large datasets", &panels::FIG2_LARGE, &args);
}

fn run_panel(stem: &str, title: &str, datasets: &[Dataset], args: &ExperimentArgs) {
    // Compute every ECDF, then evaluate all of them on a common grid of
    // core numbers so the table lines up like the paper's plot.
    let mut ecdfs = Vec::new();
    let mut max_core = 0u32;
    for &d in datasets {
        let g = args.dataset(d);
        let decomp = CoreDecomposition::compute(&g);
        eprintln!(
            "  {}: n = {}, degeneracy = {}, median coreness = {}",
            d.name(),
            g.node_count(),
            decomp.degeneracy(),
            coreness_ecdf(&decomp).quantile(0.5)
        );
        max_core = max_core.max(decomp.degeneracy());
        ecdfs.push(coreness_ecdf(&decomp));
    }

    let mut headers = vec!["core-number".to_string()];
    headers.extend(datasets.iter().map(|d| d.name().to_string()));
    let mut csv = TableView::new(title, headers.clone());
    let mut table = TableView::new(title, headers);

    let grid: Vec<u32> = (0..=max_core).collect();
    let print_stride = (grid.len() / 12).max(1);
    for (i, &k) in grid.iter().enumerate() {
        let mut row = vec![cell(k)];
        row.extend(ecdfs.iter().map(|e| fmt_f64(e.eval(k as f64))));
        if i % print_stride == 0 || i + 1 == grid.len() {
            table.push_row(row.clone());
        }
        csv.push_row(row);
    }
    match csv.write_csv(&args.out_dir, stem) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
    table.print();
}
