//! Figure 3 — expansion of node sets: for envelopes grown from every
//! core node (or a sample on large graphs), the minimum, mean, and
//! maximum number of neighbors per envelope size. One panel per dataset,
//! (a) through (j).
//!
//! Runs on the fault-tolerant harness: one unit per dataset (panel),
//! with the per-core BFS sweep inside it fanning out `--threads` wide
//! and sharing the run's deadline. A resumed run replays finished
//! panels from the checkpoint journal.

use socnet_bench::{
    cell, degraded, emit_csv, fmt_f64, inner_par, panels, Experiment, ExperimentArgs, TableView,
};
use socnet_expansion::{ExpansionSweep, SourceSelection};
use socnet_runner::obs;

fn main() {
    let args = ExperimentArgs::parse();
    let mut exp = Experiment::new("fig3", &args);
    let blocks = exp.sweep_stage(
        "sweep",
        &panels::FIG3,
        |_, d| format!("sweep/{}", d.name()),
        |ctx, &d| {
            let g = args.dataset(d);
            // The paper uses every node as a core; that is O(nm). Keep it
            // for small graphs, sample on large ones (documented in
            // DESIGN.md).
            let budget = args.sources.max(500);
            let selection = if g.node_count() <= budget {
                SourceSelection::All
            } else {
                SourceSelection::Sample(budget)
            };
            let seed = args.seed.wrapping_add(u64::from(ctx.attempt) - 1);
            let (sweep, report) = ExpansionSweep::measure_reported(
                &g,
                selection,
                seed,
                &inner_par(ctx.cancel, args.threads),
            );
            if !report.is_complete() {
                return Err(degraded(ctx.cancel, &report));
            }
            obs::info(
                "dataset.measured",
                &[
                    ("dataset", d.name().into()),
                    ("n", g.node_count().into()),
                    ("cores", sweep.source_count().into()),
                    ("set_sizes", sweep.stats().len().into()),
                ],
            );
            let rows: Vec<Vec<String>> = sweep
                .stats()
                .iter()
                .map(|s| {
                    vec![
                        cell(s.set_size),
                        cell(s.min),
                        fmt_f64(s.mean),
                        cell(s.max),
                        cell(s.samples),
                    ]
                })
                .collect();
            Ok(rows)
        },
    );

    for (i, (d, rows)) in panels::FIG3.iter().zip(blocks).enumerate() {
        let Some(rows) = rows else { continue };
        let panel = (b'a' + i as u8) as char;
        let title = format!("Figure 3({panel}): {}", d.name());
        let headers: Vec<String> =
            ["set-size", "min-neighbors", "mean-neighbors", "max-neighbors", "samples"]
                .map(String::from)
                .to_vec();
        let mut csv = TableView::new(title.clone(), headers.clone());
        let mut table = TableView::new(title, headers);
        let stride = (rows.len() / 10).max(1);
        for (j, row) in rows.iter().enumerate() {
            if j % stride == 0 || j + 1 == rows.len() {
                table.push_row(row.clone());
            }
            csv.push_row(row.clone());
        }
        emit_csv(&csv, &args.out_dir, &format!("fig3{panel}"));
        table.print();
    }
    exp.finish();
}
