//! Figure 3 — expansion of node sets: for envelopes grown from every
//! core node (or a sample on large graphs), the minimum, mean, and
//! maximum number of neighbors per envelope size. One panel per dataset,
//! (a) through (j).

use socnet_bench::{cell, fmt_f64, panels, ExperimentArgs, TableView};
use socnet_expansion::{ExpansionSweep, SourceSelection};

fn main() {
    let args = ExperimentArgs::parse();
    for (i, &d) in panels::FIG3.iter().enumerate() {
        let g = args.dataset(d);
        // The paper uses every node as a core; that is O(nm). Keep it for
        // small graphs, sample on large ones (documented in DESIGN.md).
        let budget = args.sources.max(500);
        let selection = if g.node_count() <= budget {
            SourceSelection::All
        } else {
            SourceSelection::Sample(budget)
        };
        let sweep = ExpansionSweep::measure(&g, selection, args.seed);
        eprintln!(
            "  {}: n = {}, cores = {}, set sizes = {}",
            d.name(),
            g.node_count(),
            sweep.source_count(),
            sweep.stats().len()
        );

        let panel = (b'a' + i as u8) as char;
        let title = format!("Figure 3({panel}): {}", d.name());
        let headers: Vec<String> =
            ["set-size", "min-neighbors", "mean-neighbors", "max-neighbors", "samples"]
                .map(String::from)
                .to_vec();
        let mut csv = TableView::new(title.clone(), headers.clone());
        let mut table = TableView::new(title, headers);
        let stride = (sweep.stats().len() / 10).max(1);
        for (j, s) in sweep.stats().iter().enumerate() {
            let row = vec![
                cell(s.set_size),
                cell(s.min),
                fmt_f64(s.mean),
                cell(s.max),
                cell(s.samples),
            ];
            if j % stride == 0 || j + 1 == sweep.stats().len() {
                table.push_row(row.clone());
            }
            csv.push_row(row);
        }
        match csv.write_csv(&args.out_dir, &format!("fig3{panel}")) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("csv write failed: {e}"),
        }
        table.print();
    }
}
