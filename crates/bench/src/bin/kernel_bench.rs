//! CSR kernel suite — the perf-regression gate's workload.
//!
//! Synthesizes one preferential-attachment (Barabási–Albert) and one
//! stochastic-block-model graph at `--scale` (the `large`/`xl` presets
//! reach 10⁵–10⁶ nodes), then times every hot CSR kernel on each:
//!
//! | stage | kernel |
//! |---|---|
//! | `csr_build` | `Csr::from_graph` — the O(E) slab conversion |
//! | `bfs` | `par_bfs` — frontier-parallel level-synchronous BFS |
//! | `kcore` | `CoreDecomposition::compute_csr` — bucket k-core |
//! | `spmv` | `try_slem_csr` — blocked mat-vec power iteration |
//! | `tvd` | `WalkOperator::step_blocked` — distribution evolution |
//! | `sample_mixing` | `estimate_mixing_csr` — collision sampling |
//!
//! Per-kernel wall, nodes/sec, and edges/sec go to stdout, and into
//! `BENCH_kernels.json` (stages + `extras`), which CI diffs against
//! `ci/baselines/BENCH_kernels.baseline.json` with
//! `scripts/bench-compare.sh --assert-within 30%`.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet_bench::{cell, fmt_f64, Experiment, ExperimentArgs, TableView};
use socnet_core::{par_bfs, Csr, Graph, NodeId};
use socnet_gen::{barabasi_albert, stochastic_block_model};
use socnet_kcore::CoreDecomposition;
use socnet_mixing::{
    estimate_mixing_csr, try_slem_csr, SampleMixingConfig, SpectralConfig, WalkOperator,
};
use socnet_runner::{json, obs, UnitError};

/// Node count of each synthetic graph at `--scale 1.0`; the `xl` preset
/// (50×) turns the BA family into the 10⁶-node acceptance workload.
const BASE_N: usize = 20_000;
/// Edges each new BA node attaches with.
const M_ATTACH: usize = 8;
/// SBM community count (sizes scale, the count does not).
const SBM_BLOCKS: usize = 16;
/// Power-iteration steps timed by the `spmv` stage.
const SPMV_ITERS: usize = 50;
/// Walk-operator steps timed by the `tvd` stage.
const TVD_STEPS: usize = 20;
/// Sampled walks / walk length of the `sample_mixing` stage.
const SAMPLE_WALKS: usize = 64;
const SAMPLE_LEN: usize = 50;

/// One timed kernel run: `[wall_s, nodes_done, edges_done]` (a
/// journal-friendly payload; rates are derived at report time).
type KernelMetrics = Vec<f64>;

fn main() {
    let args = ExperimentArgs::parse();
    let mut exp = Experiment::new("kernels", &args);
    let threads = args.threads.max(1);

    let graphs = synthesize(&args);
    let csrs: Vec<Csr> = graphs.iter().map(|(_, g)| Csr::from_graph(g)).collect();
    for ((name, g), csr) in graphs.iter().zip(&csrs) {
        obs::info(
            "graph.synthesized",
            &[
                ("family", (*name).into()),
                ("nodes", g.node_count().into()),
                ("edges", g.edge_count().into()),
                ("csr_bytes", csr.byte_size().into()),
            ],
        );
    }

    let mut rows: Vec<(String, String, KernelMetrics)> = Vec::new();
    let stage = |exp: &mut Experiment,
                 rows: &mut Vec<(String, String, KernelMetrics)>,
                 name: &str,
                 kernel: &(dyn Fn(usize) -> KernelMetrics + Sync)| {
        let idx: Vec<usize> = (0..graphs.len()).collect();
        let out = exp.sweep_stage(
            name,
            &idx,
            |_, &i| format!("{name}/{}", graphs[i].0),
            |_, &i| Ok::<_, UnitError>(kernel(i)),
        );
        for (i, m) in out.into_iter().enumerate() {
            if let Some(m) = m {
                rows.push((name.to_string(), graphs[i].0.to_string(), m));
            }
        }
    };

    stage(&mut exp, &mut rows, "csr_build", &|i| {
        let g = &graphs[i].1;
        let start = Instant::now();
        let built = Csr::from_graph(g);
        timed(start, built.node_count(), built.edge_count())
    });

    stage(&mut exp, &mut rows, "bfs", &|i| {
        let csr = &csrs[i];
        let start = Instant::now();
        let r = par_bfs(csr, 0, threads);
        timed(start, r.reached, csr.edge_count())
    });

    stage(&mut exp, &mut rows, "kcore", &|i| {
        let csr = &csrs[i];
        let start = Instant::now();
        let d = CoreDecomposition::compute_csr(csr);
        timed(start, d.coreness_slice().len(), csr.edge_count())
    });

    stage(&mut exp, &mut rows, "spmv", &|i| {
        let csr = &csrs[i];
        // Zero tolerance pins the iteration count, so the stage times a
        // fixed amount of mat-vec work at every scale.
        let cfg = SpectralConfig {
            tolerance: 0.0,
            max_iterations: SPMV_ITERS,
            threads,
            ..SpectralConfig::default()
        };
        let start = Instant::now();
        let s = try_slem_csr(csr, &cfg).expect("synthetic graphs have edges");
        timed(start, csr.node_count() * s.iterations, csr.edge_count() * s.iterations)
    });

    stage(&mut exp, &mut rows, "tvd", &|i| {
        let csr = &csrs[i];
        let op = WalkOperator::from_csr(csr, 0.0);
        let blocks = csr.edge_balanced_blocks(threads);
        let n = csr.node_count();
        let mut x = vec![0.0; n];
        x[0] = 1.0;
        let mut y = vec![0.0; n];
        let start = Instant::now();
        for _ in 0..TVD_STEPS {
            op.step_blocked(&x, &mut y, &blocks);
            std::mem::swap(&mut x, &mut y);
        }
        timed(start, n * TVD_STEPS, csr.edge_count() * TVD_STEPS)
    });

    stage(&mut exp, &mut rows, "sample_mixing", &|i| {
        let csr = &csrs[i];
        let cfg = SampleMixingConfig {
            walks: SAMPLE_WALKS,
            max_walk: SAMPLE_LEN,
            ..SampleMixingConfig::default()
        };
        let start = Instant::now();
        let est = estimate_mixing_csr(csr, NodeId(0), &cfg).expect("node 0 has edges");
        timed(start, est.walks * SAMPLE_LEN, csr.edge_count())
    });

    // Per-kernel throughput: the console table and the machine-checked
    // extras of BENCH_kernels.json.
    let mut table = TableView::new(
        "CSR kernel throughput",
        ["kernel", "graph", "wall_s", "nodes_per_s", "edges_per_s"]
            .map(String::from)
            .to_vec(),
    );
    for (kernel, graph, m) in &rows {
        let (wall, nodes, edges) = (m[0], m[1], m[2]);
        let nps = nodes / wall.max(1e-9);
        let eps = edges / wall.max(1e-9);
        table.push_row(vec![
            kernel.clone(),
            graph.clone(),
            fmt_f64(wall),
            cell(nps.round()),
            cell(eps.round()),
        ]);
        exp.bench_extra(&format!("{kernel}_{graph}_nodes_per_s"), json::num(nps, 1));
        exp.bench_extra(&format!("{kernel}_{graph}_edges_per_s"), json::num(eps, 1));
    }
    table.print();
    exp.finish();
}

/// Packs a finished kernel's metrics (see [`KernelMetrics`]).
fn timed(start: Instant, nodes: usize, edges: usize) -> KernelMetrics {
    vec![start.elapsed().as_secs_f64(), nodes as f64, edges as f64]
}

/// The two synthetic kernel workloads at the invocation's scale: a
/// heavy-tailed preferential-attachment graph (`ba`) and a 16-community
/// stochastic block model (`sbm`) with scale-free average degree, so
/// `--scale xl` grows nodes 50× without densifying.
fn synthesize(args: &ExperimentArgs) -> Vec<(&'static str, Graph)> {
    let n = ((BASE_N as f64 * args.scale) as usize).max(64);
    let mut rng = StdRng::seed_from_u64(args.seed);
    let ba = barabasi_albert(n, M_ATTACH, &mut rng);

    let block = (n / SBM_BLOCKS).max(4);
    let sizes = vec![block; SBM_BLOCKS];
    let p_in = (12.0 / (block.saturating_sub(1)) as f64).min(1.0);
    let p_out = (3.0 / (block * (SBM_BLOCKS - 1)) as f64).min(1.0);
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x5b);
    let sbm = stochastic_block_model(&sizes, p_in, p_out, &mut rng);

    vec![("ba", ba), ("sbm", sbm)]
}
