//! The cross-cutting analyses that tie the paper together:
//!
//! * **E8 — defense equivalence** (Sec. V: "GateKeeper behaves like the
//!   random-walk defenses"): run all five defenses on the same attacked
//!   graphs and compare their honest/Sybil admission.
//! * **E9 — property correlation** (the paper's central claim): for every
//!   registry dataset, measure mixing (μ and sampled TVD), coreness
//!   structure (ν'_k, number of cores), and expansion side by side, so
//!   the fast-mixing ⇔ single-large-core ⇔ good-expansion alignment is
//!   visible in one table.

use socnet_bench::{cell, fmt_f64, ExperimentArgs, TableView};
use socnet_community::LocalCommunity;
use socnet_core::NodeId;
use socnet_expansion::{ExpansionSweep, SourceSelection};
use socnet_gen::Dataset;
use socnet_kcore::{core_profiles, CoreDecomposition};
use socnet_mixing::{slem, MixingConfig, MixingMeasurement, SpectralConfig};
use socnet_sybil::{
    eval, AttackedGraph, GateKeeper, GateKeeperConfig, SumUp, SumUpConfig, SybilAttack,
    SybilGuard, SybilGuardConfig, SybilInfer, SybilInferConfig, SybilLimit, SybilLimitConfig,
    SybilTopology,
};

fn main() {
    let args = ExperimentArgs::parse();
    defense_equivalence(&args);
    property_correlation(&args);
}

/// E8: all five defenses on the same attacked graphs.
fn defense_equivalence(args: &ExperimentArgs) {
    let mut table = TableView::new(
        "E8: five defenses on the same attacked graphs",
        vec![
            "dataset".into(),
            "defense".into(),
            "honest-accept".into(),
            "sybil-per-edge".into(),
        ],
    );

    for d in [Dataset::WikiVote, Dataset::Physics1] {
        let honest = args.dataset(d);
        let attacked = AttackedGraph::mount(
            &honest,
            &SybilAttack {
                sybil_count: 100,
                attack_edges: 20,
                topology: SybilTopology::ErdosRenyi { p: 0.1 },
                seed: args.seed,
            },
        );
        let g = attacked.graph();
        eprintln!("  {}: n = {} (+100 sybils)", d.name(), attacked.honest_count());

        // Suspects: every node; verifier/trusted node: honest node 0.
        let verifier = NodeId(0);
        let everyone: Vec<NodeId> = g.nodes().collect();

        // GateKeeper.
        let gk = GateKeeper::new(GateKeeperConfig {
            distributors: 33,
            f_admit: 0.2,
            seed: args.seed,
            ..Default::default()
        })
        .run(&attacked);
        push(&mut table, &attacked, d, "GateKeeper", gk.admitted());

        // SybilGuard (route length ~ sqrt(n log n), sampled suspects are
        // too slow at full n; evaluate on every node anyway but with a
        // modest route length).
        let guard = SybilGuard::new(g, SybilGuardConfig { route_length: 40, seed: args.seed });
        let verdict = guard.admitted_set(verifier, &everyone);
        push(&mut table, &attacked, d, "SybilGuard", &verdict);

        // SybilLimit.
        let sl = SybilLimit::new(
            g,
            SybilLimitConfig {
                instances: SybilLimitConfig::recommended_instances(g.edge_count()),
                route_length: 12,
                balance_slack: 4.0,
                seed: args.seed,
            },
        );
        let verdict = sl.verify_all(verifier, &everyone);
        push(&mut table, &attacked, d, "SybilLimit", &verdict);

        // SybilInfer-style ranking with an oracle-free cut at 0.3/2m.
        let si = SybilInfer::infer(
            g,
            verifier,
            &SybilInferConfig { walks: 60_000, walk_length: 12, seed: args.seed },
        );
        let verdict = si.classify(g, 0.3);
        push(&mut table, &attacked, d, "SybilInfer", &verdict);
        let auc = eval::ranking_auc(&attacked, &si.ranking());
        eprintln!("    SybilInfer ranking AUC = {auc:.3}");

        // SumUp, voting budget = honest population.
        let sumup = SumUp::new(SumUpConfig {
            expected_votes: attacked.honest_count(),
            seed: args.seed,
        });
        let outcome = sumup.collect(g, verifier, &everyone);
        push(&mut table, &attacked, d, "SumUp", &outcome.accepted);

        // Community detection (Viswanath et al.'s replacement): grow the
        // verifier's local community to the honest-population size and
        // admit its members.
        let lc = LocalCommunity::sweep(g, verifier, attacked.honest_count());
        let mut admitted = vec![false; g.node_count()];
        for &v in lc.ranking() {
            admitted[v.index()] = true;
        }
        push(&mut table, &attacked, d, "Community", &admitted);
        let auc = eval::ranking_auc(&attacked, &lc.full_ranking(g));
        eprintln!("    Community sweep ranking AUC = {auc:.3}");
    }

    table.print();
    match table.write_csv(&args.out_dir, "e8_defenses") {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}

fn push(
    table: &mut TableView,
    attacked: &AttackedGraph,
    d: Dataset,
    name: &str,
    admitted: &[bool],
) {
    let stats = eval::admission_stats(attacked, admitted);
    table.push_row(vec![
        cell(d.name()),
        cell(name),
        format!("{:.1}%", 100.0 * stats.honest_accept_rate),
        fmt_f64(stats.sybils_per_attack_edge),
    ]);
}

/// E9: mixing, coreness, and expansion of every dataset in one table.
fn property_correlation(args: &ExperimentArgs) {
    let mut table = TableView::new(
        "E9: property correlation across the registry",
        vec![
            "dataset".into(),
            "model".into(),
            "nodes".into(),
            "mu".into(),
            "tvd@50".into(),
            "degeneracy".into(),
            "nu-prime(kmax)".into(),
            "cores(kmax)".into(),
            "alpha@mid".into(),
        ],
    );

    for d in Dataset::ALL {
        let g = args.dataset(d);
        let spectrum = slem(&g, &SpectralConfig::default());
        let mixing = MixingMeasurement::measure(
            &g,
            &MixingConfig {
                sources: args.sources.min(50),
                max_walk: 50,
                laziness: 0.0,
                seed: args.seed,
            },
        );
        let decomp = CoreDecomposition::compute(&g);
        let profiles = core_profiles(&g, &decomp);
        let last = profiles.last().expect("non-trivial graph");
        let sweep = ExpansionSweep::measure(
            &g,
            SourceSelection::Sample(args.sources.min(200)),
            args.seed,
        );
        let curve = sweep.expansion_factor_curve();
        let mid = curve.get(curve.len() / 2).map(|&(_, a)| a).unwrap_or(0.0);

        table.push_row(vec![
            cell(d.name()),
            cell(d.spec().model.label()),
            cell(g.node_count()),
            fmt_f64(spectrum.slem()),
            fmt_f64(mixing.mean_curve()[49]),
            cell(decomp.degeneracy()),
            fmt_f64(last.nu_prime(g.node_count())),
            cell(last.components),
            fmt_f64(mid),
        ]);
        eprintln!("  measured {}", d.name());
    }

    table.print();
    match table.write_csv(&args.out_dir, "e9_correlation") {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
