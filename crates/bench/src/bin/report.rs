//! The cross-cutting analyses that tie the paper together:
//!
//! * **E8 — defense equivalence** (Sec. V: "GateKeeper behaves like the
//!   random-walk defenses"): run all five defenses on the same attacked
//!   graphs and compare their honest/Sybil admission.
//! * **E9 — property correlation** (the paper's central claim): for every
//!   registry dataset, measure mixing (μ and sampled TVD), coreness
//!   structure (ν'_k, number of cores), and expansion side by side, so
//!   the fast-mixing ⇔ single-large-core ⇔ good-expansion alignment is
//!   visible in one table.
//!
//! Runs on the fault-tolerant harness as two stages (one unit per
//! dataset each), so a crash in one defense stack or one dataset's
//! measurement costs only that row, and an interrupted run resumes.

use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet_bench::{
    cell, degraded, emit_csv, fmt_f64, inner_par, Experiment, ExperimentArgs, TableView,
};
use socnet_community::LocalCommunity;
use socnet_core::NodeId;
use socnet_expansion::{ExpansionSweep, SourceSelection};
use socnet_gen::Dataset;
use socnet_kcore::{core_profiles, CoreDecomposition};
use socnet_mixing::{slem, MixingConfig, MixingMeasurement, SpectralConfig};
use socnet_runner::{obs, UnitCtx, UnitError};
use socnet_sybil::{
    eval, AttackedGraph, GateKeeper, GateKeeperConfig, SumUp, SumUpConfig, SybilAttack,
    SybilGuard, SybilGuardConfig, SybilInfer, SybilInferConfig, SybilLimit, SybilLimitConfig,
    SybilTopology,
};

fn main() {
    let args = ExperimentArgs::parse();
    let mut exp = Experiment::new("report", &args);
    defense_equivalence(&mut exp);
    property_correlation(&mut exp);
    exp.finish();
}

/// E8: all five defenses on the same attacked graphs.
fn defense_equivalence(exp: &mut Experiment) {
    let args = exp.args().clone();
    let datasets = [Dataset::WikiVote, Dataset::Physics1];
    let blocks = exp.sweep_stage(
        "e8-defenses",
        &datasets,
        |_, d| format!("e8/{}", d.name()),
        |ctx, &d| defense_rows(&args, ctx, d),
    );

    let mut table = TableView::new(
        "E8: five defenses on the same attacked graphs",
        vec![
            "dataset".into(),
            "defense".into(),
            "honest-accept".into(),
            "sybil-per-edge".into(),
        ],
    );
    for rows in blocks.into_iter().flatten() {
        for row in rows {
            table.push_row(row);
        }
    }
    table.print();
    emit_csv(&table, &args.out_dir, "e8_defenses");
}

fn defense_rows(
    args: &ExperimentArgs,
    ctx: UnitCtx<'_>,
    d: Dataset,
) -> Result<Vec<Vec<String>>, UnitError> {
    let check = || {
        if ctx.cancel.is_cancelled() {
            Err(UnitError::Cancelled)
        } else {
            Ok(())
        }
    };
    check()?;
    let honest = args.dataset(d);
    let attacked = AttackedGraph::mount(
        &honest,
        &SybilAttack {
            sybil_count: 100,
            attack_edges: 20,
            topology: SybilTopology::ErdosRenyi { p: 0.1 },
            seed: args.seed,
        },
    );
    let g = attacked.graph();
    obs::info(
        "dataset.measured",
        &[
            ("dataset", d.name().into()),
            ("honest_n", attacked.honest_count().into()),
            ("sybils", 100u64.into()),
        ],
    );

    // Suspects: every node; verifier/trusted node: honest node 0.
    let verifier = NodeId(0);
    let everyone: Vec<NodeId> = g.nodes().collect();
    let mut rows = Vec::new();

    // GateKeeper, through the reported entry point so the floods share
    // our token; same controller `run` would sample.
    let gk = GateKeeper::new(GateKeeperConfig {
        distributors: 33,
        f_admit: 0.2,
        seed: args.seed,
        ..Default::default()
    });
    let controller = attacked.random_honest(&mut StdRng::seed_from_u64(args.seed));
    let (outcome, report) = gk
        .run_from_reported(g, controller, &inner_par(ctx.cancel, args.threads))
        .map_err(|e| UnitError::Failed(e.to_string()))?;
    if !report.is_complete() {
        return Err(degraded(ctx.cancel, &report));
    }
    rows.push(defense_row(&attacked, d, "GateKeeper", outcome.admitted()));
    check()?;

    // SybilGuard (route length ~ sqrt(n log n), sampled suspects are
    // too slow at full n; evaluate on every node anyway but with a
    // modest route length).
    let guard = SybilGuard::new(g, SybilGuardConfig { route_length: 40, seed: args.seed });
    let verdict = guard.admitted_set(verifier, &everyone);
    rows.push(defense_row(&attacked, d, "SybilGuard", &verdict));
    check()?;

    // SybilLimit.
    let sl = SybilLimit::new(
        g,
        SybilLimitConfig {
            instances: SybilLimitConfig::recommended_instances(g.edge_count()),
            route_length: 12,
            balance_slack: 4.0,
            seed: args.seed,
        },
    );
    let verdict = sl.verify_all(verifier, &everyone);
    rows.push(defense_row(&attacked, d, "SybilLimit", &verdict));
    check()?;

    // SybilInfer-style ranking with an oracle-free cut at 0.3/2m.
    let si = SybilInfer::infer(
        g,
        verifier,
        &SybilInferConfig { walks: 60_000, walk_length: 12, seed: args.seed },
    );
    let verdict = si.classify(g, 0.3);
    rows.push(defense_row(&attacked, d, "SybilInfer", &verdict));
    let auc = eval::ranking_auc(&attacked, &si.ranking());
    obs::info(
        "ranking.auc",
        &[("dataset", d.name().into()), ("defense", "SybilInfer".into()), ("auc", auc.into())],
    );
    check()?;

    // SumUp, voting budget = honest population.
    let sumup = SumUp::new(SumUpConfig {
        expected_votes: attacked.honest_count(),
        seed: args.seed,
    });
    let outcome = sumup.collect(g, verifier, &everyone);
    rows.push(defense_row(&attacked, d, "SumUp", &outcome.accepted));
    check()?;

    // Community detection (Viswanath et al.'s replacement): grow the
    // verifier's local community to the honest-population size and
    // admit its members.
    let lc = LocalCommunity::sweep(g, verifier, attacked.honest_count());
    let mut admitted = vec![false; g.node_count()];
    for &v in lc.ranking() {
        admitted[v.index()] = true;
    }
    rows.push(defense_row(&attacked, d, "Community", &admitted));
    let auc = eval::ranking_auc(&attacked, &lc.full_ranking(g));
    obs::info(
        "ranking.auc",
        &[("dataset", d.name().into()), ("defense", "Community".into()), ("auc", auc.into())],
    );

    Ok(rows)
}

fn defense_row(
    attacked: &AttackedGraph,
    d: Dataset,
    name: &str,
    admitted: &[bool],
) -> Vec<String> {
    let stats = eval::admission_stats(attacked, admitted);
    vec![
        cell(d.name()),
        cell(name),
        format!("{:.1}%", 100.0 * stats.honest_accept_rate),
        fmt_f64(stats.sybils_per_attack_edge),
    ]
}

/// E9: mixing, coreness, and expansion of every dataset in one table.
fn property_correlation(exp: &mut Experiment) {
    let args = exp.args().clone();
    let rows = exp.sweep_stage(
        "e9-correlation",
        &Dataset::ALL,
        |_, d| format!("e9/{}", d.name()),
        |ctx, &d| {
            let g = args.dataset(d);
            let spectrum = slem(&g, &SpectralConfig::default());
            let (mixing, report) = MixingMeasurement::measure_reported(
                &g,
                &MixingConfig {
                    sources: args.sources.min(50),
                    max_walk: 50,
                    laziness: 0.0,
                    seed: args.seed,
                },
                &inner_par(ctx.cancel, args.threads),
            );
            if !report.is_complete() {
                return Err(degraded(ctx.cancel, &report));
            }
            let decomp = CoreDecomposition::compute(&g);
            let profiles = core_profiles(&g, &decomp);
            let last = profiles.last().expect("non-trivial graph");
            let (sweep, report) = ExpansionSweep::measure_reported(
                &g,
                SourceSelection::Sample(args.sources.min(200)),
                args.seed,
                &inner_par(ctx.cancel, args.threads),
            );
            if !report.is_complete() {
                return Err(degraded(ctx.cancel, &report));
            }
            let curve = sweep.expansion_factor_curve();
            let mid = curve.get(curve.len() / 2).map(|&(_, a)| a).unwrap_or(0.0);
            obs::info(
                "dataset.measured",
                &[
                    ("dataset", d.name().into()),
                    ("n", g.node_count().into()),
                    ("mu", spectrum.slem().into()),
                    ("degeneracy", decomp.degeneracy().into()),
                ],
            );

            Ok(vec![
                cell(d.name()),
                cell(d.spec().model.label()),
                cell(g.node_count()),
                fmt_f64(spectrum.slem()),
                fmt_f64(mixing.mean_curve()[49]),
                cell(decomp.degeneracy()),
                fmt_f64(last.nu_prime(g.node_count())),
                cell(last.components),
                fmt_f64(mid),
            ])
        },
    );

    let mut table = TableView::new(
        "E9: property correlation across the registry",
        vec![
            "dataset".into(),
            "model".into(),
            "nodes".into(),
            "mu".into(),
            "tvd@50".into(),
            "degeneracy".into(),
            "nu-prime(kmax)".into(),
            "cores(kmax)".into(),
            "alpha@mid".into(),
        ],
    );
    for row in rows.into_iter().flatten() {
        table.push_row(row);
    }
    table.print();
    emit_csv(&table, &args.out_dir, "e9_correlation");
}
