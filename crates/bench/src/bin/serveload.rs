//! `serveload` — load generator for the `socnet-serve` property-query
//! service, closed-loop and open-loop.
//!
//! **Closed loop** (`--mode closed`, the default): boots an in-process
//! [`socnet_serve::Server`] on a free loopback port, warms the graph
//! registry and property cache with one cold pass, then drives
//! `--connections` concurrent closed-loop clients (each issuing
//! `--requests` HTTP requests over fresh connections) through the
//! experiment harness's panic-isolated side pool. Every client walks the
//! same deterministic query schedule, so the run doubles as a
//! consistency check: responses to identical property queries must be
//! byte-identical regardless of which connection asked, when, or how
//! many threads the server ran. After the measured phase the server
//! drains — flushing a warm-start snapshot to `<out>/serve/store` — and
//! a second server boots over the same store directory; its first
//! property query must come back `X-Cache: warm-disk` byte-identical.
//!
//! **Open loop** (`--mode open`): requests are issued at a fixed
//! arrival rate (`--rate`, for `--duration-secs`) regardless of how
//! fast responses come back, and every latency is measured from the
//! request's *scheduled* send time — the coordinated-omission-safe
//! number a closed-loop harness hides. An untraced control phase pins
//! the request-tracing overhead (`trace_overhead_pct`, asserted within
//! 5% of the untraced p99 plus a fixed scheduler-jitter allowance),
//! then one traced unattacked baseline is
//! followed by one phase under `--attack slowloris|idleflood|none`
//! (`--attack-conns` hostile connections, default 256) while a prober
//! asserts `/healthz` keeps answering. `--frontend event|threads`
//! selects the server front end, so the same scenario demonstrates the
//! thread-per-connection design's collapse and the event loop's
//! survival; `survived` requires no request errors, no healthz
//! failures, and an attacked p99 within 5× the unattacked baseline,
//! and is asserted when the event-loop front end is under attack.
//!
//! **Live loop** (`--mode live`): drives the mutable-graph subsystem.
//! Deterministic insert/delete delta batches are POSTed against a
//! WAL-backed server (each ack is fsync-bound, so `delta_ack_p99_ms`
//! is a durability latency, not a parse latency), interleaved with
//! bounded-stale (`?max_stale=`) and strict property queries so the
//! run exercises overlay absorption, threshold-triggered CSR rebuilds,
//! and version-stamped cache invalidation together. The server then
//! drains (compacting the WAL into the live snapshot), a second server
//! boots over the same store, and its first live coreness answer must
//! be byte-identical to the pre-restart one — the replay proof.
//!
//! **Memory-pressure loop** (`--mode mem`): `--datasets` distinct
//! graphs are driven against a `--mem-budget` sized for roughly half
//! of them, walking the governor's reclaim ladder in order — cache
//! bodies (rung 1, with zero graph evictions while bodies remain),
//! live-overlay demotion (rung 2), LRU graph eviction (rung 3) — with
//! the `sum(accountants) <= budget` invariant asserted after every
//! round and an evicted dataset re-queried to prove reload-on-demand.
//!
//! Artifacts: `BENCH_serve.json` gains latency quantiles,
//! `throughput_rps`, and cache stats under `extras` (closed mode),
//! `baseline_p99_ms`/`attack_p99_ms`/`survived` plus the trace-derived
//! `trace_overhead_pct`/`queue_wait_p99_ms`/`compute_p99_ms` (open
//! mode), `delta_ack_p99_ms`/`rebuild_ms`/`stale_served` (live mode),
//! or `reclaim_p99_ms`/`rungs_used`/`budget_held` (mem mode); each
//! server's graceful drain writes its `run.json` manifest, metrics
//! snapshot, and `traces.jsonl` under `<out>/serve/`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use socnet_bench::{Experiment, ExperimentArgs};
use socnet_runner::{json, obs};
use socnet_serve::{Frontend, Server, ServerConfig};

/// The dataset every query targets (small enough to load in well under
/// a second at the default `--scale`).
const DATASET: &str = "Rice-grad";

/// One entry of the deterministic query schedule.
struct QueryClass {
    /// Request path (the dataset name is substituted for `{d}`).
    path: &'static str,
    /// Whether responses must be byte-identical across all clients.
    /// Health/introspection bodies legitimately drift (hit counters,
    /// resident bytes); property-query bodies must not.
    identity: bool,
}

const SCHEDULE: [QueryClass; 5] = [
    QueryClass { path: "/graphs/{d}/mixing?eps=0.25", identity: true },
    QueryClass { path: "/graphs/{d}/coreness/0", identity: true },
    QueryClass { path: "/graphs/{d}/coreness/7", identity: true },
    QueryClass { path: "/graphs/{d}/expansion?root=0&hops=6", identity: true },
    QueryClass { path: "/healthz", identity: false },
];

/// A minimal HTTP/1.1 client round-trip: one request, one connection
/// (the server answers `Connection: close`), the whole response read
/// to EOF. Returns the status code, the raw headers, and the body.
fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
) -> std::io::Result<(u16, String, String)> {
    http_request_within(addr, method, path, Duration::from_secs(30))
}

/// [`http_request`] with an explicit connect/read/write deadline — the
/// open-loop phases bound how long one request may be hung on an
/// overloaded server.
fn http_request_within(
    addr: SocketAddr,
    method: &str,
    path: &str,
    deadline: Duration,
) -> std::io::Result<(u16, String, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, deadline)?;
    stream.set_read_timeout(Some(deadline))?;
    stream.set_write_timeout(Some(deadline))?;
    write!(stream, "{method} {path} HTTP/1.1\r\nHost: serveload\r\n\r\n")?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let (head, body) = match raw.find("\r\n\r\n") {
        Some(i) => (raw[..i].to_string(), raw[i + 4..].to_string()),
        None => (raw, String::new()),
    };
    Ok((status, head, body))
}

/// One measured request as reported back by a client job.
struct Sample {
    /// Index into [`SCHEDULE`].
    class: usize,
    status: u16,
    wall: Duration,
    body: String,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Extra flags beyond the shared [`ExperimentArgs`] set (which ignores
/// flags it does not know, so both parsers read the same argv).
fn extra_flag(name: &str, default: usize) -> usize {
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == name {
            if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        }
    }
    default
}

/// String-valued counterpart of [`extra_flag`].
fn extra_str_flag(name: &str, default: &str) -> String {
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == name {
            if let Some(v) = it.next() {
                return v;
            }
        }
    }
    default.to_string()
}

fn main() {
    let args = ExperimentArgs::parse();
    match extra_str_flag("--mode", "closed").as_str() {
        "closed" => {}
        "open" => return open_loop(&args),
        "live" => return live_loop(&args),
        "mem" => return mem_loop(&args),
        other => panic!("--mode expects closed|open|live|mem, got {other:?}"),
    }
    let connections = extra_flag("--connections", 4).max(1);
    let requests = extra_flag("--requests", 25).max(1);
    let mut exp = Experiment::new("serve", &args);

    let store_dir = args.out_dir.join("serve").join("store");
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: args.threads.max(1),
        default_scale: args.scale.min(4.0),
        default_seed: args.seed,
        out_dir: args.out_dir.join("serve"),
        store_dir: Some(store_dir.clone()),
        ..ServerConfig::default()
    };
    let server = Server::bind(config).expect("bind loopback server");
    let addr = server.local_addr();
    let state = server.state();
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.serve());

    // Cold pass: load the graph, then touch every query class once so
    // the measured phase exercises the warm cache (the steady state an
    // online service lives in).
    let cold_start = Instant::now();
    let (status, _, _) = http_request(addr, "POST", &format!("/graphs/{DATASET}/load"))
        .expect("load request");
    assert_eq!(status, 200, "graph load failed");
    // The first schedule entry (mixing) doubles as the warm-restart
    // yardstick: its cold wall and body are compared against the first
    // query of the restarted server below.
    let mut cold_first_query = Duration::ZERO;
    let mut cold_first_body = String::new();
    for (ci, class) in SCHEDULE.iter().enumerate() {
        let path = class.path.replace("{d}", DATASET);
        let start = Instant::now();
        let (status, _, body) = http_request(addr, "GET", &path).expect("warm-up request");
        assert_eq!(status, 200, "warm-up {path} failed");
        if ci == 0 {
            cold_first_query = start.elapsed();
            cold_first_body = body;
        }
    }
    let cold_wall = cold_start.elapsed();
    obs::info(
        "serveload.warm",
        &[("addr", addr.to_string().into()), ("cold_wall_s", cold_wall.as_secs_f64().into())],
    );

    // Measured phase: closed-loop clients on the side pool, one result
    // batch per client over the channel. Every client runs the same
    // schedule so identical queries land concurrently from different
    // connections — exactly the coalescing/byte-identity surface the
    // cache must hold.
    let (tx, rx) = mpsc::channel::<Vec<Sample>>();
    let measured_start = Instant::now();
    for client in 0..connections {
        let tx = tx.clone();
        exp.pool()
            .submit(move || {
                let mut samples = Vec::with_capacity(requests);
                for i in 0..requests {
                    let class = (client + i) % SCHEDULE.len();
                    let path = SCHEDULE[class].path.replace("{d}", DATASET);
                    let start = Instant::now();
                    match http_request(addr, "GET", &path) {
                        Ok((status, _, body)) => samples.push(Sample {
                            class,
                            status,
                            wall: start.elapsed(),
                            body,
                        }),
                        Err(e) => samples.push(Sample {
                            class,
                            status: 0,
                            wall: start.elapsed(),
                            body: format!("transport error: {e}"),
                        }),
                    }
                }
                tx.send(samples).ok();
            })
            .expect("pool accepts load jobs");
    }
    drop(tx);
    let mut samples: Vec<Sample> = Vec::new();
    for batch in rx {
        samples.extend(batch);
    }
    let measured_wall = measured_start.elapsed();

    // Consistency: per identity-checked class, every 200 body must be
    // byte-identical. A mismatch is a correctness bug in the cache or
    // the renderer, not a performance number — fail loudly.
    let mut errors = 0u64;
    let mut mismatches = 0u64;
    for (ci, class) in SCHEDULE.iter().enumerate() {
        let bodies: Vec<&Sample> = samples.iter().filter(|s| s.class == ci).collect();
        errors += bodies.iter().filter(|s| s.status != 200).count() as u64;
        if !class.identity {
            continue;
        }
        if let Some(first) = bodies.iter().find(|s| s.status == 200) {
            for s in &bodies {
                if s.status == 200 && s.body != first.body {
                    mismatches += 1;
                }
            }
        }
    }

    // Stop the server via its in-process SIGTERM equivalent and let the
    // graceful drain write run.json + the metrics snapshot.
    let cache_stats = state.cache.stats();
    shutdown.cancel();
    let summary = server_thread
        .join()
        .expect("server thread")
        .expect("graceful drain");
    assert!(
        summary.snapshot_path.is_some(),
        "drain must flush a warm-start snapshot to {}",
        store_dir.display()
    );

    // Warm restart: a second server over the snapshot the first one
    // just flushed. Its first property query must be answered from the
    // hydrated store — no graph load, no recompute, identical bytes.
    let restart_config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: args.threads.max(1),
        default_scale: args.scale.min(4.0),
        default_seed: args.seed,
        out_dir: args.out_dir.join("serve-restart"),
        store_dir: Some(store_dir),
        ..ServerConfig::default()
    };
    let restarted = Server::bind(restart_config).expect("bind restarted server");
    let restart_addr = restarted.local_addr();
    let restart_shutdown = restarted.shutdown_handle();
    let restart_thread = std::thread::spawn(move || restarted.serve());
    let warm_path = SCHEDULE[0].path.replace("{d}", DATASET);
    let warm_start = Instant::now();
    let (status, head, warm_body) =
        http_request(restart_addr, "GET", &warm_path).expect("warm-restart request");
    let warm_first_query = warm_start.elapsed();
    assert_eq!(status, 200, "warm-restart query failed: {warm_body}");
    let warm_hit = head.contains("X-Cache: warm-disk");
    let warm_identical = warm_body == cold_first_body;
    obs::info(
        "serveload.warm_restart",
        &[
            ("warm_first_query_ms", (warm_first_query.as_secs_f64() * 1e3).into()),
            ("cold_first_query_ms", (cold_first_query.as_secs_f64() * 1e3).into()),
            ("warm_hit", u64::from(warm_hit).into()),
        ],
    );
    restart_shutdown.cancel();
    restart_thread.join().expect("restart thread").expect("restart drain");

    let mut lat: Vec<f64> =
        samples.iter().filter(|s| s.status == 200).map(|s| s.wall.as_secs_f64()).collect();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let total = samples.len() as u64;
    let ok = lat.len() as u64;
    let throughput = ok as f64 / measured_wall.as_secs_f64().max(1e-9);

    exp.bench_extra("connections", connections.to_string());
    exp.bench_extra("requests_per_connection", requests.to_string());
    exp.bench_extra("requests_total", total.to_string());
    exp.bench_extra("requests_ok", ok.to_string());
    exp.bench_extra("errors", errors.to_string());
    exp.bench_extra("body_mismatches", mismatches.to_string());
    exp.bench_extra("cold_pass_ms", json::num(cold_wall.as_secs_f64() * 1e3, 3));
    exp.bench_extra("p50_ms", json::num(percentile(&lat, 0.50) * 1e3, 3));
    exp.bench_extra("p95_ms", json::num(percentile(&lat, 0.95) * 1e3, 3));
    exp.bench_extra("p99_ms", json::num(percentile(&lat, 0.99) * 1e3, 3));
    exp.bench_extra("throughput_rps", json::num(throughput, 1));
    exp.bench_extra("cache_hit_rate", json::num(cache_stats.hit_rate(), 4));
    exp.bench_extra("server_requests", summary.requests.to_string());
    exp.bench_extra("cold_first_query_ms", json::num(cold_first_query.as_secs_f64() * 1e3, 3));
    exp.bench_extra(
        "warm_restart_first_query_ms",
        json::num(warm_first_query.as_secs_f64() * 1e3, 3),
    );
    exp.bench_extra("warm_restart_hit", warm_hit.to_string());

    println!(
        "serveload: {ok}/{total} ok over {connections} connections, \
         p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms, {throughput:.0} req/s, \
         cache hit rate {:.3}; restart first query {:.2} ms warm \
         vs {:.2} ms cold",
        percentile(&lat, 0.50) * 1e3,
        percentile(&lat, 0.95) * 1e3,
        percentile(&lat, 0.99) * 1e3,
        cache_stats.hit_rate(),
        warm_first_query.as_secs_f64() * 1e3,
        cold_first_query.as_secs_f64() * 1e3,
    );
    exp.finish();
    assert_eq!(mismatches, 0, "identical property queries returned differing bodies");
    assert_eq!(errors, 0, "load run saw non-200 responses");
    assert!(warm_hit, "restarted server's first query must be served from the snapshot");
    assert!(warm_identical, "warm-restart body must be byte-identical to the cold body");
}

/// One POST with a payload (the delta route reads its ops from the
/// request body, so `Content-Length` framing matters here).
fn http_post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<(u16, String, String)> {
    let deadline = Duration::from_secs(30);
    let mut stream = TcpStream::connect_timeout(&addr, deadline)?;
    stream.set_read_timeout(Some(deadline))?;
    stream.set_write_timeout(Some(deadline))?;
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nHost: serveload\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let (head, body) = match raw.find("\r\n\r\n") {
        Some(i) => (raw[..i].to_string(), raw[i + 4..].to_string()),
        None => (raw, String::new()),
    };
    Ok((status, head, body))
}

/// Pulls a JSON number field out of a flat rendered body. The serve
/// renderer emits `"name":value` with no interior whitespace, so a
/// substring scan is exact — no parser needed for a load harness.
fn json_field(body: &str, name: &str) -> Option<f64> {
    let needle = format!("\"{name}\":");
    let at = body.find(&needle)? + needle.len();
    let rest = &body[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// SplitMix64 — the delta schedule must be deterministic across runs
/// and must not depend on the stub-vs-registry `rand` build.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The live-graph phase: WAL-acked delta batches interleaved with
/// bounded-stale and strict queries, then a restart-replay proof.
fn live_loop(args: &ExperimentArgs) {
    let batches = extra_flag("--batches", 24).max(2);
    let batch_ops = extra_flag("--batch-ops", 32).max(1);
    // Crossing the threshold every couple of batches makes rebuilds a
    // measured steady-state event, not a one-off.
    let threshold = batch_ops * 2;
    let mut exp = Experiment::new("serve", args);

    let store_dir = args.out_dir.join("serve").join("store-live");
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: args.threads.max(1),
        default_scale: args.scale.min(4.0),
        default_seed: args.seed,
        out_dir: args.out_dir.join("serve"),
        store_dir: Some(store_dir.clone()),
        live_rebuild_threshold: threshold,
        ..ServerConfig::default()
    };
    let server = Server::bind(config).expect("bind loopback server");
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.serve());

    let (status, _, load_body) =
        http_request(addr, "POST", &format!("/graphs/{DATASET}/load")).expect("load request");
    assert_eq!(status, 200, "graph load failed");
    let nodes = json_field(&load_body, "nodes").expect("load body carries nodes") as u64;
    assert!(nodes > 1, "dataset too small to mutate");

    let mut rng = 0x5eed_11fe_u64;
    let mut inserted: Vec<(u64, u64)> = Vec::new();
    let mut acks: Vec<f64> = Vec::new();
    let mut rebuild_walls: Vec<f64> = Vec::new();
    let mut final_version = 0.0_f64;
    let delta_path = format!("/datasets/{DATASET}/delta");
    let stale_path = format!("/graphs/{DATASET}/mixing?eps=0.25&max_stale=1000000");
    let coreness_path = format!("/graphs/{DATASET}/coreness/0");
    for _ in 0..batches {
        let mut body = String::new();
        for _ in 0..batch_ops {
            // Deletes target edges this run inserted, so every op is
            // effective (never a no-op the overlay just ignores).
            if splitmix(&mut rng) % 4 == 0 && !inserted.is_empty() {
                let at = (splitmix(&mut rng) % inserted.len() as u64) as usize;
                let (u, v) = inserted.swap_remove(at);
                body.push_str(&format!("- {u} {v}\n"));
            } else {
                let u = splitmix(&mut rng) % nodes;
                let mut v = splitmix(&mut rng) % nodes;
                if u == v {
                    v = (v + 1) % nodes;
                }
                inserted.push((u, v));
                body.push_str(&format!("+ {u} {v}\n"));
            }
        }
        let start = Instant::now();
        let (status, _, resp) = http_post(addr, &delta_path, &body).expect("delta request");
        acks.push(start.elapsed().as_secs_f64());
        assert_eq!(status, 200, "delta batch failed: {resp}");
        final_version = json_field(&resp, "version").expect("delta ack carries version");
        if resp.contains("\"rebuilt\":true") {
            rebuild_walls.push(json_field(&resp, "rebuild_ms").expect("rebuilt ack has wall"));
        }
        // Interleaved reads: a bounded-stale mixing query (may answer
        // from a lagging CSR) and a strict live coreness query (always
        // exact at head via the maintained decomposition).
        let (status, _, body) = http_request(addr, "GET", &stale_path).expect("stale query");
        assert_eq!(status, 200, "bounded-stale mixing failed: {body}");
        let (status, _, body) = http_request(addr, "GET", &coreness_path).expect("live coreness");
        assert_eq!(status, 200, "live coreness failed: {body}");
    }
    let stale_served = socnet_runner::Metrics::global().counter("live.stale_served");
    let rebuilds = socnet_runner::Metrics::global().counter("live.rebuilds");
    let (status, _, pre_restart) =
        http_request(addr, "GET", &coreness_path).expect("pre-restart coreness");
    assert_eq!(status, 200, "pre-restart coreness failed: {pre_restart}");

    // Graceful drain compacts the WAL into the live snapshot.
    shutdown.cancel();
    server_thread.join().expect("server thread").expect("graceful drain");

    // Restart over the same store: the replayed graph must answer the
    // same live coreness query byte-identically (same version stamp,
    // same coreness — the acked-deltas-survive proof).
    let restart_config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: args.threads.max(1),
        default_scale: args.scale.min(4.0),
        default_seed: args.seed,
        out_dir: args.out_dir.join("serve-restart"),
        store_dir: Some(store_dir),
        live_rebuild_threshold: threshold,
        ..ServerConfig::default()
    };
    let restarted = Server::bind(restart_config).expect("bind restarted server");
    let restart_addr = restarted.local_addr();
    let restart_shutdown = restarted.shutdown_handle();
    let restart_thread = std::thread::spawn(move || restarted.serve());
    let (status, _, datasets_body) =
        http_request(restart_addr, "GET", "/datasets").expect("restart datasets");
    assert_eq!(status, 200, "restart /datasets failed");
    // Scope the scan to this dataset's row — every row now carries a
    // `version` field and only this one is non-zero after replay.
    let row_at = datasets_body
        .find(&format!("\"name\":\"{DATASET}\""))
        .expect("dataset row in /datasets");
    let replayed_version = json_field(&datasets_body[row_at..], "version").unwrap_or(0.0);
    let (status, _, post_restart) =
        http_request(restart_addr, "GET", &coreness_path).expect("post-restart coreness");
    assert_eq!(status, 200, "post-restart coreness failed: {post_restart}");
    restart_shutdown.cancel();
    restart_thread.join().expect("restart thread").expect("restart drain");

    acks.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rebuild_ms =
        rebuild_walls.iter().copied().fold(0.0_f64, f64::max);
    let replay_identical = post_restart == pre_restart;

    exp.bench_extra("mode", "\"live\"".to_string());
    exp.bench_extra("delta_batches", batches.to_string());
    exp.bench_extra("delta_batch_ops", batch_ops.to_string());
    exp.bench_extra("rebuild_threshold", threshold.to_string());
    exp.bench_extra("delta_ack_p50_ms", json::num(percentile(&acks, 0.50) * 1e3, 3));
    exp.bench_extra("delta_ack_p99_ms", json::num(percentile(&acks, 0.99) * 1e3, 3));
    exp.bench_extra("rebuilds", rebuilds.to_string());
    exp.bench_extra("rebuild_ms", json::num(rebuild_ms, 3));
    exp.bench_extra("stale_served", stale_served.to_string());
    exp.bench_extra("final_version", (final_version as u64).to_string());
    exp.bench_extra("replayed_version", (replayed_version as u64).to_string());
    exp.bench_extra("replay_identical", replay_identical.to_string());

    println!(
        "serveload live: {batches} batches x {batch_ops} ops, \
         ack p50 {:.2} ms p99 {:.2} ms, {rebuilds} rebuilds (worst {rebuild_ms:.2} ms), \
         {stale_served} bounded-stale answers, \
         version {} replayed as {} -> identical={replay_identical}",
        percentile(&acks, 0.50) * 1e3,
        percentile(&acks, 0.99) * 1e3,
        final_version as u64,
        replayed_version as u64,
    );
    exp.finish();
    assert!(rebuilds > 0, "the run must cross the rebuild threshold at least once");
    assert!(stale_served > 0, "bounded-stale queries must be served from a lagging CSR");
    assert_eq!(
        replayed_version as u64, final_version as u64,
        "restart must replay every acked delta"
    );
    assert!(
        replay_identical,
        "post-restart live coreness must be byte-identical:\n pre: {pre_restart}\npost: {post_restart}"
    );
}

/// The memory-pressure phase: `--datasets` distinct graphs driven
/// against a `--mem-budget` sized for roughly half of them, walking the
/// governor's whole reclaim ladder in order and proving the invariant
/// (`sum(accountants) <= budget`) after every round.
///
/// Phase order mirrors the ladder: loads that fit (no reclaims), then
/// cache pressure (rung 1 must fire with *zero* graph evictions — the
/// cheap-bodies-first acceptance), then an un-foldable live overlay
/// (rung 2 demotion), then loads past the budget (rung 3 LRU graph
/// evictions), then a query against an evicted dataset (reload on
/// demand). Extras: `reclaim_p99_ms`, `rungs_used`, `budget_held`.
fn mem_loop(args: &ExperimentArgs) {
    let datasets = extra_flag("--datasets", 6).max(4);
    let mut exp = Experiment::new("serve", args);
    let scale = args.scale.min(4.0);
    let dataset = socnet_gen::Dataset::ALL
        .iter()
        .copied()
        .find(|d| d.name() == DATASET)
        .expect("schedule dataset exists");

    // Probe: one graph's resident bytes, measured with the same
    // registry code the server runs, so the budget below is sized in
    // the server's own accounting units.
    let probe = socnet_serve::GraphRegistry::new();
    probe
        .get_or_load(
            &socnet_serve::GraphKey::new(dataset, scale, args.seed),
            &socnet_runner::CancelToken::new(),
        )
        .expect("probe load");
    let bytes_per_graph = probe.resident_bytes();
    drop(probe);
    assert!(bytes_per_graph > 2048, "probe graph too small to govern meaningfully");

    // Budget: half the datasets fit, plus a sliver of cache headroom
    // small enough that a property-query sweep must cross it.
    let half = datasets / 2;
    let slack = 1024usize;
    let budget = bytes_per_graph * half + slack;

    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: args.threads.max(1),
        default_scale: scale,
        default_seed: args.seed,
        out_dir: args.out_dir.join("serve"),
        store_dir: Some(args.out_dir.join("serve").join("store-mem")),
        mem_budget: Some(budget),
        // A threshold no batch reaches keeps the live overlay
        // un-folded, so rung 2 (demote-to-pending) is the only way its
        // bytes come back — exactly the path under test. Tracing off:
        // the ring is a fixed-cost accountant, not a reclaim surface,
        // and this scenario measures the ladder.
        live_rebuild_threshold: 1_000_000,
        tracing: false,
        ..ServerConfig::default()
    };
    let server = Server::bind(config).expect("bind loopback server");
    let addr = server.local_addr();
    let state = server.state();
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.serve());

    let invariant_ok = |tag: &str| {
        let resident = state.accountants().resident_bytes();
        assert!(
            resident <= budget || state.govern.violations() > 0,
            "{tag}: resident {resident} exceeds budget {budget} with no recorded violation"
        );
    };

    // Phase 1 — loads that fit: the first half of the datasets lands
    // without a single reclaim.
    for i in 0..half {
        let (status, _, _) =
            http_request(addr, "POST", &format!("/graphs/{DATASET}/load?seed={}", args.seed + i as u64))
                .expect("load request");
        assert_eq!(status, 200, "in-budget load {i} failed");
        invariant_ok("phase 1");
    }
    assert_eq!(
        state.govern.rung_counts(),
        [0, 0, 0, 0],
        "loads that fit must not trigger any reclaim"
    );

    // Phase 2 — cache pressure: property queries on the resident half
    // stack memoized entries past the slack. Rung 1 must fire and no
    // graph may be evicted for it — cheap bodies go first.
    for i in 0..half {
        let seed = args.seed + i as u64;
        for path in [
            format!("/graphs/{DATASET}/mixing?eps=0.25&seed={seed}"),
            format!("/graphs/{DATASET}/coreness/0?seed={seed}"),
            format!("/graphs/{DATASET}/expansion?root=0&hops=6&seed={seed}"),
        ] {
            let (status, _, body) = http_request(addr, "GET", &path).expect("property query");
            assert_eq!(status, 200, "property query {path} failed: {body}");
            invariant_ok("phase 2");
        }
    }
    let after_cache = state.govern.rung_counts();
    assert!(after_cache[0] >= 1, "cache pressure must reclaim via rung 1: {after_cache:?}");
    assert_eq!(
        after_cache[2], 0,
        "no graph eviction while cheap cache bodies remained: {after_cache:?}"
    );

    // Phase 3 — live overlay: deltas on the first dataset grow a live
    // state the threshold never folds; its bytes push the sum over and
    // only a rung-2 demotion brings them back.
    let (_, _, load_body) =
        http_request(addr, "POST", &format!("/graphs/{DATASET}/load?seed={}", args.seed))
            .expect("reload for deltas");
    let nodes = json_field(&load_body, "nodes").expect("load body carries nodes") as u64;
    let mut rng = 0x90e4_11fe_u64;
    let mut ops = String::new();
    for _ in 0..64 {
        let u = splitmix(&mut rng) % nodes;
        let mut v = splitmix(&mut rng) % nodes;
        if u == v {
            v = (v + 1) % nodes;
        }
        ops.push_str(&format!("+ {u} {v}\n"));
    }
    let (status, _, resp) =
        http_post(addr, &format!("/datasets/{DATASET}/delta?seed={}", args.seed), &ops)
            .expect("delta request");
    assert_eq!(status, 200, "delta batch failed: {resp}");
    // The ingest made the live state resident; the next governed touch
    // (any graph load) runs the ladder against it.
    let (status, _, _) =
        http_request(addr, "GET", &format!("/graphs/{DATASET}/coreness/0?seed={}", args.seed))
            .expect("live coreness");
    assert_eq!(status, 200, "live coreness failed");
    invariant_ok("phase 3");
    let after_live = state.govern.rung_counts();
    assert!(
        after_live[1] >= 1,
        "an un-foldable live overlay must be demoted via rung 2: {after_live:?}"
    );

    // Phase 4 — loads past the budget: the second half of the datasets
    // forces rung-3 LRU evictions; the invariant holds after each.
    for i in half..datasets {
        let (status, _, _) =
            http_request(addr, "POST", &format!("/graphs/{DATASET}/load?seed={}", args.seed + i as u64))
                .expect("over-budget load");
        assert_eq!(status, 200, "over-budget load {i} was shed, not absorbed");
        invariant_ok("phase 4");
    }
    let after_loads = state.govern.rung_counts();
    assert!(after_loads[2] >= 1, "over-budget loads must evict graphs via rung 3: {after_loads:?}");

    // Phase 5 — reload on demand: the coldest dataset was evicted, and
    // querying it again must answer 200 (with the ladder absorbing the
    // reload), not an error.
    let (status, _, body) = http_request(
        addr,
        "GET",
        &format!("/graphs/{DATASET}/coreness/0?seed={}", args.seed + 1),
    )
    .expect("evicted reload query");
    assert_eq!(status, 200, "an evicted dataset must reload on demand: {body}");
    invariant_ok("phase 5");

    let rungs = state.govern.rung_counts();
    let violations = state.govern.violations();
    let final_resident = state.accountants().resident_bytes();
    let budget_held = violations == 0 && final_resident <= budget;
    let mut walls: Vec<f64> = state.govern.reclaim_walls();
    walls.sort_by(|a, b| a.partial_cmp(b).expect("finite walls"));

    shutdown.cancel();
    server_thread.join().expect("server thread").expect("graceful drain");

    exp.bench_extra("mode", "\"mem\"".to_string());
    exp.bench_extra("datasets", datasets.to_string());
    exp.bench_extra("budget_bytes", budget.to_string());
    exp.bench_extra("bytes_per_graph", bytes_per_graph.to_string());
    exp.bench_extra("final_resident_bytes", final_resident.to_string());
    exp.bench_extra("reclaim_rounds", walls.len().to_string());
    exp.bench_extra("reclaim_p50_ms", json::num(percentile(&walls, 0.50) * 1e3, 3));
    exp.bench_extra("reclaim_p99_ms", json::num(percentile(&walls, 0.99) * 1e3, 3));
    exp.bench_extra(
        "rungs_used",
        format!("[{},{},{},{}]", rungs[0], rungs[1], rungs[2], rungs[3]),
    );
    exp.bench_extra("loads_shed", state.govern.shed_count().to_string());
    exp.bench_extra("budget_violations", violations.to_string());
    exp.bench_extra("budget_held", budget_held.to_string());

    println!(
        "serveload mem: {datasets} datasets vs a {budget}-byte budget \
         ({bytes_per_graph} bytes/graph), rungs {rungs:?} over {} rounds, \
         reclaim p99 {:.2} ms, final resident {final_resident} -> budget_held={budget_held}",
        walls.len(),
        percentile(&walls, 0.99) * 1e3,
    );
    exp.finish();
    assert!(budget_held, "{violations} violations, final resident {final_resident} vs {budget}");
}

/// The hostile workload the attacked open-loop phase runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Attack {
    /// No attack — the second phase is a control re-measurement.
    None,
    /// Connections that trickle header bytes forever without ever
    /// completing a request head.
    SlowLoris,
    /// Connections that open and send nothing at all.
    IdleFlood,
}

impl Attack {
    fn label(self) -> &'static str {
        match self {
            Attack::None => "none",
            Attack::SlowLoris => "slowloris",
            Attack::IdleFlood => "idleflood",
        }
    }
}

/// What one open-loop phase measured.
struct Phase {
    /// Successful-request latencies in seconds, sorted ascending. Each
    /// is measured from the request's *scheduled* send time, so queue
    /// delay on an overloaded server counts (no coordinated omission).
    latencies: Vec<f64>,
    /// Requests that errored or answered non-200.
    errors: u64,
    total: u64,
}

/// Issues `rate` requests per second for `duration_secs`, each on its
/// own thread at its scheduled instant against the warm schedule.
fn open_phase(addr: SocketAddr, rate: usize, duration_secs: usize) -> Phase {
    let total = rate * duration_secs;
    let interval = Duration::from_secs_f64(1.0 / rate as f64);
    let phase_start = Instant::now();
    let (tx, rx) = mpsc::channel::<(u16, Duration)>();
    let mut handles = Vec::with_capacity(total);
    for i in 0..total {
        let tx = tx.clone();
        let scheduled = interval.mul_f64(i as f64);
        let path = SCHEDULE[i % SCHEDULE.len()].path.replace("{d}", DATASET);
        handles.push(std::thread::spawn(move || {
            let target = phase_start + scheduled;
            let now = Instant::now();
            if target > now {
                std::thread::sleep(target - now);
            }
            let status = match http_request_within(addr, "GET", &path, Duration::from_secs(10)) {
                Ok((status, _, _)) => status,
                Err(_) => 0,
            };
            // Latency from the scheduled send, not the actual one.
            let wall = phase_start.elapsed().saturating_sub(scheduled);
            tx.send((status, wall)).ok();
        }));
    }
    drop(tx);
    let mut latencies = Vec::with_capacity(total);
    let mut errors = 0u64;
    for (status, wall) in rx {
        if status == 200 {
            latencies.push(wall.as_secs_f64());
        } else {
            errors += 1;
        }
    }
    for handle in handles {
        handle.join().expect("open-loop request thread");
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    Phase { latencies, errors, total: total as u64 }
}

/// Maintains `conns` hostile connections until `stop` flips: slow-loris
/// connections trickle one header byte per tick, idle-flood connections
/// just sit there; either way a connection the server reaps (or that
/// ages out) is replaced, so the pressure is sustained.
fn run_attack(addr: SocketAddr, attack: Attack, conns: usize, stop: &AtomicBool) {
    const TICK: Duration = Duration::from_millis(250);
    const IDLE_RECYCLE: Duration = Duration::from_secs(3);
    let mut sockets: Vec<Option<(TcpStream, Instant)>> = Vec::new();
    sockets.resize_with(conns, || None);
    while !stop.load(Ordering::Relaxed) {
        // Stagger reconnects the way real attack tools do: the server
        // reaps every connection of a wave at the same deadline, and
        // re-establishing all of them in one tick would turn the attack
        // into a self-inflicted connect storm on the client box.
        let mut connects_left = (conns / 8).max(32);
        for slot in &mut sockets {
            match slot {
                None => {
                    if connects_left == 0 {
                        continue;
                    }
                    connects_left -= 1;
                    let Ok(mut stream) = TcpStream::connect_timeout(&addr, TICK) else {
                        continue;
                    };
                    if attack == Attack::SlowLoris {
                        // A plausible request head that never ends.
                        if stream.write_all(b"GET /healthz HTTP/1.1\r\nX-Drip: ").is_err() {
                            continue;
                        }
                    }
                    *slot = Some((stream, Instant::now()));
                }
                Some((stream, born)) => {
                    let dead = match attack {
                        Attack::SlowLoris => stream.write_all(b"a").is_err(),
                        Attack::IdleFlood => born.elapsed() >= IDLE_RECYCLE,
                        Attack::None => false,
                    };
                    if dead {
                        *slot = None;
                    }
                }
            }
        }
        std::thread::sleep(TICK);
    }
}

/// The open-loop harness: warm server, unattacked baseline phase,
/// attacked phase with a healthz prober, verdict.
fn open_loop(args: &ExperimentArgs) {
    let rate = extra_flag("--rate", 20).max(1);
    let duration_secs = extra_flag("--duration-secs", 4).max(1);
    let attack_conns = extra_flag("--attack-conns", 256).max(1);
    let attack = match extra_str_flag("--attack", "none").as_str() {
        "none" => Attack::None,
        "slowloris" => Attack::SlowLoris,
        "idleflood" => Attack::IdleFlood,
        other => panic!("--attack expects none|slowloris|idleflood, got {other:?}"),
    };
    let frontend: Frontend = extra_str_flag("--frontend", "event")
        .parse()
        .unwrap_or_else(|e| panic!("--frontend: {e}"));
    let mut exp = Experiment::new("serve", args);

    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: args.threads.max(1),
        default_scale: args.scale.min(4.0),
        default_seed: args.seed,
        out_dir: args.out_dir.join("serve"),
        store_dir: Some(args.out_dir.join("serve").join("store")),
        frontend,
        // Short deadlines keep the demonstration tight: hostile
        // connections are reaped within the attacked phase, and the
        // drain does not linger on attacker remnants.
        header_deadline: Duration::from_secs(2),
        drain_deadline: Duration::from_secs(2),
        // Tracing starts off so the first phase measures the untraced
        // floor; it flips on before the traced baseline below.
        tracing: false,
        ..ServerConfig::default()
    };
    let server = Server::bind(config).expect("bind loopback server");
    let addr = server.local_addr();
    let state = server.state();
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.serve());

    // Warm every query class so both phases measure the steady state.
    let (status, _, _) =
        http_request(addr, "POST", &format!("/graphs/{DATASET}/load")).expect("load request");
    assert_eq!(status, 200, "graph load failed");
    for class in &SCHEDULE {
        let path = class.path.replace("{d}", DATASET);
        let (status, _, _) = http_request(addr, "GET", &path).expect("warm-up request");
        assert_eq!(status, 200, "warm-up {path} failed");
    }

    // Phase A — untraced control: same warm workload with tracing off,
    // establishing the floor the tracing overhead is judged against.
    obs::info(
        "serveload.open_untraced",
        &[("addr", addr.to_string().into()), ("rate", (rate as u64).into())],
    );
    let untraced = open_phase(addr, rate, duration_secs);

    // Phase B — traced baseline: identical workload with every request
    // carrying a span tree into the ring. The p99 delta between A and B
    // is the end-to-end cost of tracing, pinned by the bench gate.
    state.set_tracing(true);
    obs::info(
        "serveload.open_baseline",
        &[("addr", addr.to_string().into()), ("rate", (rate as u64).into())],
    );
    let baseline = open_phase(addr, rate, duration_secs);

    // Mount the attack, give it a beat to establish, then measure the
    // same open-loop workload under fire while probing healthz.
    let stop = Arc::new(AtomicBool::new(false));
    let attack_handle = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || run_attack(addr, attack, attack_conns, &stop))
    };
    let healthz_failures = Arc::new(AtomicU64::new(0));
    let probe_handle = {
        let stop = Arc::clone(&stop);
        let failures = Arc::clone(&healthz_failures);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match http_request_within(addr, "GET", "/healthz", Duration::from_secs(2)) {
                    Ok((200, _, _)) => {}
                    _ => {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        })
    };
    if attack != Attack::None {
        std::thread::sleep(Duration::from_secs(1));
    }
    obs::info(
        "serveload.open_attack",
        &[("attack", attack.label().into()), ("conns", (attack_conns as u64).into())],
    );
    let attacked = open_phase(addr, rate, duration_secs);
    stop.store(true, Ordering::Relaxed);
    attack_handle.join().expect("attack thread");
    probe_handle.join().expect("healthz prober");
    let healthz_failures = healthz_failures.load(Ordering::Relaxed);

    shutdown.cancel();
    let summary = server_thread.join().expect("server thread").expect("graceful drain");

    let untraced_p99 = percentile(&untraced.latencies, 0.99);
    let baseline_p99 = percentile(&baseline.latencies, 0.99);
    let attack_p99 = percentile(&attacked.latencies, 0.99);
    // A floor keeps the 5× criterion meaningful when the warm baseline
    // is microseconds: "within 5× of max(baseline, 2ms)".
    let survived = attacked.errors == 0
        && healthz_failures == 0
        && attack_p99 <= 5.0 * baseline_p99.max(0.002);
    // Tracing overhead: traced baseline p99 vs the untraced control.
    // The budget is 5% — plus an absolute jitter allowance, because the
    // p99 of a few hundred loopback samples swings by many milliseconds
    // run-to-run on a shared box while the per-request tracing cost
    // measured server-side is single-digit microseconds (the span sums
    // in the ring prove it). The allowance absorbs that scheduler noise
    // and still trips on any order-of-magnitude tracing regression.
    const TRACE_JITTER_ALLOWANCE_S: f64 = 0.020;
    let trace_overhead_pct = (baseline_p99 - untraced_p99).max(0.0) / untraced_p99.max(0.002) * 100.0;
    let trace_within_budget = baseline_p99 <= 1.05 * untraced_p99 + TRACE_JITTER_ALLOWANCE_S;

    // Server-side stage breakdowns, straight from the sealed-trace
    // ring: how long requests waited for a handler, and how long the
    // cache/kernel layer took. These correlate with the client-side
    // quantiles above via X-Trace-Id.
    let sealed = state.traces.all();
    let mut queue_waits: Vec<f64> = sealed
        .iter()
        .filter_map(|t| t.stage_us("queue_wait"))
        .map(|us| us as f64 / 1e6)
        .collect();
    queue_waits.sort_by(|a, b| a.partial_cmp(b).expect("finite durations"));
    let mut computes: Vec<f64> =
        sealed.iter().map(|t| t.stage_prefix_sum_us("cache:") as f64 / 1e6).collect();
    computes.sort_by(|a, b| a.partial_cmp(b).expect("finite durations"));

    exp.bench_extra("mode", "\"open\"".to_string());
    exp.bench_extra("frontend", format!("\"{}\"", frontend.label()));
    exp.bench_extra("attack", format!("\"{}\"", attack.label()));
    exp.bench_extra("attack_conns", attack_conns.to_string());
    exp.bench_extra("rate_rps", rate.to_string());
    exp.bench_extra("duration_s", duration_secs.to_string());
    exp.bench_extra("baseline_total", baseline.total.to_string());
    exp.bench_extra("baseline_errors", baseline.errors.to_string());
    exp.bench_extra("baseline_p50_ms", json::num(percentile(&baseline.latencies, 0.50) * 1e3, 3));
    exp.bench_extra("baseline_p99_ms", json::num(baseline_p99 * 1e3, 3));
    exp.bench_extra("attack_total", attacked.total.to_string());
    exp.bench_extra("attack_errors", attacked.errors.to_string());
    exp.bench_extra("attack_p50_ms", json::num(percentile(&attacked.latencies, 0.50) * 1e3, 3));
    exp.bench_extra("attack_p99_ms", json::num(attack_p99 * 1e3, 3));
    exp.bench_extra("healthz_failures", healthz_failures.to_string());
    exp.bench_extra("survived", survived.to_string());
    exp.bench_extra("server_requests", summary.requests.to_string());
    exp.bench_extra("untraced_p50_ms", json::num(percentile(&untraced.latencies, 0.50) * 1e3, 3));
    exp.bench_extra("untraced_p99_ms", json::num(untraced_p99 * 1e3, 3));
    exp.bench_extra("trace_overhead_pct", json::num(trace_overhead_pct, 2));
    exp.bench_extra("trace_within_budget", trace_within_budget.to_string());
    exp.bench_extra("traces_sealed", sealed.len().to_string());
    exp.bench_extra("queue_wait_p99_ms", json::num(percentile(&queue_waits, 0.99) * 1e3, 3));
    exp.bench_extra("compute_p99_ms", json::num(percentile(&computes, 0.99) * 1e3, 3));

    println!(
        "serveload open-loop [{} frontend, {} x{attack_conns}]: \
         untraced p99 {:.2} ms, traced p99 {:.2} ms (+{trace_overhead_pct:.1}%), \
         attacked p99 {:.2} ms ({}/{} ok), \
         {healthz_failures} healthz failures -> survived={survived}; \
         ring: {} traces, queue-wait p99 {:.2} ms, compute p99 {:.2} ms",
        frontend.label(),
        attack.label(),
        untraced_p99 * 1e3,
        baseline_p99 * 1e3,
        attack_p99 * 1e3,
        attacked.total - attacked.errors,
        attacked.total,
        sealed.len(),
        percentile(&queue_waits, 0.99) * 1e3,
        percentile(&computes, 0.99) * 1e3,
    );
    exp.finish();
    assert_eq!(untraced.errors, 0, "untraced open-loop phase saw errors");
    assert_eq!(baseline.errors, 0, "unattacked open-loop phase saw errors");
    assert!(
        trace_within_budget,
        "tracing overhead must stay within 5% of the untraced p99 \
         (plus the {:.0} ms jitter allowance): untraced {:.3} ms, traced {:.3} ms",
        TRACE_JITTER_ALLOWANCE_S * 1e3,
        untraced_p99 * 1e3,
        baseline_p99 * 1e3,
    );
    if frontend == Frontend::EventLoop && attack != Attack::None {
        assert!(
            survived,
            "event-loop front end must survive {} x{attack_conns}: \
             attacked p99 {:.2} ms vs baseline {:.2} ms, {healthz_failures} healthz failures, \
             {} request errors",
            attack.label(),
            attack_p99 * 1e3,
            baseline_p99 * 1e3,
            attacked.errors,
        );
    }
}
