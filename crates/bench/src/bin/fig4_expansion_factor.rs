//! Figure 4 — expected expansion factor `E[|N(S)|]/|S|` as a function of
//! set size, comparing datasets against each other. Panel (a) covers the
//! small datasets, panel (b) the medium ones.
//!
//! Runs on the fault-tolerant harness: one unit per dataset, whose
//! checkpoint payload is its `(set size, factor)` curve, so a resumed
//! run rebuilds the cross-dataset grid without re-measuring.

use socnet_bench::{
    cell, degraded, emit_csv, fmt_f64, inner_par, panels, Experiment, ExperimentArgs, TableView,
};
use socnet_expansion::{ExpansionSweep, SourceSelection};
use socnet_gen::Dataset;
use socnet_runner::obs;

fn main() {
    let args = ExperimentArgs::parse();
    let mut exp = Experiment::new("fig4", &args);
    run_panel(&mut exp, "fig4a", "Figure 4(a): small datasets", &panels::FIG4_SMALL);
    run_panel(&mut exp, "fig4b", "Figure 4(b): medium datasets", &panels::FIG4_MEDIUM);
    exp.finish();
}

fn run_panel(exp: &mut Experiment, stem: &str, title: &str, datasets: &[Dataset]) {
    let args = exp.args().clone();
    let measured = exp.sweep_stage(
        stem,
        datasets,
        |_, d| format!("{stem}/{}", d.name()),
        |ctx, &d| {
            let g = args.dataset(d);
            let budget = args.sources.max(500);
            let selection = if g.node_count() <= budget {
                SourceSelection::All
            } else {
                SourceSelection::Sample(budget)
            };
            let seed = args.seed.wrapping_add(u64::from(ctx.attempt) - 1);
            let (sweep, report) = ExpansionSweep::measure_reported(
                &g,
                selection,
                seed,
                &inner_par(ctx.cancel, args.threads),
            );
            if !report.is_complete() {
                return Err(degraded(ctx.cancel, &report));
            }
            let curve = sweep.expansion_factor_curve();
            obs::info(
                "dataset.measured",
                &[
                    ("dataset", d.name().into()),
                    ("n", g.node_count().into()),
                    ("peak_alpha", curve.iter().map(|&(_, a)| a).fold(0.0, f64::max).into()),
                ],
            );
            let encoded: Vec<(u64, f64)> =
                curve.into_iter().map(|(s, a)| (s as u64, a)).collect();
            Ok(encoded)
        },
    );

    // Completed datasets only; align their curves on a common grid of
    // set sizes so the comparison reads like the paper's overlaid plot.
    let mut names: Vec<String> = Vec::new();
    let mut curves: Vec<Vec<(usize, f64)>> = Vec::new();
    let mut max_size = 0usize;
    for (d, c) in datasets.iter().zip(measured) {
        if let Some(c) = c {
            let curve: Vec<(usize, f64)> =
                c.into_iter().map(|(s, a)| (s as usize, a)).collect();
            if let Some(&(last, _)) = curve.last() {
                max_size = max_size.max(last);
            }
            names.push(d.name().to_string());
            curves.push(curve);
        }
    }

    let mut headers = vec!["set-size".to_string()];
    headers.extend(names);
    let mut csv = TableView::new(title, headers.clone());
    let mut table = TableView::new(title, headers);

    // Log-spaced grid of set sizes, interpolating each curve by its
    // nearest measured set size at or below the grid point.
    let mut grid: Vec<usize> = Vec::new();
    let mut s = 1usize;
    while s <= max_size {
        grid.push(s);
        s = ((s as f64) * 1.6).ceil() as usize;
    }
    for (i, &size) in grid.iter().enumerate() {
        let mut row = vec![cell(size)];
        for curve in &curves {
            let at = curve
                .iter()
                .take_while(|&&(sz, _)| sz <= size)
                .last()
                .map(|&(_, a)| a);
            row.push(at.map(fmt_f64).unwrap_or_else(|| "-".into()));
        }
        csv.push_row(row.clone());
        if i % 2 == 0 || i + 1 == grid.len() {
            table.push_row(row);
        }
    }
    emit_csv(&csv, &args.out_dir, stem);
    table.print();
}
