//! Figure 4 — expected expansion factor `E[|N(S)|]/|S|` as a function of
//! set size, comparing datasets against each other. Panel (a) covers the
//! small datasets, panel (b) the medium ones.

use socnet_bench::{cell, fmt_f64, panels, ExperimentArgs, TableView};
use socnet_expansion::{ExpansionSweep, SourceSelection};
use socnet_gen::Dataset;

fn main() {
    let args = ExperimentArgs::parse();
    run_panel("fig4a", "Figure 4(a): small datasets", &panels::FIG4_SMALL, &args);
    run_panel("fig4b", "Figure 4(b): medium datasets", &panels::FIG4_MEDIUM, &args);
}

fn run_panel(stem: &str, title: &str, datasets: &[Dataset], args: &ExperimentArgs) {
    // Measure each dataset's expansion-factor curve, then align them on a
    // common grid of relative set sizes so the comparison reads like the
    // paper's overlaid plot.
    let mut curves: Vec<Vec<(usize, f64)>> = Vec::new();
    let mut max_size = 0usize;
    for &d in datasets {
        let g = args.dataset(d);
        let budget = args.sources.max(500);
        let selection = if g.node_count() <= budget {
            SourceSelection::All
        } else {
            SourceSelection::Sample(budget)
        };
        let sweep = ExpansionSweep::measure(&g, selection, args.seed);
        let curve = sweep.expansion_factor_curve();
        if let Some(&(last, _)) = curve.last() {
            max_size = max_size.max(last);
        }
        eprintln!(
            "  {}: n = {}, peak alpha = {:.3}",
            d.name(),
            g.node_count(),
            curve.iter().map(|&(_, a)| a).fold(0.0, f64::max)
        );
        curves.push(curve);
    }

    let mut headers = vec!["set-size".to_string()];
    headers.extend(datasets.iter().map(|d| d.name().to_string()));
    let mut csv = TableView::new(title, headers.clone());
    let mut table = TableView::new(title, headers);

    // Log-spaced grid of set sizes, interpolating each curve by its
    // nearest measured set size at or below the grid point.
    let mut grid: Vec<usize> = Vec::new();
    let mut s = 1usize;
    while s <= max_size {
        grid.push(s);
        s = ((s as f64) * 1.6).ceil() as usize;
    }
    for (i, &size) in grid.iter().enumerate() {
        let mut row = vec![cell(size)];
        for curve in &curves {
            let at = curve
                .iter()
                .take_while(|&&(sz, _)| sz <= size)
                .last()
                .map(|&(_, a)| a);
            row.push(at.map(fmt_f64).unwrap_or_else(|| "-".into()));
        }
        csv.push_row(row.clone());
        if i % 2 == 0 || i + 1 == grid.len() {
            table.push_row(row);
        }
    }
    match csv.write_csv(&args.out_dir, stem) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
    table.print();
}
