//! Table I — dataset atlas: nodes, edges, and the second largest
//! eigenvalue modulus of the transition matrix, for every registry
//! dataset, next to the figures the paper reports for the originals.
//!
//! Runs on the fault-tolerant harness: one unit per dataset, resumable
//! from the checkpoint journal under the same parameters.

use socnet_bench::{cell, emit_csv, fmt_f64, panels, Experiment, ExperimentArgs, TableView};
use socnet_mixing::{slem, SpectralConfig};
use socnet_runner::{obs, UnitError};

fn main() {
    let args = ExperimentArgs::parse();
    let mut exp = Experiment::new("table1", &args);
    let rows = exp.stage(
        "datasets",
        &panels::TABLE1,
        |_, d| format!("datasets/{}", d.name()),
        |ctx, &d| {
            if ctx.cancel.is_cancelled() {
                return Err(UnitError::Cancelled);
            }
            let g = args.dataset(d);
            let spectrum = slem(&g, &SpectralConfig::default());
            let spec = d.spec();
            obs::info(
                "dataset.measured",
                &[
                    ("dataset", d.name().into()),
                    ("lambda2", spectrum.lambda2.into()),
                ],
            );
            Ok(vec![
                cell(d.name()),
                cell(spec.model.label()),
                cell(g.node_count()),
                cell(g.edge_count()),
                fmt_f64(spectrum.slem()),
                cell(spec.paper_nodes),
                cell(spec.paper_edges),
                spec.paper_slem.map(fmt_f64).unwrap_or_else(|| "n/a".into()),
            ])
        },
    );

    let mut table = TableView::new(
        "Table I: datasets, their properties, and second largest eigenvalues",
        vec![
            "dataset".into(),
            "model".into(),
            "nodes".into(),
            "edges".into(),
            "mu".into(),
            "paper-nodes".into(),
            "paper-edges".into(),
            "paper-mu".into(),
        ],
    );
    for row in rows.into_iter().flatten() {
        table.push_row(row);
    }

    table.print();
    emit_csv(&table, &args.out_dir, "table1");
    exp.finish();
}
