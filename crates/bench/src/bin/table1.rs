//! Table I — dataset atlas: nodes, edges, and the second largest
//! eigenvalue modulus of the transition matrix, for every registry
//! dataset, next to the figures the paper reports for the originals.

use socnet_bench::{cell, fmt_f64, panels, ExperimentArgs, TableView};
use socnet_mixing::{slem, SpectralConfig};

fn main() {
    let args = ExperimentArgs::parse();
    let mut table = TableView::new(
        "Table I: datasets, their properties, and second largest eigenvalues",
        vec![
            "dataset".into(),
            "model".into(),
            "nodes".into(),
            "edges".into(),
            "mu".into(),
            "paper-nodes".into(),
            "paper-edges".into(),
            "paper-mu".into(),
        ],
    );

    for d in panels::TABLE1 {
        let g = args.dataset(d);
        let spectrum = slem(&g, &SpectralConfig::default());
        let spec = d.spec();
        table.push_row(vec![
            cell(d.name()),
            cell(spec.model.label()),
            cell(g.node_count()),
            cell(g.edge_count()),
            fmt_f64(spectrum.slem()),
            cell(spec.paper_nodes),
            cell(spec.paper_edges),
            spec.paper_slem.map(fmt_f64).unwrap_or_else(|| "n/a".into()),
        ]);
        eprintln!("  measured {} (lambda2 = {:.5})", d.name(), spectrum.lambda2);
    }

    table.print();
    match table.write_csv(&args.out_dir, "table1") {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
