//! Science ablations A1–A4: the *effect* of each design knob DESIGN.md
//! calls out (the criterion `ablation` bench measures their *cost*).
//!
//! * A1 — trust-modulation schemes vs. mixing speed (the rationale of
//!   the paper's reference 16);
//! * A2 — caveman rewiring probability vs. the SLEM (the knob that
//!   makes the strict-trust registry entries slow);
//! * A3 — GateKeeper distributor count vs. admission quality;
//! * A4 — SybilLimit instance count vs. honest/Sybil acceptance (the
//!   `r₀√m` rule made visible).

use socnet_bench::{cell, fmt_f64, ExperimentArgs, TableView};
use socnet_core::NodeId;
use socnet_gen::{heterogeneous_caveman, Dataset};
use socnet_mixing::{slem, ModulatedOperator, SpectralConfig, TrustModulation};
use socnet_sybil::{
    eval, AttackedGraph, GateKeeper, GateKeeperConfig, SybilAttack, SybilLimit,
    SybilLimitConfig, SybilTopology,
};

fn main() {
    let args = ExperimentArgs::parse();
    modulation_schemes(&args);
    caveman_rewiring(&args);
    gatekeeper_distributors(&args);
    sybillimit_instances(&args);
}

/// A1: per-scheme TVD curves on one weak-trust dataset.
fn modulation_schemes(args: &ExperimentArgs) {
    let g = Dataset::WikiVote.generate_scaled(0.2 * args.scale, args.seed);
    let schemes: [(&str, TrustModulation); 4] = [
        ("uniform", TrustModulation::Uniform),
        ("lazy-0.5", TrustModulation::Lazy { alpha: 0.5 }),
        ("originator-0.2", TrustModulation::OriginatorBiased { beta: 0.2 }),
        ("similarity", TrustModulation::SimilarityBiased),
    ];
    let mut headers = vec!["walk-length".to_string()];
    headers.extend(schemes.iter().map(|(n, _)| n.to_string()));
    let mut table = TableView::new(
        format!("A1: trust modulation on {} (n = {})", Dataset::WikiVote.name(), g.node_count()),
        headers,
    );
    let curves: Vec<Vec<f64>> = schemes
        .iter()
        .map(|&(_, m)| ModulatedOperator::new(&g, m).mixing_curve(NodeId(0), 40))
        .collect();
    for t in [1usize, 2, 5, 10, 20, 40] {
        let mut row = vec![cell(t)];
        row.extend(curves.iter().map(|c| fmt_f64(c[t - 1])));
        table.push_row(row);
    }
    table.print();
    emit(&table, args, "ablation_a1");
}

/// A2: SLEM as a function of the caveman rewiring probability.
fn caveman_rewiring(args: &ExperimentArgs) {
    let cliques = (330.0 * args.scale * 0.2).max(10.0) as usize;
    let mut table = TableView::new(
        format!("A2: caveman rewiring vs SLEM ({cliques} cliques, sizes 3..22)"),
        vec!["rewire-p".into(), "mu".into(), "gap".into()],
    );
    for p in [0.0, 0.02, 0.05, 0.1, 0.2, 0.4] {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(args.seed);
        let g = heterogeneous_caveman(cliques, 3, 22, p, &mut rng);
        let (g, _) = socnet_core::largest_component(&g);
        let s = slem(&g, &SpectralConfig::default());
        table.push_row(vec![fmt_f64(p), fmt_f64(s.slem()), fmt_f64(s.gap())]);
    }
    table.print();
    emit(&table, args, "ablation_a2");
}

/// A3: GateKeeper quality vs distributor count.
fn gatekeeper_distributors(args: &ExperimentArgs) {
    let honest = Dataset::Epinion.generate_scaled(0.2 * args.scale, args.seed);
    let attacked = AttackedGraph::mount(
        &honest,
        &SybilAttack {
            sybil_count: 100,
            attack_edges: 15,
            topology: SybilTopology::ErdosRenyi { p: 0.1 },
            seed: args.seed,
        },
    );
    let mut table = TableView::new(
        format!("A3: GateKeeper distributors on {} (f = 0.2)", Dataset::Epinion.name()),
        vec!["distributors".into(), "honest-accept".into(), "sybil-per-edge".into()],
    );
    for m in [5usize, 11, 33, 99, 297] {
        let out = GateKeeper::new(GateKeeperConfig {
            distributors: m,
            f_admit: 0.2,
            seed: args.seed,
            ..Default::default()
        })
        .run(&attacked);
        let s = eval::admission_stats(&attacked, out.admitted());
        table.push_row(vec![
            cell(m),
            format!("{:.1}%", 100.0 * s.honest_accept_rate),
            fmt_f64(s.sybils_per_attack_edge),
        ]);
    }
    table.print();
    emit(&table, args, "ablation_a3");
}

/// A4: SybilLimit acceptance vs instance count, against the r0*sqrt(m) rule.
fn sybillimit_instances(args: &ExperimentArgs) {
    let honest = Dataset::WikiVote.generate_scaled(0.15 * args.scale, args.seed);
    let attacked = AttackedGraph::mount(
        &honest,
        &SybilAttack {
            sybil_count: 100,
            attack_edges: 15,
            topology: SybilTopology::ErdosRenyi { p: 0.1 },
            seed: args.seed,
        },
    );
    let g = attacked.graph();
    let recommended = SybilLimitConfig::recommended_instances(g.edge_count());
    let everyone: Vec<NodeId> = g.nodes().collect();
    let mut table = TableView::new(
        format!(
            "A4: SybilLimit instances on {} (recommended r = {recommended})",
            Dataset::WikiVote.name()
        ),
        vec!["instances".into(), "honest-accept".into(), "sybil-per-edge".into()],
    );
    for r in [recommended / 8, recommended / 4, recommended / 2, recommended, 2 * recommended] {
        let sl = SybilLimit::new(
            g,
            SybilLimitConfig {
                instances: r.max(1),
                route_length: 10,
                balance_slack: 4.0,
                seed: args.seed,
            },
        );
        let verdict = sl.verify_all(NodeId(0), &everyone);
        let s = eval::admission_stats(&attacked, &verdict);
        table.push_row(vec![
            cell(r.max(1)),
            format!("{:.1}%", 100.0 * s.honest_accept_rate),
            fmt_f64(s.sybils_per_attack_edge),
        ]);
    }
    table.print();
    emit(&table, args, "ablation_a4");
}

fn emit(table: &TableView, args: &ExperimentArgs, stem: &str) {
    match table.write_csv(&args.out_dir, stem) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
