//! Science ablations A1–A4: the *effect* of each design knob DESIGN.md
//! calls out (the criterion `ablation` bench measures their *cost*).
//!
//! * A1 — trust-modulation schemes vs. mixing speed (the rationale of
//!   the paper's reference 16);
//! * A2 — caveman rewiring probability vs. the SLEM (the knob that
//!   makes the strict-trust registry entries slow);
//! * A3 — GateKeeper distributor count vs. admission quality;
//! * A4 — SybilLimit instance count vs. honest/Sybil acceptance (the
//!   `r₀√m` rule made visible).
//!
//! Runs on the fault-tolerant harness as four stages (one unit per knob
//! setting), so one pathological setting costs only its row and an
//! interrupted sweep resumes from the checkpoint journal.

use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet_bench::{
    cell, degraded, emit_csv, fmt_f64, inner_par, Experiment, ExperimentArgs, TableView,
};
use socnet_core::NodeId;
use socnet_gen::{heterogeneous_caveman, Dataset};
use socnet_mixing::{slem, ModulatedOperator, SpectralConfig, TrustModulation};
use socnet_runner::UnitError;
use socnet_sybil::{
    eval, AttackedGraph, GateKeeper, GateKeeperConfig, SybilAttack, SybilLimit,
    SybilLimitConfig, SybilTopology,
};

fn main() {
    let args = ExperimentArgs::parse();
    let mut exp = Experiment::new("ablations", &args);
    modulation_schemes(&mut exp);
    caveman_rewiring(&mut exp);
    gatekeeper_distributors(&mut exp);
    sybillimit_instances(&mut exp);
    exp.finish();
}

/// A1: per-scheme TVD curves on one weak-trust dataset.
fn modulation_schemes(exp: &mut Experiment) {
    let args = exp.args().clone();
    let g = Dataset::WikiVote.generate_scaled(0.2 * args.scale, args.seed);
    let schemes: [(&str, TrustModulation); 4] = [
        ("uniform", TrustModulation::Uniform),
        ("lazy-0.5", TrustModulation::Lazy { alpha: 0.5 }),
        ("originator-0.2", TrustModulation::OriginatorBiased { beta: 0.2 }),
        ("similarity", TrustModulation::SimilarityBiased),
    ];
    let curves = exp.stage(
        "a1-modulation",
        &schemes,
        |_, (name, _)| format!("a1/{name}"),
        |ctx, &(_, m)| {
            if ctx.cancel.is_cancelled() {
                return Err(UnitError::Cancelled);
            }
            Ok(ModulatedOperator::new(&g, m).mixing_curve(NodeId(0), 40))
        },
    );

    let mut names: Vec<String> = Vec::new();
    let mut cols: Vec<Vec<f64>> = Vec::new();
    for ((name, _), c) in schemes.iter().zip(curves) {
        if let Some(c) = c {
            names.push(name.to_string());
            cols.push(c);
        }
    }
    let mut headers = vec!["walk-length".to_string()];
    headers.extend(names);
    let mut table = TableView::new(
        format!("A1: trust modulation on {} (n = {})", Dataset::WikiVote.name(), g.node_count()),
        headers,
    );
    for t in [1usize, 2, 5, 10, 20, 40] {
        let mut row = vec![cell(t)];
        row.extend(cols.iter().map(|c| fmt_f64(c[t - 1])));
        table.push_row(row);
    }
    table.print();
    emit(&table, &args, "ablation_a1");
}

/// A2: SLEM as a function of the caveman rewiring probability.
fn caveman_rewiring(exp: &mut Experiment) {
    let args = exp.args().clone();
    let cliques = (330.0 * args.scale * 0.2).max(10.0) as usize;
    let ps = [0.0, 0.02, 0.05, 0.1, 0.2, 0.4];
    let rows = exp.stage(
        "a2-caveman",
        &ps,
        |_, p| format!("a2/p={p}"),
        |ctx, &p| {
            if ctx.cancel.is_cancelled() {
                return Err(UnitError::Cancelled);
            }
            let mut rng = StdRng::seed_from_u64(args.seed);
            let g = heterogeneous_caveman(cliques, 3, 22, p, &mut rng);
            let (g, _) = socnet_core::largest_component(&g);
            let s = slem(&g, &SpectralConfig::default());
            Ok(vec![fmt_f64(p), fmt_f64(s.slem()), fmt_f64(s.gap())])
        },
    );

    let mut table = TableView::new(
        format!("A2: caveman rewiring vs SLEM ({cliques} cliques, sizes 3..22)"),
        vec!["rewire-p".into(), "mu".into(), "gap".into()],
    );
    for row in rows.into_iter().flatten() {
        table.push_row(row);
    }
    table.print();
    emit(&table, &args, "ablation_a2");
}

/// A3: GateKeeper quality vs distributor count.
fn gatekeeper_distributors(exp: &mut Experiment) {
    let args = exp.args().clone();
    let honest = Dataset::Epinion.generate_scaled(0.2 * args.scale, args.seed);
    let attacked = AttackedGraph::mount(
        &honest,
        &SybilAttack {
            sybil_count: 100,
            attack_edges: 15,
            topology: SybilTopology::ErdosRenyi { p: 0.1 },
            seed: args.seed,
        },
    );
    let counts = [5usize, 11, 33, 99, 297];
    let rows = exp.sweep_stage(
        "a3-distributors",
        &counts,
        |_, m| format!("a3/m={m}"),
        |ctx, &m| {
            let gk = GateKeeper::new(GateKeeperConfig {
                distributors: m,
                f_admit: 0.2,
                seed: args.seed,
                ..Default::default()
            });
            // Same controller `run` would sample, but through the
            // reported entry point so the floods share our token.
            let controller =
                attacked.random_honest(&mut StdRng::seed_from_u64(args.seed));
            let (out, report) = gk
                .run_from_reported(
                    attacked.graph(),
                    controller,
                    &inner_par(ctx.cancel, args.threads),
                )
                .map_err(|e| UnitError::Failed(e.to_string()))?;
            if !report.is_complete() {
                return Err(degraded(ctx.cancel, &report));
            }
            let s = eval::admission_stats(&attacked, out.admitted());
            Ok(vec![
                cell(m),
                format!("{:.1}%", 100.0 * s.honest_accept_rate),
                fmt_f64(s.sybils_per_attack_edge),
            ])
        },
    );

    let mut table = TableView::new(
        format!("A3: GateKeeper distributors on {} (f = 0.2)", Dataset::Epinion.name()),
        vec!["distributors".into(), "honest-accept".into(), "sybil-per-edge".into()],
    );
    for row in rows.into_iter().flatten() {
        table.push_row(row);
    }
    table.print();
    emit(&table, &args, "ablation_a3");
}

/// A4: SybilLimit acceptance vs instance count, against the r0*sqrt(m) rule.
fn sybillimit_instances(exp: &mut Experiment) {
    let args = exp.args().clone();
    let honest = Dataset::WikiVote.generate_scaled(0.15 * args.scale, args.seed);
    let attacked = AttackedGraph::mount(
        &honest,
        &SybilAttack {
            sybil_count: 100,
            attack_edges: 15,
            topology: SybilTopology::ErdosRenyi { p: 0.1 },
            seed: args.seed,
        },
    );
    let g = attacked.graph();
    let recommended = SybilLimitConfig::recommended_instances(g.edge_count());
    let everyone: Vec<NodeId> = g.nodes().collect();
    let instances =
        [recommended / 8, recommended / 4, recommended / 2, recommended, 2 * recommended];
    let rows = exp.stage(
        "a4-instances",
        &instances,
        |i, r| format!("a4/{i}-r={r}"),
        |ctx, &r| {
            if ctx.cancel.is_cancelled() {
                return Err(UnitError::Cancelled);
            }
            let sl = SybilLimit::new(
                g,
                SybilLimitConfig {
                    instances: r.max(1),
                    route_length: 10,
                    balance_slack: 4.0,
                    seed: args.seed,
                },
            );
            let verdict = sl.verify_all(NodeId(0), &everyone);
            let s = eval::admission_stats(&attacked, &verdict);
            Ok(vec![
                cell(r.max(1)),
                format!("{:.1}%", 100.0 * s.honest_accept_rate),
                fmt_f64(s.sybils_per_attack_edge),
            ])
        },
    );

    let mut table = TableView::new(
        format!(
            "A4: SybilLimit instances on {} (recommended r = {recommended})",
            Dataset::WikiVote.name()
        ),
        vec!["instances".into(), "honest-accept".into(), "sybil-per-edge".into()],
    );
    for row in rows.into_iter().flatten() {
        table.push_row(row);
    }
    table.print();
    emit(&table, &args, "ablation_a4");
}

fn emit(table: &TableView, args: &ExperimentArgs, stem: &str) {
    emit_csv(table, &args.out_dir, stem);
}
