//! Experiment harness reproducing the paper's tables and figures.
//!
//! Each binary in `src/bin/` regenerates one artifact:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table I — dataset atlas with the second largest eigenvalue |
//! | `fig1_mixing` | Figure 1 — TVD vs. walk length per dataset |
//! | `fig2_coreness` | Figure 2 — coreness ECDFs |
//! | `table2_gatekeeper` | Table II — GateKeeper honest/Sybil admission |
//! | `fig3_expansion` | Figure 3 — neighbor counts vs. envelope size |
//! | `fig4_expansion_factor` | Figure 4 — expected expansion factor |
//! | `fig5_cores` | Figure 5 — relative core size and core count vs. k |
//! | `report` | everything above plus the cross-defense comparison (E8) |
//!
//! Every binary accepts `--scale <f64>` (dataset size multiplier),
//! `--seed <u64>`, `--sources <usize>` (per-figure sampling budget), and
//! `--out <dir>` (CSV output directory, default `results/`).
//!
//! # Fault tolerance
//!
//! The binaries run their per-dataset work through [`Experiment`], the
//! fault-tolerant harness over `socnet-runner`: a panicking unit is
//! recorded in the run report instead of aborting the whole binary, and
//! completed units are journaled so an interrupted run picks up where it
//! left off. The extra flags:
//!
//! * `--time-budget <secs>` — cooperative deadline; units still pending
//!   when it expires are reported as timed-out, finished units are kept.
//! * `--resume` / `--no-resume` — reuse (default) or discard the
//!   checkpoint journal `<out>/<name>.ckpt` from a previous identical
//!   invocation (same binary, `--scale`, `--seed`, and `--sources`).
//! * `--retries <n>` — extra attempts for failed units (default 1); a
//!   retried unit reruns with the same inputs and a seed bumped by its
//!   attempt number, so retries stay deterministic.
//! * `--threads <n>` — worker threads for the parallel sweeps (default:
//!   all available cores). Sweep results are merged in input order, so
//!   the output CSVs are byte-identical at every thread count.
//!
//! Each binary prints a run report (`== run report ==`) and writes it
//! beside the CSVs as `<name>_report.txt`. CSVs are written atomically
//! (tmp + fsync + rename), so an interrupted run never leaves a torn
//! artifact.
//!
//! # Observability
//!
//! Diagnostics go through the structured event API in
//! `socnet_runner::obs` instead of ad-hoc `eprintln!`s:
//!
//! * `--log-format {pretty,json}` — human-readable lines (default) or
//!   line-delimited JSON events with a pinned schema.
//! * `--log-file <path>` — write events to a file instead of stderr.
//! * `--quiet` — silence the stderr event stream (result tables on
//!   stdout and a `--log-file` sink are unaffected).
//!
//! Besides the CSVs, every run writes `<out>/run.json` (invocation
//! manifest: args, seed, git rev, hostname, per-stage coverage and
//! timings), `<out>/<name>_metrics.json` (counters + duration
//! histograms), and `BENCH_<name>.json` (per-stage wall/throughput,
//! written to `SOCNET_BENCH_DIR` or the working directory).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::path::{Path, PathBuf};
use std::time::Duration;

use socnet_gen::Dataset;
use socnet_runner::obs::{self, LogFormat};
use socnet_runner::write_atomic;

mod experiment;

pub use experiment::{degraded, inner_par, Experiment};

/// Command-line arguments shared by every experiment binary.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentArgs {
    /// Dataset size multiplier (1.0 = the registry's default sizes).
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Per-figure source/sample budget (walk sources, BFS cores, ...).
    pub sources: usize,
    /// Directory CSV outputs are written to.
    pub out_dir: PathBuf,
    /// Cooperative wall-clock budget for the whole run, if any.
    pub time_budget: Option<Duration>,
    /// Whether to reuse the checkpoint journal of a previous identical
    /// invocation (`--no-resume` discards it).
    pub resume: bool,
    /// Extra attempts for failed units (0 disables retry).
    pub retries: u32,
    /// Worker threads for parallel sweeps (at least 1; the default is
    /// the machine's available parallelism). The thread count never
    /// changes the output bytes — only the wall clock.
    pub threads: usize,
    /// Which mixing-time estimator `fig1_mixing` runs (other binaries
    /// ignore it).
    pub mixing_est: MixingEstimator,
    /// Event rendering for the diagnostic sink.
    pub log_format: LogFormat,
    /// Event destination (`None` = stderr).
    pub log_file: Option<PathBuf>,
    /// Whether to silence the stderr event stream.
    pub quiet: bool,
}

impl Default for ExperimentArgs {
    fn default() -> Self {
        ExperimentArgs {
            scale: 1.0,
            seed: 42,
            sources: 100,
            out_dir: PathBuf::from("results"),
            time_budget: None,
            resume: true,
            retries: 1,
            threads: available_threads(),
            mixing_est: MixingEstimator::Exact,
            log_format: LogFormat::Pretty,
            log_file: None,
            quiet: false,
        }
    }
}

/// Which mixing-time path `fig1_mixing` takes: the exact dense
/// distribution evolution, or the collision-sampling estimator that
/// stays tractable on `--scale large`/`xl` graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MixingEstimator {
    /// Dense `O(n + m)`-per-step evolution; exact TVD curves.
    #[default]
    Exact,
    /// Molla–Pandurangan collision sampling; approximate TVD upper
    /// bounds from `K` independent walks per source.
    Sample,
}

impl std::str::FromStr for MixingEstimator {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exact" => Ok(MixingEstimator::Exact),
            "sample" => Ok(MixingEstimator::Sample),
            other => Err(format!("unknown mixing estimator {other:?} (exact or sample)")),
        }
    }
}

/// The machine's available parallelism, defaulting to 1 when it cannot
/// be determined.
fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// A malformed experiment command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgsError(String);

impl Display for ArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgsError {}

/// Usage text shared by every experiment binary.
pub const USAGE: &str = "\
options:
  --scale <f64|name>    dataset size multiplier, finite and > 0, or a preset:
                        tiny=0.02 small=0.1 medium=0.25 full=1.0
                        large=5.0 xl=50.0 (default 1.0)
  --seed <u64>          base RNG seed (default 42)
  --sources <usize>     per-figure sampling budget (default 100)
  --out <dir>           CSV output directory (default results/)
  --time-budget <secs>  cooperative wall-clock budget, finite and > 0
  --resume              reuse the checkpoint journal of a matching run (default)
  --no-resume           discard any previous checkpoint journal
  --retries <u32>       extra attempts for failed units (default 1)
  --threads <usize>     worker threads for parallel sweeps, >= 1
                        (default: all available cores; never changes outputs)
  --mixing-est <est>    fig1 mixing estimator: exact (default) or sample
                        (collision-sampling approximation for large scales)
  --log-format <fmt>    diagnostic event rendering: pretty (default) or json
  --log-file <path>     write events to a file instead of stderr
  --quiet               silence the stderr event stream (stdout results and
                        --log-file are unaffected)
unknown flags are ignored (cargo bench passes its own)";

/// Named `--scale` presets, resolved before float parsing. `large` and
/// `xl` synthesize 10⁵–10⁶-node graphs in the CSR kernel bench; the
/// figure binaries accept them too but take correspondingly long.
pub const SCALE_PRESETS: [(&str, f64); 6] = [
    ("tiny", 0.02),
    ("small", 0.1),
    ("medium", 0.25),
    ("full", 1.0),
    ("large", 5.0),
    ("xl", 50.0),
];

impl ExperimentArgs {
    /// Parses `std::env::args`, ignoring unknown flags.
    ///
    /// On a malformed command line, prints the error and usage to stderr
    /// and exits with status 2 (the conventional usage-error code)
    /// instead of panicking.
    pub fn parse() -> Self {
        Self::try_parse_from(std::env::args().skip(1)).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        })
    }

    /// Parses an explicit argument list (testable entry point).
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] if a flag's value is missing or unparsable,
    /// or if `--scale`/`--time-budget` is not a finite positive number.
    pub fn try_parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ArgsError> {
        let mut out = ExperimentArgs::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .ok_or_else(|| ArgsError(format!("missing value for {name}")))
            };
            match flag.as_str() {
                "--scale" => {
                    let raw = value("--scale")?;
                    if let Some((_, preset)) =
                        SCALE_PRESETS.iter().find(|(name, _)| *name == raw)
                    {
                        out.scale = *preset;
                        continue;
                    }
                    let scale: f64 = raw.parse().map_err(|_| {
                        ArgsError(format!(
                            "--scale expects a float or preset (tiny/small/medium/full/large/xl), got {raw:?}"
                        ))
                    })?;
                    if !scale.is_finite() || scale <= 0.0 {
                        return Err(ArgsError(format!(
                            "--scale must be finite and > 0, got {raw}"
                        )));
                    }
                    out.scale = scale;
                }
                "--seed" => {
                    let raw = value("--seed")?;
                    out.seed = raw.parse().map_err(|_| {
                        ArgsError(format!("--seed expects an integer, got {raw:?}"))
                    })?;
                }
                "--sources" => {
                    let raw = value("--sources")?;
                    out.sources = raw.parse().map_err(|_| {
                        ArgsError(format!("--sources expects an integer, got {raw:?}"))
                    })?;
                }
                "--out" => out.out_dir = PathBuf::from(value("--out")?),
                "--time-budget" => {
                    let raw = value("--time-budget")?;
                    let secs: f64 = raw.parse().map_err(|_| {
                        ArgsError(format!("--time-budget expects seconds, got {raw:?}"))
                    })?;
                    if !secs.is_finite() || secs <= 0.0 {
                        return Err(ArgsError(format!(
                            "--time-budget must be finite and > 0, got {raw}"
                        )));
                    }
                    out.time_budget = Some(Duration::from_secs_f64(secs));
                }
                "--resume" => out.resume = true,
                "--no-resume" => out.resume = false,
                "--retries" => {
                    let raw = value("--retries")?;
                    out.retries = raw.parse().map_err(|_| {
                        ArgsError(format!("--retries expects an integer, got {raw:?}"))
                    })?;
                }
                "--threads" => {
                    let raw = value("--threads")?;
                    let threads: usize = raw.parse().map_err(|_| {
                        ArgsError(format!("--threads expects an integer, got {raw:?}"))
                    })?;
                    if threads == 0 {
                        return Err(ArgsError(
                            "--threads must be at least 1 (omit the flag to use all cores)"
                                .to_string(),
                        ));
                    }
                    out.threads = threads;
                }
                "--mixing-est" => {
                    let raw = value("--mixing-est")?;
                    out.mixing_est = raw.parse().map_err(|e: String| ArgsError(e))?;
                }
                "--log-format" => {
                    let raw = value("--log-format")?;
                    out.log_format = raw.parse().map_err(|e: String| ArgsError(e))?;
                }
                "--log-file" => out.log_file = Some(PathBuf::from(value("--log-file")?)),
                "--quiet" => out.quiet = true,
                _ => {} // ignore unknown flags (cargo bench passes its own)
            }
        }
        Ok(out)
    }

    /// Parses an explicit argument list, panicking on malformed input.
    ///
    /// # Panics
    ///
    /// Panics with the parse error; prefer
    /// [`try_parse_from`](Self::try_parse_from) outside tests.
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        Self::try_parse_from(args).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Generates a registry dataset honoring the scale and seed flags.
    pub fn dataset(&self, d: Dataset) -> socnet_core::Graph {
        d.generate_scaled(self.scale, self.seed)
    }
}

/// A printable, CSV-exportable results table.
///
/// # Examples
///
/// ```
/// use socnet_bench::TableView;
///
/// let mut t = TableView::new("demo", vec!["dataset".into(), "n".into()]);
/// t.push_row(vec!["Wiki-vote".into(), "3500".into()]);
/// let text = t.render();
/// assert!(text.contains("Wiki-vote"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableView {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableView {
    /// Creates an empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        TableView { title: title.into(), headers, rows: Vec::new() }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// Writes the table as CSV under `dir`, named `<stem>.csv`.
    ///
    /// The write is atomic (tmp sibling + fsync + rename): readers never
    /// observe a torn CSV, even if the process dies mid-write.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or file.
    pub fn write_csv(&self, dir: &Path, stem: &str) -> std::io::Result<PathBuf> {
        let path = dir.join(format!("{stem}.csv"));
        let mut contents = String::new();
        contents.push_str(&self.headers.join(","));
        contents.push('\n');
        for row in &self.rows {
            contents.push_str(&row.join(","));
            contents.push('\n');
        }
        write_atomic(&path, contents.as_bytes())?;
        Ok(path)
    }
}

/// Writes `table` as `<dir>/<stem>.csv` and reports the outcome through
/// the event sink: `artifact.written` on success, a warn-level
/// `artifact.write_failed` on error. The run continues either way — a
/// missing CSV degrades the artifact set, not the experiment.
pub fn emit_csv(table: &TableView, dir: &Path, stem: &str) {
    match table.write_csv(dir, stem) {
        Ok(path) => obs::info(
            "artifact.written",
            &[
                ("path", path.display().to_string().into()),
                ("rows", table.len().into()),
            ],
        ),
        Err(e) => obs::warn(
            "artifact.write_failed",
            &[
                ("stem", stem.into()),
                ("error", e.to_string().into()),
            ],
        ),
    }
}

/// Formats a float with a sensible fixed precision for table cells.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else if x.abs() >= 1.0 {
        format!("{x:.3}")
    } else {
        format!("{x:.5}")
    }
}

/// Formats any display value (helper for building rows).
pub fn cell(value: impl Display) -> String {
    value.to_string()
}

/// The dataset lists of each figure/table, mirroring the paper's panels.
pub mod panels {
    use socnet_gen::Dataset;

    /// Table I: the full registry.
    pub const TABLE1: [Dataset; 15] = Dataset::ALL;

    /// Figure 1(a): small-to-medium datasets.
    pub const FIG1_SMALL: [Dataset; 7] = [
        Dataset::Physics1,
        Dataset::Physics2,
        Dataset::Physics3,
        Dataset::WikiVote,
        Dataset::SlashdotA,
        Dataset::Epinion,
        Dataset::Enron,
    ];

    /// Figure 1(b): large datasets.
    pub const FIG1_LARGE: [Dataset; 6] = [
        Dataset::FacebookA,
        Dataset::FacebookB,
        Dataset::LiveJournalB,
        Dataset::LiveJournalA,
        Dataset::Dblp,
        Dataset::Youtube,
    ];

    /// Figure 2(a): small datasets.
    pub const FIG2_SMALL: [Dataset; 4] =
        [Dataset::Physics1, Dataset::Physics2, Dataset::WikiVote, Dataset::Epinion];

    /// Figure 2(b): large datasets.
    pub const FIG2_LARGE: [Dataset; 5] = [
        Dataset::Dblp,
        Dataset::Youtube,
        Dataset::FacebookA,
        Dataset::FacebookB,
        Dataset::LiveJournalA,
    ];

    /// Table II: the four GateKeeper datasets, with the attack-edge
    /// budget used for each (the paper's exact counts are illegible in
    /// the available text; these are proportional stand-ins around 1% of
    /// nodes, with Slashdot's legible "77" kept).
    pub const TABLE2: [(Dataset, usize); 4] = [
        (Dataset::Physics2, 50),
        (Dataset::FacebookA, 120),
        (Dataset::LiveJournalA, 150),
        (Dataset::SlashdotA, 77),
    ];

    /// Table II admission thresholds `f`.
    pub const TABLE2_F: [f64; 3] = [0.1, 0.2, 0.4];

    /// Figure 3 panels (a)–(j).
    pub const FIG3: [Dataset; 10] = [
        Dataset::Physics1,
        Dataset::Physics2,
        Dataset::Physics3,
        Dataset::WikiVote,
        Dataset::FacebookA,
        Dataset::LiveJournalA,
        Dataset::SlashdotA,
        Dataset::Enron,
        Dataset::Epinion,
        Dataset::RiceGrad,
    ];

    /// Figure 4(a): small datasets.
    pub const FIG4_SMALL: [Dataset; 5] = [
        Dataset::Physics1,
        Dataset::Physics2,
        Dataset::Physics3,
        Dataset::FacebookA,
        Dataset::LiveJournalA,
    ];

    /// Figure 4(b): medium datasets.
    pub const FIG4_MEDIUM: [Dataset; 4] =
        [Dataset::WikiVote, Dataset::Epinion, Dataset::Enron, Dataset::SlashdotA];

    /// Figure 5 panels: core profiles.
    pub const FIG5: [Dataset; 5] = [
        Dataset::Physics1,
        Dataset::Physics2,
        Dataset::Epinion,
        Dataset::WikiVote,
        Dataset::FacebookA,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    #[test]
    fn args_parse_known_flags() {
        let a = ExperimentArgs::parse_from(
            ["--scale", "0.5", "--seed", "7", "--sources", "20", "--out", "/tmp/x"]
                .map(String::from),
        );
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.seed, 7);
        assert_eq!(a.sources, 20);
        assert_eq!(a.out_dir, PathBuf::from("/tmp/x"));
    }

    #[test]
    fn args_ignore_unknown_flags() {
        let a = ExperimentArgs::parse_from(["--bench", "--scale", "2.0"].map(String::from));
        assert_eq!(a.scale, 2.0);
        assert_eq!(a.seed, ExperimentArgs::default().seed);
    }

    #[test]
    fn args_missing_value_is_an_error() {
        let err = ExperimentArgs::try_parse_from(["--scale".to_string()]).unwrap_err();
        assert!(err.to_string().contains("missing value"), "got {err}");
    }

    #[test]
    fn args_reject_degenerate_scales() {
        for bad in ["0", "-1.5", "inf", "NaN", "bogus"] {
            let res = ExperimentArgs::try_parse_from(["--scale".into(), bad.into()]);
            assert!(res.is_err(), "--scale {bad} should be rejected");
        }
    }

    #[test]
    fn args_parse_fault_tolerance_flags() {
        let a = ExperimentArgs::parse_from(
            ["--time-budget", "1.5", "--no-resume", "--retries", "3"].map(String::from),
        );
        assert_eq!(a.time_budget, Some(Duration::from_secs_f64(1.5)));
        assert!(!a.resume);
        assert_eq!(a.retries, 3);
        let d = ExperimentArgs::default();
        assert_eq!(d.time_budget, None);
        assert!(d.resume);
        assert!(ExperimentArgs::try_parse_from(["--time-budget".into(), "0".into()]).is_err());
    }

    #[test]
    fn args_parse_threads() {
        let a = ExperimentArgs::parse_from(["--threads", "3"].map(String::from));
        assert_eq!(a.threads, 3);
        let d = ExperimentArgs::default();
        assert!(d.threads >= 1, "default must be at least one thread");
    }

    #[test]
    fn args_reject_degenerate_threads() {
        for bad in ["0", "-2", "two", "1.5", ""] {
            let res = ExperimentArgs::try_parse_from(["--threads".into(), bad.into()]);
            assert!(res.is_err(), "--threads {bad:?} should be rejected");
        }
        let err =
            ExperimentArgs::try_parse_from(["--threads".into(), "0".into()]).unwrap_err();
        assert!(err.to_string().contains("at least 1"), "got {err}");
    }

    #[test]
    fn args_parse_scale_presets() {
        for (name, expected) in SCALE_PRESETS {
            let a = ExperimentArgs::parse_from(["--scale".to_string(), name.to_string()]);
            assert_eq!(a.scale, expected, "preset {name}");
        }
        let err = ExperimentArgs::try_parse_from(["--scale".into(), "huge".into()]).unwrap_err();
        assert!(err.to_string().contains("preset"), "got {err}");
    }

    #[test]
    fn args_parse_mixing_estimator() {
        let a = ExperimentArgs::parse_from(["--mixing-est", "sample"].map(String::from));
        assert_eq!(a.mixing_est, MixingEstimator::Sample);
        let d = ExperimentArgs::default();
        assert_eq!(d.mixing_est, MixingEstimator::Exact);
        let err =
            ExperimentArgs::try_parse_from(["--mixing-est".into(), "magic".into()]).unwrap_err();
        assert!(err.to_string().contains("mixing estimator"), "got {err}");
    }

    #[test]
    fn args_parse_log_flags() {
        let a = ExperimentArgs::parse_from(
            ["--log-format", "json", "--log-file", "/tmp/ev.jsonl", "--quiet"].map(String::from),
        );
        assert_eq!(a.log_format, LogFormat::Json);
        assert_eq!(a.log_file, Some(PathBuf::from("/tmp/ev.jsonl")));
        assert!(a.quiet);
        let d = ExperimentArgs::default();
        assert_eq!(d.log_format, LogFormat::Pretty);
        assert_eq!(d.log_file, None);
        assert!(!d.quiet);
        let err =
            ExperimentArgs::try_parse_from(["--log-format".into(), "yaml".into()]).unwrap_err();
        assert!(err.to_string().contains("log format"), "got {err}");
    }

    #[test]
    fn emit_csv_writes_the_table() {
        let dir = std::env::temp_dir().join("socnet-bench-emit-test");
        let mut t = TableView::new("t", vec!["a".into()]);
        t.push_row(vec!["1".into()]);
        emit_csv(&t, &dir, "emitted");
        let text = fs::read_to_string(dir.join("emitted.csv")).expect("csv written");
        assert_eq!(text, "a\n1\n");
        fs::remove_file(dir.join("emitted.csv")).ok();
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TableView::new("t", vec!["a".into(), "long-header".into()]);
        t.push_row(vec!["xxxx".into(), "1".into()]);
        let r = t.render();
        assert!(r.contains("== t =="));
        assert!(r.contains("a     long-header"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn table_csv_round_trip() {
        let dir = std::env::temp_dir().join("socnet-bench-test");
        let mut t = TableView::new("t", vec!["a".into(), "b".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
        let path = t.write_csv(&dir, "demo").expect("write");
        let text = fs::read_to_string(&path).expect("read");
        assert_eq!(text, "a,b\n1,2\n");
        fs::remove_file(path).ok();
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = TableView::new("t", vec!["a".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(0.123456), "0.12346");
        assert_eq!(fmt_f64(3.14159), "3.142");
        assert_eq!(fmt_f64(12345.6), "12345.6");
    }

    #[test]
    fn panels_reference_registry_members() {
        for d in panels::FIG3 {
            assert!(Dataset::ALL.contains(&d));
        }
        assert_eq!(panels::TABLE2.len(), 4);
    }
}
