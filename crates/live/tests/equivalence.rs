//! The randomized delta-equivalence suite: the live path (overlay +
//! incremental coreness) must be indistinguishable from throwing the
//! graph away and rebuilding from scratch, at every checkpoint, across
//! generator families.
//!
//! Two invariants per checkpoint:
//!
//! 1. `overlay.rebuild()` is **byte-identical** (`Csr: Eq`, sorted
//!    slabs) to `Csr::from_edges` over the independently tracked edge
//!    set.
//! 2. Incremental coreness (with its documented recompute fallback)
//!    equals a full Batagelj–Žaveršnik peel of the rebuilt CSR, and so
//!    does the derived degeneracy.
//!
//! The medium-BA case drives 10k ops — the acceptance bar from the
//! issue — the other families run smaller but checkpoint every batch.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use socnet_core::{Csr, Graph};
use socnet_kcore::CoreDecomposition;
use socnet_live::{DeltaOp, MaintainedGraph};

/// Ground truth: an independently maintained edge set, mutated by the
/// same op stream through the dumbest possible interpreter.
struct Truth {
    n: usize,
    edges: BTreeSet<(u32, u32)>,
}

impl Truth {
    fn from_csr(csr: &Csr) -> Truth {
        Truth { n: csr.node_count(), edges: csr.edges().collect() }
    }

    fn apply(&mut self, ops: &[DeltaOp]) {
        for op in ops {
            let (u, v) = op.endpoints();
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            match op {
                DeltaOp::Insert(..) => {
                    // Node growth mirrors the overlay contract: only an
                    // op that actually applies may grow the graph — a
                    // blind delete or duplicate insert naming an unseen
                    // id must not.
                    if self.edges.insert(key) {
                        self.n = self.n.max(key.1 as usize + 1);
                    }
                }
                DeltaOp::Delete(..) => {
                    self.edges.remove(&key);
                }
            }
        }
    }

    fn csr(&self) -> Csr {
        Csr::from_edges(self.n, self.edges.iter().copied())
    }
}

/// One random batch: mostly inserts inside (and slightly beyond) the
/// current id space, deletes biased toward existing edges so they hit.
fn random_batch(truth: &Truth, rng: &mut StdRng, batch_len: usize) -> Vec<DeltaOp> {
    let span = (truth.n as u32).max(4) + 2; // a little headroom grows nodes
    let existing: Vec<(u32, u32)> = truth.edges.iter().copied().collect();
    let mut ops = Vec::with_capacity(batch_len);
    for _ in 0..batch_len {
        let roll = rng.random_range(0..100u32);
        if roll < 55 || existing.is_empty() {
            ops.push(DeltaOp::Insert(rng.random_range(0..span), rng.random_range(0..span)));
        } else if roll < 90 {
            // Delete a real edge (as of batch start — may already be
            // gone, exercising the ignored path).
            let (u, v) = existing[rng.random_range(0..existing.len())];
            ops.push(DeltaOp::Delete(u, v));
        } else {
            // Blind delete / duplicate insert / self-loop noise.
            let u = rng.random_range(0..span);
            ops.push(if roll % 2 == 0 {
                DeltaOp::Delete(u, rng.random_range(0..span))
            } else {
                DeltaOp::Insert(u, u)
            });
        }
    }
    ops
}

/// Runs `batches` random batches over `base`, asserting both invariants
/// at every checkpoint. Returns total ops applied.
fn churn_and_check(tag: &str, base: Graph, seed: u64, batches: usize, batch_len: usize) -> usize {
    let base = Csr::from_graph(&base);
    let mut live = MaintainedGraph::new(base.clone());
    let mut truth = Truth::from_csr(&base);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0;
    for batch_no in 0..batches {
        let ops = random_batch(&truth, &mut rng, batch_len);
        total += ops.len();
        truth.apply(&ops);
        live.apply(&ops);

        let rebuilt = live.rebuild();
        let scratch = truth.csr();
        assert_eq!(
            rebuilt, scratch,
            "{tag}: rebuilt CSR diverged from from-scratch at batch {batch_no}"
        );
        let full = CoreDecomposition::compute_csr(&scratch);
        assert_eq!(
            live.cores().coreness_slice(),
            full.coreness_slice(),
            "{tag}: incremental coreness diverged at batch {batch_no}"
        );
        assert_eq!(live.cores().degeneracy(), full.degeneracy(), "{tag}: degeneracy diverged");
        // Fold the overlay like the serve layer does at its rebuild
        // threshold — the next batch must stay equivalent across the
        // swap, and adjacency goes back to slice speed.
        live.rebase();
    }
    total
}

#[test]
fn barabasi_albert_family_stays_equivalent() {
    let mut rng = StdRng::seed_from_u64(11);
    let base = socnet_gen::barabasi_albert(300, 3, &mut rng);
    churn_and_check("ba", base, 0xba5e, 40, 25);
}

#[test]
fn watts_strogatz_family_stays_equivalent() {
    let mut rng = StdRng::seed_from_u64(22);
    let base = socnet_gen::watts_strogatz(240, 6, 0.1, &mut rng);
    churn_and_check("ws", base, 0x5711a11, 40, 25);
}

#[test]
fn relaxed_caveman_family_stays_equivalent() {
    let mut rng = StdRng::seed_from_u64(33);
    let base = socnet_gen::relaxed_caveman(18, 12, 0.15, &mut rng);
    churn_and_check("caveman", base, 0xca4e, 40, 25);
}

#[test]
fn medium_ba_survives_ten_thousand_deltas() {
    // The acceptance-criteria case: 10k random edge deltas against a
    // medium BA graph, incremental coreness equal to full recompute at
    // every checkpoint (every 500 ops, plus implicitly op-exact because
    // earlier per-batch families checkpoint tighter).
    let mut rng = StdRng::seed_from_u64(44);
    let base = socnet_gen::barabasi_albert(2000, 4, &mut rng);
    let total = churn_and_check("ba-10k", base, 0xf00d, 20, 500);
    assert!(total >= 10_000, "meant to apply 10k ops, applied {total}");
}

#[test]
fn recompute_fallback_keeps_equivalence_under_a_tiny_bound() {
    // Force the damage bound to trip constantly: the fallback path must
    // preserve exactness just as well as the repair path.
    let mut rng = StdRng::seed_from_u64(55);
    let base = Csr::from_graph(&socnet_gen::watts_strogatz(120, 4, 0.05, &mut rng));
    let mut live = MaintainedGraph::with_damage_bound(base.clone(), 1);
    let mut truth = Truth::from_csr(&base);
    let mut recomputes = 0;
    for _ in 0..30 {
        let ops = random_batch(&truth, &mut rng, 20);
        truth.apply(&ops);
        let report = live.apply(&ops);
        recomputes += report.recomputed;
        let full = CoreDecomposition::compute_csr(&truth.csr());
        assert_eq!(live.cores().coreness_slice(), full.coreness_slice());
    }
    assert!(recomputes > 0, "a bound of 1 must force recomputes");
}
