//! A [`LiveGraph`] bundled with maintained coreness.
//!
//! Every expensive live property is either versioned-and-cached
//! (mixing, expansion) or maintained incrementally; coreness is the
//! maintained one. [`MaintainedGraph`] keeps the overlay and the
//! [`LiveCores`] in lockstep: each op updates the overlay first, then
//! repairs coreness against the post-update adjacency, falling back to
//! a full re-peel of the rebuilt CSR whenever the subcore walk trips
//! its damage bound.

use socnet_core::Csr;
use socnet_kcore::{CoreDecomposition, EdgeRepair, LiveCores};

use crate::delta::DeltaOp;
use crate::overlay::{ApplyStats, LiveGraph};

/// What applying a batch did, including how coreness was kept exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintainReport {
    /// Overlay-level effect of the batch.
    pub stats: ApplyStats,
    /// Ops repaired by the bounded subcore walk.
    pub repaired: usize,
    /// Ops that forced a full re-peel (damage bound exceeded).
    pub recomputed: usize,
}

/// A live graph whose coreness is always exact.
#[derive(Debug, Clone)]
pub struct MaintainedGraph {
    graph: LiveGraph,
    cores: LiveCores,
    bound: usize,
}

impl MaintainedGraph {
    /// Wraps a base CSR; coreness is peeled once up front.
    pub fn new(base: Csr) -> MaintainedGraph {
        Self::with_damage_bound(base, socnet_kcore::DEFAULT_DAMAGE_BOUND)
    }

    /// Same, with an explicit subcore damage bound.
    pub fn with_damage_bound(base: Csr, bound: usize) -> MaintainedGraph {
        let cores = LiveCores::with_damage_bound(
            CoreDecomposition::compute_csr(&base).coreness_slice().to_vec(),
            bound,
        );
        MaintainedGraph { graph: LiveGraph::new(base), cores, bound }
    }

    /// Restores from persisted parts (see [`LiveGraph::from_parts`]);
    /// coreness is re-peeled from the restored state.
    pub fn from_parts(base: Csr, net_ops: &[DeltaOp], node_count: usize) -> MaintainedGraph {
        let graph = LiveGraph::from_parts(base, net_ops, node_count);
        let bound = socnet_kcore::DEFAULT_DAMAGE_BOUND;
        let mut this = MaintainedGraph { graph, cores: LiveCores::new(Vec::new()), bound };
        this.recompute();
        this
    }

    /// The overlay.
    pub fn graph(&self) -> &LiveGraph {
        &self.graph
    }

    /// The maintained coreness.
    pub fn cores(&self) -> &LiveCores {
        &self.cores
    }

    /// Applies a batch op-by-op, keeping coreness exact throughout.
    pub fn apply(&mut self, ops: &[DeltaOp]) -> MaintainReport {
        let mut report = MaintainReport::default();
        for &op in ops {
            let (u, v) = op.endpoints();
            let stats = self.graph.apply(std::slice::from_ref(&op));
            report.stats.inserted += stats.inserted;
            report.stats.deleted += stats.deleted;
            report.stats.ignored += stats.ignored;
            if stats.inserted + stats.deleted == 0 {
                continue; // no-op: adjacency unchanged, coreness unchanged
            }
            self.cores.ensure_len(self.graph.node_count());
            let graph = &self.graph;
            let neighbors = |x: u32, visit: &mut dyn FnMut(u32)| graph.for_neighbors(x, visit);
            let repair = match op {
                DeltaOp::Insert(..) => self.cores.insert_edge(u, v, neighbors),
                DeltaOp::Delete(..) => self.cores.delete_edge(u, v, neighbors),
            };
            match repair {
                EdgeRepair::Repaired { .. } => report.repaired += 1,
                EdgeRepair::RecomputeNeeded => {
                    report.recomputed += 1;
                    self.recompute();
                }
            }
        }
        report
    }

    /// Folds the overlay into a fresh CSR (see [`LiveGraph::rebuild`]).
    pub fn rebuild(&self) -> Csr {
        self.graph.rebuild()
    }

    /// Folds the overlay into the base in place — what the serve layer
    /// does when the rebuild threshold trips. The graph and its
    /// coreness are unchanged; the overlay empties, restoring `O(deg)`
    /// slice-speed adjacency. Returns the fresh base for callers that
    /// swap it into a registry.
    pub fn rebase(&mut self) -> &Csr {
        self.graph = LiveGraph::new(self.graph.rebuild());
        self.graph.base()
    }

    /// Full re-peel from the rebuilt CSR — the `RecomputeNeeded`
    /// fallback, also usable to re-anchor after an external rebuild.
    pub fn recompute(&mut self) {
        let coreness =
            CoreDecomposition::compute_csr(&self.graph.rebuild()).coreness_slice().to_vec();
        let mut cores = LiveCores::with_damage_bound(coreness, self.bound);
        cores.ensure_len(self.graph.node_count());
        self.cores = cores;
    }
}
