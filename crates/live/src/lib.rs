//! `socnet-live` — mutable, versioned graphs for the serve stack.
//!
//! The paper's trustworthy-computing decisions hinge on properties that
//! drift as a social network grows; this crate is the mutability layer
//! that lets the serving system model that drift instead of freezing
//! every dataset at generation time. It is transport- and
//! storage-agnostic: `socnet-serve` supplies HTTP and the WAL, this
//! crate supplies the graph math —
//!
//! * [`DeltaOp`] / [`parse_ops`] / [`encode_ops`] — the batched edge
//!   insert/delete model and its line wire format, shared between HTTP
//!   bodies, WAL frames, and compacted snapshots.
//! * [`LiveGraph`] — a delta overlay over an immutable base [`Csr`]:
//!   `O(batch)` ingestion, `O(deg)` adjacency, threshold-driven
//!   [`LiveGraph::rebuild`] into a fresh CSR.
//! * [`MaintainedGraph`] — the overlay plus incrementally-maintained
//!   coreness (`socnet_kcore::LiveCores`), kept exact op-by-op with a
//!   bounded subcore walk and a full re-peel fallback.
//!
//! ```
//! use socnet_core::Csr;
//! use socnet_live::{parse_ops, MaintainedGraph};
//!
//! let base = Csr::from_edges(4, [(0, 1), (1, 2), (2, 0)]);
//! let mut live = MaintainedGraph::new(base);
//! let ops = parse_ops(b"+ 2 3\n+ 3 0\n").unwrap();
//! live.apply(&ops);
//! assert_eq!(live.cores().coreness_slice(), &[2, 2, 2, 2]);
//! ```
//!
//! [`Csr`]: socnet_core::Csr

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delta;
mod maintain;
mod overlay;

pub use delta::{encode_ops, parse_ops, DeltaOp, MAX_OPS_PER_BATCH};
pub use maintain::{MaintainReport, MaintainedGraph};
pub use overlay::{ApplyStats, LiveGraph};
