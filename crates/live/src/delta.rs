//! The edge-delta op model and its line-oriented wire format.
//!
//! One format serves three surfaces: `POST /datasets/<k>/delta` request
//! bodies, WAL frame payloads, and compacted net-delta snapshot bodies.
//! A batch is plain text, one op per line:
//!
//! ```text
//! + <u> <v>        ← insert undirected edge (u, v)
//! - <u> <v>        ← delete undirected edge (u, v)
//! ```
//!
//! Node ids are decimal `u32`. Blank lines are ignored. Anything else
//! rejects the whole batch — a rejected batch is never acked, never
//! logged, never applied.

use std::fmt;

/// One edge mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeltaOp {
    /// Insert undirected edge `(u, v)`.
    Insert(u32, u32),
    /// Delete undirected edge `(u, v)`.
    Delete(u32, u32),
}

impl DeltaOp {
    /// The endpoints, as written.
    pub fn endpoints(&self) -> (u32, u32) {
        match *self {
            DeltaOp::Insert(u, v) | DeltaOp::Delete(u, v) => (u, v),
        }
    }
}

impl fmt::Display for DeltaOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DeltaOp::Insert(u, v) => write!(f, "+ {u} {v}"),
            DeltaOp::Delete(u, v) => write!(f, "- {u} {v}"),
        }
    }
}

/// Upper bound on ops in a single batch; bigger batches are rejected
/// before parsing allocates proportional memory.
pub const MAX_OPS_PER_BATCH: usize = 100_000;

/// Serializes ops to the wire format (one `+/- u v` line per op).
pub fn encode_ops(ops: &[DeltaOp]) -> Vec<u8> {
    use std::fmt::Write;
    let mut out = String::with_capacity(ops.len() * 12);
    for op in ops {
        let _ = writeln!(out, "{op}");
    }
    out.into_bytes()
}

/// Parses a wire-format batch.
///
/// # Errors
///
/// A human-readable reason (bad tag, malformed id, oversized batch) —
/// the caller maps it to HTTP 400. Structural validation only: no-op
/// inserts/deletes and self-loops parse fine and are counted as
/// `ignored` at apply time, so acked batches always re-apply cleanly.
pub fn parse_ops(body: &[u8]) -> Result<Vec<DeltaOp>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "delta body is not UTF-8".to_string())?;
    let mut ops = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if ops.len() >= MAX_OPS_PER_BATCH {
            return Err(format!("batch exceeds {MAX_OPS_PER_BATCH} ops"));
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next();
        let u = parts.next().and_then(|t| t.parse::<u32>().ok());
        let v = parts.next().and_then(|t| t.parse::<u32>().ok());
        let op = match (tag, u, v, parts.next()) {
            (Some("+"), Some(u), Some(v), None) => DeltaOp::Insert(u, v),
            (Some("-"), Some(u), Some(v), None) => DeltaOp::Delete(u, v),
            _ => return Err(format!("line {}: expected '+ u v' or '- u v', got {line:?}", i + 1)),
        };
        ops.push(op);
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_parse_round_trips() {
        let ops = vec![
            DeltaOp::Insert(0, 9),
            DeltaOp::Delete(1, 2),
            DeltaOp::Insert(4_000_000_000, 7),
        ];
        let wire = encode_ops(&ops);
        assert_eq!(parse_ops(&wire).expect("parse"), ops);
        assert_eq!(
            String::from_utf8(wire).unwrap(),
            "+ 0 9\n- 1 2\n+ 4000000000 7\n"
        );
    }

    #[test]
    fn blank_lines_and_padding_are_tolerated() {
        let ops = parse_ops(b"\n  + 1 2  \n\n- 3 4\n").expect("parse");
        assert_eq!(ops, vec![DeltaOp::Insert(1, 2), DeltaOp::Delete(3, 4)]);
        assert!(parse_ops(b"").expect("empty").is_empty());
    }

    #[test]
    fn malformed_batches_are_rejected_whole() {
        for bad in [
            &b"* 1 2\n"[..],
            b"+ 1\n",
            b"+ 1 2 3\n",
            b"+ 1 -2\n",
            b"+ a b\n",
            b"+ 1 99999999999\n",
            b"\xff\xfe",
        ] {
            assert!(parse_ops(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn oversized_batches_are_rejected() {
        let mut body = Vec::new();
        for i in 0..=MAX_OPS_PER_BATCH as u32 {
            body.extend_from_slice(format!("+ 0 {i}\n").as_bytes());
        }
        assert!(parse_ops(&body).is_err());
    }
}
