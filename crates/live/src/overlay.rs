//! The delta-overlay graph: an immutable base CSR plus net edge sets.
//!
//! Rebuilding a CSR per delta batch would make ingestion `O(m)`; the
//! overlay makes it `O(batch)`. The representation is the *net
//! difference* against the generated base — `added` and `removed` edge
//! sets (normalized `u < v`) plus an adjacency map for the additions —
//! so adjacency queries cost `O(deg)` and the whole mutable state is
//! exactly what compaction persists: replaying the net ops onto a
//! freshly generated base reproduces the graph bit for bit.
//!
//! Once the overlay grows past the caller's rebuild threshold,
//! [`LiveGraph::rebuild`] folds everything into a new [`Csr`]; callers
//! swap it into their registry and construct a fresh overlay on top.

use std::collections::{BTreeMap, BTreeSet};

use socnet_core::Csr;

use crate::delta::DeltaOp;

/// What [`LiveGraph::apply`] did with a batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyStats {
    /// Edges actually inserted.
    pub inserted: usize,
    /// Edges actually deleted.
    pub deleted: usize,
    /// No-ops: duplicate inserts, deletes of absent edges, self-loops.
    pub ignored: usize,
}

/// A mutable graph: base CSR + net overlay.
///
/// # Examples
///
/// ```
/// use socnet_core::Csr;
/// use socnet_live::{DeltaOp, LiveGraph};
///
/// let base = Csr::from_edges(3, [(0, 1), (1, 2)]);
/// let mut live = LiveGraph::new(base);
/// live.apply(&[DeltaOp::Insert(2, 0), DeltaOp::Delete(0, 1)]);
/// assert!(live.has_edge(2, 0));
/// assert!(!live.has_edge(0, 1));
/// let rebuilt = live.rebuild();
/// assert_eq!(rebuilt, Csr::from_edges(3, [(1, 2), (0, 2)]));
/// ```
#[derive(Debug, Clone)]
pub struct LiveGraph {
    base: Csr,
    /// Edges present now but absent in the base (`u < v`).
    added: BTreeSet<(u32, u32)>,
    /// Edges absent now but present in the base (`u < v`).
    removed: BTreeSet<(u32, u32)>,
    /// Adjacency of `added`, for `O(deg)` neighbor iteration.
    added_adj: BTreeMap<u32, BTreeSet<u32>>,
    /// Current node count; grows when an op names an id past the end.
    n: usize,
}

fn norm(u: u32, v: u32) -> (u32, u32) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

impl LiveGraph {
    /// Wraps a base CSR with an empty overlay.
    pub fn new(base: Csr) -> LiveGraph {
        let n = base.node_count();
        LiveGraph { base, added: BTreeSet::new(), removed: BTreeSet::new(), added_adj: BTreeMap::new(), n }
    }

    /// Current node count (base nodes plus any delta-grown ids).
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Current undirected edge count.
    pub fn edge_count(&self) -> usize {
        self.base.edge_count() - self.removed.len() + self.added.len()
    }

    /// The immutable base this overlay diffs against.
    pub fn base(&self) -> &Csr {
        &self.base
    }

    /// Number of overlay entries (net adds + net removes) — the size
    /// callers compare against their rebuild threshold.
    pub fn overlay_len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Is undirected edge `(u, v)` present right now?
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        if u == v {
            return false;
        }
        let key = norm(u, v);
        if self.added.contains(&key) {
            return true;
        }
        if self.removed.contains(&key) {
            return false;
        }
        (key.0 as usize) < self.base.node_count()
            && (key.1 as usize) < self.base.node_count()
            && self.base.neighbors(key.0).binary_search(&key.1).is_ok()
    }

    /// Current degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        let mut d = 0;
        self.for_neighbors(v, &mut |_| d += 1);
        d
    }

    /// Visits every current neighbor of `v` exactly once: the base row
    /// minus removed edges, plus added ones.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the current node range.
    pub fn for_neighbors(&self, v: u32, visit: &mut dyn FnMut(u32)) {
        assert!((v as usize) < self.n, "node {v} out of range {}", self.n);
        if (v as usize) < self.base.node_count() {
            for &u in self.base.neighbors(v) {
                if !self.removed.contains(&norm(v, u)) {
                    visit(u);
                }
            }
        }
        if let Some(extra) = self.added_adj.get(&v) {
            for &u in extra {
                visit(u);
            }
        }
    }

    /// Applies a batch of ops in order. Inserts of present edges,
    /// deletes of absent edges, and self-loops are counted as ignored —
    /// so any acked batch re-applies cleanly during WAL replay. Node
    /// ids past the current range grow the graph only when the op
    /// actually applies (an insert of a new edge); an ignored op never
    /// grows it, so a no-op naming a huge id cannot balloon the node
    /// count (and every O(n) structure sized from it).
    pub fn apply(&mut self, ops: &[DeltaOp]) -> ApplyStats {
        let mut stats = ApplyStats::default();
        for op in ops {
            let (u, v) = op.endpoints();
            if u == v {
                stats.ignored += 1;
                continue;
            }
            let key = norm(u, v);
            match op {
                DeltaOp::Insert(..) => {
                    if self.has_edge(u, v) {
                        stats.ignored += 1;
                    } else if self.removed.remove(&key) {
                        // Un-deleting a base edge: back to base state.
                        stats.inserted += 1;
                    } else {
                        self.n = self.n.max(key.1 as usize + 1);
                        self.added.insert(key);
                        self.added_adj.entry(key.0).or_default().insert(key.1);
                        self.added_adj.entry(key.1).or_default().insert(key.0);
                        stats.inserted += 1;
                    }
                }
                DeltaOp::Delete(..) => {
                    if !self.has_edge(u, v) {
                        stats.ignored += 1;
                    } else if self.added.remove(&key) {
                        // Un-adding an overlay edge: back to base state.
                        if let Some(s) = self.added_adj.get_mut(&key.0) {
                            s.remove(&key.1);
                        }
                        if let Some(s) = self.added_adj.get_mut(&key.1) {
                            s.remove(&key.0);
                        }
                        stats.deleted += 1;
                    } else {
                        self.removed.insert(key);
                        stats.deleted += 1;
                    }
                }
            }
        }
        stats
    }

    /// Folds the overlay into a fresh CSR: base edges minus removals,
    /// plus additions. The overlay itself is untouched — swap the
    /// result in and build a new `LiveGraph` on top of it.
    pub fn rebuild(&self) -> Csr {
        let kept = self.base.edges().filter(|key| !self.removed.contains(key));
        let extra = self.added.iter().copied();
        Csr::from_edges(self.n, kept.chain(extra))
    }

    /// The minimal op sequence reproducing this overlay on a fresh copy
    /// of the same base: every net removal as a delete, every net
    /// addition as an insert (deterministic order). This is exactly
    /// what compaction persists.
    pub fn net_ops(&self) -> Vec<DeltaOp> {
        let mut ops = Vec::with_capacity(self.overlay_len());
        ops.extend(self.removed.iter().map(|&(u, v)| DeltaOp::Delete(u, v)));
        ops.extend(self.added.iter().map(|&(u, v)| DeltaOp::Insert(u, v)));
        ops
    }

    /// Restores an overlay from persisted parts: the regenerated base,
    /// the net ops from [`net_ops`](LiveGraph::net_ops), and the node
    /// count at persist time (so delta-grown nodes whose edges were all
    /// deleted again survive a restart).
    pub fn from_parts(base: Csr, net_ops: &[DeltaOp], node_count: usize) -> LiveGraph {
        let mut live = LiveGraph::new(base);
        live.apply(net_ops);
        live.n = live.n.max(node_count);
        live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Csr {
        // Square 0-1-2-3 plus chord 0-2.
        Csr::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
    }

    #[test]
    fn overlay_tracks_net_difference_not_history() {
        let mut live = LiveGraph::new(base());
        // Delete then re-insert a base edge: overlay returns to empty.
        live.apply(&[DeltaOp::Delete(0, 1), DeltaOp::Insert(1, 0)]);
        assert_eq!(live.overlay_len(), 0);
        // Insert then delete a novel edge: empty again.
        live.apply(&[DeltaOp::Insert(1, 3), DeltaOp::Delete(3, 1)]);
        assert_eq!(live.overlay_len(), 0);
        assert_eq!(live.rebuild(), base());
    }

    #[test]
    fn apply_counts_and_ignores_no_ops() {
        let mut live = LiveGraph::new(base());
        let stats = live.apply(&[
            DeltaOp::Insert(0, 1), // already in base → ignored
            DeltaOp::Insert(2, 2), // self-loop → ignored
            DeltaOp::Delete(1, 3), // absent → ignored
            DeltaOp::Insert(1, 3), // real insert
            DeltaOp::Delete(0, 2), // real delete
        ]);
        assert_eq!(stats, ApplyStats { inserted: 1, deleted: 1, ignored: 3 });
        assert!(live.has_edge(1, 3));
        assert!(!live.has_edge(0, 2));
        assert_eq!(live.edge_count(), 5);
    }

    #[test]
    fn neighbors_merge_base_and_overlay() {
        let mut live = LiveGraph::new(base());
        live.apply(&[DeltaOp::Delete(0, 1), DeltaOp::Insert(0, 5)]);
        assert_eq!(live.node_count(), 6, "op on node 5 grows the graph");
        let mut seen = Vec::new();
        live.for_neighbors(0, &mut |u| seen.push(u));
        seen.sort_unstable();
        assert_eq!(seen, vec![2, 3, 5]);
        assert_eq!(live.degree(0), 3);
        let mut isolated = Vec::new();
        live.for_neighbors(4, &mut |u| isolated.push(u));
        assert!(isolated.is_empty());
    }

    #[test]
    fn ignored_ops_never_grow_the_node_count() {
        let mut live = LiveGraph::new(base());
        let stats = live.apply(&[
            DeltaOp::Delete(0, u32::MAX),        // absent edge → ignored
            DeltaOp::Delete(4_000_000, 9),       // absent edge → ignored
            DeltaOp::Insert(u32::MAX, u32::MAX), // self-loop → ignored
        ]);
        assert_eq!(stats, ApplyStats { ignored: 3, ..ApplyStats::default() });
        assert_eq!(live.node_count(), 4, "no-ops must not balloon n");
        // An insert that applies still grows the graph.
        live.apply(&[DeltaOp::Insert(0, 7)]);
        assert_eq!(live.node_count(), 8);
    }

    #[test]
    fn rebuild_equals_from_scratch_construction() {
        let mut live = LiveGraph::new(base());
        live.apply(&[
            DeltaOp::Delete(2, 3),
            DeltaOp::Insert(1, 3),
            DeltaOp::Insert(4, 5),
            DeltaOp::Insert(0, 4),
        ]);
        let expect = Csr::from_edges(6, [(0, 1), (1, 2), (3, 0), (0, 2), (1, 3), (4, 5), (0, 4)]);
        assert_eq!(live.rebuild(), expect);
    }

    #[test]
    fn net_ops_round_trip_through_from_parts() {
        let mut live = LiveGraph::new(base());
        live.apply(&[
            DeltaOp::Delete(0, 1),
            DeltaOp::Insert(1, 3),
            DeltaOp::Insert(0, 6),
            DeltaOp::Delete(0, 6), // grows to 7 nodes, then edge vanishes
        ]);
        let restored = LiveGraph::from_parts(base(), &live.net_ops(), live.node_count());
        assert_eq!(restored.node_count(), live.node_count());
        assert_eq!(restored.rebuild(), live.rebuild());
        assert_eq!(restored.net_ops(), live.net_ops());
    }
}
