//! Community structure of social graphs.
//!
//! The paper's related work (Viswanath et al., SIGCOMM 2010) shows that
//! social-network Sybil defenses are all, at heart, *community detectors
//! around a trusted node*: they rank nodes by how well-connected they
//! are to the verifier, and are sensitive to community structure. This
//! crate supplies the community machinery needed to reproduce that
//! observation and to characterize the registry's graphs:
//!
//! * [`label_propagation`] — near-linear-time global community
//!   detection;
//! * [`modularity`] — partition quality (Newman–Girvan `Q`);
//! * [`conductance`] — cut quality of a node set, the quantity mixing
//!   time is governed by;
//! * [`LocalCommunity`] — the greedy conductance sweep from a trusted
//!   seed (Mislove-style), whose absorption order *is* a Sybil-defense
//!   ranking comparable to SybilLimit/GateKeeper rankings.
//!
//! # Examples
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use socnet_community::{label_propagation, modularity};
//! use socnet_gen::planted_partition;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let g = planted_partition(4, 30, 0.4, 0.01, &mut rng);
//! let communities = label_propagation(&g, 50, &mut rng);
//! let q = modularity(&g, communities.labels());
//! assert!(q > 0.5, "planted structure should be found, Q = {q}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cheeger;
mod conductance;
mod labelprop;
mod local;
mod modularity;

pub use cheeger::{check_cheeger, cheeger_bounds, estimate_conductance, CheegerBounds};
pub use conductance::{conductance, cut_edges};
pub use labelprop::{label_propagation, Communities};
pub use local::{LocalCommunity, SweepPoint};
pub use modularity::modularity;
