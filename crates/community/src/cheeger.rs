//! Cheeger's inequality: the bridge between conductance and mixing.
//!
//! The paper's whole Sec. IV-B argument — community structure explains
//! mixing — is formalized by Cheeger's inequality for reversible chains:
//!
//! ```text
//!     φ²/2  ≤  1 − λ₂  ≤  2φ
//! ```
//!
//! where `φ` is the graph's conductance (minimized over all cuts) and
//! `λ₂` the walk matrix's second eigenvalue. A low-conductance cut (a
//! tight community boundary) *forces* a small spectral gap, hence slow
//! mixing. This module evaluates both sides from measured quantities so
//! the inequality can be checked — and the paper's narrative verified —
//! on any graph.

use rand::Rng;
use serde::{Deserialize, Serialize};
use socnet_core::Graph;

use crate::LocalCommunity;

/// The spectral-gap bracket implied by a conductance value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheegerBounds {
    /// Lower bound `φ²/2` on the spectral gap `1 − λ₂`.
    pub gap_lower: f64,
    /// Upper bound `2φ` on the spectral gap.
    pub gap_upper: f64,
    /// The conductance the bounds were derived from.
    pub phi: f64,
}

/// Computes the Cheeger bracket for a conductance value.
///
/// # Panics
///
/// Panics if `phi` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use socnet_community::cheeger_bounds;
///
/// let b = cheeger_bounds(0.1);
/// assert!((b.gap_lower - 0.005).abs() < 1e-12);
/// assert!((b.gap_upper - 0.2).abs() < 1e-12);
/// ```
pub fn cheeger_bounds(phi: f64) -> CheegerBounds {
    assert!((0.0..=1.0).contains(&phi), "conductance {phi} out of [0, 1]");
    CheegerBounds { gap_lower: phi * phi / 2.0, gap_upper: 2.0 * phi, phi }
}

/// Estimates the graph's conductance `φ` by sweeping local communities
/// from `trials` random seeds and keeping the best (lowest-conductance)
/// cut seen.
///
/// An upper bound on the true `φ` that tightens with more trials — the
/// true minimum is NP-hard, but community-structured graphs reveal their
/// bottleneck cuts to almost every sweep.
///
/// # Panics
///
/// Panics if the graph has no edges or `trials == 0`.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use socnet_community::estimate_conductance;
/// use socnet_gen::barbell;
///
/// let g = barbell(8, 0);
/// let mut rng = StdRng::seed_from_u64(1);
/// let phi = estimate_conductance(&g, 4, &mut rng);
/// // The bridge cut: 1 edge over the clique's volume.
/// assert!(phi < 0.03, "phi = {phi}");
/// ```
pub fn estimate_conductance<R: Rng + ?Sized>(graph: &Graph, trials: usize, rng: &mut R) -> f64 {
    assert!(graph.edge_count() > 0, "conductance needs edges");
    assert!(trials > 0, "need at least one trial");
    let mut best = 1.0f64;
    for _ in 0..trials {
        let seed = socnet_core::random_node(graph, rng);
        let sweep = LocalCommunity::sweep(graph, seed, graph.node_count() / 2 + 1);
        let cut = sweep.best_cut();
        best = best.min(cut.conductance);
    }
    best
}

/// Checks Cheeger's inequality on measured values: returns the bracket
/// and whether the measured gap `1 − lambda2` falls inside it (within
/// `tolerance`, to absorb the estimate's one-sidedness).
///
/// Since [`estimate_conductance`] only upper-bounds `φ`, the *upper*
/// side `gap ≤ 2φ̂` must always hold; the lower side can be violated by
/// a loose estimate, which is itself informative.
pub fn check_cheeger(phi_estimate: f64, lambda2: f64, tolerance: f64) -> (CheegerBounds, bool) {
    let bounds = cheeger_bounds(phi_estimate.clamp(0.0, 1.0));
    let gap = 1.0 - lambda2;
    let upper_holds = gap <= bounds.gap_upper + tolerance;
    (bounds, upper_holds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use socnet_gen::{barbell, complete, planted_partition};

    #[test]
    fn bounds_shape() {
        let b = cheeger_bounds(0.5);
        assert!(b.gap_lower <= b.gap_upper);
        assert_eq!(b.phi, 0.5);
        assert_eq!(cheeger_bounds(0.0).gap_upper, 0.0);
    }

    #[test]
    fn barbell_estimate_finds_the_bridge() {
        let g = barbell(10, 0);
        let mut rng = StdRng::seed_from_u64(3);
        let phi = estimate_conductance(&g, 6, &mut rng);
        // Bridge cut: 1 edge / vol(K10 side) = 1/(10*9 + 1).
        assert!((phi - 1.0 / 91.0).abs() < 1e-9, "phi = {phi}");
    }

    #[test]
    fn clique_estimate_is_large() {
        let g = complete(16);
        let mut rng = StdRng::seed_from_u64(5);
        let phi = estimate_conductance(&g, 3, &mut rng);
        assert!(phi > 0.4, "cliques have no weak cut, phi = {phi}");
    }

    #[test]
    fn planted_partition_gap_respects_the_upper_bound() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = planted_partition(2, 60, 0.3, 0.01, &mut rng);
        let phi = estimate_conductance(&g, 4, &mut rng);
        // Independent spectral measurement of lambda2.
        let lambda2 = socnet_mixing::slem(&g, &Default::default()).lambda2;
        let (bounds, upper_holds) = check_cheeger(phi, lambda2, 1e-9);
        assert!(upper_holds, "gap {} vs 2phi {}", 1.0 - lambda2, bounds.gap_upper);
        // And the lower side too, since the estimate is near-exact here.
        assert!(1.0 - lambda2 >= bounds.gap_lower - 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn bad_phi_panics() {
        let _ = cheeger_bounds(1.5);
    }
}
