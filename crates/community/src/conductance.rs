use socnet_core::{Graph, NodeId};

/// Number of edges crossing the cut `(S, V ∖ S)`.
///
/// # Panics
///
/// Panics if any member is out of range.
///
/// # Examples
///
/// ```
/// use socnet_community::cut_edges;
/// use socnet_core::{Graph, NodeId};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
/// assert_eq!(cut_edges(&g, &[NodeId(0), NodeId(1)]), 1);
/// ```
pub fn cut_edges(graph: &Graph, set: &[NodeId]) -> usize {
    let mut inside = vec![false; graph.node_count()];
    for &v in set {
        graph.check_node(v).expect("set member in range");
        inside[v.index()] = true;
    }
    let mut cut = 0usize;
    for &v in set {
        for &u in graph.neighbors(v) {
            if !inside[u.index()] {
                cut += 1;
            }
        }
    }
    cut
}

/// Conductance `φ(S) = cut(S) / min(vol(S), vol(V∖S))` of a node set.
///
/// This is the structural quantity the mixing time is governed by
/// (Cheeger's inequality connects `φ` to the spectral gap), and the
/// objective the local community sweep minimizes. Returns 1.0 for empty
/// or full sets and for sets with zero volume, the conservative
/// convention for sweep curves.
///
/// # Panics
///
/// Panics if any member is out of range.
///
/// # Examples
///
/// ```
/// use socnet_community::conductance;
/// use socnet_core::NodeId;
/// use socnet_gen::barbell;
///
/// // One clique of the barbell: a single crossing edge, tiny conductance.
/// let g = barbell(6, 0);
/// let clique: Vec<NodeId> = (0..6).map(NodeId).collect();
/// let phi = conductance(&g, &clique);
/// assert!(phi < 0.04, "phi = {phi}");
/// ```
pub fn conductance(graph: &Graph, set: &[NodeId]) -> f64 {
    if set.is_empty() || set.len() >= graph.node_count() {
        return 1.0;
    }
    let volume: usize = set.iter().map(|&v| graph.degree(v)).sum();
    let complement_volume = graph.degree_sum() - volume;
    let denom = volume.min(complement_volume);
    if denom == 0 {
        return 1.0;
    }
    cut_edges(graph, set) as f64 / denom as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use socnet_gen::{complete, ring, star};

    #[test]
    fn cut_of_ring_arc_is_two() {
        let g = ring(10);
        let arc: Vec<NodeId> = (2..6).map(NodeId).collect();
        assert_eq!(cut_edges(&g, &arc), 2);
        assert!((conductance(&g, &arc) - 2.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn conductance_of_half_clique() {
        let g = complete(8);
        let half: Vec<NodeId> = (0..4).map(NodeId).collect();
        // cut = 4*4 = 16, vol = 4*7 = 28.
        assert!((conductance(&g, &half) - 16.0 / 28.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_sets() {
        let g = ring(5);
        assert_eq!(conductance(&g, &[]), 1.0);
        let all: Vec<NodeId> = g.nodes().collect();
        assert_eq!(conductance(&g, &all), 1.0);
        // Isolated node set has zero volume.
        let g2 = socnet_core::Graph::from_edges(3, [(0, 1)]);
        assert_eq!(conductance(&g2, &[NodeId(2)]), 1.0);
    }

    #[test]
    fn star_leaf_has_full_conductance() {
        let g = star(6);
        assert_eq!(conductance(&g, &[NodeId(3)]), 1.0);
        // The hub's side is the smaller-volume complement of the leaves.
        let leaves: Vec<NodeId> = (1..6).map(NodeId).collect();
        assert_eq!(conductance(&g, &leaves), 1.0);
    }

    #[test]
    fn symmetric_in_complement_volume() {
        let g = ring(12);
        let arc: Vec<NodeId> = (0..3).map(NodeId).collect();
        let rest: Vec<NodeId> = (3..12).map(NodeId).collect();
        assert!((conductance(&g, &arc) - conductance(&g, &rest)).abs() < 1e-12);
    }
}
