//! Local community detection around a trusted seed.
//!
//! Viswanath et al.'s unifying view: every social Sybil defense ranks
//! nodes by how strongly they connect to a trusted node and cuts that
//! ranking where the partition degrades. This module implements the view
//! directly — a greedy conductance sweep that grows a community from the
//! seed one node at a time, always absorbing the boundary node with the
//! strongest connection to the current community. The absorption order is
//! the *ranking*; the conductance-vs-rank curve is the *sweep* used to
//! choose a cut.

use serde::{Deserialize, Serialize};
use socnet_core::{Graph, NodeId};

/// One point of the conductance sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Community size after this absorption.
    pub size: usize,
    /// Conductance `φ` of the community at this size.
    pub conductance: f64,
}

/// The result of a greedy local community sweep from a seed.
///
/// # Examples
///
/// ```
/// use socnet_core::NodeId;
/// use socnet_gen::barbell;
/// use socnet_community::LocalCommunity;
///
/// // The sweep discovers the seed's clique as the best community.
/// let g = barbell(6, 0);
/// let lc = LocalCommunity::sweep(&g, NodeId(0), g.node_count());
/// let best = lc.best_cut();
/// assert_eq!(best.size, 6);
/// let members = lc.community_at(best.size);
/// assert!(members.iter().all(|v| v.index() < 6));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalCommunity {
    seed: NodeId,
    order: Vec<NodeId>,
    sweep: Vec<SweepPoint>,
}

impl LocalCommunity {
    /// Grows a community from `seed` for up to `max_size` absorptions.
    ///
    /// At each step the boundary node with the most edges into the
    /// current community — normalized by its degree, ties broken toward
    /// more internal edges, then smaller id — is absorbed, and the
    /// community's conductance recorded. Runs in `O(max_size · Δ · log)`
    /// with a rescored boundary heap; the simple implementation below is
    /// `O(max_size · boundary)`, ample for measurement-scale graphs.
    ///
    /// # Panics
    ///
    /// Panics if `seed` is out of range or `max_size == 0`.
    pub fn sweep(graph: &Graph, seed: NodeId, max_size: usize) -> Self {
        graph.check_node(seed).expect("seed in range");
        assert!(max_size > 0, "community must allow at least the seed");

        let n = graph.node_count();
        let mut inside = vec![false; n];
        // internal[v]: edges from boundary node v into the community.
        let mut internal = vec![0usize; n];
        let mut boundary: Vec<NodeId> = Vec::new();
        let mut order = Vec::with_capacity(max_size.min(n));
        let mut sweep = Vec::with_capacity(max_size.min(n));

        let mut volume = 0usize;
        let mut cut = 0usize;
        let total_volume = graph.degree_sum();

        let absorb = |v: NodeId,
                          inside: &mut Vec<bool>,
                          internal: &mut Vec<usize>,
                          boundary: &mut Vec<NodeId>,
                          volume: &mut usize,
                          cut: &mut usize| {
            inside[v.index()] = true;
            let d = graph.degree(v);
            *volume += d;
            // Edges into the community stop being cut edges; the rest start.
            *cut = *cut + (d - internal[v.index()]) - internal[v.index()];
            for &u in graph.neighbors(v) {
                if !inside[u.index()] {
                    if internal[u.index()] == 0 {
                        boundary.push(u);
                    }
                    internal[u.index()] += 1;
                }
            }
        };

        absorb(seed, &mut inside, &mut internal, &mut boundary, &mut volume, &mut cut);
        order.push(seed);
        sweep.push(SweepPoint {
            size: 1,
            conductance: phi(cut, volume, total_volume),
        });

        while order.len() < max_size && !boundary.is_empty() {
            // Pick the boundary node with the highest internal-edge
            // fraction.
            let mut best_idx = 0usize;
            let mut best_key = (f64::NEG_INFINITY, 0usize, u32::MAX);
            for (i, &v) in boundary.iter().enumerate() {
                let d = graph.degree(v).max(1);
                let frac = internal[v.index()] as f64 / d as f64;
                // Higher fraction, then more internal edges, then lower id.
                let key = (frac, internal[v.index()], u32::MAX - v.0);
                if key > best_key {
                    best_key = key;
                    best_idx = i;
                }
            }
            let v = boundary.swap_remove(best_idx);
            if inside[v.index()] {
                continue;
            }
            absorb(v, &mut inside, &mut internal, &mut boundary, &mut volume, &mut cut);
            order.push(v);
            sweep.push(SweepPoint {
                size: order.len(),
                conductance: phi(cut, volume, total_volume),
            });
        }

        LocalCommunity { seed, order, sweep }
    }

    /// The seed the sweep started from.
    pub fn seed(&self) -> NodeId {
        self.seed
    }

    /// Absorption order — the trust ranking (seed first). Nodes never
    /// absorbed (other components, or beyond `max_size`) are not listed.
    pub fn ranking(&self) -> &[NodeId] {
        &self.order
    }

    /// A full-graph ranking: the absorption order followed by all
    /// never-absorbed nodes in id order (least trusted last).
    pub fn full_ranking(&self, graph: &Graph) -> Vec<NodeId> {
        let mut seen = vec![false; graph.node_count()];
        for &v in &self.order {
            seen[v.index()] = true;
        }
        let mut out = self.order.clone();
        out.extend(graph.nodes().filter(|v| !seen[v.index()]));
        out
    }

    /// The conductance sweep curve.
    pub fn sweep_points(&self) -> &[SweepPoint] {
        &self.sweep
    }

    /// The sweep point of minimum conductance (skipping the trivial
    /// size-1 point when anything else exists; ties pick the smaller
    /// community).
    pub fn best_cut(&self) -> SweepPoint {
        let candidates = if self.sweep.len() > 1 { &self.sweep[1..] } else { &self.sweep[..] };
        *candidates
            .iter()
            .min_by(|a, b| {
                a.conductance
                    .partial_cmp(&b.conductance)
                    .expect("finite")
                    .then(a.size.cmp(&b.size))
            })
            .expect("sweep is non-empty")
    }

    /// The community members at a given sweep size (the first `size`
    /// absorbed nodes).
    ///
    /// # Panics
    ///
    /// Panics if `size` exceeds the number of absorbed nodes.
    pub fn community_at(&self, size: usize) -> &[NodeId] {
        &self.order[..size]
    }
}

fn phi(cut: usize, volume: usize, total_volume: usize) -> f64 {
    let denom = volume.min(total_volume - volume);
    if denom == 0 {
        1.0
    } else {
        cut as f64 / denom as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use socnet_gen::{barbell, planted_partition, ring};

    #[test]
    fn sweep_dips_at_the_planted_block() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = planted_partition(3, 40, 0.4, 0.01, &mut rng);
        let lc = LocalCommunity::sweep(&g, NodeId(5), 120);
        let points = lc.sweep_points();
        // The sweep curve has a sharp local minimum at the block size:
        // much lower conductance at 40 than halfway into the block.
        let phi_at = |size: usize| points[size - 1].conductance;
        assert!(phi_at(40) < 0.2, "phi(40) = {}", phi_at(40));
        assert!(phi_at(20) > 2.0 * phi_at(40), "phi(20) = {}", phi_at(20));
        assert!(phi_at(60) > 2.0 * phi_at(40), "phi(60) = {}", phi_at(60));
        // The first 40 absorbed nodes are the seed's block (ids 0..40).
        let members = lc.community_at(40);
        let in_block = members.iter().filter(|v| v.index() < 40).count();
        assert!(in_block >= 36, "only {in_block}/40 from the seed's block");
    }

    #[test]
    fn sweep_conductance_matches_direct_computation() {
        let g = barbell(5, 1);
        let lc = LocalCommunity::sweep(&g, NodeId(0), g.node_count());
        for p in lc.sweep_points() {
            let set = lc.community_at(p.size);
            let direct = crate::conductance(&g, set);
            assert!(
                (p.conductance - direct).abs() < 1e-12,
                "size {}: sweep {} vs direct {}",
                p.size,
                p.conductance,
                direct
            );
        }
    }

    #[test]
    fn ranking_prefixes_are_connected() {
        let g = ring(12);
        let lc = LocalCommunity::sweep(&g, NodeId(4), 8);
        for size in 1..=8 {
            let (sub, _) = socnet_core::induced_subgraph(&g, lc.community_at(size));
            assert!(socnet_core::is_connected(&sub), "prefix of size {size}");
        }
    }

    #[test]
    fn full_ranking_is_a_permutation() {
        let g = barbell(4, 0);
        let lc = LocalCommunity::sweep(&g, NodeId(0), 3);
        let mut r = lc.full_ranking(&g);
        r.sort_unstable();
        assert_eq!(r, g.nodes().collect::<Vec<_>>());
        assert_eq!(lc.ranking().len(), 3);
    }

    #[test]
    fn seed_is_always_first() {
        let g = ring(6);
        let lc = LocalCommunity::sweep(&g, NodeId(3), 4);
        assert_eq!(lc.ranking()[0], NodeId(3));
        assert_eq!(lc.seed(), NodeId(3));
    }

    #[test]
    fn other_components_are_never_absorbed() {
        let g = socnet_core::Graph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)]);
        let lc = LocalCommunity::sweep(&g, NodeId(0), 6);
        assert_eq!(lc.ranking().len(), 3);
        assert!(lc.ranking().iter().all(|v| v.index() < 3));
        // full_ranking appends them at the end.
        assert_eq!(lc.full_ranking(&g).len(), 6);
    }

    #[test]
    #[should_panic(expected = "at least the seed")]
    fn zero_max_size_panics() {
        let g = ring(4);
        let _ = LocalCommunity::sweep(&g, NodeId(0), 0);
    }
}
