use socnet_core::Graph;

/// Newman–Girvan modularity `Q` of a partition.
///
/// `Q = Σ_c (e_c/m − (d_c/2m)²)` where `e_c` is the number of edges
/// inside community `c` and `d_c` the total degree of its members.
/// Ranges in `[-0.5, 1)`; strong community structure gives `Q ≳ 0.3`.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the node count or the graph has
/// no edges.
///
/// # Examples
///
/// ```
/// use socnet_community::modularity;
/// use socnet_core::Graph;
///
/// // Two triangles joined by one edge; the natural split scores high.
/// let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
/// let q = modularity(&g, &[0, 0, 0, 1, 1, 1]);
/// assert!(q > 0.3, "Q = {q}");
/// // The trivial all-in-one partition scores zero.
/// assert!(modularity(&g, &[0; 6]).abs() < 1e-12);
/// ```
pub fn modularity(graph: &Graph, labels: &[u32]) -> f64 {
    assert_eq!(labels.len(), graph.node_count(), "one label per node");
    let m = graph.edge_count();
    assert!(m > 0, "modularity undefined without edges");

    let communities = labels.iter().copied().max().map(|c| c as usize + 1).unwrap_or(0);
    let mut internal = vec![0usize; communities];
    let mut degree = vec![0usize; communities];
    for v in graph.nodes() {
        degree[labels[v.index()] as usize] += graph.degree(v);
    }
    for (u, v) in graph.edges() {
        if labels[u.index()] == labels[v.index()] {
            internal[labels[u.index()] as usize] += 1;
        }
    }
    let m = m as f64;
    (0..communities)
        .map(|c| internal[c] as f64 / m - (degree[c] as f64 / (2.0 * m)).powi(2))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use socnet_gen::{complete, planted_partition};

    #[test]
    fn single_community_is_zero() {
        let g = complete(6);
        assert!(modularity(&g, &[0; 6]).abs() < 1e-12);
    }

    #[test]
    fn singleton_partition_is_negative() {
        let g = complete(5);
        let labels: Vec<u32> = (0..5).collect();
        assert!(modularity(&g, &labels) < 0.0);
    }

    #[test]
    fn planted_partition_truth_scores_high() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = planted_partition(5, 30, 0.5, 0.01, &mut rng);
        let truth: Vec<u32> = (0..150).map(|i| (i / 30) as u32).collect();
        let q_truth = modularity(&g, &truth);
        assert!(q_truth > 0.6, "Q = {q_truth}");

        // A shifted (wrong) partition scores worse.
        let wrong: Vec<u32> = (0..150).map(|i| ((i + 15) / 30 % 5) as u32).collect();
        assert!(modularity(&g, &wrong) < q_truth);
    }

    #[test]
    fn q_is_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = planted_partition(3, 20, 0.3, 0.05, &mut rng);
        for split in [2usize, 5, 10] {
            let labels: Vec<u32> = (0..60).map(|i| (i % split) as u32).collect();
            let q = modularity(&g, &labels);
            assert!((-0.5..1.0).contains(&q), "Q = {q}");
        }
    }

    #[test]
    #[should_panic(expected = "one label per node")]
    fn label_length_mismatch_panics() {
        let g = complete(4);
        let _ = modularity(&g, &[0, 1]);
    }
}
