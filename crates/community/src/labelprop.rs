use rand::seq::SliceRandom;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};
use socnet_core::{Graph, NodeId};

/// A community assignment: one label per node, labels relabeled densely
/// to `0..count`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Communities {
    labels: Vec<u32>,
    count: usize,
}

impl Communities {
    /// Builds an assignment from raw labels, compacting them to
    /// `0..count`.
    pub fn from_labels(raw: Vec<u32>) -> Self {
        let mut remap = std::collections::HashMap::new();
        let mut labels = raw;
        for l in labels.iter_mut() {
            let next = remap.len() as u32;
            *l = *remap.entry(*l).or_insert(next);
        }
        let count = remap.len();
        Communities { labels, count }
    }

    /// The community label of each node, indexed by node id.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Label of one node.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn label(&self, v: NodeId) -> u32 {
        self.labels[v.index()]
    }

    /// Number of communities.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Nodes per community.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// The members of community `c`.
    pub fn members(&self, c: u32) -> Vec<NodeId> {
        (0..self.labels.len())
            .filter(|&i| self.labels[i] == c)
            .map(NodeId::from_index)
            .collect()
    }
}

/// Asynchronous label propagation (Raghavan et al. 2007).
///
/// Every node starts in its own community; in randomized order, each node
/// adopts the most frequent label among its neighbors (ties broken
/// uniformly at random). Converges when a full pass changes nothing, or
/// after `max_rounds` passes.
///
/// Near-linear per pass; non-deterministic across seeds by nature, which
/// is why the RNG is explicit.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use socnet_community::label_propagation;
/// use socnet_gen::complete;
///
/// let mut rng = StdRng::seed_from_u64(5);
/// let g = complete(12);
/// let c = label_propagation(&g, 20, &mut rng);
/// assert_eq!(c.count(), 1, "a clique is one community");
/// ```
pub fn label_propagation<R: Rng + ?Sized>(
    graph: &Graph,
    max_rounds: usize,
    rng: &mut R,
) -> Communities {
    let n = graph.node_count();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut order: Vec<NodeId> = graph.nodes().collect();
    let mut counts: std::collections::HashMap<u32, usize> = Default::default();
    let mut best: Vec<u32> = Vec::new();

    for _ in 0..max_rounds {
        order.shuffle(rng);
        let mut changed = false;
        for &v in &order {
            let nbrs = graph.neighbors(v);
            if nbrs.is_empty() {
                continue;
            }
            counts.clear();
            for &u in nbrs {
                *counts.entry(labels[u.index()]).or_insert(0) += 1;
            }
            let max = *counts.values().max().expect("non-empty");
            best.clear();
            best.extend(counts.iter().filter(|&(_, &c)| c == max).map(|(&l, _)| l));
            best.sort_unstable(); // determinism before the random tie-break
            let pick = best[rng.random_range(0..best.len())];
            if pick != labels[v.index()] {
                labels[v.index()] = pick;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Communities::from_labels(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use socnet_gen::{complete, planted_partition, relaxed_caveman};

    #[test]
    fn clique_collapses_to_one_label() {
        let g = complete(15);
        let c = label_propagation(&g, 30, &mut StdRng::seed_from_u64(1));
        assert_eq!(c.count(), 1);
        assert_eq!(c.sizes(), vec![15]);
    }

    #[test]
    fn disconnected_components_get_distinct_labels() {
        let g = socnet_core::Graph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)]);
        let c = label_propagation(&g, 30, &mut StdRng::seed_from_u64(2));
        assert_eq!(c.label(NodeId(0)), c.label(NodeId(2)));
        assert_eq!(c.label(NodeId(3)), c.label(NodeId(5)));
        assert_ne!(c.label(NodeId(0)), c.label(NodeId(3)));
    }

    #[test]
    fn planted_partition_is_recovered() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = planted_partition(4, 40, 0.5, 0.005, &mut rng);
        let c = label_propagation(&g, 50, &mut rng);
        // Every planted block should be label-pure.
        for b in 0..4 {
            let labels: std::collections::HashSet<u32> =
                (0..40).map(|i| c.label(NodeId((b * 40 + i) as u32))).collect();
            assert_eq!(labels.len(), 1, "block {b} split into {labels:?}");
        }
    }

    #[test]
    fn caveman_cliques_stay_together() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = relaxed_caveman(10, 8, 0.0, &mut rng);
        let c = label_propagation(&g, 50, &mut rng);
        for clique in 0..10u32 {
            let first = c.label(NodeId(clique * 8));
            for i in 1..8u32 {
                assert_eq!(c.label(NodeId(clique * 8 + i)), first);
            }
        }
    }

    #[test]
    fn isolated_nodes_keep_singleton_labels() {
        let g = socnet_core::Graph::from_edges(3, [(0, 1)]);
        let c = label_propagation(&g, 10, &mut StdRng::seed_from_u64(5));
        assert_eq!(c.count(), 2);
        assert_eq!(c.members(c.label(NodeId(2))), vec![NodeId(2)]);
    }

    #[test]
    fn from_labels_compacts() {
        let c = Communities::from_labels(vec![7, 7, 3, 9, 3]);
        assert_eq!(c.count(), 3);
        assert_eq!(c.labels(), &[0, 0, 1, 2, 1]);
        assert_eq!(c.sizes(), vec![2, 2, 1]);
    }
}
