//! Property-based tests of the community machinery.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet_community::{conductance, cut_edges, label_propagation, modularity, LocalCommunity};
use socnet_core::{Graph, NodeId};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..28).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 1..90).prop_map(move |edges| Graph::from_edges(n, edges))
    })
}

proptest! {
    #[test]
    fn label_propagation_labels_are_component_consistent(g in arb_graph(), seed in any::<u64>()) {
        let c = label_propagation(&g, 40, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(c.labels().len(), g.node_count());
        // Communities never straddle components.
        let comps = socnet_core::connected_components(&g);
        for (u, v) in g.edges() {
            let _ = (u, v); // edges guaranteed intra-component by definition
        }
        let mut label_component: std::collections::HashMap<u32, u32> = Default::default();
        for v in g.nodes() {
            if g.degree(v) == 0 {
                continue; // isolated nodes keep singleton labels
            }
            let entry = label_component
                .entry(c.label(v))
                .or_insert(comps.label[v.index()]);
            prop_assert_eq!(*entry, comps.label[v.index()], "label crosses components");
        }
        // Sizes sum to n.
        prop_assert_eq!(c.sizes().iter().sum::<usize>(), g.node_count());
    }

    #[test]
    fn conductance_is_within_unit_interval(g in arb_graph(), mask in any::<u32>()) {
        let set: Vec<NodeId> =
            g.nodes().filter(|v| (mask >> (v.index() % 32)) & 1 == 1).collect();
        let phi = conductance(&g, &set);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&phi), "phi = {phi}");
    }

    #[test]
    fn cut_is_symmetric_in_complement(g in arb_graph(), mask in any::<u32>()) {
        let set: Vec<NodeId> =
            g.nodes().filter(|v| (mask >> (v.index() % 32)) & 1 == 1).collect();
        let complement: Vec<NodeId> =
            g.nodes().filter(|v| (mask >> (v.index() % 32)) & 1 == 0).collect();
        prop_assert_eq!(cut_edges(&g, &set), cut_edges(&g, &complement));
    }

    #[test]
    fn modularity_of_any_partition_is_bounded(g in arb_graph(), k in 1usize..5, seed in any::<u64>()) {
        prop_assume!(g.edge_count() > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::RngExt;
        let labels: Vec<u32> = (0..g.node_count())
            .map(|_| rng.random_range(0..k as u32))
            .collect();
        let q = modularity(&g, &labels);
        prop_assert!((-0.5 - 1e-9..1.0).contains(&q), "Q = {q}");
    }

    #[test]
    fn sweep_ranking_is_duplicate_free_and_connected(g in arb_graph()) {
        prop_assume!(g.degree(NodeId(0)) > 0);
        let lc = LocalCommunity::sweep(&g, NodeId(0), g.node_count());
        let mut seen = std::collections::HashSet::new();
        for &v in lc.ranking() {
            prop_assert!(seen.insert(v), "duplicate {v} in ranking");
        }
        // Sweep conductances agree with direct recomputation.
        for p in lc.sweep_points().iter().step_by(3) {
            let direct = conductance(&g, lc.community_at(p.size));
            prop_assert!((p.conductance - direct).abs() < 1e-9);
        }
        // Full ranking is a permutation.
        let mut full = lc.full_ranking(&g);
        full.sort_unstable();
        prop_assert_eq!(full, g.nodes().collect::<Vec<_>>());
    }
}
