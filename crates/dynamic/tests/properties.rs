//! Property-based tests of edge streams and growth models.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet_dynamic::{ba_growth, community_growth, EdgeStream};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn snapshots_are_prefix_monotone(
        edges in proptest::collection::vec((0u32..40, 0u32..40), 1..150),
        k in 1usize..6,
    ) {
        let stream: EdgeStream = edges.into_iter().collect();
        prop_assume!(!stream.is_empty());
        let snaps = stream.snapshots(k);
        prop_assert_eq!(snaps.len(), k);
        for w in snaps.windows(2) {
            prop_assert!(w[0].edge_count() <= w[1].edge_count());
            // Every earlier edge survives into the later snapshot.
            for (u, v) in w[0].edges() {
                prop_assert!(w[1].has_edge(u, v));
            }
        }
    }

    #[test]
    fn full_snapshot_matches_direct_build(
        edges in proptest::collection::vec((0u32..30, 0u32..30), 1..100),
    ) {
        let stream: EdgeStream = edges.iter().copied().collect();
        prop_assume!(!stream.is_empty());
        let from_stream = stream.snapshot(stream.len());
        let n = stream.node_count();
        // Compare against a direct build of the *retained* arrivals
        // (ingest drops self-loops, including their node ids).
        let direct = socnet_core::Graph::from_edges(n, stream.edges().iter().copied());
        prop_assert_eq!(from_stream, direct);
    }

    #[test]
    fn ba_growth_arrival_count(n in 5usize..80, m in 1usize..4, seed in any::<u64>()) {
        prop_assume!(n > m + 1);
        let stream = ba_growth(n, m, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(stream.len(), m + (n - m - 1) * m);
        prop_assert_eq!(stream.node_count(), n);
        prop_assert!(socnet_core::is_connected(&stream.snapshot(stream.len())));
    }

    #[test]
    fn community_growth_final_graph_is_connected(
        cliques in 1usize..10,
        size in 3usize..7,
        p in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let stream =
            community_growth(cliques, size, size, p, &mut StdRng::seed_from_u64(seed));
        let g = stream.snapshot(stream.len());
        prop_assert!(socnet_core::is_connected(&g));
        prop_assert_eq!(g.node_count(), cliques * size);
    }
}
