//! Evolving social graphs.
//!
//! The paper closes (Sec. VI) with an open problem: *"investigate the
//! expansion and mixing characteristics of dynamic social graphs …
//! understanding the long-term impact of evolution, and how this impacts
//! the underlying social structure, and properties used for building
//! trustworthy applications."* This crate builds the machinery to study
//! exactly that:
//!
//! * [`EdgeStream`] — an ordered stream of edge arrivals with prefix
//!   [`snapshot`](EdgeStream::snapshot)s, so any static measurement can
//!   be replayed over time;
//! * growth models emitting realistic arrival orders —
//!   [`ba_growth`] (preferential attachment, the weak-trust model) and
//!   [`community_growth`] (communities arriving and wiring up over time,
//!   the strict-trust model);
//! * [`PropertyTrajectory`] — the paper's three properties (spectral
//!   mixing, degeneracy, expansion) measured on evenly spaced snapshots,
//!   quantifying how each drifts as the network grows.
//!
//! # Examples
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use socnet_dynamic::{ba_growth, PropertyTrajectory, TrajectoryConfig};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let stream = ba_growth(400, 4, &mut rng);
//! let traj = PropertyTrajectory::measure(&stream, 4, &TrajectoryConfig::default());
//! assert_eq!(traj.points().len(), 4);
//! // Preferential attachment stays fast-mixing as it grows.
//! assert!(traj.points().last().unwrap().slem < 0.8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod growth;
mod stream;
mod trajectory;

pub use growth::{ba_growth, community_growth};
pub use stream::EdgeStream;
pub use trajectory::{PropertyTrajectory, TrajectoryConfig, TrajectoryPoint};
