//! Growth models emitting realistic edge-arrival orders.

use rand::{Rng, RngExt};

use crate::EdgeStream;

/// Barabási–Albert growth as a stream: the natural arrival order of
/// preferential attachment (seed star first, then each joining node's
/// `m_attach` edges).
///
/// Every prefix that ends on a node boundary is itself a valid BA graph,
/// which is what makes this the canonical *weak-trust* evolution model.
///
/// # Panics
///
/// Panics if `m_attach == 0` or `n <= m_attach`.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use socnet_dynamic::ba_growth;
///
/// let mut rng = StdRng::seed_from_u64(2);
/// let s = ba_growth(100, 3, &mut rng);
/// assert_eq!(s.len(), 3 + 96 * 3);
/// assert!(socnet_core::is_connected(&s.snapshot(s.len())));
/// ```
pub fn ba_growth<R: Rng + ?Sized>(n: usize, m_attach: usize, rng: &mut R) -> EdgeStream {
    assert!(m_attach >= 1, "attachment degree must be at least 1");
    assert!(n > m_attach, "need more than {m_attach} nodes, got {n}");

    let mut stream = EdgeStream::with_capacity(n * m_attach);
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m_attach);
    for v in 1..=m_attach as u32 {
        stream.push(0, v);
        endpoints.push(0);
        endpoints.push(v);
    }
    let mut picked = Vec::with_capacity(m_attach);
    for v in (m_attach + 1) as u32..n as u32 {
        picked.clear();
        while picked.len() < m_attach {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            stream.push(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    stream
}

/// Community-arrival growth: cliques of size `min_size..=max_size` arrive
/// one at a time; each new clique wires fully internally, links to the
/// previous clique's anchor (keeping the graph connected), and rewires a
/// `rewire_p` fraction of its internal edges to uniform earlier nodes.
///
/// This is the *strict-trust* evolution model: as communities accumulate,
/// the graph's community structure deepens and its mixing slows — the
/// long-term drift the paper's open problem asks about.
///
/// # Panics
///
/// Panics if `cliques == 0`, `min_size < 2`, `min_size > max_size`, or
/// `rewire_p` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use socnet_dynamic::community_growth;
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let s = community_growth(12, 4, 8, 0.05, &mut rng);
/// assert!(socnet_core::is_connected(&s.snapshot(s.len())));
/// ```
pub fn community_growth<R: Rng + ?Sized>(
    cliques: usize,
    min_size: usize,
    max_size: usize,
    rewire_p: f64,
    rng: &mut R,
) -> EdgeStream {
    assert!(cliques > 0, "need at least one clique");
    assert!(min_size >= 2, "clique size must be at least 2, got {min_size}");
    assert!(min_size <= max_size, "min size {min_size} exceeds max size {max_size}");
    assert!((0.0..=1.0).contains(&rewire_p), "rewire_p {rewire_p} out of [0, 1]");

    let mut stream = EdgeStream::new();
    let mut next_id = 0u32;
    let mut prev_anchor: Option<u32> = None;
    for _ in 0..cliques {
        let size = rng.random_range(min_size..=max_size) as u32;
        let base = next_id;
        next_id += size;
        // Anchor link first so every prefix stays connected.
        if let Some(anchor) = prev_anchor {
            stream.push(base, anchor);
        }
        for i in 0..size {
            for j in (i + 1)..size {
                // Occasionally rewire the far endpoint to an earlier node,
                // but never the clique's spanning path (j == i + 1): that
                // keeps every clique internally connected, so the stream's
                // snapshots stay connected at clique boundaries.
                if j > i + 1 && base > 0 && rng.random_range(0.0..1.0) < rewire_p {
                    let t = rng.random_range(0..base);
                    stream.push(base + i, t);
                } else {
                    stream.push(base + i, base + j);
                }
            }
        }
        prev_anchor = Some(base);
    }
    stream
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use socnet_core::is_connected;

    #[test]
    fn ba_prefixes_on_node_boundaries_are_connected() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = 3usize;
        let s = ba_growth(60, m, &mut rng);
        for joined in [10usize, 30, 56] {
            // Prefix covering the seed star plus `joined` joiners.
            let arrivals = m + joined * m;
            let g = s.snapshot(arrivals);
            assert!(is_connected(&g), "prefix after {joined} joins");
            assert_eq!(g.node_count(), m + 1 + joined);
        }
    }

    #[test]
    fn ba_stream_is_deterministic() {
        let a = ba_growth(50, 2, &mut StdRng::seed_from_u64(9));
        let b = ba_growth(50, 2, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn community_growth_stays_connected_at_clique_boundaries() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = community_growth(8, 5, 5, 0.0, &mut rng);
        // Each clique contributes C(5,2) = 10 edges + 1 anchor (after the first).
        let per = 10;
        for c in 1..=8usize {
            let arrivals = c * per + c.saturating_sub(1);
            let g = s.snapshot(arrivals);
            assert!(is_connected(&g), "after {c} cliques");
            assert_eq!(g.node_count(), 5 * c);
        }
    }

    #[test]
    fn rewiring_touches_earlier_nodes_only() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = community_growth(6, 4, 6, 0.5, &mut rng);
        let g = s.snapshot(s.len());
        assert!(is_connected(&g), "anchors keep it connected despite rewiring");
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_cliques_panic() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = community_growth(3, 1, 4, 0.0, &mut rng);
    }
}
