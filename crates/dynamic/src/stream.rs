use serde::{Deserialize, Serialize};
use socnet_core::{Graph, GraphBuilder, NodeId};

/// An ordered stream of undirected edge arrivals.
///
/// Arrival order is the stream's notion of time: the `t`-th edge arrived
/// at time `t`. Any prefix of the stream is a valid network state, so a
/// [`snapshot`](EdgeStream::snapshot) replays history up to a point and
/// hands the result to the static measurement crates.
///
/// # Examples
///
/// ```
/// use socnet_dynamic::EdgeStream;
///
/// let mut s = EdgeStream::new();
/// s.push(0, 1);
/// s.push(1, 2);
/// s.push(2, 0);
/// let early = s.snapshot(2);
/// assert_eq!(early.edge_count(), 2);
/// let full = s.snapshot(s.len());
/// assert_eq!(full.edge_count(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeStream {
    edges: Vec<(u32, u32)>,
    max_node: u32,
}

impl EdgeStream {
    /// Creates an empty stream.
    pub fn new() -> Self {
        EdgeStream::default()
    }

    /// Creates an empty stream with capacity for `edges` arrivals.
    pub fn with_capacity(edges: usize) -> Self {
        EdgeStream { edges: Vec::with_capacity(edges), max_node: 0 }
    }

    /// Appends an edge arrival. Self-loops are ignored (a simple graph
    /// never holds them); duplicate arrivals are kept in the stream but
    /// collapse in snapshots.
    pub fn push(&mut self, u: u32, v: u32) -> &mut Self {
        if u != v {
            self.max_node = self.max_node.max(u).max(v);
            self.edges.push((u, v));
        }
        self
    }

    /// Number of arrivals so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The arrivals, in order.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Number of nodes the *full* stream touches.
    pub fn node_count(&self) -> usize {
        if self.edges.is_empty() {
            0
        } else {
            self.max_node as usize + 1
        }
    }

    /// The graph after the first `arrivals` edges.
    ///
    /// Node ids are preserved; the node set is `0..=max_id` over the
    /// prefix, so ids below the prefix's maximum that have not arrived
    /// yet appear as isolated nodes (growth models emit ids in arrival
    /// order, where this never happens). Early snapshots are smaller
    /// graphs, not padded to the final size.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals > len()`.
    pub fn snapshot(&self, arrivals: usize) -> Graph {
        assert!(arrivals <= self.edges.len(), "prefix beyond stream length");
        let prefix = &self.edges[..arrivals];
        let n = prefix
            .iter()
            .map(|&(u, v)| u.max(v) as usize + 1)
            .max()
            .unwrap_or(0);
        let mut b = GraphBuilder::with_capacity(n, arrivals);
        for &(u, v) in prefix {
            b.add_edge(NodeId(u), NodeId(v));
        }
        b.build()
    }

    /// `k` evenly spaced snapshots ending at the full stream.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or the stream is empty.
    pub fn snapshots(&self, k: usize) -> Vec<Graph> {
        assert!(k > 0, "need at least one snapshot");
        assert!(!self.is_empty(), "cannot snapshot an empty stream");
        (1..=k)
            .map(|i| self.snapshot(self.edges.len() * i / k))
            .collect()
    }
}

impl FromIterator<(u32, u32)> for EdgeStream {
    fn from_iter<T: IntoIterator<Item = (u32, u32)>>(iter: T) -> Self {
        let mut s = EdgeStream::new();
        for (u, v) in iter {
            s.push(u, v);
        }
        s
    }
}

impl Extend<(u32, u32)> for EdgeStream {
    fn extend<T: IntoIterator<Item = (u32, u32)>>(&mut self, iter: T) {
        for (u, v) in iter {
            self.push(u, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_grow_monotonically() {
        let s: EdgeStream = (0..20u32).map(|i| (i, i + 1)).collect();
        let snaps = s.snapshots(4);
        assert_eq!(snaps.len(), 4);
        for w in snaps.windows(2) {
            assert!(w[0].edge_count() <= w[1].edge_count());
            assert!(w[0].node_count() <= w[1].node_count());
        }
        assert_eq!(snaps[3].edge_count(), 20);
    }

    #[test]
    fn prefix_zero_is_empty() {
        let s: EdgeStream = [(0, 1)].into_iter().collect();
        let g = s.snapshot(0);
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn duplicates_collapse_in_snapshots_only() {
        let mut s = EdgeStream::new();
        s.push(0, 1).push(1, 0).push(0, 1);
        assert_eq!(s.len(), 3, "stream keeps all arrivals");
        assert_eq!(s.snapshot(3).edge_count(), 1, "snapshot is simple");
    }

    #[test]
    fn self_loops_are_dropped_at_ingest() {
        let mut s = EdgeStream::new();
        s.push(2, 2).push(0, 1);
        assert_eq!(s.len(), 1);
        assert_eq!(s.node_count(), 2);
    }

    #[test]
    fn extend_and_collect_agree() {
        let edges = [(0u32, 1u32), (1, 2), (2, 3)];
        let a: EdgeStream = edges.into_iter().collect();
        let mut b = EdgeStream::new();
        b.extend(edges);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "beyond stream length")]
    fn oversized_prefix_panics() {
        let s: EdgeStream = [(0, 1)].into_iter().collect();
        let _ = s.snapshot(2);
    }

    #[test]
    #[should_panic(expected = "empty stream")]
    fn snapshots_of_empty_stream_panic() {
        let _ = EdgeStream::new().snapshots(3);
    }
}
