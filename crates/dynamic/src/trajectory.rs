//! Property trajectories over an evolving graph.

use serde::{Deserialize, Serialize};
use socnet_core::largest_component;
use socnet_expansion::{ExpansionSweep, SourceSelection};
use socnet_kcore::{core_profiles, CoreDecomposition};
use socnet_mixing::{slem, SpectralConfig};

use crate::EdgeStream;

/// Controls for a [`PropertyTrajectory`] measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryConfig {
    /// Expansion-sweep source budget per snapshot.
    pub expansion_sources: usize,
    /// Spectral solver controls.
    pub spectral: SpectralConfig,
    /// Seed for sampled measurements.
    pub seed: u64,
}

impl Default for TrajectoryConfig {
    fn default() -> Self {
        TrajectoryConfig {
            expansion_sources: 100,
            spectral: SpectralConfig { tolerance: 1e-8, ..Default::default() },
            seed: 0xd1a,
        }
    }
}

/// The paper's three properties measured at one snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryPoint {
    /// Arrivals included in this snapshot.
    pub arrivals: usize,
    /// Nodes in the snapshot's largest component.
    pub nodes: usize,
    /// Edges in the snapshot's largest component.
    pub edges: usize,
    /// Second largest eigenvalue modulus (mixing).
    pub slem: f64,
    /// Graph degeneracy (coreness).
    pub degeneracy: u32,
    /// Relative size `ν'_{k_max}` of the deepest core union.
    pub nu_prime_deepest: f64,
    /// Number of connected cores at `k_max`.
    pub cores_deepest: usize,
    /// Mean envelope expansion factor over mid-range set sizes.
    pub mid_alpha: f64,
}

/// The three properties of the paper tracked across snapshots of an
/// evolving graph — the Sec. VI open problem, operationalized.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use socnet_dynamic::{community_growth, PropertyTrajectory, TrajectoryConfig};
///
/// let mut rng = StdRng::seed_from_u64(4);
/// let stream = community_growth(15, 4, 9, 0.04, &mut rng);
/// let traj = PropertyTrajectory::measure(&stream, 3, &TrajectoryConfig::default());
/// let pts = traj.points();
/// // Community accumulation keeps the walk slow throughout.
/// assert!(pts.last().unwrap().slem > 0.9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PropertyTrajectory {
    points: Vec<TrajectoryPoint>,
}

impl PropertyTrajectory {
    /// Measures `snapshots` evenly spaced prefixes of `stream`.
    ///
    /// Each snapshot is reduced to its largest connected component (the
    /// paper's preprocessing) before measurement; snapshots whose
    /// component has no edges are skipped.
    ///
    /// # Panics
    ///
    /// Panics if `snapshots == 0` or the stream is empty.
    pub fn measure(stream: &EdgeStream, snapshots: usize, config: &TrajectoryConfig) -> Self {
        assert!(snapshots > 0, "need at least one snapshot");
        let mut points = Vec::with_capacity(snapshots);
        for i in 1..=snapshots {
            let arrivals = stream.len() * i / snapshots;
            let raw = stream.snapshot(arrivals);
            if raw.edge_count() == 0 {
                continue;
            }
            let (g, _) = largest_component(&raw);
            if g.edge_count() == 0 {
                continue;
            }

            let spectrum = slem(&g, &config.spectral);
            let decomp = CoreDecomposition::compute(&g);
            let profiles = core_profiles(&g, &decomp);
            let deepest = profiles.last().copied();
            let sweep = ExpansionSweep::measure(
                &g,
                SourceSelection::Sample(config.expansion_sources.min(g.node_count())),
                config.seed,
            );
            let curve = sweep.expansion_factor_curve();
            let (lo, hi) = (curve.len() / 4, (3 * curve.len() / 4).max(curve.len() / 4 + 1));
            let window = &curve[lo..hi.min(curve.len())];
            let mid_alpha = if window.is_empty() {
                0.0
            } else {
                window.iter().map(|&(_, a)| a).sum::<f64>() / window.len() as f64
            };

            points.push(TrajectoryPoint {
                arrivals,
                nodes: g.node_count(),
                edges: g.edge_count(),
                slem: spectrum.slem(),
                degeneracy: decomp.degeneracy(),
                nu_prime_deepest: deepest
                    .map(|p| p.nu_prime(g.node_count()))
                    .unwrap_or(0.0),
                cores_deepest: deepest.map(|p| p.components).unwrap_or(0),
                mid_alpha,
            });
        }
        PropertyTrajectory { points }
    }

    /// The measured snapshot points, in time order.
    pub fn points(&self) -> &[TrajectoryPoint] {
        &self.points
    }

    /// Net drift of the SLEM from the first to the last snapshot
    /// (positive = mixing got slower as the network grew).
    pub fn slem_drift(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) => b.slem - a.slem,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ba_growth, community_growth};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> TrajectoryConfig {
        TrajectoryConfig { expansion_sources: 40, ..Default::default() }
    }

    #[test]
    fn ba_stays_fast_mixing_while_growing() {
        let mut rng = StdRng::seed_from_u64(1);
        let stream = ba_growth(600, 4, &mut rng);
        let traj = PropertyTrajectory::measure(&stream, 4, &cfg());
        assert_eq!(traj.points().len(), 4);
        for p in traj.points() {
            assert!(p.slem < 0.85, "BA snapshot slem {}", p.slem);
            assert!(p.degeneracy >= 4);
        }
        assert!(traj.slem_drift().abs() < 0.3, "no dramatic drift");
    }

    #[test]
    fn community_growth_is_slow_mixing_throughout() {
        let mut rng = StdRng::seed_from_u64(2);
        let stream = community_growth(20, 4, 10, 0.03, &mut rng);
        let traj = PropertyTrajectory::measure(&stream, 4, &cfg());
        let last = traj.points().last().expect("non-empty");
        assert!(last.slem > 0.9, "accumulated communities mix slowly: {}", last.slem);
        // And far slower than a BA graph of comparable size.
        let ba = PropertyTrajectory::measure(
            &ba_growth(last.nodes.max(10), 4, &mut StdRng::seed_from_u64(3)),
            1,
            &cfg(),
        );
        assert!(last.slem > ba.points()[0].slem + 0.1);
    }

    #[test]
    fn snapshot_sizes_grow_monotonically() {
        let mut rng = StdRng::seed_from_u64(4);
        let stream = ba_growth(300, 3, &mut rng);
        let traj = PropertyTrajectory::measure(&stream, 5, &cfg());
        for w in traj.points().windows(2) {
            assert!(w[0].arrivals < w[1].arrivals);
            assert!(w[0].nodes <= w[1].nodes);
            assert!(w[0].edges <= w[1].edges);
        }
    }

    #[test]
    fn single_snapshot_is_the_full_graph() {
        let mut rng = StdRng::seed_from_u64(5);
        let stream = ba_growth(100, 2, &mut rng);
        let traj = PropertyTrajectory::measure(&stream, 1, &cfg());
        assert_eq!(traj.points().len(), 1);
        assert_eq!(traj.points()[0].arrivals, stream.len());
        assert_eq!(traj.points()[0].nodes, 100);
    }

    #[test]
    #[should_panic(expected = "at least one snapshot")]
    fn zero_snapshots_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let stream = ba_growth(20, 2, &mut rng);
        let _ = PropertyTrajectory::measure(&stream, 0, &cfg());
    }
}
