use std::borrow::Cow;
use std::ops::Range;

use socnet_core::{par_fill_rows, Csr, Graph};

/// The random-walk transition operator `P = D⁻¹A` of a graph, applied to
/// dense distributions.
///
/// This is the inner loop of the sampling method: one [`step`](WalkOperator::step) computes
/// `x ← xP` in `O(n + m)` over compact CSR slabs — no matrix is
/// materialized. An optional laziness parameter evaluates the lazy walk
/// `(1−α)·xP + α·x`, which is guaranteed aperiodic for `α > 0`.
///
/// The operator owns its slabs when built from a [`Graph`] and borrows
/// them when built with [`from_csr`](WalkOperator::from_csr), so callers
/// that already keep a [`Csr`] pay no conversion. Each output row is a
/// pure function of the input vector (a pull over the row's sorted
/// neighbor list), which is what makes [`step_blocked`](WalkOperator::step_blocked)
/// bit-identical to [`step`](WalkOperator::step) at any block count.
///
/// Mass on isolated (degree-0) nodes stays in place, matching the
/// convention that the walk is undefined there.
///
/// # Examples
///
/// ```
/// use socnet_core::{Graph, NodeId};
/// use socnet_mixing::{Distribution, WalkOperator};
///
/// let path = Graph::from_edges(3, [(0, 1), (1, 2)]);
/// let op = WalkOperator::new(&path);
/// let x = Distribution::point_mass(3, NodeId(1)).into_vec();
/// let mut y = vec![0.0; 3];
/// op.step(&x, &mut y);
/// assert_eq!(y, vec![0.5, 0.0, 0.5]);
/// ```
#[derive(Debug, Clone)]
pub struct WalkOperator<'g> {
    csr: Cow<'g, Csr>,
    /// `1 / deg(v)`, or 0 for isolated nodes.
    inv_degree: Vec<f64>,
    /// Self-loop weight `α` of the lazy walk; 0 for the simple walk.
    laziness: f64,
}

impl<'g> WalkOperator<'g> {
    /// Operator for the simple (non-lazy) random walk, the paper's `P`.
    pub fn new(graph: &Graph) -> Self {
        Self::with_laziness(graph, 0.0)
    }

    /// Operator for the lazy walk: stay put with probability `laziness`,
    /// otherwise take a simple-walk step.
    ///
    /// # Panics
    ///
    /// Panics if `laziness` is outside `[0, 1)`.
    pub fn with_laziness(graph: &Graph, laziness: f64) -> Self {
        Self::build(Cow::Owned(Csr::from_graph(graph)), laziness)
    }

    /// Operator over prebuilt CSR slabs, borrowing them for `'g`.
    ///
    /// # Panics
    ///
    /// Panics if `laziness` is outside `[0, 1)`.
    pub fn from_csr(csr: &'g Csr, laziness: f64) -> Self {
        Self::build(Cow::Borrowed(csr), laziness)
    }

    fn build(csr: Cow<'g, Csr>, laziness: f64) -> Self {
        assert!((0.0..1.0).contains(&laziness), "laziness {laziness} out of [0, 1)");
        let inv_degree = (0..csr.node_count())
            .map(|v| {
                let d = csr.degree(v as u32);
                if d == 0 {
                    0.0
                } else {
                    1.0 / d as f64
                }
            })
            .collect();
        WalkOperator { csr, inv_degree, laziness }
    }

    /// The CSR slabs this operator walks on.
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// Number of nodes in the walked graph.
    pub fn node_count(&self) -> usize {
        self.csr.node_count()
    }

    /// The lazy self-loop probability `α`.
    pub fn laziness(&self) -> f64 {
        self.laziness
    }

    /// One output row of the transition: a pull over `N(v)` in ascending
    /// order with the lazy keep-term interleaved where `u == v` would
    /// sort — exactly the accumulation order the historical push-based
    /// sweep produced, so the result is bit-identical to it.
    #[inline]
    fn row(&self, src: &[f64], v: usize) -> f64 {
        let pv = src[v];
        if self.inv_degree[v] == 0.0 {
            // Isolated node: all mass stays (and exact zero stays the
            // positive zero the push sweep left behind).
            return if pv == 0.0 { 0.0 } else { pv };
        }
        let keep = self.laziness;
        let move_frac = 1.0 - keep;
        let mut acc = 0.0f64;
        let mut keep_pending = keep > 0.0 && pv != 0.0;
        for &u in self.csr.neighbors(v as u32) {
            let u = u as usize;
            if keep_pending && u > v {
                acc += keep * pv;
                keep_pending = false;
            }
            let pu = src[u];
            if pu == 0.0 {
                continue;
            }
            acc += move_frac * pu * self.inv_degree[u];
        }
        if keep_pending {
            acc += keep * pv;
        }
        acc
    }

    /// Computes one transition: `dst = (1−α)·src P + α·src`.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the graph's node count.
    pub fn step(&self, src: &[f64], dst: &mut [f64]) {
        let n = self.csr.node_count();
        assert_eq!(src.len(), n, "src length mismatch");
        assert_eq!(dst.len(), n, "dst length mismatch");
        for (v, slot) in dst.iter_mut().enumerate() {
            *slot = self.row(src, v);
        }
    }

    /// [`step`](WalkOperator::step) with the output rows partitioned into
    /// `blocks` (one worker thread per block, as produced by
    /// [`Csr::edge_balanced_blocks`]). Bit-identical to the sequential
    /// step for every partition.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the graph's node count or
    /// the blocks do not tile `0..n` in ascending order.
    pub fn step_blocked(&self, src: &[f64], dst: &mut [f64], blocks: &[Range<usize>]) {
        let n = self.csr.node_count();
        assert_eq!(src.len(), n, "src length mismatch");
        assert_eq!(dst.len(), n, "dst length mismatch");
        par_fill_rows(blocks, dst, |v| self.row(src, v));
    }

    /// Evolves `x` in place for `steps` transitions, using `scratch` as
    /// the ping-pong buffer.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the graph's node count.
    pub fn evolve(&self, x: &mut Vec<f64>, scratch: &mut Vec<f64>, steps: usize) {
        for _ in 0..steps {
            self.step(x, scratch);
            std::mem::swap(x, scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{stationary_distribution, total_variation, Distribution};
    use socnet_core::NodeId;
    use socnet_gen::{complete, ring};

    #[test]
    fn step_conserves_mass() {
        let g = complete(10);
        let op = WalkOperator::new(&g);
        let x = Distribution::uniform(10).into_vec();
        let mut y = vec![0.0; 10];
        op.step(&x, &mut y);
        assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stationary_is_fixed_point() {
        let g = socnet_core::Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let pi = stationary_distribution(&g);
        let op = WalkOperator::new(&g);
        let mut y = vec![0.0; 5];
        op.step(pi.as_slice(), &mut y);
        assert!(total_variation(pi.as_slice(), &y) < 1e-12, "πP = π");
    }

    #[test]
    fn lazy_stationary_is_also_fixed() {
        let g = ring(6);
        let pi = stationary_distribution(&g);
        let op = WalkOperator::with_laziness(&g, 0.5);
        let mut y = vec![0.0; 6];
        op.step(pi.as_slice(), &mut y);
        assert!(total_variation(pi.as_slice(), &y) < 1e-12);
    }

    #[test]
    fn bipartite_walk_oscillates_but_lazy_converges() {
        // Even ring is bipartite: the simple walk never converges.
        let g = ring(4);
        let pi = stationary_distribution(&g);
        let simple = WalkOperator::new(&g);
        let mut x = Distribution::point_mass(4, NodeId(0)).into_vec();
        let mut scratch = vec![0.0; 4];
        simple.evolve(&mut x, &mut scratch, 101);
        assert!(total_variation(&x, pi.as_slice()) > 0.4, "parity trap");

        let lazy = WalkOperator::with_laziness(&g, 0.5);
        let mut x = Distribution::point_mass(4, NodeId(0)).into_vec();
        lazy.evolve(&mut x, &mut scratch, 100);
        assert!(total_variation(&x, pi.as_slice()) < 1e-6, "lazy walk mixes");
    }

    #[test]
    fn isolated_nodes_trap_mass() {
        let g = socnet_core::Graph::from_edges(3, [(0, 1)]);
        let op = WalkOperator::new(&g);
        let x = Distribution::point_mass(3, NodeId(2)).into_vec();
        let mut y = vec![0.0; 3];
        op.step(&x, &mut y);
        assert_eq!(y[2], 1.0);
    }

    #[test]
    fn complete_graph_mixes_in_one_step() {
        let g = complete(50);
        let pi = stationary_distribution(&g);
        let op = WalkOperator::new(&g);
        let x = Distribution::point_mass(50, NodeId(7)).into_vec();
        let mut y = vec![0.0; 50];
        op.step(&x, &mut y);
        // After one step the walk is uniform over the other 49 nodes;
        // TVD to π is 1/50.
        assert!(total_variation(&y, pi.as_slice()) - 0.02 < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of [0, 1)")]
    fn full_laziness_rejected() {
        let g = ring(3);
        let _ = WalkOperator::with_laziness(&g, 1.0);
    }

    /// The historical push-based sweep, reproduced verbatim as the
    /// reference the pull-based rows are pinned against bit-for-bit.
    fn push_step(g: &socnet_core::Graph, laziness: f64, src: &[f64], dst: &mut [f64]) {
        let inv_degree: Vec<f64> = g
            .nodes()
            .map(|v| {
                let d = g.degree(v);
                if d == 0 {
                    0.0
                } else {
                    1.0 / d as f64
                }
            })
            .collect();
        let keep = laziness;
        let move_frac = 1.0 - keep;
        dst.fill(0.0);
        for u in g.nodes() {
            let p = src[u.index()];
            if p == 0.0 {
                continue;
            }
            let inv_d = inv_degree[u.index()];
            if inv_d == 0.0 {
                dst[u.index()] += p;
                continue;
            }
            if keep > 0.0 {
                dst[u.index()] += keep * p;
            }
            let share = move_frac * p * inv_d;
            for &v in g.neighbors(u) {
                dst[v.index()] += share;
            }
        }
    }

    #[test]
    fn pull_step_is_bit_identical_to_push_sweep() {
        let graphs = [
            complete(9),
            ring(8),
            socnet_gen::star(7),
            socnet_gen::barbell(5, 2),
            socnet_core::Graph::from_edges(5, [(0, 1), (1, 2)]), // isolated 3, 4
            socnet_core::Graph::from_edges(3, []),
        ];
        for g in &graphs {
            let n = g.node_count();
            for laziness in [0.0, 0.3, 0.7] {
                let op = WalkOperator::with_laziness(g, laziness);
                // A lumpy, deterministic starting vector with exact zeros.
                let mut x: Vec<f64> =
                    (0..n).map(|i| if i % 3 == 0 { 0.0 } else { 1.0 / (i + 1) as f64 }).collect();
                let total: f64 = x.iter().sum();
                if total > 0.0 {
                    for xi in &mut x {
                        *xi /= total;
                    }
                }
                let mut want = vec![0.0; n];
                let mut got = vec![0.0; n];
                for _ in 0..4 {
                    push_step(g, laziness, &x, &mut want);
                    op.step(&x, &mut got);
                    assert_eq!(got, want, "n = {n}, α = {laziness}");
                    x.copy_from_slice(&want);
                }
            }
        }
    }

    #[test]
    fn blocked_step_matches_sequential_bitwise() {
        let g = socnet_gen::barbell(8, 3);
        let n = g.node_count();
        let csr = Csr::from_graph(&g);
        let op = WalkOperator::from_csr(&csr, 0.25);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let mut plain = vec![0.0; n];
        op.step(&x, &mut plain);
        for threads in [1usize, 2, 3, 8] {
            let blocks = csr.edge_balanced_blocks(threads);
            let mut blocked = vec![0.0; n];
            op.step_blocked(&x, &mut blocked, &blocks);
            assert_eq!(blocked, plain, "threads = {threads}");
        }
    }

    #[test]
    fn borrowed_and_owned_slabs_agree() {
        let g = ring(9);
        let csr = Csr::from_graph(&g);
        let owned = WalkOperator::new(&g);
        let borrowed = WalkOperator::from_csr(&csr, 0.0);
        assert_eq!(borrowed.csr(), owned.csr());
        let x = Distribution::point_mass(9, NodeId(4)).into_vec();
        let (mut a, mut b) = (vec![0.0; 9], vec![0.0; 9]);
        owned.step(&x, &mut a);
        borrowed.step(&x, &mut b);
        assert_eq!(a, b);
    }
}
