use socnet_core::Graph;

/// The random-walk transition operator `P = D⁻¹A` of a graph, applied to
/// dense distributions.
///
/// This is the inner loop of the sampling method: one [`step`](WalkOperator::step) computes
/// `x ← xP` in `O(n + m)` using the CSR adjacency directly — no matrix is
/// materialized. An optional laziness parameter evaluates the lazy walk
/// `(1−α)·xP + α·x`, which is guaranteed aperiodic for `α > 0`.
///
/// Mass on isolated (degree-0) nodes stays in place, matching the
/// convention that the walk is undefined there.
///
/// # Examples
///
/// ```
/// use socnet_core::{Graph, NodeId};
/// use socnet_mixing::{Distribution, WalkOperator};
///
/// let path = Graph::from_edges(3, [(0, 1), (1, 2)]);
/// let op = WalkOperator::new(&path);
/// let x = Distribution::point_mass(3, NodeId(1)).into_vec();
/// let mut y = vec![0.0; 3];
/// op.step(&x, &mut y);
/// assert_eq!(y, vec![0.5, 0.0, 0.5]);
/// ```
#[derive(Debug, Clone)]
pub struct WalkOperator<'g> {
    graph: &'g Graph,
    /// `1 / deg(v)`, or 0 for isolated nodes.
    inv_degree: Vec<f64>,
    /// Self-loop weight `α` of the lazy walk; 0 for the simple walk.
    laziness: f64,
}

impl<'g> WalkOperator<'g> {
    /// Operator for the simple (non-lazy) random walk, the paper's `P`.
    pub fn new(graph: &'g Graph) -> Self {
        Self::with_laziness(graph, 0.0)
    }

    /// Operator for the lazy walk: stay put with probability `laziness`,
    /// otherwise take a simple-walk step.
    ///
    /// # Panics
    ///
    /// Panics if `laziness` is outside `[0, 1)`.
    pub fn with_laziness(graph: &'g Graph, laziness: f64) -> Self {
        assert!((0.0..1.0).contains(&laziness), "laziness {laziness} out of [0, 1)");
        let inv_degree = graph
            .nodes()
            .map(|v| {
                let d = graph.degree(v);
                if d == 0 {
                    0.0
                } else {
                    1.0 / d as f64
                }
            })
            .collect();
        WalkOperator { graph, inv_degree, laziness }
    }

    /// The graph this operator walks on.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The lazy self-loop probability `α`.
    pub fn laziness(&self) -> f64 {
        self.laziness
    }

    /// Computes one transition: `dst = (1−α)·src P + α·src`.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the graph's node count.
    pub fn step(&self, src: &[f64], dst: &mut [f64]) {
        let n = self.graph.node_count();
        assert_eq!(src.len(), n, "src length mismatch");
        assert_eq!(dst.len(), n, "dst length mismatch");
        let keep = self.laziness;
        let move_frac = 1.0 - keep;
        dst.fill(0.0);
        for u in self.graph.nodes() {
            let p = src[u.index()];
            if p == 0.0 {
                continue;
            }
            let inv_d = self.inv_degree[u.index()];
            if inv_d == 0.0 {
                // Isolated node: all mass stays.
                dst[u.index()] += p;
                continue;
            }
            if keep > 0.0 {
                dst[u.index()] += keep * p;
            }
            let share = move_frac * p * inv_d;
            for &v in self.graph.neighbors(u) {
                dst[v.index()] += share;
            }
        }
    }

    /// Evolves `x` in place for `steps` transitions, using `scratch` as
    /// the ping-pong buffer.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the graph's node count.
    pub fn evolve(&self, x: &mut Vec<f64>, scratch: &mut Vec<f64>, steps: usize) {
        for _ in 0..steps {
            self.step(x, scratch);
            std::mem::swap(x, scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{stationary_distribution, total_variation, Distribution};
    use socnet_core::NodeId;
    use socnet_gen::{complete, ring};

    #[test]
    fn step_conserves_mass() {
        let g = complete(10);
        let op = WalkOperator::new(&g);
        let x = Distribution::uniform(10).into_vec();
        let mut y = vec![0.0; 10];
        op.step(&x, &mut y);
        assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stationary_is_fixed_point() {
        let g = socnet_core::Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let pi = stationary_distribution(&g);
        let op = WalkOperator::new(&g);
        let mut y = vec![0.0; 5];
        op.step(pi.as_slice(), &mut y);
        assert!(total_variation(pi.as_slice(), &y) < 1e-12, "πP = π");
    }

    #[test]
    fn lazy_stationary_is_also_fixed() {
        let g = ring(6);
        let pi = stationary_distribution(&g);
        let op = WalkOperator::with_laziness(&g, 0.5);
        let mut y = vec![0.0; 6];
        op.step(pi.as_slice(), &mut y);
        assert!(total_variation(pi.as_slice(), &y) < 1e-12);
    }

    #[test]
    fn bipartite_walk_oscillates_but_lazy_converges() {
        // Even ring is bipartite: the simple walk never converges.
        let g = ring(4);
        let pi = stationary_distribution(&g);
        let simple = WalkOperator::new(&g);
        let mut x = Distribution::point_mass(4, NodeId(0)).into_vec();
        let mut scratch = vec![0.0; 4];
        simple.evolve(&mut x, &mut scratch, 101);
        assert!(total_variation(&x, pi.as_slice()) > 0.4, "parity trap");

        let lazy = WalkOperator::with_laziness(&g, 0.5);
        let mut x = Distribution::point_mass(4, NodeId(0)).into_vec();
        lazy.evolve(&mut x, &mut scratch, 100);
        assert!(total_variation(&x, pi.as_slice()) < 1e-6, "lazy walk mixes");
    }

    #[test]
    fn isolated_nodes_trap_mass() {
        let g = socnet_core::Graph::from_edges(3, [(0, 1)]);
        let op = WalkOperator::new(&g);
        let x = Distribution::point_mass(3, NodeId(2)).into_vec();
        let mut y = vec![0.0; 3];
        op.step(&x, &mut y);
        assert_eq!(y[2], 1.0);
    }

    #[test]
    fn complete_graph_mixes_in_one_step() {
        let g = complete(50);
        let pi = stationary_distribution(&g);
        let op = WalkOperator::new(&g);
        let x = Distribution::point_mass(50, NodeId(7)).into_vec();
        let mut y = vec![0.0; 50];
        op.step(&x, &mut y);
        // After one step the walk is uniform over the other 49 nodes;
        // TVD to π is 1/50.
        assert!(total_variation(&y, pi.as_slice()) - 0.02 < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of [0, 1)")]
    fn full_laziness_rejected() {
        let g = ring(3);
        let _ = WalkOperator::with_laziness(&g, 1.0);
    }
}
