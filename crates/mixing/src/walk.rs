//! Simulated (sampled) random walks.
//!
//! The distribution-evolution machinery in [`WalkOperator`](crate::WalkOperator) computes walk
//! distributions exactly; these helpers instead *sample* walks, which is
//! what deployed protocols (and the Sybil defenses in `socnet-sybil`) do.

use rand::{Rng, RngExt};
use socnet_core::{Graph, NodeId};

use crate::MixingError;

/// Samples a simple random walk of `length` steps from `source`,
/// returning the full vertex trajectory (`length + 1` nodes).
///
/// If the walk reaches an isolated node it stays there, mirroring
/// [`WalkOperator`](crate::WalkOperator)'s convention.
///
/// # Errors
///
/// Returns [`MixingError::InvalidNode`] if `source` is out of range.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use socnet_core::{Graph, NodeId};
/// use socnet_mixing::sample_walk;
///
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
/// let mut rng = StdRng::seed_from_u64(5);
/// let walk = sample_walk(&g, NodeId(0), 4, &mut rng).unwrap();
/// assert_eq!(walk.len(), 5);
/// assert_eq!(walk[0], NodeId(0));
/// assert!(sample_walk(&g, NodeId(9), 4, &mut rng).is_err());
/// ```
pub fn sample_walk<R: Rng + ?Sized>(
    graph: &Graph,
    source: NodeId,
    length: usize,
    rng: &mut R,
) -> Result<Vec<NodeId>, MixingError> {
    graph.check_node(source)?;
    let mut walk = Vec::with_capacity(length + 1);
    let mut cur = source;
    walk.push(cur);
    for _ in 0..length {
        let nbrs = graph.neighbors(cur);
        if !nbrs.is_empty() {
            cur = nbrs[rng.random_range(0..nbrs.len())];
        }
        walk.push(cur);
    }
    Ok(walk)
}

/// Samples one walk and returns only its endpoint.
///
/// # Errors
///
/// Returns [`MixingError::InvalidNode`] if `source` is out of range.
pub fn walk_endpoint<R: Rng + ?Sized>(
    graph: &Graph,
    source: NodeId,
    length: usize,
    rng: &mut R,
) -> Result<NodeId, MixingError> {
    graph.check_node(source)?;
    let mut cur = source;
    for _ in 0..length {
        let nbrs = graph.neighbors(cur);
        if nbrs.is_empty() {
            break;
        }
        cur = nbrs[rng.random_range(0..nbrs.len())];
    }
    Ok(cur)
}

/// Samples `count` independent walks from `source` and returns their
/// endpoints.
///
/// The endpoint histogram over many samples approximates the evolved
/// distribution `π^{(source)}P^t` — the Monte-Carlo view of the sampling
/// method, tested against [`WalkOperator`](crate::WalkOperator) for agreement.
///
/// # Errors
///
/// Returns [`MixingError::InvalidNode`] if `source` is out of range.
pub fn walk_endpoints<R: Rng + ?Sized>(
    graph: &Graph,
    source: NodeId,
    length: usize,
    count: usize,
    rng: &mut R,
) -> Result<Vec<NodeId>, MixingError> {
    graph.check_node(source)?;
    (0..count)
        .map(|_| walk_endpoint(graph, source, length, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{total_variation, WalkOperator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use socnet_core::Graph;
    use socnet_gen::ring;

    #[test]
    fn walks_follow_edges() {
        let g = ring(10);
        let mut rng = StdRng::seed_from_u64(1);
        let walk = sample_walk(&g, NodeId(3), 50, &mut rng).expect("source in range");
        assert_eq!(walk.len(), 51);
        for w in walk.windows(2) {
            assert!(
                g.has_edge(w[0], w[1]),
                "step {} -> {} not an edge",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn zero_length_walk_is_the_source() {
        let g = ring(5);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(
            sample_walk(&g, NodeId(4), 0, &mut rng).expect("in range"),
            vec![NodeId(4)]
        );
        assert_eq!(
            walk_endpoint(&g, NodeId(4), 0, &mut rng).expect("in range"),
            NodeId(4)
        );
    }

    #[test]
    fn out_of_range_source_is_an_error_not_a_panic() {
        let g = ring(5);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(sample_walk(&g, NodeId(5), 3, &mut rng).is_err());
        assert!(walk_endpoint(&g, NodeId(5), 3, &mut rng).is_err());
        assert!(walk_endpoints(&g, NodeId(5), 3, 4, &mut rng).is_err());
    }

    #[test]
    fn isolated_source_never_moves() {
        let g = Graph::from_edges(3, [(0, 1)]);
        let mut rng = StdRng::seed_from_u64(3);
        let walk = sample_walk(&g, NodeId(2), 5, &mut rng).expect("in range");
        assert!(walk.iter().all(|&v| v == NodeId(2)));
    }

    #[test]
    fn endpoint_histogram_matches_exact_distribution() {
        // Monte-Carlo endpoints vs. exact evolution on a small expander.
        let g = socnet_gen::complete(8);
        let source = NodeId(0);
        let t = 3;

        let op = WalkOperator::new(&g);
        let mut exact = vec![0.0; 8];
        exact[0] = 1.0;
        let mut scratch = vec![0.0; 8];
        op.evolve(&mut exact, &mut scratch, t);

        let mut rng = StdRng::seed_from_u64(7);
        let samples = 40_000;
        let mut hist = vec![0.0f64; 8];
        for e in walk_endpoints(&g, source, t, samples, &mut rng).expect("in range") {
            hist[e.index()] += 1.0 / samples as f64;
        }
        assert!(
            total_variation(&exact, &hist) < 0.02,
            "sampled endpoints should track the exact distribution"
        );
    }

    #[test]
    fn endpoints_are_deterministic_per_seed() {
        let g = ring(12);
        let a = walk_endpoints(&g, NodeId(0), 9, 20, &mut StdRng::seed_from_u64(9));
        let b = walk_endpoints(&g, NodeId(0), 9, 20, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.expect("in range"), b.expect("in range"));
    }
}
