//! Error type for mixing-time and anonymity measurements.

use socnet_core::GraphError;

/// An error from a mixing or anonymity measurement.
#[derive(Debug)]
pub enum MixingError {
    /// A walk source passed to a measurement is out of range for the
    /// graph.
    ///
    /// ```
    /// use socnet_core::NodeId;
    /// use socnet_gen::ring;
    /// use socnet_mixing::{endpoint_entropy, MixingError};
    ///
    /// let err = endpoint_entropy(&ring(10), NodeId(99), 3).unwrap_err();
    /// assert!(matches!(err, MixingError::InvalidNode(_)));
    /// ```
    InvalidNode(GraphError),
    /// A measurement parameter is outside its mathematical domain, or
    /// the graph cannot support the measurement at all (e.g. a spectrum
    /// on an edgeless graph). The fallible entry points ([`try_slem`],
    /// [`try_sinclair_bounds`]) return this where the panicking
    /// originals assert — callers serving untrusted queries match on it
    /// instead of catching unwinds.
    ///
    /// [`try_slem`]: crate::try_slem
    /// [`try_sinclair_bounds`]: crate::try_sinclair_bounds
    InvalidParameter(String),
}

impl std::fmt::Display for MixingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MixingError::InvalidNode(e) => write!(f, "invalid node: {e}"),
            MixingError::InvalidParameter(message) => {
                write!(f, "invalid parameter: {message}")
            }
        }
    }
}

impl std::error::Error for MixingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MixingError::InvalidNode(e) => Some(e),
            MixingError::InvalidParameter(_) => None,
        }
    }
}

impl From<GraphError> for MixingError {
    fn from(e: GraphError) -> Self {
        MixingError::InvalidNode(e)
    }
}
