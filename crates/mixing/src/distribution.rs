use socnet_core::{Graph, NodeId};

/// A probability distribution over the nodes of a graph.
///
/// Thin, validated wrapper around a dense `Vec<f64>`; index `i` is the
/// probability mass on `NodeId(i)`.
///
/// # Examples
///
/// ```
/// use socnet_core::NodeId;
/// use socnet_mixing::Distribution;
///
/// let d = Distribution::point_mass(4, NodeId(2));
/// assert_eq!(d.mass(NodeId(2)), 1.0);
/// assert_eq!(d.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    mass: Vec<f64>,
}

impl Distribution {
    /// The distribution concentrated on `v` — the `π^{(i)}` of Eq. (2).
    ///
    /// # Panics
    ///
    /// Panics if `v.index() >= n`.
    pub fn point_mass(n: usize, v: NodeId) -> Self {
        assert!(v.index() < n, "node {v} out of range for {n} nodes");
        let mut mass = vec![0.0; n];
        mass[v.index()] = 1.0;
        Distribution { mass }
    }

    /// The uniform distribution over `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "uniform distribution needs at least one node");
        Distribution { mass: vec![1.0 / n as f64; n] }
    }

    /// Wraps a raw mass vector.
    ///
    /// # Panics
    ///
    /// Panics if the vector is empty, contains negative or non-finite
    /// entries, or does not sum to 1 within `1e-9`.
    pub fn from_vec(mass: Vec<f64>) -> Self {
        assert!(!mass.is_empty(), "distribution must be non-empty");
        assert!(
            mass.iter().all(|&p| p.is_finite() && p >= 0.0),
            "probabilities must be finite and non-negative"
        );
        let total: f64 = mass.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mass sums to {total}, expected 1");
        Distribution { mass }
    }

    /// Number of nodes the distribution ranges over.
    pub fn len(&self) -> usize {
        self.mass.len()
    }

    /// Whether the support is empty (never true for a valid distribution).
    pub fn is_empty(&self) -> bool {
        self.mass.is_empty()
    }

    /// Probability mass on `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn mass(&self, v: NodeId) -> f64 {
        self.mass[v.index()]
    }

    /// Borrow of the raw mass vector.
    pub fn as_slice(&self) -> &[f64] {
        &self.mass
    }

    /// Consumes the wrapper, returning the raw mass vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.mass
    }

    /// Total variation distance to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn tvd(&self, other: &Distribution) -> f64 {
        total_variation(&self.mass, &other.mass)
    }
}

/// Total variation distance `½·Σ|p_i − q_i|` between two mass vectors.
///
/// This is the `‖·‖` of the paper's Eq. (2), with the standard ½
/// normalization so the distance lies in `[0, 1]`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use socnet_mixing::total_variation;
///
/// assert_eq!(total_variation(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
/// assert_eq!(total_variation(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
/// ```
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must have equal length");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// The stationary distribution `π` of the simple random walk on `graph`:
/// `π(v) = deg(v) / 2m`.
///
/// Nodes of degree 0 correctly receive zero mass; for the walk to actually
/// converge to `π` the graph must be connected and non-bipartite, which
/// callers measuring mixing should ensure (the dataset registry already
/// extracts largest components).
///
/// # Panics
///
/// Panics if the graph has no edges (the walk is undefined).
///
/// # Examples
///
/// ```
/// use socnet_core::{Graph, NodeId};
/// use socnet_mixing::stationary_distribution;
///
/// let star = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
/// let pi = stationary_distribution(&star);
/// assert!((pi.mass(NodeId(0)) - 0.5).abs() < 1e-12);
/// ```
pub fn stationary_distribution(graph: &Graph) -> Distribution {
    assert!(graph.edge_count() > 0, "stationary distribution undefined without edges");
    let two_m = graph.degree_sum() as f64;
    let mass = graph.nodes().map(|v| graph.degree(v) as f64 / two_m).collect();
    Distribution { mass }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socnet_core::Graph;

    #[test]
    fn point_mass_is_valid() {
        let d = Distribution::point_mass(5, NodeId(3));
        assert_eq!(d.as_slice(), &[0.0, 0.0, 0.0, 1.0, 0.0]);
        assert_eq!(d.len(), 5);
        assert!(!d.is_empty());
    }

    #[test]
    fn uniform_sums_to_one() {
        let d = Distribution::uniform(8);
        assert!((d.as_slice().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(d.mass(NodeId(0)), 0.125);
    }

    #[test]
    fn tvd_properties() {
        let a = Distribution::point_mass(3, NodeId(0));
        let b = Distribution::point_mass(3, NodeId(2));
        let u = Distribution::uniform(3);
        assert_eq!(a.tvd(&a), 0.0);
        assert_eq!(a.tvd(&b), 1.0);
        assert_eq!(a.tvd(&b), b.tvd(&a));
        // Triangle inequality.
        assert!(a.tvd(&b) <= a.tvd(&u) + u.tvd(&b) + 1e-12);
    }

    #[test]
    fn stationary_is_degree_proportional() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 1)]);
        let pi = stationary_distribution(&g);
        // degrees: 1, 3, 2, 2; 2m = 8.
        assert_eq!(pi.as_slice(), &[0.125, 0.375, 0.25, 0.25]);
    }

    #[test]
    fn stationary_handles_isolated_nodes() {
        let g = Graph::from_edges(3, [(0, 1)]);
        let pi = stationary_distribution(&g);
        assert_eq!(pi.mass(NodeId(2)), 0.0);
    }

    #[test]
    fn from_vec_validates() {
        let d = Distribution::from_vec(vec![0.25, 0.75]);
        assert_eq!(d.into_vec(), vec![0.25, 0.75]);
    }

    #[test]
    #[should_panic(expected = "expected 1")]
    fn from_vec_rejects_unnormalized() {
        let _ = Distribution::from_vec(vec![0.3, 0.3]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_vec_rejects_negative() {
        let _ = Distribution::from_vec(vec![1.5, -0.5]);
    }

    #[test]
    #[should_panic(expected = "without edges")]
    fn stationary_requires_edges() {
        let _ = stationary_distribution(&Graph::from_edges(3, []));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn tvd_length_mismatch_panics() {
        let _ = total_variation(&[1.0], &[0.5, 0.5]);
    }
}
