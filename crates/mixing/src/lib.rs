//! Mixing-time measurement for random walks on social graphs.
//!
//! Implements both measurement methods of the paper (Sec. III-C):
//!
//! 1. **The sampling method** — pick random walk sources, evolve each
//!    source's point-mass distribution through the walk operator
//!    `P = D⁻¹A`, and record the total variation distance to the
//!    stationary distribution `π` after every step
//!    ([`MixingMeasurement`]). The per-source curves are exactly the
//!    series plotted in the paper's Figure 1, and their maximum over
//!    sources instantiates the `max_i` of Eq. (2).
//! 2. **The spectral method** — compute the second largest eigenvalue
//!    modulus `μ` of `P` ([`slem`], [`Spectrum`]) and bound the mixing
//!    time with the Sinclair inequalities ([`sinclair_bounds`]):
//!    `μ/(2(1−μ))·log(1/2ε) ≤ T(ε) ≤ (log n + log(1/ε))/(1−μ)`.
//!
//! # Examples
//!
//! ```
//! use socnet_gen::complete;
//! use socnet_mixing::{MixingConfig, MixingMeasurement};
//!
//! // The complete graph mixes essentially in one step.
//! let g = complete(64);
//! let cfg = MixingConfig { sources: 8, max_walk: 4, ..Default::default() };
//! let m = MixingMeasurement::measure(&g, &cfg);
//! assert!(m.mixing_time(0.05).unwrap() <= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anonymity;
mod bounds;
mod distribution;
mod error;
mod evolve;
mod mixing;
mod modulated;
mod sample;
mod spectral;
mod walk;

pub use anonymity::{effective_anonymity_set, endpoint_entropy, entropy_bits, AnonymityCurve};
pub use bounds::{
    sinclair_bounds, sinclair_lower, sinclair_upper, try_sinclair_bounds, MixingBounds,
};
pub use error::MixingError;
pub use distribution::{stationary_distribution, total_variation, Distribution};
pub use evolve::WalkOperator;
pub use mixing::{MixingConfig, MixingMeasurement, SourceCurve};
pub use modulated::{ModulatedOperator, TrustModulation};
pub use sample::{
    estimate_mixing, estimate_mixing_csr, SampleMixingConfig, SampleMixingEstimate,
};
pub use spectral::{slem, slem_legacy, try_slem, try_slem_csr, SpectralConfig, Spectrum};
pub use walk::{sample_walk, walk_endpoint, walk_endpoints};
