//! Sinclair's eigenvalue bounds on the mixing time.
//!
//! For an ergodic reversible chain with second largest eigenvalue modulus
//! `μ` on `n` states (Sinclair 1992, as used in the paper's Sec. III-C):
//!
//! ```text
//!   μ/(2(1−μ)) · ln(1/2ε)  ≤  T(ε)  ≤  (ln n + ln(1/ε)) / (1−μ)
//! ```

use serde::{Deserialize, Serialize};

/// The pair of Sinclair bounds for one `(μ, n, ε)` triple.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixingBounds {
    /// Lower bound on `T(ε)` in walk steps.
    pub lower: f64,
    /// Upper bound on `T(ε)` in walk steps.
    pub upper: f64,
}

/// Sinclair lower bound `μ/(2(1−μ)) · ln(1/2ε)`.
///
/// # Panics
///
/// Panics if `mu` is outside `[0, 1)` or `epsilon` outside `(0, 0.5)`.
///
/// # Examples
///
/// ```
/// use socnet_mixing::sinclair_lower;
///
/// let slow = sinclair_lower(0.999, 0.01);
/// let fast = sinclair_lower(0.90, 0.01);
/// assert!(slow > 100.0 * fast / 2.0);
/// ```
pub fn sinclair_lower(mu: f64, epsilon: f64) -> f64 {
    check_args(mu, epsilon);
    mu / (2.0 * (1.0 - mu)) * (1.0 / (2.0 * epsilon)).ln()
}

/// Sinclair upper bound `(ln n + ln(1/ε)) / (1−μ)`.
///
/// # Panics
///
/// Panics if `mu` is outside `[0, 1)`, `epsilon` outside `(0, 0.5)`, or
/// `n == 0`.
pub fn sinclair_upper(mu: f64, n: usize, epsilon: f64) -> f64 {
    check_args(mu, epsilon);
    assert!(n > 0, "state space must be non-empty");
    ((n as f64).ln() + (1.0 / epsilon).ln()) / (1.0 - mu)
}

/// Both Sinclair bounds at once.
///
/// # Panics
///
/// As [`sinclair_lower`] and [`sinclair_upper`].
///
/// # Examples
///
/// ```
/// use socnet_mixing::sinclair_bounds;
///
/// let b = sinclair_bounds(0.99, 10_000, 0.001);
/// assert!(b.lower <= b.upper);
/// ```
pub fn sinclair_bounds(mu: f64, n: usize, epsilon: f64) -> MixingBounds {
    MixingBounds { lower: sinclair_lower(mu, epsilon), upper: sinclair_upper(mu, n, epsilon) }
}

/// Fallible variant of [`sinclair_bounds`] for callers serving
/// untrusted queries: out-of-domain parameters are errors, never
/// panics.
///
/// # Errors
///
/// Returns [`MixingError`](crate::MixingError) if `mu` is outside
/// `[0, 1)`, `epsilon` outside `(0, 0.5)`, or `n == 0`.
///
/// # Examples
///
/// ```
/// use socnet_mixing::{sinclair_bounds, try_sinclair_bounds, MixingError};
///
/// assert!(matches!(
///     try_sinclair_bounds(1.0, 100, 0.1),
///     Err(MixingError::InvalidParameter(_))
/// ));
/// let ok = try_sinclair_bounds(0.9, 100, 0.1).unwrap();
/// assert_eq!(ok, sinclair_bounds(0.9, 100, 0.1));
/// ```
pub fn try_sinclair_bounds(
    mu: f64,
    n: usize,
    epsilon: f64,
) -> Result<MixingBounds, crate::MixingError> {
    if !(0.0..1.0).contains(&mu) {
        return Err(crate::MixingError::InvalidParameter(format!("mu {mu} out of [0, 1)")));
    }
    if !(epsilon > 0.0 && epsilon < 0.5) {
        return Err(crate::MixingError::InvalidParameter(format!(
            "epsilon {epsilon} out of (0, 0.5)"
        )));
    }
    if n == 0 {
        return Err(crate::MixingError::InvalidParameter(
            "state space must be non-empty".to_string(),
        ));
    }
    Ok(sinclair_bounds(mu, n, epsilon))
}

fn check_args(mu: f64, epsilon: f64) {
    assert!((0.0..1.0).contains(&mu), "mu {mu} out of [0, 1)");
    assert!(
        epsilon > 0.0 && epsilon < 0.5,
        "epsilon {epsilon} out of (0, 0.5): the lower bound needs ln(1/2ε) > 0"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_order() {
        for mu in [0.1, 0.5, 0.9, 0.99, 0.9999] {
            for n in [10usize, 1000, 1_000_000] {
                for eps in [0.01, 0.25, 1.0 / n as f64] {
                    let b = sinclair_bounds(mu, n, eps);
                    assert!(b.lower <= b.upper, "mu={mu} n={n} eps={eps}: {b:?}");
                    assert!(b.lower >= 0.0);
                }
            }
        }
    }

    #[test]
    fn smaller_gap_means_longer_mixing() {
        let fast = sinclair_bounds(0.9, 1000, 0.01);
        let slow = sinclair_bounds(0.999, 1000, 0.01);
        assert!(slow.lower > fast.lower);
        assert!(slow.upper > fast.upper);
    }

    #[test]
    fn fast_mixing_definition_matches_log_n() {
        // ε = Θ(1/n) and small μ ⇒ upper bound O(log n).
        let n = 1_000_000usize;
        let upper = sinclair_upper(0.5, n, 1.0 / n as f64);
        assert!(upper < 60.0, "O(log n) mixing, got {upper}");
    }

    #[test]
    fn zero_mu_lower_bound_is_zero() {
        assert_eq!(sinclair_lower(0.0, 0.01), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of [0, 1)")]
    fn mu_one_rejected() {
        let _ = sinclair_lower(1.0, 0.01);
    }

    #[test]
    #[should_panic(expected = "out of (0, 0.5)")]
    fn epsilon_half_rejected() {
        let _ = sinclair_lower(0.5, 0.5);
    }
}
