//! Walk-based anonymity of social graphs.
//!
//! The paper's introduction cites Nagaraja's "Anonymity in the wild":
//! using a social graph as a mix network, where a message's sender is
//! hidden by relaying it over a `t`-step random walk. The anonymity an
//! adversary faces when observing the walk's endpoint is exactly a
//! mixing question: after `t` steps, how spread out is the distribution
//! over possible endpoints (forward anonymity) — equivalently, by
//! reversibility, over possible *senders*?
//!
//! This module quantifies it with the standard metrics:
//!
//! * [`endpoint_entropy`] — Shannon entropy (in bits) of the evolved
//!   walk distribution `π^{(s)}P^t`;
//! * [`effective_anonymity_set`] — `2^entropy`, the equivalent number of
//!   uniformly likely candidates;
//! * [`AnonymityCurve`] — both as functions of walk length, with the
//!   graph's ceiling (the stationary distribution's entropy) attached.
//!
//! Fast-mixing graphs reach their entropy ceiling in few hops — exactly
//! the property that makes them good mixes and good Sybil-defense
//! substrates at once.

use serde::{Deserialize, Serialize};
use socnet_core::{Graph, NodeId};

use crate::{stationary_distribution, MixingError, WalkOperator};

/// Shannon entropy of a probability mass vector, in bits.
///
/// Zero-mass entries contribute nothing (the `0·log 0 = 0` convention).
///
/// # Examples
///
/// ```
/// use socnet_mixing::entropy_bits;
///
/// assert_eq!(entropy_bits(&[1.0, 0.0]), 0.0);
/// assert!((entropy_bits(&[0.25; 4]) - 2.0).abs() < 1e-12);
/// ```
pub fn entropy_bits(mass: &[f64]) -> f64 {
    mass.iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.log2())
        .sum()
}

/// Entropy (bits) of the walk's endpoint distribution after `t` steps
/// from `source`.
///
/// # Errors
///
/// Returns [`MixingError::InvalidNode`] if `source` is out of range.
///
/// # Examples
///
/// ```
/// use socnet_core::NodeId;
/// use socnet_gen::complete;
/// use socnet_mixing::endpoint_entropy;
///
/// // One step on K17 spreads over the 16 other nodes: 4 bits.
/// let g = complete(17);
/// let h = endpoint_entropy(&g, NodeId(0), 1).unwrap();
/// assert!((h - 4.0).abs() < 1e-12);
/// ```
pub fn endpoint_entropy(graph: &Graph, source: NodeId, t: usize) -> Result<f64, MixingError> {
    graph.check_node(source)?;
    let n = graph.node_count();
    let op = WalkOperator::new(graph);
    let mut x = vec![0.0; n];
    x[source.index()] = 1.0;
    let mut scratch = vec![0.0; n];
    op.evolve(&mut x, &mut scratch, t);
    Ok(entropy_bits(&x))
}

/// The effective anonymity-set size `2^H` after `t` steps — the number
/// of equally likely candidates an observer cannot distinguish among.
///
/// # Errors
///
/// Returns [`MixingError::InvalidNode`] if `source` is out of range.
pub fn effective_anonymity_set(
    graph: &Graph,
    source: NodeId,
    t: usize,
) -> Result<f64, MixingError> {
    Ok(endpoint_entropy(graph, source, t)?.exp2())
}

/// Entropy and anonymity-set curves over walk lengths, with the graph's
/// stationary ceiling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnonymityCurve {
    /// `entropy[t]` is the endpoint entropy (bits) after `t + 1` steps.
    pub entropy: Vec<f64>,
    /// The stationary distribution's entropy — the *limiting* entropy of
    /// long walks. On non-regular graphs a transient distribution can
    /// briefly exceed it (the degree-weighted π is not the max-entropy
    /// distribution), so treat it as the asymptote, not a hard bound.
    pub ceiling: f64,
    /// The walk source the curve was measured from.
    pub source: NodeId,
}

impl AnonymityCurve {
    /// Measures the curve for `source` over `1..=max_walk` steps.
    ///
    /// # Errors
    ///
    /// Returns [`MixingError::InvalidNode`] if `source` is out of range.
    ///
    /// # Panics
    ///
    /// Panics if `max_walk == 0` or the graph has no edges.
    pub fn measure(
        graph: &Graph,
        source: NodeId,
        max_walk: usize,
    ) -> Result<Self, MixingError> {
        graph.check_node(source)?;
        assert!(max_walk > 0, "need at least one step");
        let pi = stationary_distribution(graph);
        let ceiling = entropy_bits(pi.as_slice());
        let n = graph.node_count();
        let op = WalkOperator::new(graph);
        let mut x = vec![0.0; n];
        x[source.index()] = 1.0;
        let mut scratch = vec![0.0; n];
        let mut entropy = Vec::with_capacity(max_walk);
        for _ in 0..max_walk {
            op.step(&x, &mut scratch);
            std::mem::swap(&mut x, &mut scratch);
            entropy.push(entropy_bits(&x));
        }
        Ok(AnonymityCurve { entropy, ceiling, source })
    }

    /// The effective anonymity set `2^H` per walk length.
    pub fn anonymity_sets(&self) -> Vec<f64> {
        self.entropy.iter().map(|h| h.exp2()).collect()
    }

    /// First walk length reaching at least `fraction` of the ceiling,
    /// if any within the horizon.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]`.
    pub fn steps_to_fraction(&self, fraction: f64) -> Option<usize> {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction {fraction} out of (0, 1]");
        let target = fraction * self.ceiling;
        self.entropy.iter().position(|&h| h >= target).map(|t| t + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socnet_gen::{barbell, complete, ring};

    #[test]
    fn entropy_basics() {
        assert_eq!(entropy_bits(&[]), 0.0);
        assert_eq!(entropy_bits(&[1.0]), 0.0);
        assert!((entropy_bits(&[0.5, 0.5]) - 1.0).abs() < 1e-12);
        // Skewed is less entropic than uniform.
        assert!(entropy_bits(&[0.9, 0.1]) < 1.0);
    }

    #[test]
    fn zero_steps_reveal_the_source() {
        let g = ring(10);
        assert_eq!(endpoint_entropy(&g, NodeId(0), 0).expect("in range"), 0.0);
        assert_eq!(effective_anonymity_set(&g, NodeId(0), 0).expect("in range"), 1.0);
    }

    #[test]
    fn out_of_range_source_is_an_error_not_a_panic() {
        let g = ring(10);
        assert!(endpoint_entropy(&g, NodeId(10), 2).is_err());
        assert!(effective_anonymity_set(&g, NodeId(10), 2).is_err());
        assert!(AnonymityCurve::measure(&g, NodeId(10), 2).is_err());
    }

    #[test]
    fn anonymity_grows_toward_the_ceiling() {
        let g = complete(32);
        let curve = AnonymityCurve::measure(&g, NodeId(3), 10).expect("in range");
        // Non-decreasing here (lazy-free complete graph still smooths fast)
        // and within the ceiling at the end.
        assert!(curve.entropy[9] <= curve.ceiling + 1e-9);
        assert!(curve.entropy[9] > 0.99 * curve.ceiling);
        assert_eq!(curve.steps_to_fraction(0.95), Some(1));
        let sets = curve.anonymity_sets();
        assert!(sets[9] > 30.0, "anonymity set {:.1}", sets[9]);
    }

    #[test]
    fn bottleneck_graphs_anonymize_slowly() {
        let fast = complete(12);
        let slow = barbell(6, 0);
        let cf = AnonymityCurve::measure(&fast, NodeId(0), 8).expect("in range");
        let cs = AnonymityCurve::measure(&slow, NodeId(0), 8).expect("in range");
        let frac_fast = cf.entropy[7] / cf.ceiling;
        let frac_slow = cs.entropy[7] / cs.ceiling;
        assert!(
            frac_fast > frac_slow,
            "fast {frac_fast:.3} should beat slow {frac_slow:.3}"
        );
    }

    #[test]
    fn ceiling_is_stationary_entropy() {
        let g = ring(16); // regular: stationary uniform, ceiling = 4 bits
        let curve = AnonymityCurve::measure(&g, NodeId(0), 3).expect("in range");
        assert!((curve.ceiling - 4.0).abs() < 1e-12);
        assert_eq!(curve.source, NodeId(0));
    }

    #[test]
    #[should_panic(expected = "out of (0, 1]")]
    fn bad_fraction_panics() {
        let g = ring(5);
        let curve = AnonymityCurve::measure(&g, NodeId(0), 2).expect("in range");
        let _ = curve.steps_to_fraction(0.0);
    }
}
