//! Trust-modulated random walks.
//!
//! The paper's related work (its reference [16], "Keep your friends
//! close: incorporating trust into social network-based Sybil defenses")
//! modulates the transition matrix of the walk to account for how much
//! the underlying social model can be trusted — slowing the walk where
//! links are cheap. This module implements the modulation schemes and
//! measures their mixing with the same sampling method as the plain walk:
//!
//! * [`TrustModulation::Uniform`] — the paper's baseline `P = D⁻¹A`;
//! * [`TrustModulation::Lazy`] — stay put with probability `α`
//!   (uniformly distrust all links);
//! * [`TrustModulation::OriginatorBiased`] — with probability `β` jump
//!   back to the walk's originator (trust decays with distance from
//!   yourself);
//! * [`TrustModulation::SimilarityBiased`] — weight each link by
//!   `1 + |N(u) ∩ N(v)|` (trust links embedded in dense neighborhoods).
//!
//! All schemes slow mixing relative to the baseline — that is their
//! purpose — and the measurement machinery here quantifies by how much.

use serde::{Deserialize, Serialize};
use socnet_core::{Graph, NodeId};

use crate::total_variation;

/// A trust-modulation scheme for the random walk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrustModulation {
    /// The unmodulated simple random walk.
    Uniform,
    /// Lazy walk: self-loop probability `alpha ∈ [0, 1)`.
    Lazy {
        /// Probability of staying put each step.
        alpha: f64,
    },
    /// Originator-biased walk: probability `beta ∈ [0, 1)` of returning
    /// to the walk's originator each step.
    OriginatorBiased {
        /// Probability of jumping back to the originator.
        beta: f64,
    },
    /// Similarity-biased walk: transition weight of `{u, v}` is
    /// `1 + |N(u) ∩ N(v)|`.
    SimilarityBiased,
}

/// The transition operator of a modulated walk.
///
/// # Examples
///
/// ```
/// use socnet_core::NodeId;
/// use socnet_gen::complete;
/// use socnet_mixing::{ModulatedOperator, TrustModulation};
///
/// let g = complete(16);
/// let plain = ModulatedOperator::new(&g, TrustModulation::Uniform);
/// let lazy = ModulatedOperator::new(&g, TrustModulation::Lazy { alpha: 0.8 });
/// let t_plain = plain.mixing_curve(NodeId(0), 20);
/// let t_lazy = lazy.mixing_curve(NodeId(0), 20);
/// assert!(t_lazy[10] > t_plain[10], "heavy laziness slows mixing");
/// ```
#[derive(Debug, Clone)]
pub struct ModulatedOperator<'g> {
    graph: &'g Graph,
    modulation: TrustModulation,
    /// Per-directed-edge weights in CSR order (None for unweighted
    /// schemes, which use uniform transition shares).
    weights: Option<Vec<f64>>,
    /// CSR row offsets into `weights` (empty when unweighted).
    weight_offsets: Vec<usize>,
    /// Out-strength per node (sum of incident weights, or degree).
    strength: Vec<f64>,
}

impl<'g> ModulatedOperator<'g> {
    /// Builds the operator for `graph` under `modulation`.
    ///
    /// `SimilarityBiased` runs the `O(m^{3/2})`-ish common-neighbor count
    /// once at construction.
    ///
    /// # Panics
    ///
    /// Panics if a probability parameter is outside `[0, 1)`.
    pub fn new(graph: &'g Graph, modulation: TrustModulation) -> Self {
        match modulation {
            TrustModulation::Lazy { alpha } => {
                assert!((0.0..1.0).contains(&alpha), "alpha {alpha} out of [0, 1)");
            }
            TrustModulation::OriginatorBiased { beta } => {
                assert!((0.0..1.0).contains(&beta), "beta {beta} out of [0, 1)");
            }
            _ => {}
        }
        let (weights, weight_offsets, strength) = match modulation {
            TrustModulation::SimilarityBiased => {
                let mut weights = Vec::with_capacity(graph.degree_sum());
                let mut offsets = Vec::with_capacity(graph.node_count() + 1);
                let mut strength = vec![0.0f64; graph.node_count()];
                offsets.push(0);
                for u in graph.nodes() {
                    let nu = graph.neighbors(u);
                    for &v in nu {
                        let w = 1.0 + common_neighbors(graph, u, v) as f64;
                        weights.push(w);
                        strength[u.index()] += w;
                    }
                    offsets.push(weights.len());
                }
                (Some(weights), offsets, strength)
            }
            _ => {
                let strength = graph.nodes().map(|v| graph.degree(v) as f64).collect();
                (None, Vec::new(), strength)
            }
        };
        ModulatedOperator { graph, modulation, weights, weight_offsets, strength }
    }

    /// The modulation scheme in effect.
    pub fn modulation(&self) -> TrustModulation {
        self.modulation
    }

    /// One transition `dst ← src · P_mod`, with `origin` as the
    /// originator for the originator-biased scheme (ignored otherwise).
    ///
    /// # Panics
    ///
    /// Panics if slice lengths do not match the graph.
    pub fn step(&self, origin: NodeId, src: &[f64], dst: &mut [f64]) {
        let n = self.graph.node_count();
        assert_eq!(src.len(), n, "src length mismatch");
        assert_eq!(dst.len(), n, "dst length mismatch");
        dst.fill(0.0);
        let (keep, teleport) = match self.modulation {
            TrustModulation::Lazy { alpha } => (alpha, 0.0),
            TrustModulation::OriginatorBiased { beta } => (0.0, beta),
            _ => (0.0, 0.0),
        };
        let move_frac = 1.0 - keep - teleport;
        let mut teleported = 0.0f64;

        for u in self.graph.nodes() {
            let p = src[u.index()];
            if p == 0.0 {
                continue;
            }
            let s = self.strength[u.index()];
            if s == 0.0 {
                dst[u.index()] += p;
                continue;
            }
            if keep > 0.0 {
                dst[u.index()] += keep * p;
            }
            teleported += teleport * p;
            let row = self.graph.neighbors(u);
            match &self.weights {
                None => {
                    let share = move_frac * p / s;
                    for &v in row {
                        dst[v.index()] += share;
                    }
                }
                Some(weights) => {
                    // Weight rows mirror the neighbor rows exactly.
                    let start = self.weight_offsets[u.index()];
                    let scale = move_frac * p / s;
                    for (i, &v) in row.iter().enumerate() {
                        dst[v.index()] += scale * weights[start + i];
                    }
                }
            }
        }
        if teleported > 0.0 {
            dst[origin.index()] += teleported;
        }
    }

    /// The chain's limiting distribution from `origin`, by evolving the
    /// point mass until the update is below `tol` (at most `max_iters`
    /// steps). For reversible schemes this is the weighted-degree
    /// distribution; for the originator-biased scheme it depends on the
    /// originator, which is exactly why it models *local* trust.
    pub fn limiting_distribution(&self, origin: NodeId, tol: f64, max_iters: usize) -> Vec<f64> {
        let n = self.graph.node_count();
        let mut x = vec![0.0; n];
        x[origin.index()] = 1.0;
        let mut y = vec![0.0; n];
        for _ in 0..max_iters {
            self.step(origin, &x, &mut y);
            let delta = total_variation(&x, &y);
            std::mem::swap(&mut x, &mut y);
            if delta < tol {
                break;
            }
        }
        x
    }

    /// The per-step TVD curve of the walk from `source`, measured against
    /// the chain's own limiting distribution — the sampling method lifted
    /// to modulated walks.
    ///
    /// Returns `curve[t]` for `t = 1..=max_walk`.
    ///
    /// The chain must be aperiodic for the limit to exist; on a bipartite
    /// graph under [`TrustModulation::Uniform`] the reference vector is
    /// whatever the parity oscillation left behind and the curve is not
    /// meaningful — use a lazy or originator-biased scheme there (both are
    /// aperiodic by construction).
    pub fn mixing_curve(&self, source: NodeId, max_walk: usize) -> Vec<f64> {
        let limit = self.limiting_distribution(source, 1e-12, 50 * max_walk + 1000);
        let n = self.graph.node_count();
        let mut x = vec![0.0; n];
        x[source.index()] = 1.0;
        let mut y = vec![0.0; n];
        let mut curve = Vec::with_capacity(max_walk);
        for _ in 0..max_walk {
            self.step(source, &x, &mut y);
            std::mem::swap(&mut x, &mut y);
            curve.push(total_variation(&x, &limit));
        }
        curve
    }
}

/// Number of common neighbors of adjacent nodes `u`, `v` (sorted-list
/// intersection).
fn common_neighbors(graph: &Graph, u: NodeId, v: NodeId) -> usize {
    let (a, b) = (graph.neighbors(u), graph.neighbors(v));
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stationary_distribution;
    use socnet_gen::{complete, ring};

    #[test]
    fn uniform_matches_plain_operator() {
        let g = complete(10);
        let modulated = ModulatedOperator::new(&g, TrustModulation::Uniform);
        let plain = crate::WalkOperator::new(&g);
        let mut x = vec![0.0; 10];
        x[3] = 1.0;
        let mut a = vec![0.0; 10];
        let mut b = vec![0.0; 10];
        modulated.step(NodeId(3), &x, &mut a);
        plain.step(&x, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_limit_is_the_stationary_distribution() {
        let g = socnet_core::Graph::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let op = ModulatedOperator::new(&g, TrustModulation::Uniform);
        let limit = op.limiting_distribution(NodeId(0), 1e-13, 20_000);
        let pi = stationary_distribution(&g);
        assert!(total_variation(&limit, pi.as_slice()) < 1e-9);
    }

    #[test]
    fn lazy_modulation_slows_mixing() {
        let g = complete(12);
        let plain = ModulatedOperator::new(&g, TrustModulation::Uniform);
        let lazy = ModulatedOperator::new(&g, TrustModulation::Lazy { alpha: 0.7 });
        let c_plain = plain.mixing_curve(NodeId(0), 15);
        let c_lazy = lazy.mixing_curve(NodeId(0), 15);
        for t in [4usize, 9, 14] {
            assert!(c_lazy[t] >= c_plain[t], "t = {t}: lazy {} < plain {}", c_lazy[t], c_plain[t]);
        }
    }

    #[test]
    fn originator_bias_keeps_mass_near_home() {
        let g = ring(21);
        let op = ModulatedOperator::new(&g, TrustModulation::OriginatorBiased { beta: 0.4 });
        let limit = op.limiting_distribution(NodeId(0), 1e-12, 50_000);
        // The limiting distribution is concentrated around the originator.
        assert!(limit[0] > 0.2, "origin mass {}", limit[0]);
        let far = limit[10];
        assert!(limit[0] > 20.0 * far, "mass decays with distance: {} vs {far}", limit[0]);
        // And it is a probability distribution.
        assert!((limit.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn similarity_bias_prefers_embedded_links() {
        // Triangle {0,1,2} plus a pendant 3 attached to 2: from 2, the
        // similarity-weighted walk prefers the triangle links.
        let g = socnet_core::Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
        let op = ModulatedOperator::new(&g, TrustModulation::SimilarityBiased);
        let mut x = vec![0.0; 4];
        x[2] = 1.0;
        let mut y = vec![0.0; 4];
        op.step(NodeId(2), &x, &mut y);
        // Weights from 2: to 0 and 1 (1 common neighbor each) = 2; to 3 = 1.
        assert!((y[0] - 0.4).abs() < 1e-12);
        assert!((y[1] - 0.4).abs() < 1e-12);
        assert!((y[3] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn similarity_limit_is_strength_proportional() {
        let g = socnet_core::Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
        let op = ModulatedOperator::new(&g, TrustModulation::SimilarityBiased);
        let limit = op.limiting_distribution(NodeId(0), 1e-13, 100_000);
        // Reversible weighted chain: π(v) ∝ strength(v).
        // weights: 0: (2+2)=4... strengths: v0: w(0,1)=2 (common: 2? N(0)={1,2},
        // N(1)={0,2} common = {2} -> 1+1=2), w(0,2)=2 → 4.
        // v1: 2 + 2 = 4. v2: 2 + 2 + 1 = 5. v3: 1.
        let total = 4.0 + 4.0 + 5.0 + 1.0;
        let expect = [4.0 / total, 4.0 / total, 5.0 / total, 1.0 / total];
        // The chain is periodic-free (triangle) so it converges.
        assert!(total_variation(&limit, &expect) < 1e-6, "{limit:?}");
    }

    #[test]
    fn curves_are_bounded_probability_distances() {
        let g = ring(9);
        for m in [
            TrustModulation::Uniform,
            TrustModulation::Lazy { alpha: 0.5 },
            TrustModulation::OriginatorBiased { beta: 0.2 },
            TrustModulation::SimilarityBiased,
        ] {
            let op = ModulatedOperator::new(&g, m);
            for d in op.mixing_curve(NodeId(0), 30) {
                assert!((0.0..=1.0 + 1e-12).contains(&d), "{m:?}: tvd {d}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of [0, 1)")]
    fn bad_beta_rejected() {
        let g = ring(5);
        let _ = ModulatedOperator::new(&g, TrustModulation::OriginatorBiased { beta: 1.0 });
    }
}
